#include "dbwipes/storage/csv.h"

#include <fstream>
#include <sstream>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

namespace {

// Splits one CSV record, honoring quotes. `pos` advances past the
// record's trailing newline. Returns false at end of input.
bool NextRecord(const std::string& text, size_t* pos, char delim,
                std::vector<std::string>* fields, Status* error) {
  fields->clear();
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c == '\r') {
      // swallow; handles \r\n
    } else {
      field += c;
    }
  }
  if (in_quotes) {
    *error = Status::ParseError("unterminated quoted field");
    return false;
  }
  *pos = i;
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

enum class CellKind { kEmpty, kInt, kDouble, kString };

CellKind ClassifyCell(const std::string& cell, const CsvOptions& options) {
  std::string_view t = Trim(cell);
  if (t.empty() || t == options.null_token) return CellKind::kEmpty;
  if (ParseInt64(t).ok()) return CellKind::kInt;
  if (ParseDouble(t).ok()) return CellKind::kDouble;
  return CellKind::kString;
}

}  // namespace

Result<Table> ReadCsv(const std::string& text, const CsvOptions& options,
                      const std::string& table_name) {
  size_t pos = 0;
  Status error;
  std::vector<std::string> fields;

  // Header.
  std::vector<std::string> names;
  if (options.has_header) {
    if (!NextRecord(text, &pos, options.delimiter, &fields, &error)) {
      if (!error.ok()) return error;
      return Status::ParseError("empty CSV input");
    }
    for (const auto& f : fields) names.emplace_back(Trim(f));
  }

  // Collect all records (needed anyway to build the table; type
  // inference scans the first `type_inference_rows`).
  std::vector<std::vector<std::string>> records;
  while (NextRecord(text, &pos, options.delimiter, &fields, &error)) {
    records.push_back(fields);
  }
  if (!error.ok()) return error;
  if (records.empty() && names.empty()) {
    return Status::ParseError("empty CSV input");
  }

  const size_t ncols = names.empty() ? records[0].size() : names.size();
  if (names.empty()) {
    for (size_t c = 0; c < ncols; ++c) names.push_back("c" + std::to_string(c));
  }
  for (size_t r = 0; r < records.size(); ++r) {
    if (records[r].size() != ncols) {
      return Status::ParseError("row " + std::to_string(r + 1) + " has " +
                                std::to_string(records[r].size()) +
                                " fields, expected " + std::to_string(ncols));
    }
  }

  // Type inference.
  std::vector<DataType> types(ncols, DataType::kInt64);
  std::vector<bool> saw_value(ncols, false);
  const size_t sample = std::min(records.size(), options.type_inference_rows);
  for (size_t r = 0; r < sample; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      switch (ClassifyCell(records[r][c], options)) {
        case CellKind::kEmpty:
          break;
        case CellKind::kInt:
          saw_value[c] = true;
          break;
        case CellKind::kDouble:
          saw_value[c] = true;
          if (types[c] == DataType::kInt64) types[c] = DataType::kDouble;
          break;
        case CellKind::kString:
          saw_value[c] = true;
          types[c] = DataType::kString;
          break;
      }
    }
  }
  // Columns with no sampled values default to string (safest).
  for (size_t c = 0; c < ncols; ++c) {
    if (!saw_value[c]) types[c] = DataType::kString;
  }

  std::vector<Field> schema_fields;
  for (size_t c = 0; c < ncols; ++c) {
    schema_fields.push_back(Field{names[c], types[c]});
  }
  Table table(Schema(std::move(schema_fields)), table_name);

  std::vector<Value> row(ncols);
  for (size_t r = 0; r < records.size(); ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = records[r][c];
      std::string_view t = Trim(cell);
      if (t.empty() || t == options.null_token) {
        row[c] = Value::Null();
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64: {
          auto v = ParseInt64(t);
          if (!v.ok()) {
            return Status::ParseError(
                "row " + std::to_string(r + 1) + ", column '" + names[c] +
                "': expected int64, got '" + std::string(t) + "'");
          }
          row[c] = Value(*v);
          break;
        }
        case DataType::kDouble: {
          auto v = ParseDouble(t);
          if (!v.ok()) {
            return Status::ParseError(
                "row " + std::to_string(r + 1) + ", column '" + names[c] +
                "': expected double, got '" + std::string(t) + "'");
          }
          row[c] = Value(*v);
          break;
        }
        case DataType::kString:
          row[c] = Value(std::string(t));
          break;
      }
    }
    DBW_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsv(buf.str(), options, path);
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::ostringstream os;
  const char d = options.delimiter;
  auto emit = [&](const std::string& cell) {
    if (cell.find(d) != std::string::npos ||
        cell.find('"') != std::string::npos ||
        cell.find('\n') != std::string::npos) {
      os << '"';
      for (char c : cell) {
        if (c == '"') os << '"';
        os << c;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << d;
      emit(table.schema().field(c).name);
    }
    os << "\n";
  }
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << d;
      const Column& col = table.column(c);
      if (col.IsNull(r)) {
        os << options.null_token;
      } else if (col.type() == DataType::kString) {
        emit(col.GetString(r));
      } else if (col.type() == DataType::kInt64) {
        os << col.GetInt64(r);
      } else {
        os << FormatDouble(col.GetDouble(r), 17);
      }
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsv(table, options);
  if (!out) return Status::IoError("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace dbwipes
