#include "dbwipes/storage/value.h"

#include <cmath>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  if (name == "int64" || name == "int") return DataType::kInt64;
  if (name == "double" || name == "float") return DataType::kDouble;
  if (name == "string" || name == "text") return DataType::kString;
  return Status::ParseError("unknown data type: '" + std::string(name) + "'");
}

Result<double> Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  if (is_double()) return dbl();
  if (is_null()) return Status::TypeError("NULL has no numeric value");
  return Status::TypeError("string '" + str() + "' has no numeric value");
}

Result<DataType> Value::type() const {
  if (is_int64()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  return Status::TypeError("NULL has no type");
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return FormatDouble(dbl());
  // SQL-style string literal: embedded quotes double up, so the
  // rendering parses back to the same value.
  std::string out = "'";
  for (char c : str()) {
    if (c == '\'') out += '\'';  // double embedded quotes
    out += c;
  }
  out += '\'';
  return out;
}

namespace {

// Rank used to order across types: NULL < numeric < string.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  return 2;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    // Compare numerically so Value(2) == Value(2.0).
    return AsDouble().ValueUnsafe() == other.AsDouble().ValueUnsafe();
  }
  if (is_string() && other.is_string()) return str() == other.str();
  return false;
}

bool Value::operator<(const Value& other) const {
  const int ra = TypeRank(*this);
  const int rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // NULL == NULL
  if (ra == 1) {
    return AsDouble().ValueUnsafe() < other.AsDouble().ValueUnsafe();
  }
  return str() < other.str();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_numeric()) {
    double d = AsDouble().ValueUnsafe();
    if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0
    return std::hash<double>{}(d);
  }
  return std::hash<std::string>{}(str());
}

}  // namespace dbwipes
