#include "dbwipes/storage/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/telemetry.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

// '2': frames carry a u64 request id after the LSN (PR 9); a v1 log
// would checksum-fail against this layout, so the magic refuses it
// outright instead of misreading it as a torn tail.
constexpr char kSegmentMagic[8] = {'D', 'B', 'W', 'W', 'A', 'L', '2', '\0'};
constexpr size_t kSegmentHeaderSize = 16;  // magic + u64 base_lsn
// [u32 body_len][u64 checksum][u64 lsn][u64 rid][u8 type]
constexpr size_t kRecordHeaderSize = 4 + 8 + 8 + 8 + 1;
constexpr size_t kMaxRecordBody = 64u << 20;  // sanity cap against garbage lens

uint64_t Fnv1a64(const char* data, size_t n, uint64_t h = 1469598103934665603ull) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t RecordChecksum(uint64_t lsn, uint64_t rid, uint8_t type,
                        const std::string& body) {
  char prefix[17];
  std::memcpy(prefix, &lsn, 8);
  std::memcpy(prefix + 8, &rid, 8);
  prefix[16] = static_cast<char>(type);
  return Fnv1a64(body.data(), body.size(), Fnv1a64(prefix, sizeof(prefix)));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " failed for " + path + ": " +
                         std::strerror(errno));
}

/// write() until done, honoring an injected short-write/error fault: at
/// most `fault->short_write_limit` bytes land before the fault's status
/// (or crash) applies — the generator for torn tails.
Status WriteFully(int fd, const char* data, size_t n, const std::string& path,
                  const FaultInjector::Fault* fault) {
  size_t allowed = n;
  if (fault != nullptr && fault->short_write_limit > 0) {
    allowed = std::min(n, fault->short_write_limit);
  }
  size_t written = 0;
  while (written < allowed) {
    ssize_t r = ::write(fd, data + written, allowed - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(r);
  }
  if (fault != nullptr) {
    // The partial bytes are on disk; now the fault takes effect.
    if (fault->crash) ::_exit(kFaultCrashExit);
    if (!fault->status.ok()) return fault->status;
    if (allowed < n) {
      return Status::IoError("short write injected at " + path);
    }
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return Errno("fsync", path);
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  Status st = FsyncFd(fd, path);
  ::close(fd);
  return st;
}

Status ReadFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::OK();
}

/// One validated record from a segment scan.
struct ScanState {
  uint64_t max_lsn = 0;       // last valid record (0: none)
  size_t valid_bytes = 0;     // prefix covered by valid records
  size_t record_bytes = 0;    // same minus the segment header
  bool torn = false;          // trailing bytes past valid_bytes are damaged
};

/// Walks `data` (a full segment image) validating frames. Stops at the
/// first torn/invalid frame; `expected_lsn` enforces contiguity, which
/// is corruption (not tearing) when violated mid-file.
Status ScanSegment(const std::string& path, const std::string& data,
                   uint64_t base_lsn, uint64_t expected_lsn, ScanState* out,
                   const std::function<Status(uint64_t, uint64_t, uint8_t,
                                              const std::string&)>* fn) {
  size_t off = kSegmentHeaderSize;
  out->valid_bytes = off;
  uint64_t next = expected_lsn;
  while (off < data.size()) {
    if (data.size() - off < kRecordHeaderSize) {
      out->torn = true;
      break;
    }
    const uint32_t body_len = GetU32(data.data() + off);
    if (body_len > kMaxRecordBody ||
        data.size() - off - kRecordHeaderSize < body_len) {
      out->torn = true;
      break;
    }
    const uint64_t checksum = GetU64(data.data() + off + 4);
    const uint64_t lsn = GetU64(data.data() + off + 12);
    const uint64_t rid = GetU64(data.data() + off + 20);
    const uint8_t type = static_cast<uint8_t>(data[off + 28]);
    std::string body(data, off + kRecordHeaderSize, body_len);
    if (RecordChecksum(lsn, rid, type, body) != checksum) {
      out->torn = true;
      break;
    }
    // A checksum-valid record with the wrong LSN is not a torn write —
    // torn writes damage bytes, they don't forge frames.
    if (lsn != next) {
      return Status::IoError("wal corrupt: " + path + " holds lsn " +
                             std::to_string(lsn) + " where " +
                             std::to_string(next) + " was expected");
    }
    if (out->max_lsn == 0 && lsn != base_lsn) {
      return Status::IoError("wal corrupt: " + path + " base lsn " +
                             std::to_string(base_lsn) +
                             " disagrees with first record lsn " +
                             std::to_string(lsn));
    }
    if (fn != nullptr) {
      Status st = (*fn)(lsn, rid, type, body);
      if (!st.ok()) return st;
    }
    out->max_lsn = lsn;
    off += kRecordHeaderSize + body_len;
    out->valid_bytes = off;
    ++next;
  }
  out->record_bytes = out->valid_bytes - kSegmentHeaderSize;
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(WalOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("wal dir must not be empty");
  }
  if (options.faults != nullptr) {
    DBW_RETURN_NOT_OK(options.faults->Hit("wal/open"));
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", options.dir);
  }

  // Enumerate wal-*.log segments, ordered by sequence number.
  std::vector<std::pair<uint64_t, std::string>> found;
  {
    DIR* d = ::opendir(options.dir.c_str());
    if (d == nullptr) return Errno("opendir", options.dir);
    while (struct dirent* e = ::readdir(d)) {
      unsigned long long seq = 0;
      char tail = 0;
      if (std::sscanf(e->d_name, "wal-%8llu.lo%c", &seq, &tail) == 2 &&
          tail == 'g') {
        found.emplace_back(seq, SegmentPath(options.dir, seq));
      }
    }
    ::closedir(d);
  }
  std::sort(found.begin(), found.end());

  auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog());
  wal->options_ = std::move(options);

  uint64_t expected_lsn = 1;
  for (size_t i = 0; i < found.size(); ++i) {
    const bool last = (i + 1 == found.size());
    const std::string& path = found[i].second;
    std::string data;
    DBW_RETURN_NOT_OK(ReadFile(path, &data));
    if (data.size() < kSegmentHeaderSize ||
        std::memcmp(data.data(), kSegmentMagic, 8) != 0) {
      // A segment written by another wal format version has a complete,
      // well-formed "DBWWAL<v>" magic. Its records are durable commits
      // this reader cannot parse — refuse to open rather than mistaking
      // it for creation debris and deleting it.
      if (data.size() >= 8 && std::memcmp(data.data(), "DBWWAL", 6) == 0) {
        return Status::IoError(
            "wal unsupported version: " + path + " has magic " +
            std::string(data.data(), 7) + ", this build reads " +
            std::string(kSegmentMagic, 7) +
            "; migrate or remove the old log explicitly");
      }
      if (last) {
        // A crash during segment creation can leave a short/blank file;
        // drop it and let the active segment be recreated below.
        if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
        DBW_RETURN_NOT_OK(FsyncPath(wal->options_.dir));
        break;
      }
      return Status::IoError("wal corrupt: bad segment header in " + path);
    }
    const uint64_t base_lsn = GetU64(data.data() + 8);
    if (i == 0) {
      // Checkpoints truncate the log's prefix, so the oldest surviving
      // segment may start anywhere; contiguity is only required from
      // here on.
      expected_lsn = base_lsn;
    }
    if (base_lsn != expected_lsn) {
      return Status::IoError("wal corrupt: " + path + " starts at lsn " +
                             std::to_string(base_lsn) + ", expected " +
                             std::to_string(expected_lsn));
    }
    ScanState scan;
    DBW_RETURN_NOT_OK(
        ScanSegment(path, data, base_lsn, expected_lsn, &scan, nullptr));
    if (scan.torn) {
      if (!last) {
        // Crashes only ever tear the segment being written; damage in a
        // sealed segment is real corruption.
        return Status::IoError("wal corrupt: torn record mid-log in " + path);
      }
      int fd = ::open(path.c_str(), O_WRONLY);
      if (fd < 0) return Errno("open", path);
      if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
        ::close(fd);
        return Errno("ftruncate", path);
      }
      Status st = FsyncFd(fd, path);
      ::close(fd);
      DBW_RETURN_NOT_OK(st);
    }
    Segment seg;
    seg.path = path;
    seg.seq = found[i].first;
    seg.base_lsn = base_lsn;
    seg.max_lsn = scan.max_lsn;
    seg.record_bytes = scan.record_bytes;
    wal->segments_.push_back(std::move(seg));
    if (scan.max_lsn != 0) expected_lsn = scan.max_lsn + 1;
  }

  if (wal->segments_.empty() && wal->options_.start_lsn > 1) {
    // Replication bootstrap: a follower's fresh log continues the
    // primary's numbering from the installed snapshot.
    expected_lsn = wal->options_.start_lsn;
  }
  wal->next_lsn_ = expected_lsn;
  wal->durable_lsn_ = expected_lsn - 1;

  if (wal->segments_.empty()) {
    DBW_RETURN_NOT_OK(wal->CreateSegment(1, wal->next_lsn_));
  } else {
    Segment& active = wal->segments_.back();
    wal->active_fd_ = ::open(active.path.c_str(), O_WRONLY | O_APPEND);
    if (wal->active_fd_ < 0) return Errno("open", active.path);
    wal->active_synced_bytes_ = kSegmentHeaderSize + active.record_bytes;
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

Status WriteAheadLog::CreateSegment(uint64_t seq, uint64_t base_lsn) {
  const std::string path = SegmentPath(options_.dir, seq);
  int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  std::string header(kSegmentMagic, 8);
  PutU64(&header, base_lsn);
  Status st = WriteFully(fd, header.data(), header.size(), path, nullptr);
  if (st.ok()) st = FsyncFd(fd, path);
  if (st.ok()) st = FsyncPath(options_.dir);
  if (!st.ok()) {
    ::close(fd);
    ::unlink(path.c_str());
    return st;
  }
  if (active_fd_ >= 0) ::close(active_fd_);
  active_fd_ = fd;
  active_synced_bytes_ = kSegmentHeaderSize;
  Segment seg;
  seg.path = path;
  seg.seq = seq;
  seg.base_lsn = base_lsn;
  segments_.push_back(std::move(seg));
  return Status::OK();
}

Status WriteAheadLog::RotateLocked(uint64_t base_lsn) {
  Segment& active = segments_.back();
  if (active.record_bytes == 0) return Status::OK();  // already fresh
  if (options_.faults != nullptr) {
    DBW_RETURN_NOT_OK(options_.faults->Hit("wal/rotate"));
  }
  // The old segment was fsynced by every commit that touched it; sealing
  // is just switching fds (CreateSegment closes the old one).
  return CreateSegment(active.seq + 1, base_lsn);
}

Status WriteAheadLog::WriteAndSync(int fd, const std::string& path,
                                   const std::string& batch) {
  FaultInjector::Fault fault;
  const FaultInjector::Fault* fault_ptr = nullptr;
  if (options_.faults != nullptr &&
      options_.faults->HitIo("wal/write", &fault)) {
    fault_ptr = &fault;
  }
  DBW_RETURN_NOT_OK(WriteFully(fd, batch.data(), batch.size(), path,
                               fault_ptr));
  if (options_.sync) {
    if (options_.faults != nullptr &&
        options_.faults->HitIo("wal/fsync", &fault)) {
      if (fault.crash) ::_exit(kFaultCrashExit);
      if (!fault.status.ok()) return fault.status;
    }
    static MetricHistogram* const fsync_ms =
        MetricsRegistry::Global().GetHistogram("wal.fsync_ms");
    // Publish the entry timestamp so the watchdog can flag an fsync
    // that never comes back (dead disk) — a latency histogram alone
    // only reports fsyncs that finished.
    const double start_ms = MonotonicMillis();
    SetFsyncInFlight(start_ms);
    Status st = FsyncFd(fd, path);
    ClearFsyncInFlight();
    fsync_ms->Observe(MonotonicMillis() - start_ms);
    DBW_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(uint8_t type, const std::string& body,
                                       uint64_t rid) {
  DBW_ASSIGN_OR_RETURN(Ticket ticket, Stage(type, body, rid));
  DBW_RETURN_NOT_OK(WaitDurable(ticket));
  return ticket.lsn;
}

Result<WriteAheadLog::Ticket> WriteAheadLog::Stage(uint8_t type,
                                                   const std::string& body,
                                                   uint64_t rid) {
  if (options_.faults != nullptr) {
    DBW_RETURN_NOT_OK(options_.faults->Hit("wal/record"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::IoError("wal poisoned by unrecoverable commit failure (" +
                           last_error_.ToString() + "); reopen required");
  }
  Ticket ticket;
  ticket.lsn = next_lsn_++;
  ticket.epoch = commit_epoch_;
  ticket.bytes = kRecordHeaderSize + body.size();
  if (pending_records_ == 0) pending_first_lsn_ = ticket.lsn;
  PutU32(&pending_, static_cast<uint32_t>(body.size()));
  PutU64(&pending_, RecordChecksum(ticket.lsn, rid, type, body));
  PutU64(&pending_, ticket.lsn);
  PutU64(&pending_, rid);
  pending_.push_back(static_cast<char>(type));
  pending_.append(body);
  ++pending_records_;
  return ticket;
}

Status WriteAheadLog::WaitDurable(const Ticket& ticket) {
  const uint64_t lsn = ticket.lsn;
  const uint64_t epoch = ticket.epoch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (commit_epoch_ != epoch) {
      // A commit failed after we staged. The bump that ended our epoch
      // recorded how far the log was durable at that instant: at or
      // past our LSN means our record committed before the failure;
      // short of it means ours was dropped — and a durable_lsn_ >= lsn
      // NOW would only mean the LSN was reused by a later record.
      Status dropped = Status::IoError("wal commit aborted");
      bool committed = false;
      for (const DropEvent& drop : drops_) {
        if (drop.epoch != epoch) continue;
        committed = lsn <= drop.durable_lsn;
        if (!drop.status.ok()) dropped = drop.status;
        break;
      }
      if (committed) break;
      return dropped;
    }
    if (durable_lsn_ >= lsn) break;
    if (!sync_in_flight_) {
      // Become the leader: commit everything pending in one write+fsync.
      // Rotation (rare) stays under the lock so segments_ is only ever
      // mutated with mu_ held; only the write+fsync runs unlocked.
      Status st;
      if (kSegmentHeaderSize + segments_.back().record_bytes >=
          options_.segment_bytes) {
        st = RotateLocked(pending_first_lsn_);
      }
      std::string batch;
      size_t batch_records = 0;
      uint64_t first_lsn = 0;
      int fd = -1;
      std::string path;
      if (st.ok()) {
        batch.swap(pending_);
        batch_records = pending_records_;
        first_lsn = pending_first_lsn_;
        pending_records_ = 0;
        if (segments_.back().max_lsn == 0) {
          segments_.back().base_lsn = first_lsn;
        }
        fd = active_fd_;
        path = segments_.back().path;
        sync_in_flight_ = true;
        lock.unlock();
        st = WriteAndSync(fd, path, batch);
        lock.lock();
        sync_in_flight_ = false;
      }
      if (st.ok()) {
        Segment& seg = segments_.back();
        seg.record_bytes += batch.size();
        seg.max_lsn = first_lsn + batch_records - 1;
        active_synced_bytes_ += batch.size();
        durable_lsn_ = seg.max_lsn;
        ++fsyncs_;
        MetricsRegistry::Global().GetCounter("wal.fsyncs")->Increment();
        MetricsRegistry::Global()
            .GetHistogram("wal.group_batch")
            ->Observe(static_cast<double>(batch_records));
      } else {
        // Drop the failed batch AND anything queued behind it (its LSNs
        // would leave a gap), restore the file to the durable prefix,
        // and rewind the counter so the log stays contiguous.
        last_error_ = st;
        drops_.push_back(DropEvent{commit_epoch_, durable_lsn_, st});
        ++commit_epoch_;
        pending_.clear();
        pending_records_ = 0;
        next_lsn_ = durable_lsn_ + 1;
        int rc;
        do {
          rc = ::ftruncate(active_fd_,
                           static_cast<off_t>(active_synced_bytes_));
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) {
          // Can't prove what's on disk anymore; refuse further appends.
          poisoned_ = true;
        } else {
          segments_.back().record_bytes =
              active_synced_bytes_ - kSegmentHeaderSize;
        }
        cv_.notify_all();
        return st;
      }
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  ++appends_;
  MetricsRegistry::Global().GetCounter("wal.appends")->Increment();
  MetricsRegistry::Global()
      .GetCounter("wal.bytes")
      ->Increment(ticket.bytes);
  if (options_.faults != nullptr) {
    FaultInjector::Fault fault;
    if (options_.faults->HitIo("wal/ack", &fault)) {
      // The record IS durable; a crash here loses only the ack.
      if (fault.crash) ::_exit(kFaultCrashExit);
      if (!fault.status.ok()) return fault.status;
    }
  }
  return Status::OK();
}

Status WriteAheadLog::Replay(
    uint64_t after_lsn,
    const std::function<Status(uint64_t, uint64_t, uint8_t,
                               const std::string&)>& fn) const {
  std::vector<Segment> segments;
  {
    std::lock_guard<std::mutex> lock(mu_);
    segments = segments_;
  }
  auto deliver = [&](uint64_t lsn, uint64_t rid, uint8_t type,
                     const std::string& body) -> Status {
    if (lsn <= after_lsn) return Status::OK();
    return fn(lsn, rid, type, body);
  };
  const std::function<Status(uint64_t, uint64_t, uint8_t, const std::string&)>
      deliver_fn = deliver;
  for (const Segment& seg : segments) {
    if (seg.max_lsn == 0) continue;
    std::string data;
    DBW_RETURN_NOT_OK(ReadFile(seg.path, &data));
    ScanState scan;
    DBW_RETURN_NOT_OK(ScanSegment(seg.path, data, seg.base_lsn, seg.base_lsn,
                                  &scan, &deliver_fn));
    if (scan.max_lsn < seg.max_lsn) {
      return Status::IoError("wal replay: " + seg.path +
                             " lost durable records (have through lsn " +
                             std::to_string(scan.max_lsn) + ", expected " +
                             std::to_string(seg.max_lsn) + ")");
    }
  }
  return Status::OK();
}

Status WriteAheadLog::ReplayDurable(
    uint64_t after_lsn,
    const std::function<Status(uint64_t, uint64_t, uint8_t,
                               const std::string&)>& fn,
    uint64_t* delivered_through) const {
  std::vector<Segment> segments;
  uint64_t cap = 0;
  {
    // Segment metadata (including per-segment max_lsn) is only advanced
    // under mu_ *after* a successful fsync, so this copy and `cap`
    // describe exactly the on-disk durable prefix at this instant.
    std::lock_guard<std::mutex> lock(mu_);
    segments = segments_;
    cap = durable_lsn_;
  }
  if (delivered_through != nullptr) *delivered_through = cap;
  if (cap <= after_lsn) {
    if (delivered_through != nullptr) *delivered_through = after_lsn;
    return Status::OK();
  }
  auto deliver = [&](uint64_t lsn, uint64_t rid, uint8_t type,
                     const std::string& body) -> Status {
    if (lsn <= after_lsn || lsn > cap) return Status::OK();
    return fn(lsn, rid, type, body);
  };
  const std::function<Status(uint64_t, uint64_t, uint8_t, const std::string&)>
      deliver_fn = deliver;
  for (const Segment& seg : segments) {
    if (seg.max_lsn != 0 && seg.max_lsn <= after_lsn) continue;
    if (seg.base_lsn > cap) break;
    // The durable records this segment must still hold. max_lsn came
    // from the same locked copy as `cap`, so anything beyond it in the
    // file is a concurrent commit in flight — possibly torn, never owed.
    const uint64_t want = std::min(cap, seg.max_lsn);
    if (want < seg.base_lsn) continue;  // sealed-empty segment
    std::string data;
    DBW_RETURN_NOT_OK(ReadFile(seg.path, &data));
    ScanState scan;
    DBW_RETURN_NOT_OK(ScanSegment(seg.path, data, seg.base_lsn, seg.base_lsn,
                                  &scan, &deliver_fn));
    if (scan.max_lsn < want) {
      return Status::IoError("wal tail read: " + seg.path +
                             " lost durable records (have through lsn " +
                             std::to_string(scan.max_lsn) + ", expected " +
                             std::to_string(want) + ")");
    }
  }
  return Status::OK();
}

uint64_t WriteAheadLog::first_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.empty() ? next_lsn_ : segments_.front().base_lsn;
}

bool WriteAheadLog::CanReplayAfter(uint64_t lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t first =
      segments_.empty() ? next_lsn_ : segments_.front().base_lsn;
  // Everything in (lsn, durable] must still be on disk: the log's
  // retained range starts at `first`, so lsn + 1 >= first suffices.
  return lsn + 1 >= first && lsn <= durable_lsn_;
}

Status WriteAheadLog::Rotate() {
  std::unique_lock<std::mutex> lock(mu_);
  // A group-commit leader writes to the active fd with mu_ RELEASED;
  // sealing the segment under it (CreateSegment closes that fd, and
  // the leader republishes into segments_.back()) would land its batch
  // in the wrong file. Wait for the leader to finish and republish.
  while (sync_in_flight_) cv_.wait(lock);
  return RotateLocked(next_lsn_);
}

Status WriteAheadLog::TruncateThrough(uint64_t lsn) {
  if (options_.faults != nullptr) {
    DBW_RETURN_NOT_OK(options_.faults->Hit("wal/truncate"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  bool removed = false;
  while (segments_.size() > 1) {
    const Segment& seg = segments_.front();
    if (seg.max_lsn == 0 || seg.max_lsn > lsn) break;
    if (::unlink(seg.path.c_str()) != 0) return Errno("unlink", seg.path);
    segments_.erase(segments_.begin());
    removed = true;
  }
  if (removed) DBW_RETURN_NOT_OK(FsyncPath(options_.dir));
  return Status::OK();
}

uint64_t WriteAheadLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

size_t WriteAheadLog::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

size_t WriteAheadLog::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Segment& seg : segments_) n += seg.record_bytes;
  return n;
}

WalStats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats s;
  s.next_lsn = next_lsn_;
  s.durable_lsn = durable_lsn_;
  s.segments = segments_.size();
  for (const Segment& seg : segments_) s.total_bytes += seg.record_bytes;
  s.appends = appends_;
  s.fsyncs = fsyncs_;
  s.poisoned = poisoned_;
  return s;
}

}  // namespace dbwipes
