#include "dbwipes/storage/column.h"

#include <algorithm>

#include "dbwipes/common/logging.h"

namespace dbwipes {

Column::Column(DataType type) : type_(type) {}

int64_t Column::GetInt64(RowId row) const {
  DBW_DCHECK(type_ == DataType::kInt64);
  DBW_DCHECK(validity_[row]);
  return ints_[row];
}

double Column::GetDouble(RowId row) const {
  DBW_DCHECK(type_ == DataType::kDouble);
  DBW_DCHECK(validity_[row]);
  return doubles_[row];
}

const std::string& Column::GetString(RowId row) const {
  DBW_DCHECK(type_ == DataType::kString);
  DBW_DCHECK(validity_[row]);
  return dictionary_[codes_[row]];
}

double Column::AsDouble(RowId row) const {
  DBW_DCHECK(validity_[row]);
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      DBW_CHECK(false) << "AsDouble on string column";
  }
  return 0.0;
}

Value Column::GetValue(RowId row) const {
  if (!validity_[row]) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(dictionary_[codes_[row]]);
  }
  return Value::Null();
}

void Column::AppendNull() {
  validity_.push_back(false);
  ++null_count_;
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      codes_.push_back(-1);
      break;
  }
}

void Column::AppendInt64(int64_t v) {
  DBW_DCHECK(type_ == DataType::kInt64);
  validity_.push_back(true);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  DBW_DCHECK(type_ == DataType::kDouble);
  validity_.push_back(true);
  doubles_.push_back(v);
}

void Column::AppendString(const std::string& v) {
  DBW_DCHECK(type_ == DataType::kString);
  validity_.push_back(true);
  codes_.push_back(InternString(v));
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) {
        return Status::TypeError("cannot append " + v.ToString() +
                                 " to int64 column");
      }
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64()));
        return Status::OK();
      }
      if (!v.is_double()) {
        return Status::TypeError("cannot append " + v.ToString() +
                                 " to double column");
      }
      AppendDouble(v.dbl());
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) {
        return Status::TypeError("cannot append " + v.ToString() +
                                 " to string column");
      }
      AppendString(v.str());
      return Status::OK();
  }
  return Status::TypeError("unknown column type");
}

int32_t Column::StringCode(RowId row) const {
  DBW_DCHECK(type_ == DataType::kString);
  DBW_DCHECK(validity_[row]);
  return codes_[row];
}

const std::string& Column::DictionaryValue(int32_t code) const {
  DBW_DCHECK(type_ == DataType::kString);
  DBW_DCHECK(code >= 0 && static_cast<size_t>(code) < dictionary_.size());
  return dictionary_[code];
}

int32_t Column::FindCode(const std::string& s) const {
  auto it = dictionary_index_.find(s);
  return it == dictionary_index_.end() ? -1 : it->second;
}

const std::vector<int64_t>& Column::int64_data() const {
  DBW_DCHECK(type_ == DataType::kInt64);
  return ints_;
}

const std::vector<double>& Column::double_data() const {
  DBW_DCHECK(type_ == DataType::kDouble);
  return doubles_;
}

const std::vector<int32_t>& Column::code_data() const {
  DBW_DCHECK(type_ == DataType::kString);
  return codes_;
}

void Column::AppendFrom(const Column& src, RowId row) {
  DBW_CHECK(src.type_ == type_);
  if (src.IsNull(row)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(src.ints_[row]);
      break;
    case DataType::kDouble:
      AppendDouble(src.doubles_[row]);
      break;
    case DataType::kString:
      AppendString(src.dictionary_[src.codes_[row]]);
      break;
  }
}

Result<double> Column::MinNumeric() const {
  if (type_ == DataType::kString) {
    return Status::TypeError("MinNumeric on string column");
  }
  bool found = false;
  double best = 0.0;
  for (RowId r = 0; r < size(); ++r) {
    if (IsNull(r)) continue;
    const double v = AsDouble(r);
    if (!found || v < best) {
      best = v;
      found = true;
    }
  }
  if (!found) return Status::NotFound("column has no non-null values");
  return best;
}

Result<double> Column::MaxNumeric() const {
  if (type_ == DataType::kString) {
    return Status::TypeError("MaxNumeric on string column");
  }
  bool found = false;
  double best = 0.0;
  for (RowId r = 0; r < size(); ++r) {
    if (IsNull(r)) continue;
    const double v = AsDouble(r);
    if (!found || v > best) {
      best = v;
      found = true;
    }
  }
  if (!found) return Status::NotFound("column has no non-null values");
  return best;
}

int32_t Column::InternString(const std::string& s) {
  auto it = dictionary_index_.find(s);
  if (it != dictionary_index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(dictionary_.size());
  dictionary_.push_back(s);
  dictionary_index_.emplace(s, code);
  return code;
}

}  // namespace dbwipes
