#include "dbwipes/storage/shard.h"

#include <algorithm>

#include "dbwipes/common/logging.h"
#include "dbwipes/common/metrics.h"

namespace dbwipes {

namespace {

/// Near-equal contiguous split: the first rows % shards shards get one
/// extra row, so boundaries are a pure function of (rows, shards).
std::vector<size_t> EvenSplit(size_t rows, size_t num_shards) {
  std::vector<size_t> out(num_shards, rows / num_shards);
  for (size_t s = 0; s < rows % num_shards; ++s) ++out[s];
  return out;
}

}  // namespace

Result<std::shared_ptr<ShardSet>> ShardSet::Create(const Table& fused,
                                                   size_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  return CreateWithRows(fused, EvenSplit(fused.num_rows(), num_shards));
}

Result<std::shared_ptr<ShardSet>> ShardSet::CreateWithRows(
    const Table& fused, const std::vector<size_t>& shard_rows) {
  if (shard_rows.empty()) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  if (shard_rows.size() > kMaxShards) {
    return Status::InvalidArgument(
        "shard count " + std::to_string(shard_rows.size()) +
        " exceeds the maximum of " + std::to_string(kMaxShards));
  }
  size_t total = 0;
  for (size_t n : shard_rows) total += n;
  if (total != fused.num_rows()) {
    return Status::InvalidArgument(
        "shard row counts sum to " + std::to_string(total) + " but table '" +
        fused.name() + "' has " + std::to_string(fused.num_rows()) + " rows");
  }

  auto set = std::shared_ptr<ShardSet>(new ShardSet());
  set->name_ = fused.name();
  set->schema_ = fused.schema();
  // Deep copy: the set's fused view must not alias a table some other
  // holder could keep mutating (Append must be the only writer).
  std::vector<RowId> all(fused.num_rows());
  for (RowId r = 0; r < all.size(); ++r) all[r] = r;
  set->fused_ = std::make_shared<Table>(fused.Select(all));

  RowId begin = 0;
  set->shards_.reserve(shard_rows.size());
  for (size_t s = 0; s < shard_rows.size(); ++s) {
    Shard shard;
    shard.begin = begin;
    // Rows land in global order, so each shard's dictionary codes are
    // first-appearance order within the shard — reproducible from the
    // fused content plus the boundaries alone.
    shard.table = std::make_shared<Table>(
        set->fused_->Select([&] {
          std::vector<RowId> rows(shard_rows[s]);
          for (size_t i = 0; i < shard_rows[s]; ++i) {
            rows[i] = begin + static_cast<RowId>(i);
          }
          return rows;
        }()));
    begin += static_cast<RowId>(shard_rows[s]);
    set->shards_.push_back(std::move(shard));
  }
  return set;
}

Status ShardSet::Append(const std::vector<Value>& values) {
  static MetricCounter* const appends =
      MetricsRegistry::Global().GetCounter("shard.appends");
  std::unique_lock<std::shared_mutex> lock(data_mu_);
  // Validate against the fused view first so a bad row mutates
  // neither copy; the tail append then cannot fail (same schema).
  DBW_RETURN_NOT_OK(fused_->AppendRow(values));
  DBW_CHECK_OK(shards_.back().table->AppendRow(values));
  ++appends_;
  appends->Increment();
  return Status::OK();
}

std::vector<size_t> ShardSet::ShardRowCounts() const {
  std::vector<size_t> out;
  out.reserve(shards_.size());
  for (const Shard& s : shards_) out.push_back(s.table->num_rows());
  return out;
}

size_t ShardSet::ShardOfRow(RowId row) const {
  DBW_DCHECK(row < fused_->num_rows());
  // Boundaries ascend; the owning shard is the last with begin <= row.
  size_t s = shards_.size() - 1;
  while (s > 0 && shards_[s].begin > row) --s;
  return s;
}

std::shared_ptr<void> ShardSet::GetOrCreateExtension(
    const std::function<std::shared_ptr<void>()>& make) const {
  std::lock_guard<std::mutex> lock(extension_mu_);
  if (extension_ == nullptr) extension_ = make();
  return extension_;
}

ShardPlan ShardPlan::Build(ShardSet& set,
                           const std::vector<RowId>& sorted_rows) {
  ShardPlan plan;
  plan.set = &set;
  plan.slices.resize(set.num_shards());
  size_t i = 0;
  size_t offset = 0;
  for (size_t s = 0; s < set.num_shards(); ++s) {
    ShardSlice& slice = plan.slices[s];
    slice.shard_index = s;
    slice.table = &set.shard_table(s);
    slice.offset = offset;
    const RowId begin = set.shard_begin(s);
    const RowId end = begin + static_cast<RowId>(slice.table->num_rows());
    while (i < sorted_rows.size() && sorted_rows[i] < end) {
      DBW_DCHECK(sorted_rows[i] >= begin);
      slice.local_rows.push_back(sorted_rows[i] - begin);
      ++i;
    }
    offset += slice.local_rows.size();
  }
  DBW_DCHECK(i == sorted_rows.size());
  return plan;
}

}  // namespace dbwipes
