#include "dbwipes/storage/schema.h"

namespace dbwipes {

Schema::Schema(std::initializer_list<Field> fields)
    : fields_(fields) {
  RebuildIndex();
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  RebuildIndex();
}

void Schema::RebuildIndex() {
  index_.clear();
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

std::optional<size_t> Schema::FindIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<size_t> Schema::GetIndex(const std::string& name) const {
  auto idx = FindIndex(name);
  if (!idx) {
    return Status::NotFound("no column named '" + name + "' in schema [" +
                            ToString() + "]");
  }
  return *idx;
}

Result<Field> Schema::GetField(const std::string& name) const {
  DBW_ASSIGN_OR_RETURN(size_t idx, GetIndex(name));
  return fields_[idx];
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace dbwipes
