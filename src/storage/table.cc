#include "dbwipes/storage/table.h"

#include <algorithm>
#include <sstream>

#include "dbwipes/common/logging.h"

namespace dbwipes {

Table::Table(Schema schema, std::string name)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  DBW_ASSIGN_OR_RETURN(size_t idx, schema_.GetIndex(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, table '" +
        name_ + "' has " + std::to_string(columns_.size()) + " columns");
  }
  // Validate all cells before mutating any column so a failed append
  // leaves the table unchanged.
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    const DataType t = columns_[i].type();
    const bool ok =
        (t == DataType::kInt64 && v.is_int64()) ||
        (t == DataType::kDouble && v.is_numeric()) ||
        (t == DataType::kString && v.is_string());
    if (!ok) {
      return Status::TypeError("cannot append " + v.ToString() +
                               " to column '" + schema_.field(i).name +
                               "' of type " + DataTypeToString(t));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    DBW_CHECK_OK(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<Value> Table::GetRow(RowId row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

Table Table::Select(const std::vector<RowId>& rows) const {
  Table out(schema_, name_);
  for (RowId r : rows) {
    DBW_DCHECK(r < num_rows_);
    for (size_t c = 0; c < columns_.size(); ++c) {
      out.columns_[c].AppendFrom(columns_[c], r);
    }
    ++out.num_rows_;
  }
  return out;
}

Table Table::Filter(const std::vector<bool>& keep) const {
  DBW_CHECK(keep.size() == num_rows_);
  Table out(schema_, name_);
  for (RowId r = 0; r < num_rows_; ++r) {
    if (!keep[r]) continue;
    for (size_t c = 0; c < columns_.size(); ++c) {
      out.columns_[c].AppendFrom(columns_[c], r);
    }
    ++out.num_rows_;
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  const size_t n = std::min(max_rows, num_rows_);
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  cells.push_back(header);
  for (RowId r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < columns_.size(); ++c) {
      row.push_back(columns_[c].GetValue(r).ToString());
    }
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(schema_.num_fields(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t c = 0; c < cells[i].size(); ++c) {
      if (c > 0) os << "  ";
      os << cells[i][c];
      os << std::string(widths[c] - cells[i][c].size(), ' ');
    }
    os << "\n";
    if (i == 0) {
      size_t total = 0;
      for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c > 0 ? 2 : 0);
      }
      os << std::string(total, '-') << "\n";
    }
  }
  if (n < num_rows_) {
    os << "... (" << (num_rows_ - n) << " more rows)\n";
  }
  return os.str();
}

}  // namespace dbwipes
