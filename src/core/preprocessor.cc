#include "dbwipes/core/preprocessor.h"

#include "dbwipes/core/removal.h"
#include "dbwipes/provenance/influence.h"

namespace dbwipes {

Result<PreprocessResult> Preprocessor::Run(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, bool per_group) {
  PreprocessResult out;

  LineageStore lineage(result, table.num_rows());
  out.suspect_inputs = lineage.BackwardUnion(selected_groups);

  InfluenceOptions opts;
  opts.agg_index = agg_index;
  opts.per_group = per_group;
  const ErrorFn fn = metric.AsErrorFn();
  DBW_ASSIGN_OR_RETURN(out.baseline_error,
                       SelectionError(result, selected_groups, fn, opts));
  {
    std::vector<double> values;
    values.reserve(selected_groups.size());
    for (size_t g : selected_groups) {
      values.push_back(result.AggValue(g, agg_index));
    }
    out.per_group_baseline_error = PerGroupError(metric, values);
  }
  DBW_ASSIGN_OR_RETURN(
      out.influences,
      LeaveOneOutInfluence(table, result, selected_groups, fn, opts));
  return out;
}

}  // namespace dbwipes
