#include "dbwipes/core/service.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/string_util.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/export.h"
#include "dbwipes/core/snapshot.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/expr/shard_cache.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {

namespace {

std::string Error(const std::string& message) {
  return "{\"ok\": false, \"error\": \"" + JsonEscape(message) + "\"}";
}

std::string Error(const Status& status) {
  if (IsTransient(status)) {
    return "{\"ok\": false, \"error\": \"" + JsonEscape(status.ToString()) +
           "\", \"retryable\": true}";
  }
  return Error(status.ToString());
}

std::string Ok() { return "{\"ok\": true}"; }

std::string OkWith(const std::string& key, const std::string& json_value) {
  return "{\"ok\": true, \"" + key + "\": " + json_value + "}";
}

std::string ShedResponse(double retry_after_ms) {
  return "{\"ok\": false, \"error\": \"overloaded: request queue is full\", "
         "\"retryable\": true, \"reason\": \"overloaded\", "
         "\"retry_after_ms\": " +
         FormatDouble(retry_after_ms) + "}";
}

std::string NotRunningResponse() {
  return "{\"ok\": false, \"error\": \"service is not running\", "
         "\"reason\": \"not_running\"}";
}

ServiceOptions WithExplain(ExplainOptions explain) {
  ServiceOptions options;
  options.explain = std::move(explain);
  return options;
}

/// Rebuilds a fresh session's state from its replay record. Anything
/// that no longer applies cleanly (e.g. a metric whose agg_index fell
/// out of range) is skipped rather than failing the whole restore;
/// structural failures (missing table, bad predicate) abort.
Status ReplaySessionState(ManagedSession& ms, const SessionReplay& replay) {
  ms.replay = replay;
  if (replay.original_sql.empty()) return Status::OK();

  Session& s = ms.session;
  DBW_RETURN_NOT_OK(s.ExecuteSql(replay.original_sql));
  for (const Predicate& pred : replay.applied_predicates) {
    DBW_RETURN_NOT_OK(s.ApplyPredicateDirect(pred));
  }
  if (!replay.selected_groups.empty()) {
    DBW_RETURN_NOT_OK(s.SelectResults(replay.selected_groups));
    if (!replay.selected_inputs.empty()) {
      DBW_RETURN_NOT_OK(s.SelectInputs(replay.selected_inputs));
    }
  }
  if (replay.has_metric) {
    auto metric = MetricFromKind(replay.metric_kind, replay.metric_expected);
    if (!metric.ok()) return metric.status();
    Status st = s.SetMetric(*metric, replay.agg_index);
    // A stale agg_index (the snapshot outlived a query change) makes
    // the metric meaningless but the session itself is fine — restore
    // it metric-less instead of refusing the whole snapshot.
    if (!st.ok()) ms.replay.has_metric = false;
  }
  return Status::OK();
}

}  // namespace

Service::Service(std::shared_ptr<Database> db, ExplainOptions options)
    : Service(std::move(db), WithExplain(std::move(options))) {}

Service::Service(std::shared_ptr<Database> db, ServiceOptions options)
    : options_(std::move(options)),
      db_(std::move(db)),
      retry_max_attempts_(options_.retry.max_attempts),
      retry_backoff_ms_(options_.retry.initial_backoff_ms) {
  if (options_.sessions.max_sessions == 0) options_.sessions.max_sessions = 1;
  manager_ =
      std::make_unique<SessionManager>(db_, options_.explain, options_.sessions);
  // Cannot fail: the manager is empty and max_sessions >= 1.
  default_session_ = *manager_->GetOrCreate("main");
}

Service::~Service() { Stop(); }

Session& Service::session() {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return default_session_->session;
}

std::string Service::Execute(const std::string& line) {
  static MetricCounter* const commands =
      MetricsRegistry::Global().GetCounter("service.commands");
  static MetricCounter* const errors =
      MetricsRegistry::Global().GetCounter("service.errors");
  commands->Increment();
  std::string response = ExecuteCommand(line);
  // Every failure path funnels through Error(), whose responses start
  // with this exact prefix.
  if (response.compare(0, 12, "{\"ok\": false") == 0) errors->Increment();
  return response;
}

std::string Service::ExecuteCommand(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return Error("empty command");

  // `@name` routes the command to a named session; bare commands run
  // on the implicit session "main".
  std::string session_name = "main";
  if (cmd[0] == '@') {
    session_name = cmd.substr(1);
    Status st = SessionManager::ValidateName(session_name);
    if (!st.ok()) return Error(st);
    cmd.clear();
    if (!(in >> cmd)) return Error("usage: @<session> <command ...>");
  }

  // --- Process-wide commands (no session involved) ---

  if (cmd == "ping") {
    double ms = 0.0;
    if (in >> ms && ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    return OkWith("pong", "true");
  }

  if (cmd == "retry") return HandleRetry(in);

  if (cmd == "stats") return HandleStats();

  if (cmd == "trace") {
    std::string sub;
    if (!(in >> sub)) return Error("usage: trace on|off|<path>");
    if (sub == "on") {
      Tracer::Global().SetEnabled(true);
      return OkWith("trace", "true");
    }
    if (sub == "off") {
      Tracer::Global().SetEnabled(false);
      return OkWith("trace", "false");
    }
    // Anything else is a dump path.
    Status st = Tracer::Global().WriteJson(sub);
    if (!st.ok()) return Error(st);
    return OkWith("trace_events",
                  std::to_string(Tracer::Global().num_events()));
  }

  if (cmd == "session") return HandleSession(in);

  if (cmd == "snapshot") return HandleSnapshot(in);

  if (cmd == "shards") return HandleShards(in);

  if (cmd == "append") return HandleAppend(in);

  // --- Session commands ---

  std::shared_ptr<ManagedSession> ms;
  {
    // Hold the state lock only long enough to resolve the session:
    // command execution must not block a snapshot load's world swap
    // (in-flight commands finish against the old world, which the
    // shared_ptr keeps alive).
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    auto resolved = manager_->GetOrCreate(session_name);
    if (!resolved.ok()) return Error(resolved.status());
    ms = std::move(*resolved);
  }

  if (cmd == "cancel") {
    // Deliberately does NOT take the session mutex: the whole point is
    // to reach a debug currently holding it.
    std::lock_guard<std::mutex> lock(ms->cancel_mu);
    if (ms->active_cancel != nullptr) {
      ms->active_cancel->Cancel("cancelled by client");
      return OkWith("cancelled", "\"in-flight\"");
    }
    ms->pending_cancel = true;
    return OkWith("cancelled", "\"pending\"");
  }

  std::lock_guard<std::mutex> session_lock(ms->mu);
  return ExecuteSessionCommand(*ms, cmd, in);
}

std::string Service::ExecuteSessionCommand(ManagedSession& ms,
                                           const std::string& cmd,
                                           std::istream& in) {
  Session& session = ms.session;

  auto rest = [&in]() {
    std::string tail;
    std::getline(in, tail);
    return std::string(Trim(tail));
  };

  // Mirrors the session's selection/cleaning state into the replay
  // record so a snapshot taken at any point restores to exactly here.
  auto sync_replay = [&ms, &session]() {
    ms.replay.applied_predicates = session.applied_predicates();
    ms.replay.selected_groups = session.selected_groups();
    ms.replay.selected_inputs = session.selected_inputs();
  };

  if (cmd == "sql") {
    const std::string sql = rest();
    if (sql.empty()) return Error("usage: sql <query>");
    Status st = session.ExecuteSql(sql);
    if (!st.ok()) return Error(st);
    ms.replay.original_sql = sql;
    sync_replay();
    return OkWith("num_groups", std::to_string(session.result().num_groups()));
  }

  if (cmd == "result") {
    if (!session.has_result()) return Error("no query executed");
    return OkWith("result",
                  QueryResultToJson(session.result(), /*pretty=*/false));
  }

  if (cmd == "select_range") {
    std::string agg;
    double lo = 0.0, hi = 0.0;
    if (!(in >> agg >> lo >> hi)) {
      return Error("usage: select_range <agg> <lo> <hi>");
    }
    Status st = session.SelectResultsInRange(agg, lo, hi);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("num_selected",
                  std::to_string(session.selected_groups().size()));
  }

  if (cmd == "select_groups") {
    std::vector<size_t> groups;
    size_t g;
    while (in >> g) groups.push_back(g);
    if (groups.empty()) return Error("usage: select_groups <i> [j ...]");
    Status st = session.SelectResults(groups);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("num_selected",
                  std::to_string(session.selected_groups().size()));
  }

  if (cmd == "inputs_where") {
    const std::string filter = rest();
    if (filter.empty()) return Error("usage: inputs_where <filter>");
    Status st = session.SelectInputsWhere(filter);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("num_inputs",
                  std::to_string(session.selected_inputs().size()));
  }

  if (cmd == "metrics") {
    size_t agg_index = 0;
    in >> agg_index;
    auto suggestions = session.SuggestErrorMetrics(agg_index);
    if (!suggestions.ok()) return Error(suggestions.status());
    std::string arr = "[";
    for (size_t i = 0; i < suggestions->size(); ++i) {
      if (i > 0) arr += ", ";
      arr += "{\"label\": \"" + JsonEscape((*suggestions)[i].label) +
             "\", \"default_expected\": " +
             FormatDouble((*suggestions)[i].default_expected, 17) + "}";
    }
    arr += "]";
    return OkWith("metrics", arr);
  }

  if (cmd == "metric") {
    std::string kind;
    double expected = 0.0;
    if (!(in >> kind >> expected)) {
      return Error("usage: metric <kind> <expected> [agg_index]");
    }
    size_t agg_index = 0;
    in >> agg_index;
    auto metric = MetricFromKind(kind, expected);
    if (!metric.ok()) return Error(metric.status());
    Status st = session.SetMetric(*metric, agg_index);
    if (!st.ok()) return Error(st);
    ms.replay.has_metric = true;
    ms.replay.metric_kind = kind;
    ms.replay.metric_expected = expected;
    ms.replay.agg_index = agg_index;
    return Ok();
  }

  if (cmd == "debug") {
    return RunDebug(ms);
  }

  if (cmd == "set_deadline") {
    double ms_value = 0.0;
    if (!(in >> ms_value)) return Error("usage: set_deadline <ms>");
    ms.settings.deadline_ms = ms_value;
    if (ms_value <= 0.0) {
      return OkWith("deadline_ms", "null");
    }
    return OkWith("deadline_ms", FormatDouble(ms_value, 17));
  }

  if (cmd == "profile") {
    std::string sub;
    if (!(in >> sub)) return Error("usage: profile on|off");
    if (sub == "on") {
      ms.settings.profile_enabled = true;
      return OkWith("profile", "true");
    }
    if (sub == "off") {
      ms.settings.profile_enabled = false;
      return OkWith("profile", "false");
    }
    return Error("unknown profile subcommand '" + sub + "'");
  }

  if (cmd == "clean") {
    size_t index = 0;
    if (!(in >> index)) return Error("usage: clean <i>");
    Status st = session.ApplyPredicate(index);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("sql", "\"" + JsonEscape(session.CurrentSql()) + "\"");
  }

  if (cmd == "clean_where") {
    const std::string text = rest();
    if (text.empty()) return Error("usage: clean_where <predicate>");
    auto pred = ParsePredicate(text);
    if (!pred.ok()) return Error(pred.status());
    Status st = session.ApplyPredicateDirect(*pred);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("sql", "\"" + JsonEscape(session.CurrentSql()) + "\"");
  }

  if (cmd == "undo") {
    Status st = session.UndoLastPredicate();
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("sql", "\"" + JsonEscape(session.CurrentSql()) + "\"");
  }

  if (cmd == "reset") {
    Status st = session.ResetCleaning();
    if (!st.ok()) return Error(st);
    sync_replay();
    return Ok();
  }

  if (cmd == "state") {
    std::string out = "{\"ok\": true";
    out += ", \"has_result\": ";
    out += session.has_result() ? "true" : "false";
    if (session.has_result()) {
      out += ", \"sql\": \"" + JsonEscape(session.CurrentSql()) + "\"";
      out +=
          ", \"num_groups\": " + std::to_string(session.result().num_groups());
    }
    out += ", \"num_selected_groups\": " +
           std::to_string(session.selected_groups().size());
    out += ", \"num_selected_inputs\": " +
           std::to_string(session.selected_inputs().size());
    out += ", \"num_applied_predicates\": " +
           std::to_string(session.applied_predicates().size());
    out += ", \"has_explanation\": ";
    out += session.has_explanation() ? "true" : "false";
    out += "}";
    return out;
  }

  return Error("unknown command '" + cmd + "'");
}

RetryPolicy Service::CurrentRetryPolicy() const {
  RetryPolicy policy = options_.retry;
  policy.max_attempts = retry_max_attempts_.load(std::memory_order_relaxed);
  policy.initial_backoff_ms =
      retry_backoff_ms_.load(std::memory_order_relaxed);
  return policy;
}

std::string Service::HandleRetry(std::istream& in) {
  std::string first;
  if (!(in >> first)) {
    return Error("usage: retry <max_attempts> [initial_backoff_ms] | retry off");
  }
  if (first == "off") {
    retry_max_attempts_.store(1, std::memory_order_relaxed);
    return OkWith("retry", "{\"max_attempts\": 1}");
  }
  std::istringstream num(first);
  long long max_attempts = 0;
  if (!(num >> max_attempts) || max_attempts < 1) {
    return Error("retry: max_attempts must be a positive integer, got '" +
                 first + "'");
  }
  double backoff_ms = retry_backoff_ms_.load(std::memory_order_relaxed);
  if (in >> backoff_ms && backoff_ms < 0.0) {
    return Error("retry: initial_backoff_ms must be >= 0");
  }
  retry_max_attempts_.store(static_cast<size_t>(max_attempts),
                            std::memory_order_relaxed);
  retry_backoff_ms_.store(backoff_ms, std::memory_order_relaxed);
  return OkWith("retry",
                "{\"max_attempts\": " + std::to_string(max_attempts) +
                    ", \"initial_backoff_ms\": " + FormatDouble(backoff_ms) +
                    "}");
}

std::string Service::HandleSession(std::istream& in) {
  std::string sub;
  if (!(in >> sub)) return Error("usage: session list|drop|evict");

  std::shared_lock<std::shared_mutex> lock(state_mu_);

  if (sub == "list") {
    std::string arr = "[";
    bool first = true;
    for (const std::string& name : manager_->Names()) {
      if (!first) arr += ", ";
      first = false;
      arr += "{\"name\": \"" + JsonEscape(name) +
             "\", \"idle_ms\": " + FormatDouble(manager_->IdleMs(name)) + "}";
    }
    arr += "]";
    return OkWith("sessions", arr);
  }

  if (sub == "drop") {
    std::string name;
    if (!(in >> name)) return Error("usage: session drop <name>");
    if (name == "main") return Error("cannot drop the default session 'main'");
    Status st = manager_->Drop(name);
    if (!st.ok()) return Error(st);
    return OkWith("dropped", "\"" + JsonEscape(name) + "\"");
  }

  if (sub == "evict") {
    double idle_ms = manager_->options().idle_timeout_ms;
    in >> idle_ms;
    if (idle_ms <= 0.0) {
      return Error("session evict: idle_ms must be > 0 (or configure "
                   "an idle timeout)");
    }
    // Holding main's mutex marks it busy, so eviction skips it and the
    // default session handle can never dangle.
    std::lock_guard<std::mutex> keep_main(default_session_->mu);
    const size_t evicted = manager_->EvictIdleOlderThan(idle_ms);
    return OkWith("evicted", std::to_string(evicted));
  }

  return Error("unknown session subcommand '" + sub + "'");
}

std::string Service::HandleStats() {
  std::shared_ptr<Database> db;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
  }
  // Per-table shard telemetry rides along with the metrics snapshot so
  // a dashboard sees layout, occupancy, and cache warmth in one call.
  std::string shards = "{";
  bool first_table = true;
  for (const std::string& name : db->ShardedNames()) {
    auto set = db->GetShardSet(name);
    if (set == nullptr) continue;
    auto lease = set->ReadLease();
    if (!first_table) shards += ", ";
    first_table = false;
    shards += "\"" + JsonEscape(name) +
              "\": {\"count\": " + std::to_string(set->num_shards()) +
              ", \"rows\": [";
    bool first = true;
    for (size_t rows : set->ShardRowCounts()) {
      if (!first) shards += ", ";
      first = false;
      shards += std::to_string(rows);
    }
    shards += "], \"cached_clauses\": [";
    first = true;
    for (size_t clauses : ShardEngineCache::For(*set)->CachedClausesPerShard()) {
      if (!first) shards += ", ";
      first = false;
      shards += std::to_string(clauses);
    }
    shards += "], \"cached_programs\": [";
    first = true;
    for (size_t programs :
         ShardEngineCache::For(*set)->CachedProgramsPerShard()) {
      if (!first) shards += ", ";
      first = false;
      shards += std::to_string(programs);
    }
    shards += "], \"appends\": " + std::to_string(set->appends()) + "}";
  }
  shards += "}";
  return "{\"ok\": true, \"stats\": " +
         MetricsRegistry::Global().SnapshotJson(/*pretty=*/false) +
         ", \"shards\": " + shards + "}";
}

std::string Service::HandleShards(std::istream& in) {
  static MetricCounter* const reshards =
      MetricsRegistry::Global().GetCounter("service.reshards");

  std::string table_name;
  std::string count_text;
  if (!(in >> table_name >> count_text)) {
    return Error("usage: shards <table> <count>");
  }
  // A malformed count must come back as a well-formed JSON error, not
  // a zero-shard layout: parse strictly (no trailing junk, no signs
  // smuggled through istream's size_t wraparound).
  std::istringstream num(count_text);
  long long count = 0;
  char trailing = '\0';
  if (!(num >> count) || num >> trailing || count < 1 ||
      static_cast<unsigned long long>(count) > ShardSet::kMaxShards) {
    return Error("shards: count must be an integer in [1, " +
                 std::to_string(ShardSet::kMaxShards) + "], got '" +
                 count_text + "'");
  }

  std::shared_ptr<Database> db;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
  }
  auto table = db->GetTable(table_name);
  if (!table.ok()) return Error(table.status());
  auto set = ShardSet::Create(**table, static_cast<size_t>(count));
  if (!set.ok()) return Error(set.status());
  db->RegisterShardSet(table_name, *set);
  reshards->Increment();

  std::string rows = "[";
  bool first = true;
  for (size_t r : (*set)->ShardRowCounts()) {
    if (!first) rows += ", ";
    first = false;
    rows += std::to_string(r);
  }
  rows += "]";
  return "{\"ok\": true, \"table\": \"" + JsonEscape(table_name) +
         "\", \"shards\": " + std::to_string(count) + ", \"rows\": " + rows +
         "}";
}

std::string Service::HandleAppend(std::istream& in) {
  std::string table_name;
  if (!(in >> table_name)) {
    return Error("usage: append <table> <v1> [v2 ...] (`null` for NULL)");
  }
  std::shared_ptr<Database> db;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
  }
  auto set = db->GetShardSet(table_name);
  if (set == nullptr) {
    // Plain tables are immutable by design; only a ShardSet has a tail
    // shard to route the row to.
    auto table = db->GetTable(table_name);
    if (!table.ok()) return Error(table.status());
    return Error("append: table '" + table_name +
                 "' is not sharded; run `shards " + table_name +
                 " <count>` first");
  }

  const Schema& schema = set->schema();
  std::vector<Value> values;
  values.reserve(schema.num_fields());
  for (const Field& field : schema.fields()) {
    std::string token;
    if (!(in >> token)) {
      return Error("append: expected " + std::to_string(schema.num_fields()) +
                   " values (" + schema.ToString() + "), got " +
                   std::to_string(values.size()));
    }
    if (token == "null") {
      values.emplace_back();
      continue;
    }
    if (field.type == DataType::kString) {
      values.emplace_back(std::move(token));
      continue;
    }
    std::istringstream num(token);
    char trailing = '\0';
    if (field.type == DataType::kInt64) {
      int64_t v = 0;
      if (!(num >> v) || num >> trailing) {
        return Error("append: column '" + field.name + "' expects int64, got '" +
                     token + "'");
      }
      values.emplace_back(v);
    } else {
      double v = 0.0;
      if (!(num >> v) || num >> trailing) {
        return Error("append: column '" + field.name +
                     "' expects double, got '" + token + "'");
      }
      values.emplace_back(v);
    }
  }
  std::string extra;
  if (in >> extra) {
    return Error("append: too many values (schema is " + schema.ToString() +
                 ")");
  }

  Status st = set->Append(values);
  if (!st.ok()) return Error(st);
  auto lease = set->ReadLease();  // concurrent appenders may still be running
  return "{\"ok\": true, \"rows\": " + std::to_string(set->num_rows()) +
         ", \"shard\": " + std::to_string(set->num_shards() - 1) + "}";
}

std::string Service::HandleSnapshot(std::istream& in) {
  static MetricCounter* const saves =
      MetricsRegistry::Global().GetCounter("service.snapshot_saves");
  static MetricCounter* const loads =
      MetricsRegistry::Global().GetCounter("service.snapshot_loads");

  std::string sub;
  std::string path;
  if (!(in >> sub >> path)) return Error("usage: snapshot save|load <path>");

  if (sub == "save") {
    ServiceSnapshot snapshot;
    std::shared_ptr<Database> db;
    std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> live;
    {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      db = db_;
      for (const std::string& name : manager_->Names()) {
        auto ms = manager_->Find(name);
        if (ms != nullptr) live.emplace_back(name, std::move(ms));
      }
    }
    for (auto& [name, ms] : live) {
      // Per-session lock: each session is serialized mid-command-free
      // into the snapshot (sessions are independent, so cross-session
      // interleaving cannot produce a torn state). Sessions come
      // BEFORE the shard leases below: a session command holds its
      // mutex while taking a shard read lease, so acquiring in the
      // opposite order here would be a lock-order inversion.
      std::lock_guard<std::mutex> lock(ms->mu);
      snapshot.sessions.push_back({name, ms->settings, ms->replay});
    }
    // Read-lease every sharded table BEFORE serializing so an append
    // cannot tear a fused table mid-save; the leases stay held through
    // WriteSnapshot. Only the boundaries are persisted — the restore
    // rebuilds shard contents (and dictionaries) from the fused rows.
    std::vector<std::shared_ptr<ShardSet>> sets;
    std::vector<std::shared_lock<std::shared_mutex>> leases;
    for (const std::string& name : db->ShardedNames()) {
      auto set = db->GetShardSet(name);
      if (set == nullptr) continue;
      leases.push_back(set->ReadLease());
      ServiceSnapshot::ShardLayout layout;
      layout.table = name;
      for (size_t rows : set->ShardRowCounts()) {
        layout.shard_rows.push_back(rows);
      }
      snapshot.shard_layouts.push_back(std::move(layout));
      sets.push_back(std::move(set));
    }
    for (const std::string& name : db->TableNames()) {
      auto table = db->GetTable(name);
      if (table.ok()) snapshot.tables.emplace_back(name, *table);
    }
    Status st = WriteSnapshot(path, snapshot);
    if (!st.ok()) return Error(st);
    saves->Increment();
    return "{\"ok\": true, \"path\": \"" + JsonEscape(path) +
           "\", \"tables\": " + std::to_string(snapshot.tables.size()) +
           ", \"sharded\": " + std::to_string(snapshot.shard_layouts.size()) +
           ", \"sessions\": " + std::to_string(snapshot.sessions.size()) + "}";
  }

  if (sub == "load") {
    // Validate and rebuild the whole world off to the side; the live
    // service is untouched until the final swap, so any failure —
    // corrupt file, missing table, unreplayable state — leaves the
    // prior state exactly as it was.
    auto snapshot = ReadSnapshot(path);
    if (!snapshot.ok()) return Error(snapshot.status());

    auto db = std::make_shared<Database>();
    for (const auto& [name, table] : snapshot->tables) {
      db->RegisterTable(name, table);
    }
    // Re-shard after ALL tables are registered (RegisterTable clears
    // any shard layout for its name). CreateWithRows re-derives every
    // shard — contents, dictionaries, codes — from the fused rows, so
    // the restored clause bitmaps match the pre-crash ones bit for bit.
    for (const ServiceSnapshot::ShardLayout& layout : snapshot->shard_layouts) {
      auto table = db->GetTable(layout.table);
      if (!table.ok()) {
        return Error("snapshot load: shard layout references unknown table '" +
                     layout.table + "'");
      }
      std::vector<size_t> shard_rows(layout.shard_rows.begin(),
                                     layout.shard_rows.end());
      auto set = ShardSet::CreateWithRows(**table, shard_rows);
      if (!set.ok()) {
        return Error("snapshot load: cannot rebuild shards for table '" +
                     layout.table + "': " + set.status().ToString());
      }
      db->RegisterShardSet(layout.table, *set);
    }
    auto manager = std::make_unique<SessionManager>(db, options_.explain,
                                                    options_.sessions);
    for (const auto& state : snapshot->sessions) {
      auto ms = manager->GetOrCreate(state.name);
      if (!ms.ok()) {
        return Error("snapshot load: cannot recreate session '" + state.name +
                     "': " + ms.status().ToString());
      }
      (*ms)->settings = state.settings;
      Status st = ReplaySessionState(**ms, state.replay);
      if (!st.ok()) {
        return Error("snapshot load: replay failed for session '" +
                     state.name + "': " + st.ToString());
      }
    }
    auto main = manager->GetOrCreate("main");
    if (!main.ok()) return Error(main.status());

    {
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      db_ = std::move(db);
      manager_ = std::move(manager);
      default_session_ = std::move(*main);
    }
    loads->Increment();
    return "{\"ok\": true, \"tables\": " +
           std::to_string(snapshot->tables.size()) +
           ", \"sharded\": " + std::to_string(snapshot->shard_layouts.size()) +
           ", \"sessions\": " + std::to_string(snapshot->sessions.size()) + "}";
  }

  return Error("unknown snapshot subcommand '" + sub + "'");
}

std::string Service::RunDebug(ManagedSession& ms) {
  DBW_TRACE_SPAN("service/debug");
  static MetricCounter* const retries =
      MetricsRegistry::Global().GetCounter("service.retries");

  auto source = std::make_shared<CancellationSource>();
  {
    std::lock_guard<std::mutex> lock(ms.cancel_mu);
    if (ms.pending_cancel) {
      ms.pending_cancel = false;
      source->Cancel("cancelled before start");
    }
    ms.active_cancel = source;
  }

  const RetryPolicy policy = CurrentRetryPolicy();
  size_t attempts = 1;
  auto exp = RetryTransient(
      policy,
      [&]() -> Result<Explanation> {
        ExecContext ctx;
        ctx.token = source->token();
        if (ms.settings.deadline_ms > 0.0) {
          // Fresh deadline per attempt: the budget is per-run, not
          // per-request, so a retried run gets its full allowance.
          ctx.deadline = Deadline::After(ms.settings.deadline_ms);
        }
        ctx.faults = faults_;
        ctx.budget = budget_;
        return ms.session.Debug(ctx);
      },
      &attempts);

  {
    std::lock_guard<std::mutex> lock(ms.cancel_mu);
    if (ms.active_cancel == source) ms.active_cancel.reset();
  }

  if (attempts > 1) retries->Increment(attempts - 1);
  if (!exp.ok()) return Error(exp.status());
  exp->profile.attempts = attempts;

  std::string profile_field;
  if (ms.settings.profile_enabled) {
    profile_field = ", \"profile\": " +
                    ExplainProfileToJson(exp->profile, /*pretty=*/false);
  }
  if (exp->partial) {
    return "{\"ok\": true, \"partial\": true, \"reason\": \"" +
           JsonEscape(exp->partial_reason) + "\", \"explanation\": " +
           ExplanationToJson(*exp, /*pretty=*/false) + profile_field + "}";
  }
  return "{\"ok\": true, \"explanation\": " +
         ExplanationToJson(*exp, /*pretty=*/false) + profile_field + "}";
}

// --- Admission queue ---

Status Service::Start() {
  if (options_.num_workers == 0) {
    return Status::InvalidArgument(
        "Start(): ServiceOptions.num_workers is 0 (synchronous mode)");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (running_.load(std::memory_order_acquire)) return Status::OK();
    stopping_ = false;
    running_.store(true, std::memory_order_release);
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&Service::WorkerLoop, this);
  }
  return Status::OK();
}

void Service::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_.load(std::memory_order_acquire) && workers_.empty()) return;
    stopping_ = true;
    running_.store(false, std::memory_order_release);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(queue_mu_);
  stopping_ = false;
}

std::future<std::string> Service::Submit(std::string line) {
  static MetricCounter* const submitted =
      MetricsRegistry::Global().GetCounter("service.submitted");
  static MetricCounter* const shed =
      MetricsRegistry::Global().GetCounter("service.shed");
  static MetricGauge* const depth =
      MetricsRegistry::Global().GetGauge("service.queue_depth");

  submitted->Increment();
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();

  std::lock_guard<std::mutex> lock(queue_mu_);
  if (!running_.load(std::memory_order_acquire) || stopping_) {
    promise.set_value(NotRunningResponse());
    return future;
  }
  if (queue_.size() >= options_.queue_capacity ||
      queued_bytes_ + line.size() > options_.queue_memory_watermark_bytes) {
    // Load shedding: reject fast and explicitly instead of queueing
    // unboundedly — the client gets a well-formed retryable error in
    // microseconds, not a timeout in seconds.
    shed->Increment();
    promise.set_value(ShedResponse(options_.shed_retry_after_ms));
    return future;
  }
  queued_bytes_ += line.size();
  queue_.push_back(QueuedRequest{std::move(line), std::move(promise),
                                 std::chrono::steady_clock::now()});
  depth->Set(static_cast<int64_t>(queue_.size()));
  queue_cv_.notify_one();
  return future;
}

void Service::WorkerLoop() {
  static MetricGauge* const depth =
      MetricsRegistry::Global().GetGauge("service.queue_depth");
  static MetricHistogram* const request_ms =
      MetricsRegistry::Global().GetHistogram("service.request_ms");

  while (true) {
    QueuedRequest request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ && empty: the queue has fully drained — every
        // accepted request got a response before shutdown.
        return;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= request.line.size();
      depth->Set(static_cast<int64_t>(queue_.size()));
    }
    std::string response = Execute(request.line);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - request.enqueued)
            .count();
    request_ms->Observe(elapsed_ms);
    request.promise.set_value(std::move(response));
  }
}

}  // namespace dbwipes
