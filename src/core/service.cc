#include "dbwipes/core/service.h"

#include <sstream>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/string_util.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/export.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {

namespace {

std::string Error(const std::string& message) {
  return "{\"ok\": false, \"error\": \"" + JsonEscape(message) + "\"}";
}

std::string Error(const Status& status) { return Error(status.ToString()); }

std::string Ok() { return "{\"ok\": true}"; }

std::string OkWith(const std::string& key, const std::string& json_value) {
  return "{\"ok\": true, \"" + key + "\": " + json_value + "}";
}

/// Builds a metric from its wire name.
Result<ErrorMetricPtr> MakeMetric(const std::string& kind, double expected) {
  if (kind == "too_high") return TooHigh(expected);
  if (kind == "too_low") return TooLow(expected);
  if (kind == "not_equal") return NotEqual(expected);
  if (kind == "total_above") return TotalAbove(expected);
  if (kind == "total_below") return TotalBelow(expected);
  return Status::InvalidArgument("unknown metric kind '" + kind + "'");
}

}  // namespace

std::string Service::Execute(const std::string& line) {
  static MetricCounter* const commands =
      MetricsRegistry::Global().GetCounter("service.commands");
  static MetricCounter* const errors =
      MetricsRegistry::Global().GetCounter("service.errors");
  commands->Increment();
  std::string response = ExecuteCommand(line);
  // Every failure path funnels through Error(), whose responses start
  // with this exact prefix.
  if (response.compare(0, 12, "{\"ok\": false") == 0) errors->Increment();
  return response;
}

std::string Service::ExecuteCommand(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return Error("empty command");

  auto rest = [&in]() {
    std::string tail;
    std::getline(in, tail);
    return std::string(Trim(tail));
  };

  if (cmd == "sql") {
    const std::string sql = rest();
    if (sql.empty()) return Error("usage: sql <query>");
    Status st = session_.ExecuteSql(sql);
    if (!st.ok()) return Error(st);
    return OkWith("num_groups",
                  std::to_string(session_.result().num_groups()));
  }

  if (cmd == "result") {
    if (!session_.has_result()) return Error("no query executed");
    return OkWith("result",
                  QueryResultToJson(session_.result(), /*pretty=*/false));
  }

  if (cmd == "select_range") {
    std::string agg;
    double lo = 0.0, hi = 0.0;
    if (!(in >> agg >> lo >> hi)) {
      return Error("usage: select_range <agg> <lo> <hi>");
    }
    Status st = session_.SelectResultsInRange(agg, lo, hi);
    if (!st.ok()) return Error(st);
    return OkWith("num_selected",
                  std::to_string(session_.selected_groups().size()));
  }

  if (cmd == "select_groups") {
    std::vector<size_t> groups;
    size_t g;
    while (in >> g) groups.push_back(g);
    if (groups.empty()) return Error("usage: select_groups <i> [j ...]");
    Status st = session_.SelectResults(groups);
    if (!st.ok()) return Error(st);
    return OkWith("num_selected",
                  std::to_string(session_.selected_groups().size()));
  }

  if (cmd == "inputs_where") {
    const std::string filter = rest();
    if (filter.empty()) return Error("usage: inputs_where <filter>");
    Status st = session_.SelectInputsWhere(filter);
    if (!st.ok()) return Error(st);
    return OkWith("num_inputs",
                  std::to_string(session_.selected_inputs().size()));
  }

  if (cmd == "metrics") {
    size_t agg_index = 0;
    in >> agg_index;
    auto suggestions = session_.SuggestErrorMetrics(agg_index);
    if (!suggestions.ok()) return Error(suggestions.status());
    std::string arr = "[";
    for (size_t i = 0; i < suggestions->size(); ++i) {
      if (i > 0) arr += ", ";
      arr += "{\"label\": \"" + JsonEscape((*suggestions)[i].label) +
             "\", \"default_expected\": " +
             FormatDouble((*suggestions)[i].default_expected, 17) + "}";
    }
    arr += "]";
    return OkWith("metrics", arr);
  }

  if (cmd == "metric") {
    std::string kind;
    double expected = 0.0;
    if (!(in >> kind >> expected)) {
      return Error("usage: metric <kind> <expected> [agg_index]");
    }
    size_t agg_index = 0;
    in >> agg_index;
    auto metric = MakeMetric(kind, expected);
    if (!metric.ok()) return Error(metric.status());
    Status st = session_.SetMetric(*metric, agg_index);
    if (!st.ok()) return Error(st);
    return Ok();
  }

  if (cmd == "debug") {
    return RunDebug();
  }

  if (cmd == "set_deadline") {
    double ms = 0.0;
    if (!(in >> ms)) return Error("usage: set_deadline <ms>");
    deadline_ms_ = ms;
    if (ms <= 0.0) {
      return OkWith("deadline_ms", "null");
    }
    return OkWith("deadline_ms", FormatDouble(ms, 17));
  }

  if (cmd == "cancel") {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    if (active_cancel_ != nullptr) {
      active_cancel_->Cancel("cancelled by client");
      return OkWith("cancelled", "\"in-flight\"");
    }
    pending_cancel_ = true;
    return OkWith("cancelled", "\"pending\"");
  }

  if (cmd == "clean") {
    size_t index = 0;
    if (!(in >> index)) return Error("usage: clean <i>");
    Status st = session_.ApplyPredicate(index);
    if (!st.ok()) return Error(st);
    return OkWith("sql", "\"" + JsonEscape(session_.CurrentSql()) + "\"");
  }

  if (cmd == "clean_where") {
    const std::string text = rest();
    if (text.empty()) return Error("usage: clean_where <predicate>");
    auto pred = ParsePredicate(text);
    if (!pred.ok()) return Error(pred.status());
    Status st = session_.ApplyPredicateDirect(*pred);
    if (!st.ok()) return Error(st);
    return OkWith("sql", "\"" + JsonEscape(session_.CurrentSql()) + "\"");
  }

  if (cmd == "undo") {
    Status st = session_.UndoLastPredicate();
    if (!st.ok()) return Error(st);
    return OkWith("sql", "\"" + JsonEscape(session_.CurrentSql()) + "\"");
  }

  if (cmd == "reset") {
    Status st = session_.ResetCleaning();
    if (!st.ok()) return Error(st);
    return Ok();
  }

  if (cmd == "state") {
    std::string out = "{\"ok\": true";
    out += ", \"has_result\": ";
    out += session_.has_result() ? "true" : "false";
    if (session_.has_result()) {
      out += ", \"sql\": \"" + JsonEscape(session_.CurrentSql()) + "\"";
      out += ", \"num_groups\": " +
             std::to_string(session_.result().num_groups());
    }
    out += ", \"num_selected_groups\": " +
           std::to_string(session_.selected_groups().size());
    out += ", \"num_selected_inputs\": " +
           std::to_string(session_.selected_inputs().size());
    out += ", \"num_applied_predicates\": " +
           std::to_string(session_.applied_predicates().size());
    out += ", \"has_explanation\": ";
    out += session_.has_explanation() ? "true" : "false";
    out += "}";
    return out;
  }

  if (cmd == "stats") {
    return OkWith("stats",
                  MetricsRegistry::Global().SnapshotJson(/*pretty=*/false));
  }

  if (cmd == "profile") {
    std::string sub;
    if (!(in >> sub)) return Error("usage: profile on|off");
    if (sub == "on") {
      profile_enabled_ = true;
      return OkWith("profile", "true");
    }
    if (sub == "off") {
      profile_enabled_ = false;
      return OkWith("profile", "false");
    }
    return Error("unknown profile subcommand '" + sub + "'");
  }

  if (cmd == "trace") {
    std::string sub;
    if (!(in >> sub)) return Error("usage: trace on|off|<path>");
    if (sub == "on") {
      Tracer::Global().SetEnabled(true);
      return OkWith("trace", "true");
    }
    if (sub == "off") {
      Tracer::Global().SetEnabled(false);
      return OkWith("trace", "false");
    }
    // Anything else is a dump path.
    Status st = Tracer::Global().WriteJson(sub);
    if (!st.ok()) return Error(st);
    return OkWith("trace_events",
                  std::to_string(Tracer::Global().num_events()));
  }

  return Error("unknown command '" + cmd + "'");
}

std::string Service::RunDebug() {
  DBW_TRACE_SPAN("service/debug");
  auto source = std::make_shared<CancellationSource>();
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    if (pending_cancel_) {
      pending_cancel_ = false;
      source->Cancel("cancelled before start");
    }
    active_cancel_ = source;
  }

  ExecContext ctx;
  ctx.token = source->token();
  if (deadline_ms_ > 0.0) ctx.deadline = Deadline::After(deadline_ms_);
  ctx.faults = faults_;
  ctx.budget = budget_;
  auto exp = session_.Debug(ctx);

  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    if (active_cancel_ == source) active_cancel_.reset();
  }

  if (!exp.ok()) return Error(exp.status());
  std::string profile_field;
  if (profile_enabled_) {
    profile_field =
        ", \"profile\": " + ExplainProfileToJson(exp->profile,
                                                 /*pretty=*/false);
  }
  if (exp->partial) {
    return "{\"ok\": true, \"partial\": true, \"reason\": \"" +
           JsonEscape(exp->partial_reason) +
           "\", \"explanation\": " +
           ExplanationToJson(*exp, /*pretty=*/false) + profile_field + "}";
  }
  return "{\"ok\": true, \"explanation\": " +
         ExplanationToJson(*exp, /*pretty=*/false) + profile_field + "}";
}

}  // namespace dbwipes
