#include "dbwipes/core/service.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/string_util.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/export.h"
#include "dbwipes/core/snapshot.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/expr/shard_cache.h"
#include "dbwipes/replication/replication.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {

namespace {

std::string Error(const std::string& message) {
  return "{\"ok\": false, \"error\": \"" + JsonEscape(message) + "\"}";
}

std::string Error(const Status& status) {
  if (IsTransient(status)) {
    return "{\"ok\": false, \"error\": \"" + JsonEscape(status.ToString()) +
           "\", \"retryable\": true}";
  }
  return Error(status.ToString());
}

std::string Ok() { return "{\"ok\": true}"; }

std::string OkWith(const std::string& key, const std::string& json_value) {
  return "{\"ok\": true, \"" + key + "\": " + json_value + "}";
}

bool IsOkResponse(const std::string& response) {
  return response.compare(0, 11, "{\"ok\": true") == 0;
}

/// Inserts `, "rid": N` right after the `{"ok": true` / `{"ok": false`
/// prefix, so every response carries its request id while the prefix
/// checks clients rely on (IsOkResponse, bench MustOk) keep matching.
void StampRid(std::string* response, uint64_t rid) {
  if (rid == 0) return;
  size_t offset = 0;
  if (response->compare(0, 11, "{\"ok\": true") == 0) {
    offset = 11;
  } else if (response->compare(0, 12, "{\"ok\": false") == 0) {
    offset = 12;
  } else {
    return;  // not a JSON response envelope; leave it alone
  }
  response->insert(offset, ", \"rid\": " + std::to_string(rid));
}

/// The command name a human would grep for: the first token, plus the
/// routed command when the first token is an `@session` route.
std::string CommandLabel(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (!cmd.empty() && cmd[0] == '@') {
    std::string routed;
    if (in >> routed) cmd += " " + routed;
  }
  return cmd;
}

/// Per-thread summary of the last RunDebug, consumed by the slow-log
/// writer so a slow `debug` logs its stage breakdown and cache hits
/// without re-threading the profile through every return path.
struct LastDebugSummary {
  uint64_t rid = 0;
  std::string stages_json;
  uint64_t cache_hits = 0;
};
thread_local LastDebugSummary tl_last_debug;

/// Session-scope commands the WAL records: everything that mutates the
/// session's durable state (query, selections, metric, cleaning,
/// settings). Reads (result/state/metrics), `debug` (recomputable),
/// and `cancel` are not logged.
bool IsLoggedSessionCommand(const std::string& cmd) {
  return cmd == "sql" || cmd == "select_range" || cmd == "select_groups" ||
         cmd == "inputs_where" || cmd == "metric" || cmd == "clean" ||
         cmd == "clean_where" || cmd == "undo" || cmd == "reset" ||
         cmd == "set_deadline" || cmd == "profile";
}

/// Reads the next token without consuming it (for commands whose
/// subcommand decides gating/logging before the handler parses it).
std::string PeekToken(std::istream& in) {
  const std::streampos pos = in.tellg();
  std::string token;
  in >> token;
  in.clear();
  in.seekg(pos);
  return token;
}

std::string ShedResponse(double retry_after_ms) {
  return "{\"ok\": false, \"error\": \"overloaded: request queue is full\", "
         "\"retryable\": true, \"reason\": \"overloaded\", "
         "\"retry_after_ms\": " +
         FormatDouble(retry_after_ms) + "}";
}

std::string NotRunningResponse() {
  return "{\"ok\": false, \"error\": \"service is not running\", "
         "\"reason\": \"not_running\"}";
}

ServiceOptions WithExplain(ExplainOptions explain) {
  ServiceOptions options;
  options.explain = std::move(explain);
  return options;
}

/// Rebuilds a fresh session's state from its replay record. Anything
/// that no longer applies cleanly (e.g. a metric whose agg_index fell
/// out of range) is skipped rather than failing the whole restore;
/// structural failures (missing table, bad predicate) abort.
Status ReplaySessionState(ManagedSession& ms, const SessionReplay& replay) {
  ms.replay = replay;
  if (replay.original_sql.empty()) return Status::OK();

  Session& s = ms.session;
  DBW_RETURN_NOT_OK(s.ExecuteSql(replay.original_sql));
  for (const Predicate& pred : replay.applied_predicates) {
    DBW_RETURN_NOT_OK(s.ApplyPredicateDirect(pred));
  }
  if (!replay.selected_groups.empty()) {
    DBW_RETURN_NOT_OK(s.SelectResults(replay.selected_groups));
    if (!replay.selected_inputs.empty()) {
      DBW_RETURN_NOT_OK(s.SelectInputs(replay.selected_inputs));
    }
  }
  if (replay.has_metric) {
    auto metric = MetricFromKind(replay.metric_kind, replay.metric_expected);
    if (!metric.ok()) return metric.status();
    Status st = s.SetMetric(*metric, replay.agg_index);
    // A stale agg_index (the snapshot outlived a query change) makes
    // the metric meaningless but the session itself is fine — restore
    // it metric-less instead of refusing the whole snapshot.
    if (!st.ok()) ms.replay.has_metric = false;
  }
  return Status::OK();
}

}  // namespace

Service::Service(std::shared_ptr<Database> db, ExplainOptions options)
    : Service(std::move(db), WithExplain(std::move(options))) {}

Service::Service(std::shared_ptr<Database> db, ServiceOptions options)
    : options_(std::move(options)),
      db_(std::move(db)),
      retry_max_attempts_(options_.retry.max_attempts),
      retry_backoff_ms_(options_.retry.initial_backoff_ms),
      history_(options_.telemetry.history_points) {
  if (options_.sessions.max_sessions == 0) options_.sessions.max_sessions = 1;
  manager_ =
      std::make_unique<SessionManager>(db_, options_.explain, options_.sessions);
  // Cannot fail: the manager is empty and max_sessions >= 1.
  default_session_ = *manager_->GetOrCreate("main");

  // Slow-log threshold: an explicit option wins; otherwise the
  // DBWIPES_SLOW_MS environment variable; otherwise disabled.
  slow_threshold_ms_ = options_.telemetry.slow_ms;
  if (slow_threshold_ms_ < 0.0) {
    if (const char* env = std::getenv("DBWIPES_SLOW_MS")) {
      char* end = nullptr;
      const double parsed = std::strtod(env, &end);
      if (end != env && parsed >= 0.0) slow_threshold_ms_ = parsed;
    }
  }

  if (!options_.wal.dir.empty()) {
    // Recovery happens here, before the first command can arrive:
    // latest valid snapshot (if any) + WAL replay. The constructor
    // cannot fail, so an unrecoverable log surfaces through
    // `wal status` (last_error) with the WAL left off.
    std::unique_lock<std::shared_mutex> gate(wal_gate_);
    gate_owner_.store(std::this_thread::get_id(), std::memory_order_release);
    Status st = EnableWalLocked(options_.wal.dir);
    gate_owner_.store(std::thread::id(), std::memory_order_release);
    if (!st.ok()) wal_last_error_ = "wal enable failed: " + st.ToString();
  }

  // Replication endpoints configured at construction. Failures are
  // non-fatal (constructor cannot fail) and surface in
  // `replication status` as last_error.
  if (options_.replication.listen_port >= 0) {
    std::lock_guard<std::mutex> repl(repl_mu_);
    Status st = StartReplicationListenLocked(options_.replication.listen_port);
    if (!st.ok()) repl_last_error_ = "replicate listen: " + st.ToString();
  }
  if (!options_.replication.follow.empty()) {
    std::lock_guard<std::mutex> repl(repl_mu_);
    Status st = StartReplicationFollowLocked(options_.replication.follow);
    if (!st.ok()) repl_last_error_ = "replicate from: " + st.ToString();
  }

  StartTelemetryThreads();
}

Service::~Service() {
  // Replication first: its threads call back into Execute/checkpoint
  // machinery, so they must be gone before anything else winds down.
  StopReplication();
  StopTelemetryThreads();
  Stop();
}

Session& Service::session() {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return default_session_->session;
}

std::string Service::Execute(const std::string& line) {
  return ExecuteWithRid(line, NextRequestId());
}

std::string Service::ExecuteWithRid(const std::string& line, uint64_t rid) {
  static MetricCounter* const commands =
      MetricsRegistry::Global().GetCounter("service.commands");
  static MetricCounter* const errors =
      MetricsRegistry::Global().GetCounter("service.errors");
  commands->Increment();
  // Bind the id to this thread for the command's whole run: the tracer,
  // logger, profile, and WAL all read it from here.
  RequestScope scope(rid);
  const double start_ms = MonotonicMillis();
  TrackInflightBegin(rid, line, start_ms);
  std::string response = ExecuteCommand(line);
  TrackInflightEnd(rid);
  // Every failure path funnels through Error(), whose responses start
  // with this exact prefix.
  if (response.compare(0, 12, "{\"ok\": false") == 0) errors->Increment();
  StampRid(&response, rid);
  MaybeSlowLog(rid, line, MonotonicMillis() - start_ms, response);
  MaybeAutoCheckpoint();
  return response;
}

std::string Service::ExecuteCommand(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return Error("empty command");

  // `@name` routes the command to a named session; bare commands run
  // on the implicit session "main".
  std::string session_name = "main";
  if (cmd[0] == '@') {
    session_name = cmd.substr(1);
    Status st = SessionManager::ValidateName(session_name);
    if (!st.ok()) return Error(st);
    cmd.clear();
    if (!(in >> cmd)) return Error("usage: @<session> <command ...>");
  }

  // --- Replication role & commands (DESIGN.md §5l) ---

  if (cmd == "replicate") return HandleReplicate(in);
  if (cmd == "promote") return HandlePromote();
  if (cmd == "replication") {
    if (PeekToken(in) == "status") return HandleReplicationStatus();
    return Error("usage: replication status");
  }
  // A follower (or a fenced stale primary) refuses mutations up front,
  // before they can touch any state. Replay bypasses: replicated
  // frames and recovery records ARE the follower's mutations.
  if (!ReplayingOnThisThread()) {
    std::string rejection = MaybeRejectForRole(cmd, in);
    if (!rejection.empty()) return rejection;
  }

  // --- Process-wide commands (no session involved) ---

  if (cmd == "ping") {
    double ms = 0.0;
    if (in >> ms && ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    return OkWith("pong", "true");
  }

  if (cmd == "stats") return HandleStats();

  if (cmd == "history") return HandleHistory(in);

  if (cmd == "slowlog") return HandleSlowlog();

  if (cmd == "wal") return HandleWal(in);

  if (cmd == "trace") {
    std::string sub;
    if (!(in >> sub)) return Error("usage: trace on|off|<path>");
    if (sub == "on") {
      Tracer::Global().SetEnabled(true);
      return OkWith("trace", "true");
    }
    if (sub == "off") {
      Tracer::Global().SetEnabled(false);
      return OkWith("trace", "false");
    }
    // Anything else is a dump path.
    Status st = Tracer::Global().WriteJson(sub);
    if (!st.ok()) return Error(st);
    return OkWith("trace_events",
                  std::to_string(Tracer::Global().num_events()));
  }

  if (cmd == "snapshot") {
    // `snapshot load` swaps the world, which must not interleave with
    // logged mutations or a checkpoint — exclusive gate; with the WAL
    // on the load is followed by a checkpoint so the log base matches
    // the new world. `snapshot save` stays gate-free: its per-session
    // locks + shard leases already give a prefix-consistent capture,
    // and serializing it behind the gate would stall live traffic.
    if (PeekToken(in) != "load" || ReplayingOnThisThread()) {
      return HandleSnapshot(in);
    }
    std::unique_lock<std::shared_mutex> gate(wal_gate_);
    std::string response = HandleSnapshot(in);
    if (IsOkResponse(response) && wal_ != nullptr) {
      Status st = CheckpointLocked();
      if (!st.ok()) wal_last_error_ = st.ToString();
    }
    return response;
  }

  const bool replaying = ReplayingOnThisThread();
  std::shared_lock<std::shared_mutex> gate;

  // --- Process-wide mutating commands ---
  // Gate (shared) so a checkpoint never observes a half-applied
  // mutation, then append_wal_mu_ so WAL order == apply order even
  // across concurrent clients.

  if (cmd == "retry" || cmd == "session" || cmd == "shards" ||
      cmd == "append") {
    const bool logged = cmd == "session" ? PeekToken(in) == "drop" : true;
    if (!replaying) gate = std::shared_lock<std::shared_mutex>(wal_gate_);
    std::unique_lock<std::mutex> order(append_wal_mu_);
    std::string response;
    if (cmd == "retry") {
      response = HandleRetry(in);
    } else if (cmd == "session") {
      response = HandleSession(in);
    } else if (cmd == "shards") {
      response = HandleShards(in);
    } else {
      response = HandleAppend(in);
    }
    if (logged && !replaying && IsOkResponse(response)) {
      ApplyWalLog(line, &response, &order);
    }
    return response;
  }

  // --- Session commands ---

  std::shared_ptr<ManagedSession> ms;
  {
    // Hold the state lock only long enough to resolve the session:
    // command execution must not block a snapshot load's world swap
    // (in-flight commands finish against the old world, which the
    // shared_ptr keeps alive).
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    auto resolved = manager_->GetOrCreate(session_name);
    if (!resolved.ok()) return Error(resolved.status());
    ms = std::move(*resolved);
  }

  if (cmd == "cancel") {
    // Deliberately does NOT take the session mutex: the whole point is
    // to reach a debug currently holding it. (Nor the gate: a cancel
    // must land even while a checkpoint drains.)
    std::lock_guard<std::mutex> lock(ms->cancel_mu);
    if (ms->active_cancel != nullptr) {
      ms->active_cancel->Cancel("cancelled by client");
      return OkWith("cancelled", "\"in-flight\"");
    }
    ms->pending_cancel = true;
    return OkWith("cancelled", "\"pending\"");
  }

  const bool logged = IsLoggedSessionCommand(cmd);
  if (logged && !replaying) {
    gate = std::shared_lock<std::shared_mutex>(wal_gate_);
  }
  std::lock_guard<std::mutex> session_lock(ms->mu);
  std::string response = ExecuteSessionCommand(*ms, cmd, in);
  if (logged && !replaying && IsOkResponse(response)) {
    std::string logged_line = line;
    if (cmd == "clean" && !ms->session.applied_predicates().empty()) {
      // `clean <i>` names a rank in the last debug's explanation, which
      // recovery does not replay — log the RESOLVED predicate instead
      // so the record applies without re-explaining.
      logged_line = "@" + session_name + " clean_where " +
                    ms->session.applied_predicates().back().ToString();
    }
    ApplyWalLog(logged_line, &response);
  }
  return response;
}

std::string Service::ExecuteSessionCommand(ManagedSession& ms,
                                           const std::string& cmd,
                                           std::istream& in) {
  Session& session = ms.session;

  auto rest = [&in]() {
    std::string tail;
    std::getline(in, tail);
    return std::string(Trim(tail));
  };

  // Mirrors the session's selection/cleaning state into the replay
  // record so a snapshot taken at any point restores to exactly here.
  auto sync_replay = [&ms, &session]() {
    ms.replay.applied_predicates = session.applied_predicates();
    ms.replay.selected_groups = session.selected_groups();
    ms.replay.selected_inputs = session.selected_inputs();
  };

  if (cmd == "sql") {
    const std::string sql = rest();
    if (sql.empty()) return Error("usage: sql <query>");
    Status st = session.ExecuteSql(sql);
    if (!st.ok()) return Error(st);
    ms.replay.original_sql = sql;
    sync_replay();
    return OkWith("num_groups", std::to_string(session.result().num_groups()));
  }

  if (cmd == "result") {
    if (!session.has_result()) return Error("no query executed");
    return OkWith("result",
                  QueryResultToJson(session.result(), /*pretty=*/false));
  }

  if (cmd == "select_range") {
    std::string agg;
    double lo = 0.0, hi = 0.0;
    if (!(in >> agg >> lo >> hi)) {
      return Error("usage: select_range <agg> <lo> <hi>");
    }
    Status st = session.SelectResultsInRange(agg, lo, hi);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("num_selected",
                  std::to_string(session.selected_groups().size()));
  }

  if (cmd == "select_groups") {
    std::vector<size_t> groups;
    size_t g;
    while (in >> g) groups.push_back(g);
    if (groups.empty()) return Error("usage: select_groups <i> [j ...]");
    Status st = session.SelectResults(groups);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("num_selected",
                  std::to_string(session.selected_groups().size()));
  }

  if (cmd == "inputs_where") {
    const std::string filter = rest();
    if (filter.empty()) return Error("usage: inputs_where <filter>");
    Status st = session.SelectInputsWhere(filter);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("num_inputs",
                  std::to_string(session.selected_inputs().size()));
  }

  if (cmd == "metrics") {
    size_t agg_index = 0;
    in >> agg_index;
    auto suggestions = session.SuggestErrorMetrics(agg_index);
    if (!suggestions.ok()) return Error(suggestions.status());
    std::string arr = "[";
    for (size_t i = 0; i < suggestions->size(); ++i) {
      if (i > 0) arr += ", ";
      arr += "{\"label\": \"" + JsonEscape((*suggestions)[i].label) +
             "\", \"default_expected\": " +
             FormatDouble((*suggestions)[i].default_expected, 17) + "}";
    }
    arr += "]";
    return OkWith("metrics", arr);
  }

  if (cmd == "metric") {
    std::string kind;
    double expected = 0.0;
    if (!(in >> kind >> expected)) {
      return Error("usage: metric <kind> <expected> [agg_index]");
    }
    size_t agg_index = 0;
    in >> agg_index;
    auto metric = MetricFromKind(kind, expected);
    if (!metric.ok()) return Error(metric.status());
    Status st = session.SetMetric(*metric, agg_index);
    if (!st.ok()) return Error(st);
    ms.replay.has_metric = true;
    ms.replay.metric_kind = kind;
    ms.replay.metric_expected = expected;
    ms.replay.agg_index = agg_index;
    return Ok();
  }

  if (cmd == "debug") {
    return RunDebug(ms);
  }

  if (cmd == "set_deadline") {
    double ms_value = 0.0;
    if (!(in >> ms_value)) return Error("usage: set_deadline <ms>");
    ms.settings.deadline_ms = ms_value;
    if (ms_value <= 0.0) {
      return OkWith("deadline_ms", "null");
    }
    return OkWith("deadline_ms", FormatDouble(ms_value, 17));
  }

  if (cmd == "profile") {
    std::string sub;
    if (!(in >> sub)) return Error("usage: profile on|off");
    if (sub == "on") {
      ms.settings.profile_enabled = true;
      return OkWith("profile", "true");
    }
    if (sub == "off") {
      ms.settings.profile_enabled = false;
      return OkWith("profile", "false");
    }
    return Error("unknown profile subcommand '" + sub + "'");
  }

  if (cmd == "clean") {
    size_t index = 0;
    if (!(in >> index)) return Error("usage: clean <i>");
    Status st = session.ApplyPredicate(index);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("sql", "\"" + JsonEscape(session.CurrentSql()) + "\"");
  }

  if (cmd == "clean_where") {
    const std::string text = rest();
    if (text.empty()) return Error("usage: clean_where <predicate>");
    auto pred = ParsePredicate(text);
    if (!pred.ok()) return Error(pred.status());
    Status st = session.ApplyPredicateDirect(*pred);
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("sql", "\"" + JsonEscape(session.CurrentSql()) + "\"");
  }

  if (cmd == "undo") {
    Status st = session.UndoLastPredicate();
    if (!st.ok()) return Error(st);
    sync_replay();
    return OkWith("sql", "\"" + JsonEscape(session.CurrentSql()) + "\"");
  }

  if (cmd == "reset") {
    Status st = session.ResetCleaning();
    if (!st.ok()) return Error(st);
    sync_replay();
    return Ok();
  }

  if (cmd == "state") {
    std::string out = "{\"ok\": true";
    out += ", \"has_result\": ";
    out += session.has_result() ? "true" : "false";
    if (session.has_result()) {
      out += ", \"sql\": \"" + JsonEscape(session.CurrentSql()) + "\"";
      out +=
          ", \"num_groups\": " + std::to_string(session.result().num_groups());
    }
    out += ", \"num_selected_groups\": " +
           std::to_string(session.selected_groups().size());
    out += ", \"num_selected_inputs\": " +
           std::to_string(session.selected_inputs().size());
    out += ", \"num_applied_predicates\": " +
           std::to_string(session.applied_predicates().size());
    out += ", \"has_explanation\": ";
    out += session.has_explanation() ? "true" : "false";
    out += "}";
    return out;
  }

  return Error("unknown command '" + cmd + "'");
}

RetryPolicy Service::CurrentRetryPolicy() const {
  RetryPolicy policy = options_.retry;
  policy.max_attempts = retry_max_attempts_.load(std::memory_order_relaxed);
  policy.initial_backoff_ms =
      retry_backoff_ms_.load(std::memory_order_relaxed);
  return policy;
}

std::string Service::HandleRetry(std::istream& in) {
  std::string first;
  if (!(in >> first)) {
    return Error("usage: retry <max_attempts> [initial_backoff_ms] | retry off");
  }
  if (first == "off") {
    retry_max_attempts_.store(1, std::memory_order_relaxed);
    return OkWith("retry", "{\"max_attempts\": 1}");
  }
  std::istringstream num(first);
  long long max_attempts = 0;
  if (!(num >> max_attempts) || max_attempts < 1) {
    return Error("retry: max_attempts must be a positive integer, got '" +
                 first + "'");
  }
  double backoff_ms = retry_backoff_ms_.load(std::memory_order_relaxed);
  if (in >> backoff_ms && backoff_ms < 0.0) {
    return Error("retry: initial_backoff_ms must be >= 0");
  }
  retry_max_attempts_.store(static_cast<size_t>(max_attempts),
                            std::memory_order_relaxed);
  retry_backoff_ms_.store(backoff_ms, std::memory_order_relaxed);
  return OkWith("retry",
                "{\"max_attempts\": " + std::to_string(max_attempts) +
                    ", \"initial_backoff_ms\": " + FormatDouble(backoff_ms) +
                    "}");
}

std::string Service::HandleSession(std::istream& in) {
  std::string sub;
  if (!(in >> sub)) return Error("usage: session list|drop|evict");

  std::shared_lock<std::shared_mutex> lock(state_mu_);

  if (sub == "list") {
    std::string arr = "[";
    bool first = true;
    for (const std::string& name : manager_->Names()) {
      if (!first) arr += ", ";
      first = false;
      arr += "{\"name\": \"" + JsonEscape(name) +
             "\", \"idle_ms\": " + FormatDouble(manager_->IdleMs(name)) + "}";
    }
    arr += "]";
    return OkWith("sessions", arr);
  }

  if (sub == "drop") {
    std::string name;
    if (!(in >> name)) return Error("usage: session drop <name>");
    if (name == "main") return Error("cannot drop the default session 'main'");
    Status st = manager_->Drop(name);
    if (!st.ok()) return Error(st);
    return OkWith("dropped", "\"" + JsonEscape(name) + "\"");
  }

  if (sub == "evict") {
    double idle_ms = manager_->options().idle_timeout_ms;
    in >> idle_ms;
    if (idle_ms <= 0.0) {
      return Error("session evict: idle_ms must be > 0 (or configure "
                   "an idle timeout)");
    }
    // Holding main's mutex marks it busy, so eviction skips it and the
    // default session handle can never dangle.
    std::lock_guard<std::mutex> keep_main(default_session_->mu);
    const size_t evicted = manager_->EvictIdleOlderThan(idle_ms);
    return OkWith("evicted", std::to_string(evicted));
  }

  return Error("unknown session subcommand '" + sub + "'");
}

std::string Service::HandleStats() {
  std::shared_ptr<Database> db;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
  }
  // Per-table shard telemetry rides along with the metrics snapshot so
  // a dashboard sees layout, occupancy, and cache warmth in one call.
  std::string shards = "{";
  bool first_table = true;
  for (const std::string& name : db->ShardedNames()) {
    auto set = db->GetShardSet(name);
    if (set == nullptr) continue;
    auto lease = set->ReadLease();
    if (!first_table) shards += ", ";
    first_table = false;
    shards += "\"" + JsonEscape(name) +
              "\": {\"count\": " + std::to_string(set->num_shards()) +
              ", \"rows\": [";
    bool first = true;
    for (size_t rows : set->ShardRowCounts()) {
      if (!first) shards += ", ";
      first = false;
      shards += std::to_string(rows);
    }
    shards += "], \"cached_clauses\": [";
    first = true;
    for (size_t clauses : ShardEngineCache::For(*set)->CachedClausesPerShard()) {
      if (!first) shards += ", ";
      first = false;
      shards += std::to_string(clauses);
    }
    shards += "], \"cached_programs\": [";
    first = true;
    for (size_t programs :
         ShardEngineCache::For(*set)->CachedProgramsPerShard()) {
      if (!first) shards += ", ";
      first = false;
      shards += std::to_string(programs);
    }
    shards += "], \"appends\": " + std::to_string(set->appends()) + "}";
  }
  shards += "}";
  return "{\"ok\": true, \"stats\": " +
         MetricsRegistry::Global().SnapshotJson(/*pretty=*/false) +
         ", \"shards\": " + shards + "}";
}

std::string Service::HandleShards(std::istream& in) {
  static MetricCounter* const reshards =
      MetricsRegistry::Global().GetCounter("service.reshards");

  std::string table_name;
  std::string count_text;
  if (!(in >> table_name >> count_text)) {
    return Error("usage: shards <table> <count>");
  }
  // A malformed count must come back as a well-formed JSON error, not
  // a zero-shard layout: parse strictly (no trailing junk, no signs
  // smuggled through istream's size_t wraparound).
  std::istringstream num(count_text);
  long long count = 0;
  char trailing = '\0';
  if (!(num >> count) || num >> trailing || count < 1 ||
      static_cast<unsigned long long>(count) > ShardSet::kMaxShards) {
    return Error("shards: count must be an integer in [1, " +
                 std::to_string(ShardSet::kMaxShards) + "], got '" +
                 count_text + "'");
  }

  std::shared_ptr<Database> db;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
  }
  auto table = db->GetTable(table_name);
  if (!table.ok()) return Error(table.status());
  auto set = ShardSet::Create(**table, static_cast<size_t>(count));
  if (!set.ok()) return Error(set.status());
  db->RegisterShardSet(table_name, *set);
  reshards->Increment();

  std::string rows = "[";
  bool first = true;
  for (size_t r : (*set)->ShardRowCounts()) {
    if (!first) rows += ", ";
    first = false;
    rows += std::to_string(r);
  }
  rows += "]";
  return "{\"ok\": true, \"table\": \"" + JsonEscape(table_name) +
         "\", \"shards\": " + std::to_string(count) + ", \"rows\": " + rows +
         "}";
}

std::string Service::HandleAppend(std::istream& in) {
  std::string table_name;
  if (!(in >> table_name)) {
    return Error("usage: append <table> <v1> [v2 ...] (`null` for NULL)");
  }
  std::shared_ptr<Database> db;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
  }
  auto set = db->GetShardSet(table_name);
  if (set == nullptr) {
    // Plain tables are immutable by design; only a ShardSet has a tail
    // shard to route the row to.
    auto table = db->GetTable(table_name);
    if (!table.ok()) return Error(table.status());
    return Error("append: table '" + table_name +
                 "' is not sharded; run `shards " + table_name +
                 " <count>` first");
  }

  const Schema& schema = set->schema();
  std::vector<Value> values;
  values.reserve(schema.num_fields());
  for (const Field& field : schema.fields()) {
    std::string token;
    if (!(in >> token)) {
      return Error("append: expected " + std::to_string(schema.num_fields()) +
                   " values (" + schema.ToString() + "), got " +
                   std::to_string(values.size()));
    }
    if (token == "null") {
      values.emplace_back();
      continue;
    }
    if (field.type == DataType::kString) {
      values.emplace_back(std::move(token));
      continue;
    }
    std::istringstream num(token);
    char trailing = '\0';
    if (field.type == DataType::kInt64) {
      int64_t v = 0;
      if (!(num >> v) || num >> trailing) {
        return Error("append: column '" + field.name + "' expects int64, got '" +
                     token + "'");
      }
      values.emplace_back(v);
    } else {
      double v = 0.0;
      if (!(num >> v) || num >> trailing) {
        return Error("append: column '" + field.name +
                     "' expects double, got '" + token + "'");
      }
      values.emplace_back(v);
    }
  }
  std::string extra;
  if (in >> extra) {
    return Error("append: too many values (schema is " + schema.ToString() +
                 ")");
  }

  Status st = set->Append(values);
  if (!st.ok()) return Error(st);
  auto lease = set->ReadLease();  // concurrent appenders may still be running
  return "{\"ok\": true, \"rows\": " + std::to_string(set->num_rows()) +
         ", \"shard\": " + std::to_string(set->num_shards() - 1) + "}";
}

std::string Service::HandleSnapshot(std::istream& in) {
  static MetricCounter* const saves =
      MetricsRegistry::Global().GetCounter("service.snapshot_saves");
  static MetricCounter* const loads =
      MetricsRegistry::Global().GetCounter("service.snapshot_loads");

  std::string sub;
  std::string path;
  if (!(in >> sub >> path)) return Error("usage: snapshot save|load <path>");

  if (sub == "save") {
    ServiceSnapshot snapshot;
    std::shared_ptr<Database> db;
    std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> live;
    {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      db = db_;
      for (const std::string& name : manager_->Names()) {
        auto ms = manager_->Find(name);
        if (ms != nullptr) live.emplace_back(name, std::move(ms));
      }
    }
    for (auto& [name, ms] : live) {
      // Per-session lock: each session is serialized mid-command-free
      // into the snapshot (sessions are independent, so cross-session
      // interleaving cannot produce a torn state). Sessions come
      // BEFORE the shard leases below: a session command holds its
      // mutex while taking a shard read lease, so acquiring in the
      // opposite order here would be a lock-order inversion.
      std::lock_guard<std::mutex> lock(ms->mu);
      snapshot.sessions.push_back({name, ms->settings, ms->replay});
    }
    // Read-lease every sharded table BEFORE serializing so an append
    // cannot tear a fused table mid-save; the leases stay held through
    // WriteSnapshot. Only the boundaries are persisted — the restore
    // rebuilds shard contents (and dictionaries) from the fused rows.
    std::vector<std::shared_ptr<ShardSet>> sets;
    std::vector<std::shared_lock<std::shared_mutex>> leases;
    for (const std::string& name : db->ShardedNames()) {
      auto set = db->GetShardSet(name);
      if (set == nullptr) continue;
      leases.push_back(set->ReadLease());
      ServiceSnapshot::ShardLayout layout;
      layout.table = name;
      for (size_t rows : set->ShardRowCounts()) {
        layout.shard_rows.push_back(rows);
      }
      snapshot.shard_layouts.push_back(std::move(layout));
      sets.push_back(std::move(set));
    }
    for (const std::string& name : db->TableNames()) {
      auto table = db->GetTable(name);
      if (table.ok()) snapshot.tables.emplace_back(name, *table);
    }
    snapshot.retry_max_attempts = static_cast<uint32_t>(
        retry_max_attempts_.load(std::memory_order_relaxed));
    snapshot.retry_backoff_ms =
        retry_backoff_ms_.load(std::memory_order_relaxed);
    Status st = WriteSnapshot(path, snapshot);
    if (!st.ok()) return Error(st);
    saves->Increment();
    return "{\"ok\": true, \"path\": \"" + JsonEscape(path) +
           "\", \"tables\": " + std::to_string(snapshot.tables.size()) +
           ", \"sharded\": " + std::to_string(snapshot.shard_layouts.size()) +
           ", \"sessions\": " + std::to_string(snapshot.sessions.size()) + "}";
  }

  if (sub == "load") {
    auto snapshot = ReadSnapshot(path);
    if (!snapshot.ok()) return Error(snapshot.status());
    Status st = LoadWorld(*snapshot);
    if (!st.ok()) return Error(st);
    loads->Increment();
    return "{\"ok\": true, \"tables\": " +
           std::to_string(snapshot->tables.size()) +
           ", \"sharded\": " + std::to_string(snapshot->shard_layouts.size()) +
           ", \"sessions\": " + std::to_string(snapshot->sessions.size()) + "}";
  }

  return Error("unknown snapshot subcommand '" + sub + "'");
}

Status Service::LoadWorld(const ServiceSnapshot& snapshot) {
  // Validate and rebuild the whole world off to the side; the live
  // service is untouched until the final swap, so any failure —
  // corrupt file, missing table, unreplayable state — leaves the
  // prior state exactly as it was.
  auto db = std::make_shared<Database>();
  for (const auto& [name, table] : snapshot.tables) {
    db->RegisterTable(name, table);
  }
  // Re-shard after ALL tables are registered (RegisterTable clears
  // any shard layout for its name). CreateWithRows re-derives every
  // shard — contents, dictionaries, codes — from the fused rows, so
  // the restored clause bitmaps match the pre-crash ones bit for bit.
  for (const ServiceSnapshot::ShardLayout& layout : snapshot.shard_layouts) {
    auto table = db->GetTable(layout.table);
    if (!table.ok()) {
      return Status::InvalidArgument(
          "snapshot load: shard layout references unknown table '" +
          layout.table + "'");
    }
    std::vector<size_t> shard_rows(layout.shard_rows.begin(),
                                   layout.shard_rows.end());
    auto set = ShardSet::CreateWithRows(**table, shard_rows);
    if (!set.ok()) {
      return Status::InvalidArgument(
          "snapshot load: cannot rebuild shards for table '" + layout.table +
          "': " + set.status().ToString());
    }
    db->RegisterShardSet(layout.table, *set);
  }
  auto manager = std::make_unique<SessionManager>(db, options_.explain,
                                                  options_.sessions);
  for (const auto& state : snapshot.sessions) {
    auto ms = manager->GetOrCreate(state.name);
    if (!ms.ok()) {
      return Status::InvalidArgument("snapshot load: cannot recreate session '" +
                                     state.name +
                                     "': " + ms.status().ToString());
    }
    (*ms)->settings = state.settings;
    Status st = ReplaySessionState(**ms, state.replay);
    if (!st.ok()) {
      return Status::InvalidArgument("snapshot load: replay failed for session '" +
                                     state.name + "': " + st.ToString());
    }
  }
  auto main = manager->GetOrCreate("main");
  if (!main.ok()) return main.status();

  if (snapshot.retry_max_attempts > 0) {
    retry_max_attempts_.store(snapshot.retry_max_attempts,
                              std::memory_order_relaxed);
    retry_backoff_ms_.store(snapshot.retry_backoff_ms,
                            std::memory_order_relaxed);
  }
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    db_ = std::move(db);
    manager_ = std::move(manager);
    default_session_ = std::move(*main);
  }
  return Status::OK();
}

void Service::CollectSnapshot(ServiceSnapshot* snapshot) {
  // Only ever called with wal_gate_ held exclusively, which excludes
  // every logged mutation — so unlike the gate-free `snapshot save`
  // path, the shard leases here do not need to outlive this function:
  // nothing can append to a fused table until the gate drops.
  std::shared_ptr<Database> db;
  std::vector<std::pair<std::string, std::shared_ptr<ManagedSession>>> live;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    db = db_;
    for (const std::string& name : manager_->Names()) {
      auto ms = manager_->Find(name);
      if (ms != nullptr) live.emplace_back(name, std::move(ms));
    }
  }
  for (auto& [name, ms] : live) {
    // Unlogged commands (debug, reads) may still hold a session mutex;
    // wait them out so each session lands mid-command-free.
    std::lock_guard<std::mutex> lock(ms->mu);
    snapshot->sessions.push_back({name, ms->settings, ms->replay});
  }
  for (const std::string& name : db->ShardedNames()) {
    auto set = db->GetShardSet(name);
    if (set == nullptr) continue;
    auto lease = set->ReadLease();
    ServiceSnapshot::ShardLayout layout;
    layout.table = name;
    for (size_t rows : set->ShardRowCounts()) {
      layout.shard_rows.push_back(rows);
    }
    snapshot->shard_layouts.push_back(std::move(layout));
  }
  for (const std::string& name : db->TableNames()) {
    auto table = db->GetTable(name);
    if (table.ok()) snapshot->tables.emplace_back(name, *table);
  }
  snapshot->retry_max_attempts = static_cast<uint32_t>(
      retry_max_attempts_.load(std::memory_order_relaxed));
  snapshot->retry_backoff_ms =
      retry_backoff_ms_.load(std::memory_order_relaxed);
}

Status Service::CheckpointLocked() {
  if (wal_ == nullptr) return Status::InvalidArgument("wal is off");
  if (wal_faults_ != nullptr) {
    DBW_RETURN_NOT_OK(wal_faults_->Hit("checkpoint/begin"));
  }
  ServiceSnapshot snapshot;
  CollectSnapshot(&snapshot);
  snapshot.wal_lsn = wal_->durable_lsn();
  // The write is tmp + fsync + atomic rename + dir fsync, so a crash
  // anywhere in here leaves the PREVIOUS snapshot intact and the log
  // untruncated — recovery just replays more.
  DBW_RETURN_NOT_OK(
      WriteSnapshot(wal_->dir() + "/snapshot.dbw", snapshot, wal_faults_));
  wal_snapshot_lsn_ = snapshot.wal_lsn;
  // Truncation only ever drops CLOSED segments, so rotate first: after
  // a quiet period the whole backlog is in the (now closed) last
  // segment and would otherwise never be reclaimed.
  DBW_RETURN_NOT_OK(wal_->Rotate());
  if (wal_faults_ != nullptr) {
    DBW_RETURN_NOT_OK(wal_faults_->Hit("checkpoint/truncate"));
  }
  DBW_RETURN_NOT_OK(wal_->TruncateThrough(snapshot.wal_lsn));
  ++wal_checkpoints_;
  MetricsRegistry::Global().GetCounter("wal.checkpoints")->Increment();
  wal_last_error_.clear();
  return Status::OK();
}

void Service::MaybeAutoCheckpoint() {
  if (!wal_enabled_.load(std::memory_order_acquire)) return;
  if (ReplayingOnThisThread()) return;
  const size_t threshold = options_.wal.checkpoint_bytes;
  if (threshold == 0) return;  // auto-checkpointing disabled
  {
    // Cheap probe under the shared gate; try_to_lock so this never
    // stalls behind a checkpoint already in progress.
    std::shared_lock<std::shared_mutex> gate(wal_gate_, std::try_to_lock);
    if (!gate.owns_lock() || wal_ == nullptr) return;
    if (wal_->total_bytes() < threshold) return;
  }
  std::unique_lock<std::shared_mutex> gate(wal_gate_, std::try_to_lock);
  if (!gate.owns_lock()) return;  // someone else will get there
  // Re-check: another thread may have checkpointed between the probe
  // and the exclusive acquisition.
  if (wal_ == nullptr || wal_->total_bytes() < threshold) return;
  Status st = CheckpointLocked();
  if (!st.ok()) wal_last_error_ = st.ToString();
}

void Service::ApplyWalLog(const std::string& logged_line,
                          std::string* response,
                          std::unique_lock<std::mutex>* order) {
  WriteAheadLog* wal = wal_.get();  // stable: caller holds the shared gate
  if (wal == nullptr) return;
  // Stage while the ordering lock is still held (so the log's LSN
  // order matches apply order), then drop it for the commit wait: the
  // next client can apply + stage while our fsync is in flight, and
  // the group-commit leader acknowledges both with one fsync.
  auto ticket = wal->StageCommand(logged_line, CurrentRequestId());
  Status st = ticket.ok() ? Status::OK() : ticket.status();
  if (st.ok()) {
    if (order != nullptr && order->owns_lock()) order->unlock();
    st = wal->WaitDurable(*ticket);
  }
  if (!st.ok()) {
    // The gray zone: the command IS applied in memory but is NOT
    // durable — a crash now silently loses it. Deliberately not
    // "retryable": re-running the command would double-apply it.
    *response = "{\"ok\": false, \"error\": \"" +
                JsonEscape("wal append failed: " + st.ToString()) +
                "\", \"durability\": \"lost\", \"applied\": true}";
  }
}

Status Service::EnableWalLocked(const std::string& dir) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("wal is already on (dir '" + wal_->dir() +
                                   "')");
  }
  const auto start = std::chrono::steady_clock::now();
  WalOptions wal_options = options_.wal;
  wal_options.dir = dir;
  wal_faults_ = wal_options.faults != nullptr ? wal_options.faults : faults_;
  wal_options.faults = wal_faults_;
  DBW_ASSIGN_OR_RETURN(auto wal, WriteAheadLog::Open(std::move(wal_options)));
  wal_dir_hint_ = dir;

  // Replication epoch recovery: a promoted follower must come back at
  // its promoted epoch, or a restarted stale primary could outrank it.
  {
    auto epoch = LoadReplicationEpoch(dir);
    if (!epoch.ok()) return epoch.status();
    if (*epoch > repl_epoch_.load(std::memory_order_acquire)) {
      repl_epoch_.store(*epoch, std::memory_order_release);
    }
    if (*epoch > repl_seen_epoch_.load(std::memory_order_acquire)) {
      repl_seen_epoch_.store(*epoch, std::memory_order_release);
    }
    MetricsRegistry::Global().GetGauge("repl.epoch")->Set(
        static_cast<int64_t>(repl_epoch_.load(std::memory_order_acquire)));
  }

  wal_snapshot_lsn_ = 0;
  wal_replayed_ = 0;
  wal_replay_errors_ = 0;

  // Recovery = latest valid snapshot + replay of every logged command
  // after its LSN. The snapshot read fully validates before anything
  // is applied, so a corrupt snapshot aborts with the live (fresh)
  // world untouched.
  const std::string snapshot_path = dir + "/snapshot.dbw";
  const bool have_snapshot = ::access(snapshot_path.c_str(), F_OK) == 0;
  if (have_snapshot) {
    auto snapshot = ReadSnapshot(snapshot_path);
    if (!snapshot.ok()) return snapshot.status();
    DBW_RETURN_NOT_OK(LoadWorld(*snapshot));
    wal_snapshot_lsn_ = snapshot->wal_lsn;
  }
  size_t replayed = 0;
  size_t errors = 0;
  DBW_RETURN_NOT_OK(wal->Replay(
      wal_snapshot_lsn_,
      [&](uint64_t /*lsn*/, uint64_t rid, uint8_t type,
          const std::string& body) -> Status {
        if (type != WriteAheadLog::kRecordCommand) {
          return Status::IoError("wal replay: unknown record type " +
                                 std::to_string(type));
        }
        ++replayed;
        // Run the command under its ORIGINAL request id (recovered from
        // the frame), so replay trace spans and log lines correlate
        // with the pre-crash request that wrote the record.
        RequestScope frame_scope(rid);
        // Through the normal dispatch — this thread owns the gate, so
        // gating and re-logging are skipped (wal_ is also still null).
        // Only ok responses were logged, so a failure here means the
        // record no longer applies; count it rather than abort, since
        // later records may be independent of it.
        if (!IsOkResponse(ExecuteCommand(body))) ++errors;
        return Status::OK();
      }));
  wal_replayed_ = replayed;
  wal_replay_errors_ = errors;
  wal_ = std::move(wal);
  wal_enabled_.store(true, std::memory_order_release);

  // Anchor the recovered world: a fresh dir gets its initial snapshot,
  // a replayed one compacts the log so the next recovery is O(new
  // work). Failure is non-fatal — the log still holds everything, the
  // atomic snapshot write left the old file valid.
  if (replayed > 0 || !have_snapshot) {
    Status st = CheckpointLocked();
    if (!st.ok()) wal_last_error_ = st.ToString();
  }
  wal_recovery_ms_ = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  MetricsRegistry::Global().GetCounter("wal.replayed")->Increment(replayed);
  MetricsRegistry::Global()
      .GetHistogram("wal.recovery_ms")
      ->Observe(wal_recovery_ms_);
  return Status::OK();
}

std::string Service::HandleWal(std::istream& in) {
  std::string sub;
  if (!(in >> sub)) return Error("usage: wal on <dir>|off|status|checkpoint");

  if (sub == "on") {
    std::string dir;
    if (!(in >> dir)) return Error("usage: wal on <dir>");
    std::unique_lock<std::shared_mutex> gate(wal_gate_);
    gate_owner_.store(std::this_thread::get_id(), std::memory_order_release);
    Status st = EnableWalLocked(dir);
    gate_owner_.store(std::thread::id(), std::memory_order_release);
    if (!st.ok()) return Error(st);
    return "{\"ok\": true, \"wal\": \"on\", \"dir\": \"" + JsonEscape(dir) +
           "\", \"replayed\": " + std::to_string(wal_replayed_) +
           ", \"replay_errors\": " + std::to_string(wal_replay_errors_) +
           ", \"recovery_ms\": " + FormatDouble(wal_recovery_ms_) + "}";
  }

  if (sub == "off") {
    // repl_mu_ before wal_gate_ (the lock order replication start
    // established); held across the whole disable so a `replicate
    // listen` cannot slip in between the check and the reset.
    std::lock_guard<std::mutex> repl(repl_mu_);
    if (repl_server_ != nullptr || repl_client_ != nullptr) {
      return Error(
          "wal off: replication is active; run `replicate stop` first");
    }
    std::unique_lock<std::shared_mutex> gate(wal_gate_);
    if (wal_ == nullptr) return Error("wal is off");
    // Seal the current state into the snapshot before dropping the
    // log; if that fails, stay on — turning off would lose the tail.
    Status st = CheckpointLocked();
    if (!st.ok()) return Error(st);
    wal_enabled_.store(false, std::memory_order_release);
    wal_.reset();
    return OkWith("wal", "\"off\"");
  }

  if (sub == "checkpoint") {
    std::unique_lock<std::shared_mutex> gate(wal_gate_);
    if (wal_ == nullptr) return Error("wal is off");
    Status st = CheckpointLocked();
    if (!st.ok()) return Error(st);
    return "{\"ok\": true, \"checkpoint_lsn\": " +
           std::to_string(wal_snapshot_lsn_) +
           ", \"segments\": " + std::to_string(wal_->num_segments()) + "}";
  }

  if (sub == "status") {
    std::shared_lock<std::shared_mutex> gate(wal_gate_);
    if (wal_ == nullptr) {
      return "{\"ok\": true, \"enabled\": false, \"last_error\": \"" +
             JsonEscape(wal_last_error_) + "\"}";
    }
    const WalStats s = wal_->stats();
    return "{\"ok\": true, \"enabled\": true, \"dir\": \"" +
           JsonEscape(wal_->dir()) +
           "\", \"next_lsn\": " + std::to_string(s.next_lsn) +
           ", \"durable_lsn\": " + std::to_string(s.durable_lsn) +
           ", \"segments\": " + std::to_string(s.segments) +
           ", \"wal_bytes\": " + std::to_string(s.total_bytes) +
           ", \"appends\": " + std::to_string(s.appends) +
           ", \"fsyncs\": " + std::to_string(s.fsyncs) +
           ", \"poisoned\": " + (s.poisoned ? "true" : "false") +
           ", \"snapshot_lsn\": " + std::to_string(wal_snapshot_lsn_) +
           ", \"checkpoints\": " + std::to_string(wal_checkpoints_) +
           ", \"replayed\": " + std::to_string(wal_replayed_) +
           ", \"replay_errors\": " + std::to_string(wal_replay_errors_) +
           ", \"recovery_ms\": " + FormatDouble(wal_recovery_ms_) +
           ", \"last_error\": \"" + JsonEscape(wal_last_error_) + "\"}";
  }

  return Error("unknown wal subcommand '" + sub + "'");
}

// --- Replication (DESIGN.md §5l) ---

namespace {

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  out->clear();
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("read " + path + " failed");
  return Status::OK();
}

/// Unlinks every wal-*.log segment file in `dir` (the local log is
/// about to be replaced by a shipped snapshot's history).
Status RemoveWalSegments(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("opendir " + dir + ": " + std::strerror(errno));
  }
  Status st = Status::OK();
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() < 8 || name.compare(0, 4, "wal-") != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const std::string path = dir + "/" + name;
    if (::unlink(path.c_str()) != 0) {
      st = Status::IoError("unlink " + path + ": " + std::strerror(errno));
      break;
    }
  }
  ::closedir(d);
  return st;
}

}  // namespace

std::string Service::MaybeRejectForRole(const std::string& cmd,
                                        std::istream& in) {
  const bool follower = follower_.load(std::memory_order_acquire);
  const bool fenced = repl_fenced_.load(std::memory_order_acquire);
  if (!follower && !fenced) return std::string();

  // Exactly the commands the WAL would log (state mutations), plus the
  // durability-config commands that would fork the node's history.
  bool mutating = IsLoggedSessionCommand(cmd) || cmd == "retry" ||
                  cmd == "shards" || cmd == "append";
  if (cmd == "session") mutating = PeekToken(in) == "drop";
  if (cmd == "snapshot") mutating = PeekToken(in) == "load";
  if (cmd == "wal") {
    const std::string sub = PeekToken(in);
    mutating = sub == "on" || sub == "off";
  }
  if (!mutating) return std::string();

  if (follower) {
    return "{\"ok\": false, \"error\": \"not primary: this node is a "
           "read-only replica; retry against the primary\", "
           "\"retryable\": true, \"reason\": \"not_primary\", "
           "\"retry_after_ms\": " +
           FormatDouble(options_.replication.not_primary_retry_after_ms) +
           "}";
  }
  return "{\"ok\": false, \"error\": \"epoch fenced: this primary (epoch " +
         std::to_string(repl_epoch_.load(std::memory_order_acquire)) +
         ") observed epoch " +
         std::to_string(repl_seen_epoch_.load(std::memory_order_acquire)) +
         " from a newer primary and can no longer accept writes\", "
         "\"reason\": \"fenced\"}";
}

Status Service::StartReplicationListenLocked(int port) {
  if (repl_server_ != nullptr) {
    return Status::InvalidArgument(
        "replication server already listening on port " +
        std::to_string(repl_server_->port()));
  }
  if (follower_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "this node is a follower; promote it before it can serve replicas");
  }
  WriteAheadLog* wal = nullptr;
  {
    std::shared_lock<std::shared_mutex> gate(wal_gate_);
    wal = wal_.get();
  }
  if (wal == nullptr) {
    return Status::InvalidArgument(
        "replicate listen requires the wal (run `wal on <dir>` first)");
  }
  ReplicationServerOptions o;
  o.port = static_cast<uint16_t>(port);
  o.heartbeat_interval_ms = options_.replication.heartbeat_interval_ms;
  o.faults = options_.replication.faults != nullptr
                 ? options_.replication.faults
                 : faults_;
  ReplicationServer::Source source;
  source.wal = wal;
  source.epoch = [this] {
    return repl_epoch_.load(std::memory_order_acquire);
  };
  source.observe_epoch = [this](uint64_t e) { ObserveReplicationEpoch(e); };
  source.snapshot = [this] { return ReplicationSnapshotImage(); };
  auto server = std::make_unique<ReplicationServer>();
  DBW_RETURN_NOT_OK(server->Start(o, std::move(source)));
  repl_server_ = std::move(server);
  MetricsRegistry::Global().GetGauge("repl.epoch")->Set(
      static_cast<int64_t>(repl_epoch_.load(std::memory_order_acquire)));
  return Status::OK();
}

Status Service::StartReplicationFollowLocked(const std::string& target) {
  if (repl_client_ != nullptr) {
    return Status::InvalidArgument("already following a primary");
  }
  if (repl_server_ != nullptr) {
    return Status::InvalidArgument(
        "this node serves followers; `replicate stop` first");
  }
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    return Status::InvalidArgument("replicate from wants <host>:<port>, got '" +
                                   target + "'");
  }
  const std::string host = target.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(target.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad replication port in '" + target + "'");
  }

  // The local durable log is the resume point: everything in it was
  // acked by this follower, so the stream restarts right after it.
  {
    std::shared_lock<std::shared_mutex> gate(wal_gate_);
    repl_last_applied_.store(wal_ != nullptr ? wal_->durable_lsn() : 0,
                             std::memory_order_release);
  }

  ReplicationClientOptions o;
  o.host = host;
  o.port = static_cast<uint16_t>(port);
  o.heartbeat_timeout_ms = options_.replication.heartbeat_timeout_ms;
  o.reconnect = options_.replication.reconnect;
  o.faults = options_.replication.faults != nullptr
                 ? options_.replication.faults
                 : faults_;
  ReplicationClient::Callbacks cb;
  cb.last_applied = [this] {
    return repl_last_applied_.load(std::memory_order_acquire);
  };
  cb.epoch = [this] { return repl_epoch_.load(std::memory_order_acquire); };
  cb.observe_epoch = [this](uint64_t e) { ObserveReplicationEpoch(e); };
  cb.apply = [this](uint64_t lsn, uint64_t rid, const std::string& body) {
    return ApplyReplicatedFrame(lsn, rid, body);
  };
  cb.install_snapshot = [this](const std::string& bytes, uint64_t lsn) {
    return InstallReplicaSnapshot(bytes, lsn);
  };

  // Flag the role BEFORE the client thread exists so no mutation can
  // slip in between "client running" and "mutations rejected".
  follower_.store(true, std::memory_order_release);
  repl_fenced_.store(false, std::memory_order_release);
  auto client = std::make_unique<ReplicationClient>();
  Status st = client->Start(std::move(o), std::move(cb));
  if (!st.ok()) {
    follower_.store(false, std::memory_order_release);
    return st;
  }
  repl_client_ = std::move(client);
  return Status::OK();
}

std::string Service::HandleReplicate(std::istream& in) {
  std::string sub;
  if (!(in >> sub)) {
    return Error("usage: replicate listen <port>|from <host>:<port>|stop|status");
  }
  if (sub == "status") return HandleReplicationStatus();
  if (sub == "stop") {
    // Joins the endpoint threads (outside repl_mu_ — they call back
    // into the service). The follower ROLE survives a stop: `promote`
    // is the explicit exit from it, so a paused follower still refuses
    // writes it could never have replicated.
    bool was_listening = false;
    bool was_following = false;
    {
      std::lock_guard<std::mutex> repl(repl_mu_);
      was_listening = repl_server_ != nullptr;
      was_following = repl_client_ != nullptr;
    }
    StopReplication();
    return std::string("{\"ok\": true, \"stopped_listener\": ") +
           (was_listening ? "true" : "false") + ", \"stopped_follower\": " +
           (was_following ? "true" : "false") + "}";
  }

  std::lock_guard<std::mutex> repl(repl_mu_);
  if (sub == "listen") {
    int port = -1;
    if (!(in >> port) || port < 0 || port > 65535) {
      return Error("usage: replicate listen <port> (0 picks an ephemeral port)");
    }
    Status st = StartReplicationListenLocked(port);
    if (!st.ok()) return Error(st);
    return "{\"ok\": true, \"listening\": true, \"port\": " +
           std::to_string(repl_server_->port()) + ", \"epoch\": " +
           std::to_string(repl_epoch_.load(std::memory_order_acquire)) + "}";
  }
  if (sub == "from") {
    std::string target;
    if (!(in >> target)) return Error("usage: replicate from <host>:<port>");
    Status st = StartReplicationFollowLocked(target);
    if (!st.ok()) return Error(st);
    return "{\"ok\": true, \"following\": \"" + JsonEscape(target) +
           "\", \"epoch\": " +
           std::to_string(repl_epoch_.load(std::memory_order_acquire)) +
           ", \"last_applied_lsn\": " +
           std::to_string(repl_last_applied_.load(std::memory_order_acquire)) +
           "}";
  }
  return Error("unknown replicate subcommand '" + sub + "'");
}

std::string Service::HandleReplicationStatus() {
  const bool follower = follower_.load(std::memory_order_acquire);
  std::string out = std::string("{\"ok\": true, \"role\": \"") +
                    (follower ? "follower" : "primary") + "\"";
  out += ", \"epoch\": " +
         std::to_string(repl_epoch_.load(std::memory_order_acquire));
  out += ", \"seen_epoch\": " +
         std::to_string(repl_seen_epoch_.load(std::memory_order_acquire));
  out += std::string(", \"fenced\": ") +
         (repl_fenced_.load(std::memory_order_acquire) ? "true" : "false");
  out += ", \"last_applied_lsn\": " +
         std::to_string(repl_last_applied_.load(std::memory_order_acquire));
  {
    std::lock_guard<std::mutex> repl(repl_mu_);
    out += ", \"promotions\": " + std::to_string(repl_promotions_);
    if (repl_server_ != nullptr) {
      const ReplicationServer::Stats s = repl_server_->stats();
      out += ", \"listening\": true, \"port\": " + std::to_string(s.port) +
             ", \"followers\": " + std::to_string(s.followers) +
             ", \"min_acked_lsn\": " + std::to_string(s.min_acked_lsn) +
             ", \"frames_sent\": " + std::to_string(s.frames_sent) +
             ", \"snapshots_sent\": " + std::to_string(s.snapshots_sent) +
             ", \"epoch_refusals\": " + std::to_string(s.epoch_refusals);
    } else {
      out += ", \"listening\": false";
    }
    if (repl_client_ != nullptr) {
      const ReplicationClient::Stats s = repl_client_->stats();
      out += std::string(", \"following\": true, \"connected\": ") +
             (s.connected ? "true" : "false") +
             ", \"source_epoch\": " + std::to_string(s.source_epoch) +
             ", \"source_durable_lsn\": " +
             std::to_string(s.source_durable_lsn) +
             ", \"reconnects\": " + std::to_string(s.reconnects) +
             ", \"frames_applied\": " + std::to_string(s.frames_applied) +
             ", \"snapshot_installs\": " + std::to_string(s.snapshot_installs) +
             ", \"corrupt_frames\": " + std::to_string(s.corrupt_frames) +
             std::string(", \"fenced_source\": ") +
             (s.fenced ? "true" : "false") + ", \"stream_error\": \"" +
             JsonEscape(s.last_error) + "\"";
    } else {
      out += ", \"following\": false";
    }
    out += ", \"last_error\": \"" + JsonEscape(repl_last_error_) + "\"";
  }
  out += "}";
  return out;
}

std::string Service::HandlePromote() {
  // A fenced stale primary stays fenced: its acknowledged history may
  // already have diverged from the new primary's, so promotion would
  // institutionalize a split brain. Explicit epoch error per the
  // failover runbook: wipe and re-follow instead.
  if (repl_fenced_.load(std::memory_order_acquire) &&
      !follower_.load(std::memory_order_acquire)) {
    return Error(
        "epoch fenced: this node (epoch " +
        std::to_string(repl_epoch_.load(std::memory_order_acquire)) +
        ") observed epoch " +
        std::to_string(repl_seen_epoch_.load(std::memory_order_acquire)) +
        "; promotion refused — resync this node as a follower instead");
  }
  if (!follower_.load(std::memory_order_acquire)) {
    return Error("promote: this node is already a primary");
  }

  // Disconnect from the old primary first: Stop() joins the client
  // thread, so after this no apply/install is in flight and
  // last_applied is final.
  std::unique_ptr<ReplicationClient> client;
  {
    std::lock_guard<std::mutex> repl(repl_mu_);
    client = std::move(repl_client_);
  }
  if (client != nullptr) client->Stop();
  client.reset();

  const uint64_t new_epoch =
      std::max(repl_epoch_.load(std::memory_order_acquire),
               repl_seen_epoch_.load(std::memory_order_acquire)) +
      1;
  {
    // Persist BEFORE accepting writes: an acknowledged promotion must
    // survive a crash-restart, or this node could come back at its old
    // epoch and lose a fencing duel it already won.
    std::lock_guard<std::mutex> lock(epoch_file_mu_);
    std::string dir;
    {
      std::shared_lock<std::shared_mutex> gate(wal_gate_);
      if (wal_ != nullptr) dir = wal_->dir();
    }
    if (!dir.empty()) {
      Status st = StoreReplicationEpoch(dir, new_epoch);
      if (!st.ok()) {
        return Error("promote: cannot persist epoch " +
                     std::to_string(new_epoch) + ": " + st.ToString());
      }
    }
    repl_epoch_.store(new_epoch, std::memory_order_release);
    uint64_t seen = repl_seen_epoch_.load(std::memory_order_acquire);
    while (new_epoch > seen &&
           !repl_seen_epoch_.compare_exchange_weak(seen, new_epoch)) {
    }
  }
  follower_.store(false, std::memory_order_release);
  repl_fenced_.store(false, std::memory_order_release);
  MetricsRegistry::Global().GetGauge("repl.epoch")->Set(
      static_cast<int64_t>(new_epoch));
  MetricsRegistry::Global().GetCounter("repl.promotions")->Increment();
  {
    std::lock_guard<std::mutex> repl(repl_mu_);
    ++repl_promotions_;
  }
  return "{\"ok\": true, \"promoted\": true, \"epoch\": " +
         std::to_string(new_epoch) + ", \"last_applied_lsn\": " +
         std::to_string(repl_last_applied_.load(std::memory_order_acquire)) +
         "}";
}

Status Service::ApplyReplicatedFrame(uint64_t lsn, uint64_t rid,
                                     const std::string& body) {
  // Exclusive gate + gate_owner_ puts the re-entrant ExecuteCommand in
  // replay mode: the frame runs under its ORIGINAL rid, skips gating
  // and internal logging, and cannot interleave with a checkpoint.
  std::unique_lock<std::shared_mutex> gate(wal_gate_);
  gate_owner_.store(std::this_thread::get_id(), std::memory_order_release);
  std::string response;
  {
    RequestScope scope(rid);
    response = ExecuteCommand(body);
  }
  // Mirror the frame into the local log at exactly the primary's LSN,
  // and make it durable before acking — the primary then knows acked
  // frames survive a follower crash (recovery replays them normally).
  Status st = Status::OK();
  if (wal_ != nullptr) {
    auto ticket = wal_->StageCommand(body, rid);
    if (!ticket.ok()) {
      st = ticket.status();
    } else if (ticket->lsn != lsn) {
      st = Status::IoError(
          "replica log diverged: local log assigned lsn " +
          std::to_string(ticket->lsn) + " to stream lsn " +
          std::to_string(lsn) + "; snapshot resync required");
    } else {
      st = wal_->WaitDurable(*ticket);
    }
  }
  gate_owner_.store(std::thread::id(), std::memory_order_release);
  gate.unlock();
  if (!st.ok()) return st;
  repl_last_applied_.store(lsn, std::memory_order_release);
  MetricsRegistry::Global().GetGauge("repl.last_applied_lsn")->Set(
      static_cast<int64_t>(lsn));
  if (!IsOkResponse(response)) {
    // Only ok responses were logged on the primary, so a not-ok here
    // means the replica drifted semantically; count it loudly but keep
    // the stream alive — the frame is recorded either way.
    MetricsRegistry::Global().GetCounter("repl.apply_errors")->Increment();
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status Service::InstallReplicaSnapshot(const std::string& bytes,
                                       uint64_t snapshot_lsn) {
  DBW_ASSIGN_OR_RETURN(ServiceSnapshot snap,
                       ReadSnapshotFromBytes(bytes, "replication snapshot"));
  if (snap.wal_lsn != snapshot_lsn) {
    return Status::IoError(
        "replication snapshot lsn mismatch: file says " +
        std::to_string(snap.wal_lsn) + ", stream says " +
        std::to_string(snapshot_lsn));
  }

  std::unique_lock<std::shared_mutex> gate(wal_gate_);
  std::string dir = wal_dir_hint_;
  if (wal_ != nullptr) dir = wal_->dir();
  if (!dir.empty()) {
    // Replace the local log wholesale: its history belongs to a
    // different timeline than the snapshot we are installing. Order —
    // close, wipe segments, reopen at snapshot_lsn + 1, persist the
    // snapshot — keeps every intermediate state recoverable (worst
    // case: old snapshot + no log = the state before this install; the
    // stream re-syncs on the next connect).
    wal_enabled_.store(false, std::memory_order_release);
    wal_.reset();
    DBW_RETURN_NOT_OK(RemoveWalSegments(dir));
    WalOptions wal_options = options_.wal;
    wal_options.dir = dir;
    wal_faults_ = wal_options.faults != nullptr ? wal_options.faults : faults_;
    wal_options.faults = wal_faults_;
    wal_options.start_lsn = snapshot_lsn + 1;
    DBW_ASSIGN_OR_RETURN(auto wal, WriteAheadLog::Open(std::move(wal_options)));
    DBW_RETURN_NOT_OK(WriteSnapshot(dir + "/snapshot.dbw", snap, wal_faults_));
    wal_ = std::move(wal);
    wal_enabled_.store(true, std::memory_order_release);
    wal_snapshot_lsn_ = snapshot_lsn;
  }
  DBW_RETURN_NOT_OK(LoadWorld(snap));
  gate.unlock();
  repl_last_applied_.store(snapshot_lsn, std::memory_order_release);
  MetricsRegistry::Global().GetGauge("repl.last_applied_lsn")->Set(
      static_cast<int64_t>(snapshot_lsn));
  return Status::OK();
}

Result<std::pair<std::string, uint64_t>> Service::ReplicationSnapshotImage() {
  // Exclusive gate: nothing can mutate or checkpoint while the image
  // is captured, so the file read here IS the latest checkpoint and
  // the log above its wal_lsn is guaranteed intact (TruncateThrough
  // only retires records <= that lsn).
  std::unique_lock<std::shared_mutex> gate(wal_gate_);
  if (wal_ == nullptr) {
    return Status::InvalidArgument("replication snapshot: wal is off");
  }
  const std::string path = wal_->dir() + "/snapshot.dbw";
  bool checkpointed = false;
  if (::access(path.c_str(), F_OK) != 0) {
    DBW_RETURN_NOT_OK(CheckpointLocked());
    checkpointed = true;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string bytes;
    DBW_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
    auto snap = ReadSnapshotFromBytes(bytes, path);
    if (snap.ok() && wal_->CanReplayAfter(snap->wal_lsn)) {
      return std::make_pair(std::move(bytes), snap->wal_lsn);
    }
    if (checkpointed) break;  // a fresh checkpoint should never fail this
    // Stale or damaged file: write a fresh checkpoint and retry once.
    DBW_RETURN_NOT_OK(CheckpointLocked());
    checkpointed = true;
  }
  return Status::IoError(
      "replication snapshot: cannot produce a tailable checkpoint image");
}

void Service::ObserveReplicationEpoch(uint64_t epoch) {
  uint64_t seen = repl_seen_epoch_.load(std::memory_order_acquire);
  while (epoch > seen &&
         !repl_seen_epoch_.compare_exchange_weak(seen, epoch)) {
  }
  const uint64_t own = repl_epoch_.load(std::memory_order_acquire);
  if (epoch <= own) return;
  if (follower_.load(std::memory_order_acquire)) {
    // A follower adopts its primary's newer epoch (and persists it, so
    // a crash can't roll the epoch back below history it acked).
    std::lock_guard<std::mutex> lock(epoch_file_mu_);
    if (epoch <= repl_epoch_.load(std::memory_order_acquire)) return;
    std::string dir;
    {
      std::shared_lock<std::shared_mutex> gate(wal_gate_);
      if (wal_ != nullptr) dir = wal_->dir();
    }
    if (!dir.empty()) {
      // Best-effort: the atomic rename rarely fails, and a lost adopt
      // only delays re-adoption to the next heartbeat.
      (void)StoreReplicationEpoch(dir, epoch);
    }
    repl_epoch_.store(epoch, std::memory_order_release);
    MetricsRegistry::Global().GetGauge("repl.epoch")->Set(
        static_cast<int64_t>(epoch));
  } else {
    // A primary that sees a newer epoch has been superseded: fence it.
    // Runtime-only state — a fenced primary's operator wipes/resyncs
    // it rather than restarting it into a second life.
    repl_fenced_.store(true, std::memory_order_release);
    MetricsRegistry::Global().GetGauge("repl.fenced")->Set(1);
  }
}

void Service::StopReplication() {
  std::unique_ptr<ReplicationServer> server;
  std::unique_ptr<ReplicationClient> client;
  {
    std::lock_guard<std::mutex> repl(repl_mu_);
    server = std::move(repl_server_);
    client = std::move(repl_client_);
  }
  // Outside repl_mu_: Stop() joins threads whose callbacks may be
  // mid-flight inside this service.
  if (client != nullptr) client->Stop();
  if (server != nullptr) server->Stop();
}

// --- Request telemetry (DESIGN.md §5k) ---

std::string Service::HandleHistory(std::istream& in) {
  std::string metric;
  in >> metric;

  if (metric.empty()) {
    // No metric: describe the store (series names + configuration).
    std::string names = "[";
    bool first = true;
    for (const std::string& name : history_.Names()) {
      if (!first) names += ", ";
      first = false;
      names += "\"" + JsonEscape(name) + "\"";
    }
    names += "]";
    return std::string("{\"ok\": true, \"sampling\": ") +
           (options_.telemetry.history_enabled ? "true" : "false") +
           ", \"interval_ms\": " +
           FormatDouble(options_.telemetry.sample_interval_ms) +
           ", \"points_per_series\": " +
           std::to_string(history_.points_per_series()) +
           ", \"memory_bytes\": " + std::to_string(history_.MemoryBytes()) +
           ", \"series\": " + names + "}";
  }

  double window_ms = 0.0;  // <= 0: the whole ring
  in >> window_ms;
  const std::vector<TelemetryHistory::Point> points =
      history_.Query(metric, window_ms, MonotonicMillis());
  std::string out = "[";
  bool first = true;
  for (const TelemetryHistory::Point& p : points) {
    if (!first) out += ", ";
    first = false;
    out += "{\"t_ms\": " + FormatDouble(p.t_ms) +
           ", \"value\": " + FormatDouble(p.value) + "}";
  }
  out += "]";
  return "{\"ok\": true, \"metric\": \"" + JsonEscape(metric) +
         "\", \"points\": " + out + "}";
}

std::string Service::HandleSlowlog() {
  std::string entries = "[";
  {
    std::lock_guard<std::mutex> lock(slowlog_mu_);
    bool first = true;
    for (const std::string& entry : slowlog_) {
      if (!first) entries += ", ";
      first = false;
      entries += entry;  // already a JSON object
    }
  }
  entries += "]";
  return "{\"ok\": true, \"threshold_ms\": " + FormatDouble(slow_threshold_ms_) +
         ", \"entries\": " + entries + "}";
}

void Service::MaybeSlowLog(uint64_t rid, const std::string& line,
                           double elapsed_ms, const std::string& response) {
  if (slow_threshold_ms_ < 0.0 || elapsed_ms < slow_threshold_ms_) return;
  static MetricCounter* const slow =
      MetricsRegistry::Global().GetCounter("service.slow_requests");
  slow->Increment();

  std::string entry = "{\"rid\": " + std::to_string(rid) + ", \"cmd\": \"" +
                      JsonEscape(CommandLabel(line)) +
                      "\", \"elapsed_ms\": " + FormatDouble(elapsed_ms) +
                      ", \"ok\": " + (IsOkResponse(response) ? "true" : "false");
  // Shed/degrade responses carry a machine-readable "reason"; surface
  // it so the slow log says WHY without a second lookup.
  const std::string reason_key = "\"reason\": \"";
  const size_t reason_pos = response.find(reason_key);
  if (reason_pos != std::string::npos) {
    const size_t start = reason_pos + reason_key.size();
    // The value is JSON-escaped in the response, so the closing quote is
    // the first UNescaped '"' — skip backslash escapes (\" and \\) so an
    // escaped quote inside the reason doesn't truncate it.
    size_t end = start;
    while (end < response.size() && response[end] != '"') {
      end += (response[end] == '\\') ? 2 : 1;
    }
    if (end < response.size()) {
      entry += ", \"reason\": \"" + response.substr(start, end - start) + "\"";
    }
  }
  // A slow debug gets its stage breakdown and cache hits from the
  // profile the same thread just produced.
  if (tl_last_debug.rid == rid && rid != 0) {
    entry += ", \"stages\": " + tl_last_debug.stages_json +
             ", \"cache_hits\": " + std::to_string(tl_last_debug.cache_hits);
  }
  entry += "}";

  // One structured line per slow request on stderr (grep "SLOWREQ "),
  // plus the in-memory ring behind the `slowlog` command.
  std::fprintf(stderr, "SLOWREQ %s\n", entry.c_str());
  std::lock_guard<std::mutex> lock(slowlog_mu_);
  slowlog_.push_back(std::move(entry));
  while (slowlog_.size() > options_.telemetry.slow_log_entries) {
    slowlog_.pop_front();
  }
}

void Service::TrackInflightBegin(uint64_t rid, const std::string& line,
                                 double start_ms) {
  if (!options_.telemetry.watchdog_enabled || rid == 0) return;
  std::lock_guard<std::mutex> lock(inflight_mu_);
  InflightRequest& request = inflight_[rid];
  request.cmd = CommandLabel(line);
  request.start_ms = start_ms;
}

void Service::TrackInflightEnd(uint64_t rid) {
  if (!options_.telemetry.watchdog_enabled || rid == 0) return;
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(rid);
}

void Service::SetInflightDeadline(uint64_t rid, double deadline_ms) {
  if (!options_.telemetry.watchdog_enabled || rid == 0) return;
  std::lock_guard<std::mutex> lock(inflight_mu_);
  auto it = inflight_.find(rid);
  if (it != inflight_.end()) it->second.deadline_ms = deadline_ms;
}

void Service::StartTelemetryThreads() {
  const ServiceOptions::TelemetryOptions& t = options_.telemetry;
  if (!t.history_enabled && !t.watchdog_enabled) return;
  {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    telemetry_stop_ = false;
  }
  if (t.history_enabled) sampler_ = std::thread(&Service::SamplerLoop, this);
  if (t.watchdog_enabled) watchdog_ = std::thread(&Service::WatchdogLoop, this);
}

void Service::StopTelemetryThreads() {
  {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    telemetry_stop_ = true;
  }
  telemetry_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void Service::SamplerLoop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.telemetry.sample_interval_ms);
  std::unique_lock<std::mutex> lock(telemetry_mu_);
  while (!telemetry_stop_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    telemetry_cv_.wait_for(lock, interval, [this] { return telemetry_stop_; });
  }
}

void Service::SampleOnce() {
  const double now_ms = MonotonicMillis();
  // One batch per tick: readers either see the whole tick or none of
  // it (a per-series Record loop would let `history` observe a tick
  // with some series advanced and the rest still pending).
  history_.RecordBatch(now_ms, MetricsRegistry::Global().SampleValues());
}

void Service::WatchdogLoop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.telemetry.watchdog_interval_ms);
  std::unique_lock<std::mutex> lock(telemetry_mu_);
  while (!telemetry_stop_) {
    lock.unlock();
    WatchdogScan();
    lock.lock();
    telemetry_cv_.wait_for(lock, interval, [this] { return telemetry_stop_; });
  }
}

void Service::WatchdogScan() {
  static MetricCounter* const stalled =
      MetricsRegistry::Global().GetCounter("watchdog.stalled_requests");
  static MetricCounter* const overruns =
      MetricsRegistry::Global().GetCounter("watchdog.deadline_overruns");
  static MetricCounter* const fsync_stalls =
      MetricsRegistry::Global().GetCounter("watchdog.fsync_stalls");
  static MetricCounter* const scans =
      MetricsRegistry::Global().GetCounter("watchdog.scans");
  scans->Increment();

  const double now_ms = MonotonicMillis();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto& e : inflight_) {
      InflightRequest& request = e.second;
      if (!request.stall_alerted &&
          now_ms - request.start_ms >= options_.telemetry.stall_threshold_ms) {
        request.stall_alerted = true;  // alert once per request
        stalled->Increment();
        Tracer::Global().RecordInstant(
            "watchdog/stalled_request",
            "\"rid\":" + std::to_string(e.first) + ",\"cmd\":\"" +
                JsonEscape(request.cmd) + "\",\"running_ms\":" +
                FormatDouble(now_ms - request.start_ms));
      }
      if (!request.deadline_alerted && request.deadline_ms > 0.0 &&
          now_ms >
              request.deadline_ms + options_.telemetry.deadline_grace_ms) {
        request.deadline_alerted = true;
        overruns->Increment();
        Tracer::Global().RecordInstant(
            "watchdog/deadline_overrun",
            "\"rid\":" + std::to_string(e.first) + ",\"cmd\":\"" +
                JsonEscape(request.cmd) + "\",\"overrun_ms\":" +
                FormatDouble(now_ms - request.deadline_ms));
      }
    }
  }

  // Fsync probe: the WAL commit leader publishes when it entered fsync;
  // one alert per stuck episode (the start timestamp identifies it).
  const double fsync_since = FsyncInFlightSinceMs();
  if (fsync_since > 0.0 &&
      now_ms - fsync_since >= options_.telemetry.fsync_stall_ms) {
    if (fsync_alerted_since_ != fsync_since) {
      fsync_alerted_since_ = fsync_since;
      fsync_stalls->Increment();
      Tracer::Global().RecordInstant(
          "watchdog/fsync_stall",
          "\"stuck_ms\":" + FormatDouble(now_ms - fsync_since));
    }
  }
}

std::string Service::RunDebug(ManagedSession& ms) {
  DBW_TRACE_SPAN("service/debug");
  static MetricCounter* const retries =
      MetricsRegistry::Global().GetCounter("service.retries");
  // Per-stage latency lanes, sampled into the SLO history alongside the
  // end-to-end service.request_ms.
  static MetricHistogram* const preprocess_h =
      MetricsRegistry::Global().GetHistogram("explain.preprocess_ms");
  static MetricHistogram* const enumerate_h =
      MetricsRegistry::Global().GetHistogram("explain.enumerate_ms");
  static MetricHistogram* const predicates_h =
      MetricsRegistry::Global().GetHistogram("explain.predicates_ms");
  static MetricHistogram* const rank_h =
      MetricsRegistry::Global().GetHistogram("explain.rank_ms");
  static MetricHistogram* const total_h =
      MetricsRegistry::Global().GetHistogram("explain.total_ms");

  auto source = std::make_shared<CancellationSource>();
  {
    std::lock_guard<std::mutex> lock(ms.cancel_mu);
    if (ms.pending_cancel) {
      ms.pending_cancel = false;
      source->Cancel("cancelled before start");
    }
    ms.active_cancel = source;
  }

  if (ms.settings.deadline_ms > 0.0) {
    // Publish the promised deadline so the watchdog can distinguish
    // "slow" from "past its deadline and still running".
    SetInflightDeadline(CurrentRequestId(),
                        MonotonicMillis() + ms.settings.deadline_ms);
  }

  const RetryPolicy policy = CurrentRetryPolicy();
  size_t attempts = 1;
  auto exp = RetryTransient(
      policy,
      [&]() -> Result<Explanation> {
        ExecContext ctx;
        ctx.token = source->token();
        if (ms.settings.deadline_ms > 0.0) {
          // Fresh deadline per attempt: the budget is per-run, not
          // per-request, so a retried run gets its full allowance.
          ctx.deadline = Deadline::After(ms.settings.deadline_ms);
        }
        ctx.faults = faults_;
        ctx.budget = budget_;
        return ms.session.Debug(ctx);
      },
      &attempts);

  {
    std::lock_guard<std::mutex> lock(ms.cancel_mu);
    if (ms.active_cancel == source) ms.active_cancel.reset();
  }

  if (attempts > 1) retries->Increment(attempts - 1);
  if (!exp.ok()) return Error(exp.status());
  exp->profile.attempts = attempts;
  exp->profile.rid = CurrentRequestId();

  preprocess_h->Observe(exp->profile.preprocess_ms);
  enumerate_h->Observe(exp->profile.enumerate_ms);
  predicates_h->Observe(exp->profile.predicates_ms);
  rank_h->Observe(exp->profile.rank_ms);
  total_h->Observe(exp->profile.total_ms);

  tl_last_debug.rid = exp->profile.rid;
  tl_last_debug.cache_hits = exp->profile.cache_hits;
  tl_last_debug.stages_json =
      "{\"preprocess_ms\": " + FormatDouble(exp->profile.preprocess_ms) +
      ", \"enumerate_ms\": " + FormatDouble(exp->profile.enumerate_ms) +
      ", \"predicates_ms\": " + FormatDouble(exp->profile.predicates_ms) +
      ", \"rank_ms\": " + FormatDouble(exp->profile.rank_ms) +
      ", \"total_ms\": " + FormatDouble(exp->profile.total_ms) + "}";

  std::string profile_field;
  if (ms.settings.profile_enabled) {
    profile_field = ", \"profile\": " +
                    ExplainProfileToJson(exp->profile, /*pretty=*/false);
  }
  if (exp->partial) {
    return "{\"ok\": true, \"partial\": true, \"reason\": \"" +
           JsonEscape(exp->partial_reason) + "\", \"explanation\": " +
           ExplanationToJson(*exp, /*pretty=*/false) + profile_field + "}";
  }
  return "{\"ok\": true, \"explanation\": " +
         ExplanationToJson(*exp, /*pretty=*/false) + profile_field + "}";
}

// --- Admission queue ---

Status Service::Start() {
  if (options_.num_workers == 0) {
    return Status::InvalidArgument(
        "Start(): ServiceOptions.num_workers is 0 (synchronous mode)");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (running_.load(std::memory_order_acquire)) return Status::OK();
    stopping_ = false;
    running_.store(true, std::memory_order_release);
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&Service::WorkerLoop, this);
  }
  return Status::OK();
}

void Service::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_.load(std::memory_order_acquire) && workers_.empty()) return;
    stopping_ = true;
    running_.store(false, std::memory_order_release);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(queue_mu_);
  stopping_ = false;
}

std::future<std::string> Service::Submit(std::string line) {
  static MetricCounter* const submitted =
      MetricsRegistry::Global().GetCounter("service.submitted");
  static MetricCounter* const shed =
      MetricsRegistry::Global().GetCounter("service.shed");
  static MetricGauge* const depth =
      MetricsRegistry::Global().GetGauge("service.queue_depth");

  submitted->Increment();
  // The id is assigned at ADMISSION, not execution: a shed response
  // carries a rid too, so even rejected requests are correlatable.
  const uint64_t rid = NextRequestId();
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();

  std::lock_guard<std::mutex> lock(queue_mu_);
  if (!running_.load(std::memory_order_acquire) || stopping_) {
    std::string response = NotRunningResponse();
    StampRid(&response, rid);
    promise.set_value(std::move(response));
    return future;
  }
  if (queue_.size() >= options_.queue_capacity ||
      queued_bytes_ + line.size() > options_.queue_memory_watermark_bytes) {
    // Load shedding: reject fast and explicitly instead of queueing
    // unboundedly — the client gets a well-formed retryable error in
    // microseconds, not a timeout in seconds.
    shed->Increment();
    std::string response = ShedResponse(options_.shed_retry_after_ms);
    StampRid(&response, rid);
    promise.set_value(std::move(response));
    return future;
  }
  queued_bytes_ += line.size();
  queue_.push_back(QueuedRequest{std::move(line), rid, std::move(promise),
                                 std::chrono::steady_clock::now()});
  depth->Set(static_cast<int64_t>(queue_.size()));
  queue_cv_.notify_one();
  return future;
}

void Service::WorkerLoop() {
  static MetricGauge* const depth =
      MetricsRegistry::Global().GetGauge("service.queue_depth");
  static MetricHistogram* const request_ms =
      MetricsRegistry::Global().GetHistogram("service.request_ms");

  while (true) {
    QueuedRequest request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ && empty: the queue has fully drained — every
        // accepted request got a response before shutdown.
        return;
      }
      request = std::move(queue_.front());
      queue_.pop_front();
      queued_bytes_ -= request.line.size();
      depth->Set(static_cast<int64_t>(queue_.size()));
    }
    std::string response = ExecuteWithRid(request.line, request.rid);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - request.enqueued)
            .count();
    request_ms->Observe(elapsed_ms);
    request.promise.set_value(std::move(response));
  }
}

}  // namespace dbwipes
