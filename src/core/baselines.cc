#include "dbwipes/core/baselines.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "dbwipes/core/removal_scorer.h"
#include "dbwipes/expr/match_kernels.h"

namespace dbwipes {

TupleSetExplanation NaiveProvenance(const PreprocessResult& preprocess) {
  return {preprocess.suspect_inputs, "fine-grained provenance (all of F)"};
}

TupleSetExplanation InfluenceTopK(const PreprocessResult& preprocess,
                                  size_t k) {
  TupleSetExplanation out;
  out.source = "top-" + std::to_string(k) + " by influence";
  for (const TupleInfluence& ti : preprocess.influences) {
    if (out.rows.size() >= k) break;
    if (ti.influence <= 0.0) break;  // no point returning harmless tuples
    out.rows.push_back(ti.row);
  }
  std::sort(out.rows.begin(), out.rows.end());
  return out;
}

namespace {

/// Atomic condition with coverage over F (position-aligned bitmap,
/// same thresholds/categories as before; coverage now comes from the
/// shared clause-bitmap cache, so it is exactly what the emitted
/// clause matches).
struct Atom {
  Clause clause;
  Bitmap covered;
};

std::vector<Atom> BuildAtoms(const FeatureView& view,
                             const std::vector<RowId>& rows,
                             const ExhaustiveSearchOptions& options,
                             MatchEngine* engine) {
  std::vector<Atom> atoms;
  auto add_atom = [&](Clause clause) {
    Atom atom;
    atom.clause = std::move(clause);
    auto bits = engine->ClauseBitmap(atom.clause);
    if (!bits.ok()) return;
    atom.covered = **bits;  // copy: the cache may reallocate
    atoms.push_back(std::move(atom));
  };
  for (size_t f = 0; f < view.num_features(); ++f) {
    const FeatureSpec& spec = view.features()[f];
    if (spec.categorical) {
      std::unordered_map<int32_t, size_t> freq;
      for (RowId r : rows) {
        if (!view.IsNull(r, f)) ++freq[static_cast<int32_t>(view.Get(r, f))];
      }
      std::vector<std::pair<int32_t, size_t>> cats(freq.begin(), freq.end());
      std::sort(cats.begin(), cats.end(),
                [](const auto& a, const auto& b) { return a.second > b.second; });
      if (cats.size() > options.max_categories_per_feature) {
        cats.resize(options.max_categories_per_feature);
      }
      for (const auto& [code, count] : cats) {
        add_atom(Clause::Make(spec.name, CompareOp::kEq,
                              Value(view.CategoryName(f, code))));
      }
    } else {
      std::vector<double> values;
      for (RowId r : rows) {
        const double v = view.Get(r, f);
        if (!std::isnan(v)) values.push_back(v);
      }
      if (values.size() < 2) continue;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      if (values.size() < 2) continue;
      std::set<double> thresholds;
      const size_t buckets =
          std::min(options.max_numeric_thresholds, values.size() - 1);
      for (size_t b = 1; b <= buckets; ++b) {
        const double q =
            static_cast<double>(b) / static_cast<double>(buckets + 1);
        const size_t idx = std::min(
            values.size() - 2,
            static_cast<size_t>(q * static_cast<double>(values.size() - 1)));
        thresholds.insert(values[idx] + (values[idx + 1] - values[idx]) / 2.0);
      }
      for (double t : thresholds) {
        for (CompareOp op : {CompareOp::kLe, CompareOp::kGt}) {
          add_atom(Clause::Make(spec.name, op, Value(t)));
        }
      }
    }
  }
  return atoms;
}

}  // namespace

Result<std::vector<RankedPredicate>> ExhaustivePredicateSearch(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const FeatureView& view,
    const PreprocessResult& preprocess,
    const ExhaustiveSearchOptions& options, size_t* num_evaluated) {
  const std::vector<RowId>& suspects = preprocess.suspect_inputs;
  if (suspects.empty()) {
    return Status::InvalidArgument("no suspect inputs to search over");
  }
  // One engine over F: every threshold/category atom is kernel-scanned
  // once, and conjunction coverage below is word-ANDs of cached
  // bitmaps.
  MatchEngine engine(table, suspects);
  const std::vector<Atom> atoms = BuildAtoms(view, suspects, options, &engine);
  if (atoms.empty()) {
    return Status::InvalidArgument("no atomic conditions available");
  }

  const double baseline = preprocess.baseline_error;
  size_t evaluated = 0;
  std::vector<RankedPredicate> ranked;

  // Snapshot the selected groups' aggregator state once; every
  // conjunction evaluated below is then scored by Remove() deltas over
  // its coverage mask instead of a full lineage rebuild.
  DBW_ASSIGN_OR_RETURN(RemovalScorer scorer,
                       RemovalScorer::Create(table, result, selected_groups,
                                             agg_index, suspects));

  // Enumerate conjunctions by DFS over increasing atom indices.
  struct Frame {
    std::vector<size_t> atom_ids;
    Bitmap covered;
  };
  Bitmap all(suspects.size());
  all.SetAll();
  std::vector<Frame> stack;
  stack.push_back({{}, std::move(all)});

  auto evaluate = [&](const Frame& frame) -> Status {
    const size_t matched = frame.covered.CountOnes();
    if (matched < options.min_coverage || matched == suspects.size()) {
      return Status::OK();
    }
    ++evaluated;
    const double err_after =
        metric.Error(scorer.ValuesAfterRemoval(frame.covered));
    RankedPredicate rp;
    std::vector<Clause> clauses;
    for (size_t id : frame.atom_ids) clauses.push_back(atoms[id].clause);
    rp.predicate = Predicate(std::move(clauses)).Simplify();
    rp.error_after = err_after;
    rp.matched_in_suspects = matched;
    rp.error_improvement =
        baseline > 0.0
            ? std::clamp((baseline - err_after) / baseline, 0.0, 1.0)
            : 0.0;
    rp.score = rp.error_improvement;
    rp.strategy = "exhaustive";
    ranked.push_back(std::move(rp));
    return Status::OK();
  };

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (!frame.atom_ids.empty()) {
      DBW_RETURN_NOT_OK(evaluate(frame));
    }
    if (frame.atom_ids.size() >= options.max_clauses) continue;
    const size_t start =
        frame.atom_ids.empty() ? 0 : frame.atom_ids.back() + 1;
    for (size_t a = start; a < atoms.size(); ++a) {
      Frame next;
      next.atom_ids = frame.atom_ids;
      next.atom_ids.push_back(a);
      next.covered = frame.covered;
      next.covered.AndWith(atoms[a].covered);
      if (next.covered.CountOnes() < options.min_coverage) {
        continue;  // prune the subtree
      }
      stack.push_back(std::move(next));
    }
  }

  if (num_evaluated != nullptr) *num_evaluated = evaluated;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedPredicate& a, const RankedPredicate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     // Tie-break toward fewer matched tuples (tighter
                     // description).
                     return a.matched_in_suspects < b.matched_in_suspects;
                   });
  if (ranked.size() > options.top_k) ranked.resize(options.top_k);
  return ranked;
}

}  // namespace dbwipes
