#include "dbwipes/core/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dbwipes {

namespace {

// File envelope: magic(8) version(4) payload_size(8) checksum(8) payload.
constexpr char kMagic[8] = {'D', 'B', 'W', 'S', 'N', 'A', 'P', '\0'};
constexpr size_t kHeaderSize = 8 + 4 + 8 + 8;

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Payload encoding: little-endian fixed-width integers, doubles as
// their 8 bytes, strings as u32 length + bytes. Every read is
// bounds-checked against the declared payload size.
// ---------------------------------------------------------------------------

class PayloadWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Boxed(const Value& v) {
    if (v.is_null()) {
      U8(0);
    } else if (v.is_int64()) {
      U8(1);
      I64(v.int64());
    } else if (v.is_double()) {
      U8(2);
      F64(v.dbl());
    } else {
      U8(3);
      Str(v.str());
    }
  }

  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

class PayloadReader {
 public:
  explicit PayloadReader(const std::string& data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status U8(uint8_t* v, const char* what) {
    return Fixed(v, sizeof(*v), what);
  }
  Status U32(uint32_t* v, const char* what) {
    return Fixed(v, sizeof(*v), what);
  }
  Status U64(uint64_t* v, const char* what) {
    return Fixed(v, sizeof(*v), what);
  }
  Status I32(int32_t* v, const char* what) {
    return Fixed(v, sizeof(*v), what);
  }
  Status I64(int64_t* v, const char* what) {
    return Fixed(v, sizeof(*v), what);
  }
  Status F64(double* v, const char* what) {
    return Fixed(v, sizeof(*v), what);
  }
  Status Str(std::string* s, const char* what) {
    uint32_t n = 0;
    DBW_RETURN_NOT_OK(U32(&n, what));
    if (n > remaining()) {
      return Corrupt(what, std::string("string of ") + std::to_string(n) +
                               " bytes exceeds remaining payload");
    }
    s->assign(data_, pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status Boxed(Value* v, const char* what) {
    uint8_t tag = 0;
    DBW_RETURN_NOT_OK(U8(&tag, what));
    switch (tag) {
      case 0:
        *v = Value::Null();
        return Status::OK();
      case 1: {
        int64_t i = 0;
        DBW_RETURN_NOT_OK(I64(&i, what));
        *v = Value(i);
        return Status::OK();
      }
      case 2: {
        double d = 0.0;
        DBW_RETURN_NOT_OK(F64(&d, what));
        *v = Value(d);
        return Status::OK();
      }
      case 3: {
        std::string s;
        DBW_RETURN_NOT_OK(Str(&s, what));
        *v = Value(std::move(s));
        return Status::OK();
      }
      default:
        return Corrupt(what, "unknown value tag " + std::to_string(tag));
    }
  }

  Status ExpectExhausted() const {
    if (pos_ != data_.size()) {
      return Status::IoError("corrupt snapshot: " +
                             std::to_string(data_.size() - pos_) +
                             " trailing payload bytes after the last field");
    }
    return Status::OK();
  }

  Status Corrupt(const char* what, const std::string& detail) const {
    return Status::IoError("corrupt snapshot: " + std::string(what) +
                           " at payload offset " + std::to_string(pos_) +
                           ": " + detail);
  }

 private:
  Status Fixed(void* v, size_t n, const char* what) {
    if (n > remaining()) {
      return Corrupt(what, "needs " + std::to_string(n) + " bytes, " +
                               std::to_string(remaining()) + " remain");
    }
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const std::string& data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Tables: schema, then column-major typed data with a validity byte
// per row. String columns persist their dictionary + codes so the
// restored column is code-for-code identical (the match kernels'
// bitmaps, and therefore Explain output, depend on dictionary order).
// ---------------------------------------------------------------------------

void WriteTable(PayloadWriter* w, const std::string& reg_name,
                const Table& t) {
  w->Str(reg_name);
  w->Str(t.name());
  w->U32(static_cast<uint32_t>(t.schema().num_fields()));
  for (const Field& f : t.schema().fields()) {
    w->Str(f.name);
    w->U8(static_cast<uint8_t>(f.type));
  }
  w->U64(t.num_rows());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    for (RowId r = 0; r < t.num_rows(); ++r) {
      w->U8(col.IsNull(r) ? 0 : 1);
    }
    switch (col.type()) {
      case DataType::kInt64:
        for (int64_t v : col.int64_data()) w->I64(v);
        break;
      case DataType::kDouble:
        for (double v : col.double_data()) w->F64(v);
        break;
      case DataType::kString: {
        w->U32(static_cast<uint32_t>(col.dictionary_size()));
        for (size_t i = 0; i < col.dictionary_size(); ++i) {
          w->Str(col.DictionaryValue(static_cast<int32_t>(i)));
        }
        for (int32_t code : col.code_data()) w->I32(code);
        break;
      }
    }
  }
}

Result<std::pair<std::string, TablePtr>> ReadTable(PayloadReader* r) {
  std::string reg_name, table_name;
  DBW_RETURN_NOT_OK(r->Str(&reg_name, "table registration name"));
  DBW_RETURN_NOT_OK(r->Str(&table_name, "table name"));
  uint32_t num_fields = 0;
  DBW_RETURN_NOT_OK(r->U32(&num_fields, "table field count"));
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    Field f;
    DBW_RETURN_NOT_OK(r->Str(&f.name, "field name"));
    uint8_t type = 0;
    DBW_RETURN_NOT_OK(r->U8(&type, "field type"));
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return r->Corrupt("field type", "unknown type tag " +
                                          std::to_string(type));
    }
    f.type = static_cast<DataType>(type);
    fields.push_back(std::move(f));
  }
  uint64_t num_rows = 0;
  DBW_RETURN_NOT_OK(r->U64(&num_rows, "table row count"));
  // A row costs at least one validity byte per column; refuse counts
  // the remaining payload cannot possibly hold.
  if (num_fields > 0 && num_rows > r->remaining()) {
    return r->Corrupt("table row count",
                      std::to_string(num_rows) +
                          " rows exceed the remaining payload");
  }

  auto table = std::make_shared<Table>(Schema(std::move(fields)), table_name);
  // Columns arrive column-major but Table only appends row-major;
  // buffer the boxed values and append whole rows.
  std::vector<std::vector<Value>> columns(num_fields);
  for (uint32_t c = 0; c < num_fields; ++c) {
    std::vector<uint8_t> valid(num_rows);
    for (uint64_t rrow = 0; rrow < num_rows; ++rrow) {
      DBW_RETURN_NOT_OK(r->U8(&valid[rrow], "validity byte"));
      if (valid[rrow] > 1) {
        return r->Corrupt("validity byte",
                          "expected 0 or 1, got " +
                              std::to_string(valid[rrow]));
      }
    }
    std::vector<Value>& out = columns[c];
    out.reserve(num_rows);
    switch (table->schema().field(c).type) {
      case DataType::kInt64:
        for (uint64_t rrow = 0; rrow < num_rows; ++rrow) {
          int64_t v = 0;
          DBW_RETURN_NOT_OK(r->I64(&v, "int64 cell"));
          out.push_back(valid[rrow] ? Value(v) : Value::Null());
        }
        break;
      case DataType::kDouble:
        for (uint64_t rrow = 0; rrow < num_rows; ++rrow) {
          double v = 0.0;
          DBW_RETURN_NOT_OK(r->F64(&v, "double cell"));
          out.push_back(valid[rrow] ? Value(v) : Value::Null());
        }
        break;
      case DataType::kString: {
        uint32_t dict_size = 0;
        DBW_RETURN_NOT_OK(r->U32(&dict_size, "dictionary size"));
        std::vector<std::string> dict(dict_size);
        for (uint32_t i = 0; i < dict_size; ++i) {
          DBW_RETURN_NOT_OK(r->Str(&dict[i], "dictionary entry"));
        }
        for (uint64_t rrow = 0; rrow < num_rows; ++rrow) {
          int32_t code = 0;
          DBW_RETURN_NOT_OK(r->I32(&code, "string code"));
          if (!valid[rrow]) {
            out.push_back(Value::Null());
            continue;
          }
          if (code < 0 || static_cast<uint32_t>(code) >= dict_size) {
            return r->Corrupt("string code",
                              "code " + std::to_string(code) +
                                  " outside dictionary of " +
                                  std::to_string(dict_size));
          }
          out.push_back(Value(dict[code]));
        }
        break;
      }
    }
  }
  std::vector<Value> row(num_fields);
  for (uint64_t rrow = 0; rrow < num_rows; ++rrow) {
    for (uint32_t c = 0; c < num_fields; ++c) row[c] = columns[c][rrow];
    DBW_RETURN_NOT_OK(table->AppendRow(row));
  }
  return std::make_pair(std::move(reg_name), TablePtr(std::move(table)));
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

void WritePredicate(PayloadWriter* w, const Predicate& p) {
  w->U32(static_cast<uint32_t>(p.num_clauses()));
  for (const Clause& c : p.clauses()) {
    w->Str(c.attribute);
    w->U8(static_cast<uint8_t>(c.op));
    w->Boxed(c.literal);
    w->U32(static_cast<uint32_t>(c.in_set.size()));
    for (const Value& v : c.in_set) w->Boxed(v);
  }
}

Result<Predicate> ReadPredicate(PayloadReader* r) {
  uint32_t num_clauses = 0;
  DBW_RETURN_NOT_OK(r->U32(&num_clauses, "clause count"));
  std::vector<Clause> clauses;
  clauses.reserve(num_clauses);
  for (uint32_t i = 0; i < num_clauses; ++i) {
    Clause c;
    DBW_RETURN_NOT_OK(r->Str(&c.attribute, "clause attribute"));
    uint8_t op = 0;
    DBW_RETURN_NOT_OK(r->U8(&op, "clause operator"));
    if (op > static_cast<uint8_t>(CompareOp::kContains)) {
      return r->Corrupt("clause operator",
                        "unknown operator tag " + std::to_string(op));
    }
    c.op = static_cast<CompareOp>(op);
    DBW_RETURN_NOT_OK(r->Boxed(&c.literal, "clause literal"));
    uint32_t in_n = 0;
    DBW_RETURN_NOT_OK(r->U32(&in_n, "IN-set size"));
    c.in_set.resize(in_n);
    for (uint32_t j = 0; j < in_n; ++j) {
      DBW_RETURN_NOT_OK(r->Boxed(&c.in_set[j], "IN-set value"));
    }
    clauses.push_back(std::move(c));
  }
  return Predicate(std::move(clauses));
}

void WriteSession(PayloadWriter* w, const ServiceSnapshot::SessionState& s) {
  w->Str(s.name);
  w->F64(s.settings.deadline_ms);
  w->U8(s.settings.profile_enabled ? 1 : 0);
  w->Str(s.replay.original_sql);
  w->U32(static_cast<uint32_t>(s.replay.applied_predicates.size()));
  for (const Predicate& p : s.replay.applied_predicates) WritePredicate(w, p);
  w->U32(static_cast<uint32_t>(s.replay.selected_groups.size()));
  for (size_t g : s.replay.selected_groups) w->U64(g);
  w->U32(static_cast<uint32_t>(s.replay.selected_inputs.size()));
  for (RowId rid : s.replay.selected_inputs) w->U32(rid);
  w->U8(s.replay.has_metric ? 1 : 0);
  w->Str(s.replay.metric_kind);
  w->F64(s.replay.metric_expected);
  w->U64(s.replay.agg_index);
}

Result<ServiceSnapshot::SessionState> ReadSession(PayloadReader* r) {
  ServiceSnapshot::SessionState s;
  DBW_RETURN_NOT_OK(r->Str(&s.name, "session name"));
  DBW_RETURN_NOT_OK(SessionManager::ValidateName(s.name));
  DBW_RETURN_NOT_OK(r->F64(&s.settings.deadline_ms, "session deadline"));
  uint8_t profile_enabled = 0;
  DBW_RETURN_NOT_OK(r->U8(&profile_enabled, "profile flag"));
  s.settings.profile_enabled = profile_enabled != 0;
  DBW_RETURN_NOT_OK(r->Str(&s.replay.original_sql, "original sql"));
  uint32_t num_preds = 0;
  DBW_RETURN_NOT_OK(r->U32(&num_preds, "predicate count"));
  s.replay.applied_predicates.reserve(num_preds);
  for (uint32_t i = 0; i < num_preds; ++i) {
    DBW_ASSIGN_OR_RETURN(Predicate p, ReadPredicate(r));
    s.replay.applied_predicates.push_back(std::move(p));
  }
  uint32_t num_groups = 0;
  DBW_RETURN_NOT_OK(r->U32(&num_groups, "selected-group count"));
  s.replay.selected_groups.reserve(num_groups);
  for (uint32_t i = 0; i < num_groups; ++i) {
    uint64_t g = 0;
    DBW_RETURN_NOT_OK(r->U64(&g, "selected group"));
    s.replay.selected_groups.push_back(static_cast<size_t>(g));
  }
  uint32_t num_inputs = 0;
  DBW_RETURN_NOT_OK(r->U32(&num_inputs, "selected-input count"));
  s.replay.selected_inputs.reserve(num_inputs);
  for (uint32_t i = 0; i < num_inputs; ++i) {
    uint32_t rid = 0;
    DBW_RETURN_NOT_OK(r->U32(&rid, "selected input"));
    s.replay.selected_inputs.push_back(rid);
  }
  uint8_t has_metric = 0;
  DBW_RETURN_NOT_OK(r->U8(&has_metric, "metric flag"));
  s.replay.has_metric = has_metric != 0;
  DBW_RETURN_NOT_OK(r->Str(&s.replay.metric_kind, "metric kind"));
  DBW_RETURN_NOT_OK(r->F64(&s.replay.metric_expected, "metric expected"));
  uint64_t agg_index = 0;
  DBW_RETURN_NOT_OK(r->U64(&agg_index, "metric agg index"));
  s.replay.agg_index = static_cast<size_t>(agg_index);
  return s;
}

}  // namespace

std::string SerializeSnapshotPayload(const ServiceSnapshot& snapshot) {
  PayloadWriter w;
  w.U32(static_cast<uint32_t>(snapshot.tables.size()));
  for (const auto& named : snapshot.tables) {
    WriteTable(&w, named.first, *named.second);
  }
  w.U32(static_cast<uint32_t>(snapshot.sessions.size()));
  for (const ServiceSnapshot::SessionState& s : snapshot.sessions) {
    WriteSession(&w, s);
  }
  // v2: shard layouts (boundaries only; shard contents are derivable).
  w.U32(static_cast<uint32_t>(snapshot.shard_layouts.size()));
  for (const ServiceSnapshot::ShardLayout& layout : snapshot.shard_layouts) {
    w.Str(layout.table);
    w.U32(static_cast<uint32_t>(layout.shard_rows.size()));
    for (uint64_t rows : layout.shard_rows) w.U64(rows);
  }
  // v3: the WAL LSN this snapshot is consistent through, plus the
  // process-level retry knobs (their logged records may be truncated).
  w.U64(snapshot.wal_lsn);
  w.U32(snapshot.retry_max_attempts);
  w.F64(snapshot.retry_backoff_ms);
  return w.Take();
}

Result<ServiceSnapshot> ParseSnapshotPayload(const std::string& payload,
                                             uint32_t version) {
  PayloadReader r(payload);
  ServiceSnapshot snap;
  uint32_t num_tables = 0;
  DBW_RETURN_NOT_OK(r.U32(&num_tables, "table count"));
  for (uint32_t i = 0; i < num_tables; ++i) {
    DBW_ASSIGN_OR_RETURN(auto named, ReadTable(&r));
    snap.tables.push_back(std::move(named));
  }
  uint32_t num_sessions = 0;
  DBW_RETURN_NOT_OK(r.U32(&num_sessions, "session count"));
  for (uint32_t i = 0; i < num_sessions; ++i) {
    DBW_ASSIGN_OR_RETURN(ServiceSnapshot::SessionState s, ReadSession(&r));
    snap.sessions.push_back(std::move(s));
  }
  if (version >= 2) {
    uint32_t num_layouts = 0;
    DBW_RETURN_NOT_OK(r.U32(&num_layouts, "shard-layout count"));
    for (uint32_t i = 0; i < num_layouts; ++i) {
      ServiceSnapshot::ShardLayout layout;
      DBW_RETURN_NOT_OK(r.Str(&layout.table, "shard-layout table name"));
      uint32_t num_shards = 0;
      DBW_RETURN_NOT_OK(r.U32(&num_shards, "shard count"));
      layout.shard_rows.reserve(num_shards);
      for (uint32_t s = 0; s < num_shards; ++s) {
        uint64_t rows = 0;
        DBW_RETURN_NOT_OK(r.U64(&rows, "shard row count"));
        layout.shard_rows.push_back(rows);
      }
      snap.shard_layouts.push_back(std::move(layout));
    }
  }
  if (version >= 3) {
    DBW_RETURN_NOT_OK(r.U64(&snap.wal_lsn, "wal checkpoint lsn"));
    DBW_RETURN_NOT_OK(r.U32(&snap.retry_max_attempts, "retry max attempts"));
    DBW_RETURN_NOT_OK(r.F64(&snap.retry_backoff_ms, "retry backoff ms"));
  }
  DBW_RETURN_NOT_OK(r.ExpectExhausted());
  return snap;
}

namespace {

/// write(2) until done, honoring an injected short-write/error fault
/// (at most `fault->short_write_limit` bytes land before the fault's
/// crash/status applies).
Status WriteAllFd(int fd, const char* data, size_t n, const std::string& path,
                  const FaultInjector::Fault* fault) {
  size_t allowed = n;
  if (fault != nullptr && fault->short_write_limit > 0) {
    allowed = allowed < fault->short_write_limit ? allowed
                                                 : fault->short_write_limit;
  }
  size_t written = 0;
  while (written < allowed) {
    ssize_t r = ::write(fd, data + written, allowed - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed for '" + path + "': " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(r);
  }
  if (fault != nullptr) {
    if (fault->crash) ::_exit(kFaultCrashExit);
    if (!fault->status.ok()) return fault->status;
    if (allowed < n) {
      return Status::IoError("short write injected at '" + path + "'");
    }
  }
  return Status::OK();
}

Status HitSite(FaultInjector* faults, const char* site) {
  if (faults == nullptr) return Status::OK();
  FaultInjector::Fault fault;
  if (!faults->HitIo(site, &fault)) return Status::OK();
  if (fault.crash) ::_exit(kFaultCrashExit);
  return fault.status;
}

}  // namespace

Status WriteSnapshot(const std::string& path, const ServiceSnapshot& snapshot,
                     FaultInjector* faults) {
  const std::string payload = SerializeSnapshotPayload(snapshot);
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());
  const uint32_t version = kSnapshotFormatVersion;
  const uint64_t payload_size = payload.size();

  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof(kMagic));
  file.append(reinterpret_cast<const char*>(&version), sizeof(version));
  file.append(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
  file.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  file.append(payload);

  // Write the bytes to a temp sibling, fsync it, atomically rename into
  // place, then fsync the parent directory. The rename gives atomicity
  // (readers and a post-crash restart see the old file or the new one,
  // never a prefix); the two fsyncs give durability — without the file
  // fsync the rename can land before the data, and without the
  // directory fsync the rename itself can evaporate in a power cut.
  const std::string tmp = path + ".tmp";
  Status st = HitSite(faults, "snapshot/open");
  int fd = -1;
  if (st.ok()) {
    fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) {
      st = Status::IoError("cannot open '" + tmp + "' for writing: " +
                           std::strerror(errno));
    }
  }
  if (st.ok()) {
    FaultInjector::Fault fault;
    const FaultInjector::Fault* fault_ptr = nullptr;
    if (faults != nullptr && faults->HitIo("snapshot/write", &fault)) {
      fault_ptr = &fault;
    }
    st = WriteAllFd(fd, file.data(), file.size(), tmp, fault_ptr);
  }
  if (st.ok()) st = HitSite(faults, "snapshot/fsync");
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError("fsync failed for '" + tmp + "': " +
                         std::strerror(errno));
  }
  if (fd >= 0) ::close(fd);
  if (st.ok()) st = HitSite(faults, "snapshot/rename");
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  DBW_RETURN_NOT_OK(HitSite(faults, "snapshot/dirsync"));
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) {
    return Status::IoError("cannot open directory '" + dir +
                           "' for fsync: " + std::strerror(errno));
  }
  const bool dir_synced = ::fsync(dfd) == 0;
  ::close(dfd);
  if (!dir_synced) {
    return Status::IoError("directory fsync failed for '" + dir + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<ServiceSnapshot> ReadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open snapshot '" + path + "'");
  }
  std::string file;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) file.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("error reading snapshot '" + path + "'");
  }
  return ReadSnapshotFromBytes(file, path);
}

Result<ServiceSnapshot> ReadSnapshotFromBytes(const std::string& file,
                                              const std::string& origin) {
  const std::string& path = origin;
  if (file.size() < kHeaderSize) {
    return Status::IoError("truncated snapshot '" + path + "': " +
                           std::to_string(file.size()) +
                           " bytes is smaller than the " +
                           std::to_string(kHeaderSize) + "-byte header");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("'" + path + "' is not a DBWipes snapshot (bad magic)");
  }
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, file.data() + 8, sizeof(version));
  std::memcpy(&payload_size, file.data() + 12, sizeof(payload_size));
  std::memcpy(&checksum, file.data() + 20, sizeof(checksum));
  if (version == 0 || version > kSnapshotFormatVersion) {
    // A newer (or nonsense) version must be a precise refusal, never a
    // parse attempt: the payload layout is unknown to this build.
    return Status::IoError(
        "snapshot '" + path + "' has format version " +
        std::to_string(version) + "; this build reads versions 1.." +
        std::to_string(kSnapshotFormatVersion) +
        (version > kSnapshotFormatVersion
             ? " (file was written by a newer build)"
             : ""));
  }
  if (file.size() - kHeaderSize != payload_size) {
    return Status::IoError(
        "truncated snapshot '" + path + "': header declares " +
        std::to_string(payload_size) + " payload bytes but " +
        std::to_string(file.size() - kHeaderSize) + " are present");
  }
  const uint64_t actual = Fnv1a64(file.data() + kHeaderSize, payload_size);
  if (actual != checksum) {
    return Status::IoError("snapshot '" + path +
                           "' failed its checksum (corrupt payload)");
  }
  return ParseSnapshotPayload(file.substr(kHeaderSize), version);
}

}  // namespace dbwipes
