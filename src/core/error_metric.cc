#include "dbwipes/core/error_metric.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/stats.h"
#include "dbwipes/common/string_util.h"

namespace dbwipes {

namespace {

class FunctionMetric final : public ErrorMetric {
 public:
  FunctionMetric(std::string description,
                 std::function<double(const std::vector<double>&)> fn)
      : description_(std::move(description)), fn_(std::move(fn)) {}

  double Error(const std::vector<double>& values) const override {
    return fn_(values);
  }
  std::string Describe() const override { return description_; }

 private:
  std::string description_;
  std::function<double(const std::vector<double>&)> fn_;
};

std::vector<double> DropNaN(const std::vector<double>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    if (!std::isnan(v)) out.push_back(v);
  }
  return out;
}

}  // namespace

ErrorMetricPtr TooHigh(double expected) {
  return Custom(
      "values are too high (expected <= " + FormatDouble(expected) + ")",
      [expected](const std::vector<double>& values) {
        double worst = 0.0;
        for (double v : DropNaN(values)) worst = std::max(worst, v - expected);
        return worst;
      });
}

ErrorMetricPtr TooLow(double expected) {
  return Custom(
      "values are too low (expected >= " + FormatDouble(expected) + ")",
      [expected](const std::vector<double>& values) {
        double worst = 0.0;
        for (double v : DropNaN(values)) worst = std::max(worst, expected - v);
        return worst;
      });
}

ErrorMetricPtr NotEqual(double expected) {
  return Custom(
      "values should equal " + FormatDouble(expected),
      [expected](const std::vector<double>& values) {
        double worst = 0.0;
        for (double v : DropNaN(values)) {
          worst = std::max(worst, std::fabs(v - expected));
        }
        return worst;
      });
}

ErrorMetricPtr TotalAbove(double expected) {
  return Custom(
      "total overshoot above " + FormatDouble(expected),
      [expected](const std::vector<double>& values) {
        double total = 0.0;
        for (double v : DropNaN(values)) total += std::max(0.0, v - expected);
        return total;
      });
}

ErrorMetricPtr TotalBelow(double expected) {
  return Custom(
      "total undershoot below " + FormatDouble(expected),
      [expected](const std::vector<double>& values) {
        double total = 0.0;
        for (double v : DropNaN(values)) total += std::max(0.0, expected - v);
        return total;
      });
}

ErrorMetricPtr Custom(
    std::string description,
    std::function<double(const std::vector<double>&)> fn) {
  return std::make_shared<FunctionMetric>(std::move(description),
                                          std::move(fn));
}

std::vector<MetricSuggestion> SuggestMetrics(
    AggKind kind, const std::vector<double>& selected,
    const std::vector<double>& unselected) {
  // Default expected value: the typical (median) value of the groups
  // the user did NOT flag; fall back to the selection itself.
  std::vector<double> reference = DropNaN(unselected);
  if (reference.empty()) reference = DropNaN(selected);
  const double typical = reference.empty() ? 0.0 : Median(reference);

  const std::vector<double> sel = DropNaN(selected);
  const double sel_mean = sel.empty() ? typical : Mean(sel);

  std::vector<MetricSuggestion> out;
  // Order the suggestions so the most plausible direction comes first,
  // the way the dashboard would.
  const bool looks_high = sel_mean > typical;
  MetricSuggestion high{"values are too high",
                        [](double c) { return TooHigh(c); }, typical};
  MetricSuggestion low{"values are too low",
                       [](double c) { return TooLow(c); }, typical};
  MetricSuggestion equal{"values should be equal to",
                         [](double c) { return NotEqual(c); }, typical};
  if (looks_high) {
    out.push_back(high);
    out.push_back(low);
  } else {
    out.push_back(low);
    out.push_back(high);
  }
  out.push_back(equal);

  // Sum-like aggregates accumulate, so cumulative variants make sense.
  if (kind == AggKind::kSum || kind == AggKind::kCount) {
    out.push_back(MetricSuggestion{"total overshoot above",
                                   [](double c) { return TotalAbove(c); },
                                   typical});
    out.push_back(MetricSuggestion{"total undershoot below",
                                   [](double c) { return TotalBelow(c); },
                                   typical});
  }
  return out;
}

Result<ErrorMetricPtr> MetricFromKind(const std::string& kind,
                                      double expected) {
  if (kind == "too_high") return TooHigh(expected);
  if (kind == "too_low") return TooLow(expected);
  if (kind == "not_equal") return NotEqual(expected);
  if (kind == "total_above") return TotalAbove(expected);
  if (kind == "total_below") return TotalBelow(expected);
  return Status::InvalidArgument("unknown metric kind '" + kind + "'");
}

}  // namespace dbwipes
