#include "dbwipes/core/removal.h"

#include <algorithm>

#include "dbwipes/query/aggregate.h"

namespace dbwipes {

Result<std::vector<double>> ValuesAfterRemoval(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, size_t agg_index,
    const std::vector<RowId>& removed_sorted) {
  if (agg_index >= result.query.aggregates.size()) {
    return Status::OutOfRange("agg_index out of range");
  }
  // The binary search below silently skips nothing-or-everything on an
  // unsorted vector, so an unsorted caller would get wrong values, not
  // a crash — validate up front. The check is O(|removed|), dwarfed by
  // the per-lineage argument evaluation this function performs.
  if (!std::is_sorted(removed_sorted.begin(), removed_sorted.end())) {
    return Status::InvalidArgument(
        "ValuesAfterRemoval: removed row ids must be sorted ascending");
  }
  const AggSpec& spec = result.query.aggregates[agg_index];

  std::vector<double> values;
  values.reserve(selected_groups.size());
  for (size_t g : selected_groups) {
    if (g >= result.num_groups()) {
      return Status::OutOfRange("selected group out of range");
    }
    AggregatorPtr agg = MakeAggregator(spec.kind);
    for (RowId r : result.lineage[g]) {
      if (std::binary_search(removed_sorted.begin(), removed_sorted.end(),
                             r)) {
        continue;
      }
      if (!spec.argument) {
        agg->Add(0.0);  // count(*)
        continue;
      }
      DBW_ASSIGN_OR_RETURN(Value v, spec.argument->Eval(table, r));
      if (v.is_null()) continue;
      DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
      agg->Add(d);
    }
    values.push_back(agg->Value());
  }
  return values;
}

double PerGroupError(const ErrorMetric& metric,
                     const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  std::vector<double> single(1);
  double total = 0.0;
  for (double v : values) {
    single[0] = v;
    total += metric.Error(single);
  }
  return total / static_cast<double>(values.size());
}

Result<double> PerGroupErrorAfterRemoval(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& removed_sorted) {
  DBW_ASSIGN_OR_RETURN(
      std::vector<double> values,
      ValuesAfterRemoval(table, result, selected_groups, agg_index,
                         removed_sorted));
  return PerGroupError(metric, values);
}

Result<double> ErrorAfterRemoval(const Table& table, const QueryResult& result,
                                 const std::vector<size_t>& selected_groups,
                                 const ErrorMetric& metric, size_t agg_index,
                                 const std::vector<RowId>& removed_sorted) {
  DBW_ASSIGN_OR_RETURN(
      std::vector<double> values,
      ValuesAfterRemoval(table, result, selected_groups, agg_index,
                         removed_sorted));
  return metric.Error(values);
}

}  // namespace dbwipes
