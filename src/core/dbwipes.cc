#include "dbwipes/core/dbwipes.h"

#include <algorithm>
#include <chrono>

#include "dbwipes/common/stats.h"

namespace dbwipes {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::vector<std::string> DefaultExplainColumns(const Table& table,
                                               const AggregateQuery& query,
                                               size_t agg_index) {
  std::vector<std::string> exclude;
  if (agg_index < query.aggregates.size() &&
      query.aggregates[agg_index].argument) {
    query.aggregates[agg_index].argument->CollectColumns(&exclude);
  }
  std::vector<std::string> out;
  for (const Field& f : table.schema().fields()) {
    if (std::find(exclude.begin(), exclude.end(), f.name) == exclude.end()) {
      out.push_back(f.name);
    }
  }
  return out;
}

Result<Explanation> DBWipes::Explain(const QueryResult& result,
                                     const ExplanationRequest& request,
                                     const ExecContext& ctx) const {
  DBW_FAULT(ctx, "pipeline/explain");
  if (!request.metric) {
    return Status::InvalidArgument("no error metric supplied");
  }
  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       db_->GetTable(result.query.table_name));

  std::vector<std::string> columns = request.explain_columns;
  if (columns.empty()) {
    columns = DefaultExplainColumns(*table, result.query, request.agg_index);
  }
  DBW_ASSIGN_OR_RETURN(FeatureView view, FeatureView::Create(*table, columns));

  Explanation out;

  // A stage interrupted by the context degrades the run instead of
  // failing it: everything completed so far ships, flagged partial.
  auto degrade = [&out](const Status& why) {
    out.partial = true;
    if (out.partial_reason.empty()) out.partial_reason = why.ToString();
  };

  // Stage 1: Preprocessor.
  auto t0 = std::chrono::steady_clock::now();
  Status cont = ctx.CheckContinue();
  if (!cont.ok()) {
    degrade(cont);
    return out;
  }
  DBW_ASSIGN_OR_RETURN(
      out.preprocess,
      Preprocessor::Run(*table, result, request.selected_groups,
                        *request.metric, request.agg_index,
                        options_.per_group_influence));
  out.preprocess_ms = MillisSince(t0);

  // Stage 2: Dataset Enumerator.
  t0 = std::chrono::steady_clock::now();
  DatasetEnumerator enumerator(options_.enumerator);
  {
    auto cleaned =
        enumerator.CleanDPrime(*table, request.suspicious_inputs,
                               out.preprocess.suspect_inputs,
                               out.preprocess.influences, view, ctx);
    if (!cleaned.ok()) {
      if (cleaned.status().IsInterrupt()) {
        degrade(cleaned.status());
        return out;
      }
      return cleaned.status();
    }
    out.cleaned_dprime = *std::move(cleaned);
  }
  {
    auto candidates =
        enumerator.Enumerate(*table, result, request.selected_groups,
                             out.preprocess, request.suspicious_inputs, view,
                             *request.metric, request.agg_index, ctx);
    if (!candidates.ok()) {
      if (candidates.status().IsInterrupt()) {
        degrade(candidates.status());
        return out;
      }
      return candidates.status();
    }
    out.candidates = *std::move(candidates);
  }
  out.enumerate_ms = MillisSince(t0);

  // Stage 3: Predicate Enumerator.
  t0 = std::chrono::steady_clock::now();
  PredicateEnumerator predicate_enumerator(options_.predicates);
  std::vector<EnumeratedPredicate> enumerated;
  {
    auto r = predicate_enumerator.Enumerate(
        view, out.preprocess.suspect_inputs, out.candidates, ctx);
    if (!r.ok()) {
      if (r.status().IsInterrupt()) {
        degrade(r.status());
        return out;
      }
      return r.status();
    }
    enumerated = *std::move(r);
  }
  out.predicates_ms = MillisSince(t0);

  // Stage 4: Predicate Ranker. When the user supplied no examples,
  // the positive-influence tuples stand in as the accuracy reference,
  // so over-broad predicates (which also zero the error, by deleting
  // half the data) rank below tight ones.
  t0 = std::chrono::steady_clock::now();
  std::vector<RowId> reference = out.cleaned_dprime;
  if (reference.empty()) {
    std::vector<double> positive;
    for (const TupleInfluence& ti : out.preprocess.influences) {
      if (ti.influence > 0.0) positive.push_back(ti.influence);
    }
    if (!positive.empty()) {
      const double cutoff =
          Quantile(positive, options_.enumerator.influence_quantile);
      for (const TupleInfluence& ti : out.preprocess.influences) {
        if (ti.influence > 0.0 && ti.influence >= cutoff) {
          reference.push_back(ti.row);
        }
      }
    }
    std::sort(reference.begin(), reference.end());
  }
  PredicateRanker ranker(options_.ranker);
  DBW_ASSIGN_OR_RETURN(
      RankOutcome outcome,
      ranker.RankAnytime(*table, result, request.selected_groups,
                         *request.metric, request.agg_index,
                         out.preprocess.suspect_inputs, reference,
                         out.preprocess.per_group_baseline_error, enumerated,
                         ctx));
  out.predicates = std::move(outcome.predicates);
  out.ranked_considered = outcome.scored_prefix;
  out.total_enumerated = outcome.total_candidates;
  if (outcome.partial) {
    degrade(Status(StatusCode::kDeadlineExceeded, outcome.reason));
  }
  // A truncated candidate list is degraded coverage even when ranking
  // itself completed.
  if (ctx.budget != nullptr && ctx.budget->predicates_exhausted()) {
    degrade(Status::ResourceExhausted("candidate-predicate budget"));
  }
  // Merging re-scores pairwise combinations — pure bonus work; skip it
  // once the run is already degraded or the clock has run out.
  if (options_.merge_predicates && !out.partial && !ctx.StopRequested()) {
    DBW_ASSIGN_OR_RETURN(
        out.predicates,
        MergeAndRerank(*table, result, request.selected_groups,
                       *request.metric, request.agg_index,
                       out.preprocess.suspect_inputs, reference,
                       out.preprocess.per_group_baseline_error,
                       out.predicates, options_.ranker, options_.merger));
  }
  out.rank_ms = MillisSince(t0);
  return out;
}

Result<QueryResult> DBWipes::Clean(const QueryResult& result,
                                   const Predicate& predicate) const {
  const AggregateQuery cleaned = result.query.WithCleaningPredicate(predicate);
  return db_->Execute(cleaned);
}

}  // namespace dbwipes
