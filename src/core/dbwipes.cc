#include "dbwipes/core/dbwipes.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/common/stats.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Pipeline-level counters, incremented once per Explain.
struct ExplainMetrics {
  MetricCounter* runs;
  MetricCounter* partial;
  MetricCounter* cancellations;
  MetricCounter* deadline_expiries;
  MetricCounter* budget_exhaustions;
  MetricHistogram* total_ms;
  MetricCounter* sharded_runs;
  MetricHistogram* shard_skew;
};

const ExplainMetrics& Metrics() {
  static const ExplainMetrics m = {
      MetricsRegistry::Global().GetCounter("explain.runs"),
      MetricsRegistry::Global().GetCounter("explain.partial"),
      MetricsRegistry::Global().GetCounter("exec.cancellations"),
      MetricsRegistry::Global().GetCounter("exec.deadline_expiries"),
      MetricsRegistry::Global().GetCounter("exec.budget_exhaustions"),
      MetricsRegistry::Global().GetHistogram("explain.total_ms"),
      MetricsRegistry::Global().GetCounter("explain.sharded_runs"),
      MetricsRegistry::Global().GetHistogram("explain.shard_skew"),
  };
  return m;
}

}  // namespace

std::vector<std::string> DefaultExplainColumns(const Table& table,
                                               const AggregateQuery& query,
                                               size_t agg_index) {
  std::vector<std::string> exclude;
  if (agg_index < query.aggregates.size() &&
      query.aggregates[agg_index].argument) {
    query.aggregates[agg_index].argument->CollectColumns(&exclude);
  }
  std::vector<std::string> out;
  for (const Field& f : table.schema().fields()) {
    if (std::find(exclude.begin(), exclude.end(), f.name) == exclude.end()) {
      out.push_back(f.name);
    }
  }
  return out;
}

Result<Explanation> DBWipes::Explain(const QueryResult& result,
                                     const ExplanationRequest& request,
                                     const ExecContext& ctx) const {
  DBW_FAULT(ctx, "pipeline/explain");
  if (!request.metric) {
    return Status::InvalidArgument("no error metric supplied");
  }
  DBW_TRACE_SPAN("pipeline/explain");
  Metrics().runs->Increment();
  const auto t_start = std::chrono::steady_clock::now();
  const ThreadPool::StatsSnapshot pool_before = ThreadPool::Global().stats();

  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       db_->GetTable(result.query.table_name));

  // Sharded target: the whole pipeline (feature view, preprocess,
  // enumeration, ranking, merge) runs under ONE read lease, so a
  // concurrent Append cannot grow any shard — or the fused view —
  // mid-run. The lease is shared: concurrent explains proceed freely.
  std::shared_ptr<ShardSet> shard_set =
      db_->GetShardSet(result.query.table_name);
  std::shared_lock<std::shared_mutex> lease;
  if (shard_set != nullptr) lease = shard_set->ReadLease();

  std::vector<std::string> columns = request.explain_columns;
  if (columns.empty()) {
    columns = DefaultExplainColumns(*table, result.query, request.agg_index);
  }
  DBW_ASSIGN_OR_RETURN(FeatureView view, FeatureView::Create(*table, columns));

  Explanation out;

  // A stage interrupted by the context degrades the run instead of
  // failing it: everything completed so far ships, flagged partial.
  auto degrade = [&out](const Status& why) {
    out.partial = true;
    if (out.partial_reason.empty()) {
      out.partial_reason = why.ToString();
      Tracer::Global().RecordInstant(
          "pipeline/degraded",
          "\"reason\":\"" + why.ToString() + "\"");
    }
  };

  // Final bookkeeping, run on every exit (complete or degraded): the
  // profile mirrors the stage clocks, adds the pool's share of the run
  // and the anytime events, and the run-level metrics are flushed.
  auto finish = [&]() {
    ExplainProfile& p = out.profile;
    p.preprocess_ms = out.preprocess_ms;
    p.enumerate_ms = out.enumerate_ms;
    p.predicates_ms = out.predicates_ms;
    p.rank_ms = out.rank_ms;
    p.total_ms = MillisSince(t_start);
    p.table_rows = table->num_rows();
    p.suspect_rows = out.preprocess.suspect_inputs.size();
    p.candidate_datasets = out.candidates.size();
    p.predicates_enumerated = out.total_enumerated;
    p.predicates_scored = out.ranked_considered;

    const ThreadPool::StatsSnapshot after = ThreadPool::Global().stats();
    p.pool_threads = ThreadPool::Global().num_threads() + 1;
    p.pool_regions = after.regions - pool_before.regions;
    p.pool_chunks = after.chunks - pool_before.chunks;
    p.pool_busy_ms = after.busy_ms - pool_before.busy_ms;
    p.pool_peak_queue_depth = after.peak_queue_depth;
    if (p.total_ms > 0.0 && p.pool_threads > 0) {
      p.pool_utilization = std::clamp(
          p.pool_busy_ms / (p.total_ms * static_cast<double>(p.pool_threads)),
          0.0, 1.0);
    }

    p.partial = out.partial;
    p.partial_reason = out.partial_reason;
    p.cancelled = ctx.token.IsCancelled();
    p.deadline_expired = ctx.deadline.expired();
    p.has_deadline = !ctx.deadline.infinite();
    if (p.has_deadline) p.deadline_remaining_ms = ctx.deadline.remaining_ms();
    if (ctx.budget != nullptr) {
      p.has_budget = true;
      p.budget_used_predicates = ctx.budget->used_predicates();
      p.budget_used_bitmap_bytes = ctx.budget->used_bitmap_bytes();
      p.budget_used_scored_removals = ctx.budget->used_scored_removals();
      p.budget_predicates_exhausted = ctx.budget->predicates_exhausted();
      p.budget_bitmap_exhausted = ctx.budget->bitmap_exhausted();
      p.budget_removals_exhausted = ctx.budget->removals_exhausted();
    }

    if (out.partial) Metrics().partial->Increment();
    if (p.cancelled) Metrics().cancellations->Increment();
    if (p.deadline_expired) Metrics().deadline_expiries->Increment();
    if (ctx.budget != nullptr && ctx.budget->any_exhausted()) {
      Metrics().budget_exhaustions->Increment();
    }
    Metrics().total_ms->Observe(p.total_ms);
  };

  // Stage 1: Preprocessor.
  auto t0 = std::chrono::steady_clock::now();
  Status cont = ctx.CheckContinue();
  if (!cont.ok()) {
    degrade(cont);
    finish();
    return out;
  }
  {
    DBW_TRACE_SPAN("pipeline/preprocess");
    DBW_ASSIGN_OR_RETURN(
        out.preprocess,
        Preprocessor::Run(*table, result, request.selected_groups,
                          *request.metric, request.agg_index,
                          options_.per_group_influence));
  }
  out.preprocess_ms = MillisSince(t0);

  // The suspect universe is fixed from here on: partition it by the
  // shard boundaries once, for every downstream stage.
  ShardPlan shard_plan;
  const ShardPlan* plan = nullptr;
  if (shard_set != nullptr) {
    shard_plan = ShardPlan::Build(*shard_set, out.preprocess.suspect_inputs);
    plan = &shard_plan;
  }

  // Stage 2: Dataset Enumerator.
  t0 = std::chrono::steady_clock::now();
  DatasetEnumerator enumerator(options_.enumerator);
  {
    DBW_TRACE_SPAN("pipeline/enumerate");
    auto cleaned =
        enumerator.CleanDPrime(*table, request.suspicious_inputs,
                               out.preprocess.suspect_inputs,
                               out.preprocess.influences, view, ctx);
    if (!cleaned.ok()) {
      if (cleaned.status().IsInterrupt()) {
        degrade(cleaned.status());
        finish();
        return out;
      }
      return cleaned.status();
    }
    out.cleaned_dprime = *std::move(cleaned);
    auto candidates =
        enumerator.Enumerate(*table, result, request.selected_groups,
                             out.preprocess, request.suspicious_inputs, view,
                             *request.metric, request.agg_index, ctx);
    if (!candidates.ok()) {
      if (candidates.status().IsInterrupt()) {
        degrade(candidates.status());
        finish();
        return out;
      }
      return candidates.status();
    }
    out.candidates = *std::move(candidates);
  }
  out.enumerate_ms = MillisSince(t0);

  // Stage 3: Predicate Enumerator.
  t0 = std::chrono::steady_clock::now();
  PredicateEnumerator predicate_enumerator(options_.predicates);
  std::vector<EnumeratedPredicate> enumerated;
  {
    DBW_TRACE_SPAN("pipeline/predicates");
    auto r = predicate_enumerator.Enumerate(
        view, out.preprocess.suspect_inputs, out.candidates, ctx, plan);
    if (!r.ok()) {
      if (r.status().IsInterrupt()) {
        degrade(r.status());
        finish();
        return out;
      }
      return r.status();
    }
    enumerated = *std::move(r);
  }
  out.predicates_ms = MillisSince(t0);
  out.total_enumerated = enumerated.size();

  // Stage 4: Predicate Ranker. When the user supplied no examples,
  // the positive-influence tuples stand in as the accuracy reference,
  // so over-broad predicates (which also zero the error, by deleting
  // half the data) rank below tight ones.
  t0 = std::chrono::steady_clock::now();
  std::vector<RowId> reference = out.cleaned_dprime;
  if (reference.empty()) {
    std::vector<double> positive;
    for (const TupleInfluence& ti : out.preprocess.influences) {
      if (ti.influence > 0.0) positive.push_back(ti.influence);
    }
    if (!positive.empty()) {
      const double cutoff =
          Quantile(positive, options_.enumerator.influence_quantile);
      for (const TupleInfluence& ti : out.preprocess.influences) {
        if (ti.influence > 0.0 && ti.influence >= cutoff) {
          reference.push_back(ti.row);
        }
      }
    }
    std::sort(reference.begin(), reference.end());
  }
  PredicateRanker ranker(options_.ranker);
  RankOutcome outcome;
  {
    DBW_TRACE_SPAN("pipeline/rank");
    DBW_ASSIGN_OR_RETURN(
        outcome,
        ranker.RankAnytime(*table, result, request.selected_groups,
                           *request.metric, request.agg_index,
                           out.preprocess.suspect_inputs, reference,
                           out.preprocess.per_group_baseline_error, enumerated,
                           ctx, plan));
  }
  out.predicates = std::move(outcome.predicates);
  out.ranked_considered = outcome.scored_prefix;
  out.total_enumerated = outcome.total_candidates;
  // Ranking telemetry flows straight into the profile.
  {
    ExplainProfile& p = out.profile;
    const RankStats& rs = outcome.stats;
    p.materialize_ms = rs.materialize_ms;
    p.score_ms = rs.score_ms;
    p.scoring_blocks_total = rs.blocks_total;
    p.scoring_blocks_done = rs.blocks_done;
    p.block_ms = rs.block_ms;
    p.used_match_kernels = rs.used_kernels;
    p.clause_lookups = rs.clause_lookups;
    p.cache_hits = rs.cache_hits;
    p.cache_misses = rs.cache_misses;
    p.bitmaps_materialized = rs.bitmaps_materialized;
    p.boxed_fallbacks = rs.boxed_fallbacks;
    p.fused_lookups = rs.fused_lookups;
    p.fused_hits = rs.fused_hits;
    p.fused_compiles = rs.fused_compiles;
    p.fused_fallbacks = rs.fused_fallbacks;
    p.fused_evals = rs.fused_evals;
    p.fused_programs = rs.fused_programs;
    p.fused_compile_ms = rs.fused_compile_ms;
    p.simd_tier = rs.simd_tier;
    if (shard_set != nullptr) {
      p.num_shards = shard_set->num_shards();
      p.shards.reserve(rs.shard_stats.size());
      for (const ShardRankStats& ss : rs.shard_stats) {
        ExplainProfile::ShardLane lane;
        lane.shard_index = ss.shard_index;
        lane.rows = ss.rows;
        lane.suspects = ss.suspects;
        lane.engine_reused = ss.engine_reused;
        lane.materialize_ms = ss.materialize_ms;
        lane.clause_lookups = ss.clause_lookups;
        lane.cache_hits = ss.cache_hits;
        lane.cache_misses = ss.cache_misses;
        lane.bitmaps_materialized = ss.bitmaps_materialized;
        lane.cached_clauses = ss.cached_clauses;
        lane.fused_lookups = ss.fused_lookups;
        lane.fused_hits = ss.fused_hits;
        lane.fused_compiles = ss.fused_compiles;
        lane.fused_fallbacks = ss.fused_fallbacks;
        lane.fused_evals = ss.fused_evals;
        lane.cached_programs = ss.cached_programs;
        if (ss.engine_reused) ++p.shard_engines_reused;
        p.shards.push_back(lane);
      }
      // Skew from the plan (valid even when ranking degraded to the
      // boxed path): max shard suspect share over the even share.
      const size_t total = out.preprocess.suspect_inputs.size();
      if (total > 0 && !shard_plan.slices.empty()) {
        size_t biggest = 0;
        for (const ShardSlice& s : shard_plan.slices) {
          biggest = std::max(biggest, s.local_rows.size());
        }
        const double mean = static_cast<double>(total) /
                            static_cast<double>(shard_plan.slices.size());
        p.shard_skew = static_cast<double>(biggest) / mean;
        Metrics().shard_skew->Observe(p.shard_skew);
      }
      Metrics().sharded_runs->Increment();
    }
  }
  if (outcome.partial) {
    degrade(Status(StatusCode::kDeadlineExceeded, outcome.reason));
  }
  // A truncated candidate list is degraded coverage even when ranking
  // itself completed.
  if (ctx.budget != nullptr && ctx.budget->predicates_exhausted()) {
    degrade(Status::ResourceExhausted("candidate-predicate budget"));
  }
  // Merging re-scores pairwise combinations — pure bonus work; skip it
  // once the run is already degraded or the clock has run out.
  if (options_.merge_predicates && !out.partial && !ctx.StopRequested()) {
    DBW_TRACE_SPAN("pipeline/merge");
    DBW_ASSIGN_OR_RETURN(
        out.predicates,
        MergeAndRerank(*table, result, request.selected_groups,
                       *request.metric, request.agg_index,
                       out.preprocess.suspect_inputs, reference,
                       out.preprocess.per_group_baseline_error,
                       out.predicates, options_.ranker, options_.merger,
                       plan));
  }
  out.rank_ms = MillisSince(t0);
  finish();
  return out;
}

Result<QueryResult> DBWipes::Clean(const QueryResult& result,
                                   const Predicate& predicate) const {
  const AggregateQuery cleaned = result.query.WithCleaningPredicate(predicate);
  return db_->Execute(cleaned);
}

}  // namespace dbwipes
