#include "dbwipes/core/session.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/trace.h"
#include "dbwipes/expr/parser.h"
#include "dbwipes/provenance/lineage.h"

namespace dbwipes {

Status Session::ExecuteSql(const std::string& sql) {
  // Same span as Database::ExecuteSql — the session parses directly.
  Result<AggregateQuery> parsed = [&]() -> Result<AggregateQuery> {
    DBW_TRACE_SPAN("sql/parse");
    return ParseQuery(sql);
  }();
  DBW_ASSIGN_OR_RETURN(AggregateQuery query, std::move(parsed));
  original_query_ = query;
  applied_predicates_.clear();
  return Reexecute();
}

Status Session::Reexecute() {
  DBW_CHECK(original_query_.has_value());
  AggregateQuery query = *original_query_;
  for (const Predicate& p : applied_predicates_) {
    query = query.WithCleaningPredicate(p);
  }
  DBW_ASSIGN_OR_RETURN(QueryResult res, engine_.database().Execute(query));
  result_ = std::move(res);
  selected_groups_.clear();
  selected_inputs_.clear();
  explanation_.reset();
  return Status::OK();
}

const QueryResult& Session::result() const {
  DBW_CHECK(result_.has_value()) << "no query executed";
  return *result_;
}

std::string Session::CurrentSql() const {
  if (!original_query_) return "";
  AggregateQuery query = *original_query_;
  for (const Predicate& p : applied_predicates_) {
    query = query.WithCleaningPredicate(p);
  }
  return query.ToSql();
}

Status Session::SelectResults(const std::vector<size_t>& groups) {
  if (!result_) return Status::InvalidArgument("execute a query first");
  for (size_t g : groups) {
    if (g >= result_->num_groups()) {
      return Status::OutOfRange("group " + std::to_string(g) +
                                " out of range");
    }
  }
  selected_groups_ = groups;
  std::sort(selected_groups_.begin(), selected_groups_.end());
  selected_groups_.erase(
      std::unique(selected_groups_.begin(), selected_groups_.end()),
      selected_groups_.end());
  selected_inputs_.clear();
  explanation_.reset();
  return Status::OK();
}

Status Session::SelectResultsInRange(const std::string& agg_output_name,
                                     double lo, double hi) {
  if (!result_) return Status::InvalidArgument("execute a query first");
  DBW_ASSIGN_OR_RETURN(size_t col,
                       result_->rows->schema().GetIndex(agg_output_name));
  std::vector<size_t> groups;
  for (RowId r = 0; r < result_->rows->num_rows(); ++r) {
    const Column& c = result_->rows->column(col);
    if (c.IsNull(r)) continue;
    const double v = c.AsDouble(r);
    if (v >= lo && v <= hi) groups.push_back(r);
  }
  if (groups.empty()) {
    return Status::NotFound("no result rows with " + agg_output_name +
                            " in [" + std::to_string(lo) + ", " +
                            std::to_string(hi) + "]");
  }
  return SelectResults(groups);
}

Result<Table> Session::Zoom() const {
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (selected_groups_.empty()) {
    return Status::InvalidArgument("select suspicious results first");
  }
  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> base,
                       engine_.database().GetTable(result_->query.table_name));
  LineageStore lineage(*result_, base->num_rows());
  const std::vector<RowId> rows = lineage.BackwardUnion(selected_groups_);

  // Result: _rowid column followed by the base schema.
  std::vector<Field> fields;
  fields.push_back(Field{"_rowid", DataType::kInt64});
  for (const Field& f : base->schema().fields()) fields.push_back(f);
  Table out(Schema(std::move(fields)), "zoom");
  for (RowId r : rows) {
    std::vector<Value> row;
    row.reserve(base->num_columns() + 1);
    row.push_back(Value(static_cast<int64_t>(r)));
    for (size_t c = 0; c < base->num_columns(); ++c) {
      row.push_back(base->GetValue(r, c));
    }
    DBW_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

Status Session::SelectInputs(const std::vector<RowId>& rows) {
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (selected_groups_.empty()) {
    return Status::InvalidArgument("select suspicious results first");
  }
  selected_inputs_ = rows;
  std::sort(selected_inputs_.begin(), selected_inputs_.end());
  selected_inputs_.erase(
      std::unique(selected_inputs_.begin(), selected_inputs_.end()),
      selected_inputs_.end());
  explanation_.reset();
  return Status::OK();
}

Status Session::SelectInputsWhere(const std::string& filter) {
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (selected_groups_.empty()) {
    return Status::InvalidArgument("select suspicious results first");
  }
  DBW_ASSIGN_OR_RETURN(BoolExprPtr expr, ParseFilter(filter));
  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> base,
                       engine_.database().GetTable(result_->query.table_name));
  DBW_RETURN_NOT_OK(expr->Validate(base->schema()));

  LineageStore lineage(*result_, base->num_rows());
  std::vector<RowId> rows;
  for (RowId r : lineage.BackwardUnion(selected_groups_)) {
    DBW_ASSIGN_OR_RETURN(bool match, expr->Eval(*base, r));
    if (match) rows.push_back(r);
  }
  if (rows.empty()) {
    return Status::NotFound("no zoomed tuples match: " + filter);
  }
  return SelectInputs(rows);
}

Result<std::vector<MetricSuggestion>> Session::SuggestErrorMetrics(
    size_t agg_index) const {
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (selected_groups_.empty()) {
    return Status::InvalidArgument("select suspicious results first");
  }
  if (agg_index >= result_->query.aggregates.size()) {
    return Status::OutOfRange("agg_index out of range");
  }
  std::vector<double> selected, unselected;
  for (size_t g = 0; g < result_->num_groups(); ++g) {
    const double v = result_->AggValue(g, agg_index);
    if (std::binary_search(selected_groups_.begin(), selected_groups_.end(),
                           g)) {
      selected.push_back(v);
    } else {
      unselected.push_back(v);
    }
  }
  return SuggestMetrics(result_->query.aggregates[agg_index].kind, selected,
                        unselected);
}

Status Session::SetMetric(ErrorMetricPtr metric, size_t agg_index) {
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (metric == nullptr) return Status::InvalidArgument("null metric");
  if (agg_index >= result_->query.aggregates.size()) {
    return Status::OutOfRange("agg_index out of range");
  }
  metric_ = std::move(metric);
  agg_index_ = agg_index;
  explanation_.reset();
  return Status::OK();
}

Result<Explanation> Session::Debug() { return Debug(ExecContext::None()); }

Result<Explanation> Session::Debug(const ExecContext& ctx) {
  DBW_TRACE_SPAN("session/debug");
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (selected_groups_.empty()) {
    return Status::InvalidArgument("select suspicious results first");
  }
  if (!metric_) return Status::InvalidArgument("choose an error metric first");

  ExplanationRequest request;
  request.selected_groups = selected_groups_;
  request.suspicious_inputs = selected_inputs_;
  request.metric = metric_;
  request.agg_index = agg_index_;
  DBW_ASSIGN_OR_RETURN(Explanation exp,
                       engine_.Explain(*result_, request, ctx));
  explanation_ = exp;
  return exp;
}

const Explanation& Session::explanation() const {
  DBW_CHECK(explanation_.has_value()) << "no explanation computed";
  return *explanation_;
}

Status Session::ApplyPredicate(size_t index) {
  if (!explanation_) return Status::InvalidArgument("run Debug() first");
  if (index >= explanation_->predicates.size()) {
    return Status::OutOfRange("predicate index out of range");
  }
  return ApplyPredicateDirect(explanation_->predicates[index].predicate);
}

Status Session::ApplyPredicateDirect(const Predicate& predicate) {
  if (!result_) return Status::InvalidArgument("execute a query first");
  if (predicate.empty()) {
    return Status::InvalidArgument("cannot clean with an empty predicate");
  }
  applied_predicates_.push_back(predicate);
  return Reexecute();
}

Status Session::UndoLastPredicate() {
  if (!original_query_) return Status::InvalidArgument("no query to undo");
  if (applied_predicates_.empty()) {
    return Status::InvalidArgument("no cleaning predicate to undo");
  }
  applied_predicates_.pop_back();
  return Reexecute();
}

Status Session::ResetCleaning() {
  if (!original_query_) return Status::InvalidArgument("no query to reset");
  applied_predicates_.clear();
  return Reexecute();
}

Result<std::string> Session::DescribePlan() const {
  if (!result_) return Status::InvalidArgument("execute a query first");
  return DescribeQueryPlan(result_->query).ToString();
}

}  // namespace dbwipes
