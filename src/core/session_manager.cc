#include "dbwipes/core/session_manager.h"

#include <algorithm>

#include "dbwipes/common/retry.h"

namespace dbwipes {

namespace {

double MsSince(std::chrono::steady_clock::time_point then,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

}  // namespace

SessionManager::SessionManager(std::shared_ptr<Database> db,
                               ExplainOptions explain_options)
    : SessionManager(std::move(db), std::move(explain_options), Options()) {}

SessionManager::SessionManager(std::shared_ptr<Database> db,
                               ExplainOptions explain_options, Options options)
    : db_(std::move(db)),
      explain_options_(std::move(explain_options)),
      options_(options) {}

Status SessionManager::ValidateName(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must not be empty");
  }
  if (name.size() > 64) {
    return Status::InvalidArgument("session name longer than 64 characters");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) {
      return Status::InvalidArgument(
          "session name may contain only letters, digits, '_', '-', '.': '" +
          name + "'");
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<ManagedSession>> SessionManager::GetOrCreate(
    const std::string& name) {
  DBW_RETURN_NOT_OK(ValidateName(name));
  const Clock::time_point now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      it->second.last_used = now;
      return it->second.session;
    }
  }
  // At capacity: make room from the idle pool before refusing.
  if (size() >= options_.max_sessions) {
    if (options_.idle_timeout_ms > 0.0) EvictIdle();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);  // lost a creation race? reuse theirs
  if (it != entries_.end()) {
    it->second.last_used = now;
    return it->second.session;
  }
  if (entries_.size() >= options_.max_sessions) {
    return WithRetryAfterHint(
        Status::ResourceExhausted(
            "session limit reached (" + std::to_string(options_.max_sessions) +
            " live sessions); drop or evict one first"),
        options_.retry_after_hint_ms);
  }
  Entry entry;
  entry.session = std::make_shared<ManagedSession>(db_, explain_options_);
  entry.last_used = now;
  auto inserted = entries_.emplace(name, std::move(entry));
  return inserted.first->second.session;
}

std::shared_ptr<ManagedSession> SessionManager::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  it->second.last_used = Clock::now();
  return it->second.session;
}

Status SessionManager::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no session named '" + name + "'");
  }
  entries_.erase(it);
  return Status::OK();
}

std::vector<std::string> SessionManager::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(entries_.size());
    for (const auto& kv : entries_) names.push_back(kv.first);
  }
  std::sort(names.begin(), names.end());
  return names;
}

double SessionManager::IdleMs(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return -1.0;
  return MsSince(it->second.last_used, Clock::now());
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t SessionManager::EvictIdleOlderThan(double idle_ms) {
  const Clock::time_point now = Clock::now();
  size_t evicted = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (MsSince(it->second.last_used, now) > idle_ms) {
      // A session mid-command is busy, not idle, regardless of when it
      // was acquired.
      std::unique_lock<std::mutex> busy(it->second.session->mu,
                                        std::try_to_lock);
      if (busy.owns_lock()) {
        busy.unlock();
        it = entries_.erase(it);
        ++evicted;
        continue;
      }
    }
    ++it;
  }
  return evicted;
}

size_t SessionManager::EvictIdle() {
  if (options_.idle_timeout_ms <= 0.0) return 0;
  return EvictIdleOlderThan(options_.idle_timeout_ms);
}

}  // namespace dbwipes
