#include "dbwipes/core/predicate_enumerator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <unordered_set>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/expr/match_kernels.h"

namespace dbwipes {

namespace {

/// Selectivity sampler for bounding descriptions: one MatchEngine per
/// shard slice (or a single fused engine when unsharded). Counts are
/// per-row clause evaluations summed across slices, so the fraction a
/// predicate gets is a pure function of the sampled rows' content —
/// identical at every shard count.
class SampleCounter {
 public:
  SampleCounter(const Table& table, const ShardPlan* shards) {
    // Stride sample of the table for selectivity estimation.
    std::vector<RowId> sample;
    const size_t target = 2000;
    const size_t stride = std::max<size_t>(1, table.num_rows() / target);
    for (RowId r = 0; r < table.num_rows(); r += stride) sample.push_back(r);
    size_ = sample.size();
    // Each clause's sample bitmap is kernel-scanned once and cached
    // per engine; the per-attribute joint fractions are then word-ANDs
    // of the same bitmaps instead of fresh row loops. Engines are
    // ephemeral (the sample universe differs from the ranker's suspect
    // universe, so the per-set engine cache would never hit).
    if (shards != nullptr && shards->set != nullptr) {
      const ShardPlan sampled = ShardPlan::Build(*shards->set, sample);
      for (const ShardSlice& slice : sampled.slices) {
        engines_.emplace_back(*slice.table, slice.local_rows);
      }
    } else {
      engines_.emplace_back(table, std::move(sample));
    }
  }

  /// Sampled rows matching `pred`, summed over slices; nullopt when
  /// any slice's match fails (all slices fail alike — match errors are
  /// schema-shaped, not content-shaped).
  std::optional<size_t> Count(const Predicate& pred) {
    size_t total = 0;
    for (MatchEngine& engine : engines_) {
      auto bm = engine.Match(pred);
      if (!bm.ok()) return std::nullopt;
      total += bm->CountOnes();
    }
    return total;
  }

  double size() const { return std::max<double>(1.0, size_); }

 private:
  std::vector<MatchEngine> engines_;
  size_t size_ = 0;
};

/// Builds the bounding description of a candidate row set: per
/// attribute, the candidate's value span (numeric min/max or the set
/// of categories), kept only when selective against a sample of the
/// whole table, most selective clauses first.
std::optional<Predicate> BoundingDescription(
    const FeatureView& view, const std::vector<RowId>& candidate_rows,
    const PredicateEnumeratorOptions& options, const ShardPlan* shards) {
  if (candidate_rows.empty()) return std::nullopt;
  const Table& table = view.table();

  SampleCounter counter(table, shards);
  const double sample_size = counter.size();

  struct Scored {
    double fraction;  // of the table sample matched
    std::vector<Clause> clauses;
  };
  std::vector<Scored> kept;

  for (size_t f = 0; f < view.num_features(); ++f) {
    const FeatureSpec& spec = view.features()[f];
    std::vector<Clause> clauses;
    if (spec.categorical) {
      std::set<int32_t> codes;
      bool has_null = false;
      for (RowId r : candidate_rows) {
        if (view.IsNull(r, f)) {
          has_null = true;
        } else {
          codes.insert(static_cast<int32_t>(view.Get(r, f)));
        }
      }
      if (has_null || codes.empty() ||
          codes.size() > options.bounding_max_categories) {
        continue;
      }
      if (codes.size() == 1) {
        clauses.push_back(Clause::Make(spec.name, CompareOp::kEq,
                                       Value(view.CategoryName(f, *codes.begin()))));
      } else {
        std::vector<Value> values;
        for (int32_t code : codes) {
          values.push_back(Value(view.CategoryName(f, code)));
        }
        clauses.push_back(Clause::In(spec.name, std::move(values)));
      }
    } else {
      double lo = 0.0, hi = 0.0;
      bool found = false;
      bool has_null = false;
      for (RowId r : candidate_rows) {
        const double v = view.Get(r, f);
        if (std::isnan(v)) {
          has_null = true;
          continue;
        }
        if (!found) {
          lo = hi = v;
          found = true;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      if (!found || has_null) continue;
      if (lo == hi) {
        clauses.push_back(Clause::Make(spec.name, CompareOp::kEq, Value(lo)));
      } else {
        clauses.push_back(Clause::Make(spec.name, CompareOp::kGe, Value(lo)));
        clauses.push_back(Clause::Make(spec.name, CompareOp::kLe, Value(hi)));
      }
    }

    // Selectivity of this attribute's span against the table sample;
    // also drop one-sided halves of a range that exclude nothing.
    std::vector<Clause> selective;
    for (Clause& c : clauses) {
      auto count = counter.Count(Predicate({c}));
      if (!count) continue;
      const double fraction = static_cast<double>(*count) / sample_size;
      if (fraction <= options.bounding_max_table_fraction) {
        selective.push_back(std::move(c));
      }
    }
    if (selective.empty()) continue;

    // Joint fraction for ordering.
    auto count = counter.Count(Predicate(selective));
    if (!count) continue;
    kept.push_back({static_cast<double>(*count) / sample_size,
                    std::move(selective)});
  }
  if (kept.empty()) return std::nullopt;
  std::sort(kept.begin(), kept.end(), [](const Scored& a, const Scored& b) {
    return a.fraction < b.fraction;
  });
  std::vector<Clause> final_clauses;
  for (const Scored& s : kept) {
    if (final_clauses.size() + s.clauses.size() >
        options.bounding_max_clauses) {
      break;
    }
    final_clauses.insert(final_clauses.end(), s.clauses.begin(),
                         s.clauses.end());
  }
  if (final_clauses.empty()) return std::nullopt;
  return Predicate(std::move(final_clauses)).Simplify();
}

}  // namespace

PredicateEnumeratorOptions PredicateEnumeratorOptions::Defaults() {
  PredicateEnumeratorOptions out;
  for (SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kGainRatio}) {
    for (size_t depth : {3u, 4u}) {
      DecisionTreeOptions t;
      t.criterion = criterion;
      t.max_depth = depth;
      t.min_samples_leaf = 2.0;
      t.min_impurity_decrease = 1e-4;
      out.strategies.push_back(t);
    }
  }
  // One aggressively pruned strategy for very compact predicates.
  DecisionTreeOptions pruned;
  pruned.criterion = SplitCriterion::kGini;
  pruned.max_depth = 2;
  pruned.min_samples_leaf = 4.0;
  pruned.ccp_alpha = 0.01;
  out.strategies.push_back(pruned);
  return out;
}

Result<std::vector<EnumeratedPredicate>> PredicateEnumerator::Enumerate(
    const FeatureView& view, const std::vector<RowId>& suspects,
    const std::vector<CandidateDataset>& candidates,
    const ExecContext& ctx, const ShardPlan* shards) const {
  DBW_FAULT(ctx, "enumerate/predicates");
  DBW_TRACE_SPAN("enumerate/predicates");
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate datasets");
  }
  if (options_.strategies.empty()) {
    return Status::InvalidArgument("no tree strategies configured");
  }

  std::vector<EnumeratedPredicate> out;
  std::unordered_set<std::string> seen;
  // Budget gate: enumeration is serial, so stopping at the cap keeps
  // the emitted list a deterministic prefix of the unbounded run.
  bool budget_hit = false;
  auto emit_allowed = [&]() -> bool {
    if (ctx.budget == nullptr) return true;
    if (!ctx.budget->ChargePredicates(1).ok()) {
      budget_hit = true;
      return false;
    }
    return true;
  };

  for (size_t ci = 0; ci < candidates.size() && !budget_hit; ++ci) {
    DBW_RETURN_NOT_OK(ctx.CheckContinue());
    const CandidateDataset& cand = candidates[ci];

    if (options_.add_bounding_predicates) {
      auto bounding = BoundingDescription(view, cand.rows, options_, shards);
      if (bounding && seen.insert(bounding->CanonicalString()).second) {
        if (!emit_allowed()) break;
        EnumeratedPredicate ep;
        ep.predicate = std::move(*bounding);
        ep.candidate_index = ci;
        ep.strategy = "bounding";
        out.push_back(std::move(ep));
      }
    }

    // Label F: member of D* -> 1, else 0.
    std::vector<int> labels;
    labels.reserve(suspects.size());
    size_t num_pos = 0;
    for (RowId r : suspects) {
      const int y = std::binary_search(cand.rows.begin(), cand.rows.end(), r)
                        ? 1
                        : 0;
      num_pos += y;
      labels.push_back(y);
    }
    if (num_pos == 0 || num_pos == suspects.size()) continue;

    for (const DecisionTreeOptions& strategy : options_.strategies) {
      if (budget_hit) break;
      DBW_RETURN_NOT_OK(ctx.CheckContinue());
      auto tree = DecisionTree::Fit(view, suspects, labels, /*weights=*/{},
                                    strategy);
      if (!tree.ok()) continue;
      const std::string strategy_name =
          std::string(SplitCriterionToString(strategy.criterion)) + "/d" +
          std::to_string(strategy.max_depth) +
          (strategy.ccp_alpha > 0.0 ? "/ccp" : "");
      for (Predicate& p : tree->PositiveLeafPredicates(
               view, options_.min_precision, options_.min_positive_weight)) {
        const std::string key = p.CanonicalString();
        if (!seen.insert(key).second) continue;
        if (!emit_allowed()) break;
        EnumeratedPredicate ep;
        ep.predicate = std::move(p);
        ep.candidate_index = ci;
        ep.strategy = strategy_name;
        out.push_back(std::move(ep));
      }
    }
  }

  if (out.empty() && budget_hit) {
    return Status::ResourceExhausted(
        "candidate-predicate budget admits no predicates");
  }
  if (out.empty()) {
    return Status::NotFound(
        "no tree produced a predicate separating any candidate dataset");
  }
  static MetricCounter* const emitted =
      MetricsRegistry::Global().GetCounter("enumerate.predicates");
  emitted->Increment(out.size());
  return out;
}

}  // namespace dbwipes
