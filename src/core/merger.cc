#include "dbwipes/core/merger.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

/// Decomposed constraints of one predicate on one attribute.
struct AttrConstraint {
  bool has_lower = false;
  double lower = 0.0;
  bool lower_strict = false;
  bool has_upper = false;
  double upper = 0.0;
  bool upper_strict = false;
  /// kEq / kIn literals (union semantics within one predicate would be
  /// unusual, but harmless).
  std::vector<Value> values;
  /// Canonical strings of clauses that only merge by exact identity
  /// (kNe, kContains).
  std::set<std::string> exact;
};

/// Splits a predicate into per-attribute constraints; nullopt when a
/// clause kind cannot be represented (does not happen with the current
/// CompareOp set).
std::optional<std::map<std::string, AttrConstraint>> Decompose(
    const Predicate& p) {
  std::map<std::string, AttrConstraint> out;
  for (const Clause& c : p.clauses()) {
    AttrConstraint& a = out[c.attribute];
    switch (c.op) {
      case CompareOp::kGe:
      case CompareOp::kGt: {
        auto lit = c.literal.AsDouble();
        if (!lit.ok()) return std::nullopt;
        a.has_lower = true;
        a.lower = *lit;
        a.lower_strict = c.op == CompareOp::kGt;
        break;
      }
      case CompareOp::kLe:
      case CompareOp::kLt: {
        auto lit = c.literal.AsDouble();
        if (!lit.ok()) return std::nullopt;
        a.has_upper = true;
        a.upper = *lit;
        a.upper_strict = c.op == CompareOp::kLt;
        break;
      }
      case CompareOp::kEq:
        a.values.push_back(c.literal);
        break;
      case CompareOp::kIn:
        a.values.insert(a.values.end(), c.in_set.begin(), c.in_set.end());
        break;
      case CompareOp::kNe:
      case CompareOp::kContains:
        a.exact.insert(c.CanonicalString());
        break;
    }
  }
  return out;
}

void AppendConstraint(const std::string& attr, const AttrConstraint& a,
                      const Predicate& source, std::vector<Clause>* clauses) {
  if (a.has_lower) {
    clauses->push_back(Clause::Make(
        attr, a.lower_strict ? CompareOp::kGt : CompareOp::kGe,
        Value(a.lower)));
  }
  if (a.has_upper) {
    clauses->push_back(Clause::Make(
        attr, a.upper_strict ? CompareOp::kLt : CompareOp::kLe,
        Value(a.upper)));
  }
  if (!a.values.empty()) {
    // Deduplicate values.
    std::vector<Value> vals = a.values;
    std::sort(vals.begin(), vals.end(),
              [](const Value& x, const Value& y) { return x < y; });
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    if (vals.size() == 1) {
      clauses->push_back(Clause::Make(attr, CompareOp::kEq, vals[0]));
    } else {
      clauses->push_back(Clause::In(attr, std::move(vals)));
    }
  }
  // Exact-identity clauses come back verbatim from the source.
  for (const Clause& c : source.clauses()) {
    if (c.attribute == attr &&
        (c.op == CompareOp::kNe || c.op == CompareOp::kContains)) {
      clauses->push_back(c);
    }
  }
}

}  // namespace

std::vector<RankedPredicate> CombinePartialRankings(
    std::vector<RankedPredicate>* scored,
    const std::function<uint64_t(size_t)>& set_hash,
    const std::function<bool(size_t, size_t)>& set_equal, size_t top_k) {
  std::vector<size_t> order(scored->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*scored)[a].score > (*scored)[b].score;
  });
  std::vector<RankedPredicate> deduped;
  std::unordered_map<uint64_t, std::vector<size_t>> seen_sets;
  for (size_t i : order) {
    if ((*scored)[i].matched_in_suspects > 0) {
      std::vector<size_t>& bucket = seen_sets[set_hash(i)];
      const bool duplicate =
          std::any_of(bucket.begin(), bucket.end(),
                      [&](size_t j) { return set_equal(i, j); });
      if (duplicate) continue;
      bucket.push_back(i);
    }
    deduped.push_back(std::move((*scored)[i]));
    if (deduped.size() == top_k) break;
  }
  return deduped;
}

std::optional<Predicate> MergePredicates(const Predicate& a,
                                         const Predicate& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  auto da = Decompose(a);
  auto db = Decompose(b);
  if (!da || !db) return std::nullopt;
  if (da->size() != db->size()) return std::nullopt;

  std::vector<Clause> merged;
  auto ita = da->begin();
  auto itb = db->begin();
  for (; ita != da->end(); ++ita, ++itb) {
    if (ita->first != itb->first) return std::nullopt;  // attr sets differ
    const AttrConstraint& ca = ita->second;
    const AttrConstraint& cb = itb->second;

    // Shape must match: a range cannot merge with a value set.
    if ((ca.has_lower || ca.has_upper) != (cb.has_lower || cb.has_upper)) {
      return std::nullopt;
    }
    if (ca.values.empty() != cb.values.empty()) return std::nullopt;
    if (ca.exact != cb.exact) return std::nullopt;

    AttrConstraint out = ca;
    // Hull of the two ranges: a missing bound on either side wins.
    if (ca.has_lower && cb.has_lower) {
      if (cb.lower < ca.lower ||
          (cb.lower == ca.lower && !cb.lower_strict)) {
        out.lower = cb.lower;
        out.lower_strict = cb.lower_strict && ca.lower_strict;
      }
    } else {
      out.has_lower = false;
    }
    if (ca.has_upper && cb.has_upper) {
      if (cb.upper > ca.upper ||
          (cb.upper == ca.upper && !cb.upper_strict)) {
        out.upper = cb.upper;
        out.upper_strict = cb.upper_strict && ca.upper_strict;
      }
    } else {
      out.has_upper = false;
    }
    out.values.insert(out.values.end(), cb.values.begin(), cb.values.end());

    // Degenerate hull: no constraint left on this attribute at all.
    if (!out.has_lower && !out.has_upper && out.values.empty() &&
        out.exact.empty()) {
      return std::nullopt;
    }
    AppendConstraint(ita->first, out, a, &merged);
  }
  if (merged.empty()) return std::nullopt;
  Predicate result = Predicate(std::move(merged)).Simplify();
  // A merge that reproduces one of its parents adds nothing.
  if (result == a || result == b) return std::nullopt;
  return result;
}

Result<std::vector<RankedPredicate>> MergeAndRerank(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<RankedPredicate>& ranked,
    const RankerOptions& ranker_options, const MergerOptions& options,
    const ShardPlan* shards) {
  if (ranked.empty()) return ranked;
  DBW_TRACE_SPAN("merge/rerank");

  const size_t n = std::min(options.max_inputs, ranked.size());
  std::vector<EnumeratedPredicate> pool;
  std::set<std::string> seen;
  auto add = [&](const Predicate& p, const std::string& strategy) {
    if (!seen.insert(p.CanonicalString()).second) return;
    EnumeratedPredicate ep;
    ep.predicate = p;
    ep.strategy = strategy;
    pool.push_back(std::move(ep));
  };
  for (const RankedPredicate& rp : ranked) {
    add(rp.predicate, rp.strategy);
  }
  std::map<std::string, double> parent_score;
  for (const RankedPredicate& rp : ranked) {
    parent_score[rp.predicate.CanonicalString()] = rp.score;
  }
  std::map<std::string, double> merge_floor;  // merged -> required score
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto merged = MergePredicates(ranked[i].predicate, ranked[j].predicate);
      if (!merged) continue;
      const double floor =
          std::max(ranked[i].score, ranked[j].score) - options.score_tolerance;
      const std::string key = merged->CanonicalString();
      auto it = merge_floor.find(key);
      if (it == merge_floor.end() || floor < it->second) {
        merge_floor[key] = floor;
      }
      add(*merged, "merged");
    }
  }

  PredicateRanker ranker(ranker_options);
  DBW_ASSIGN_OR_RETURN(
      std::vector<RankedPredicate> reranked,
      ranker.Rank(table, result, selected_groups, metric, agg_index, suspects,
                  reference_positive, per_group_baseline, pool, shards));

  // Drop merges that lost noticeably to their parents.
  std::vector<RankedPredicate> out;
  for (RankedPredicate& rp : reranked) {
    if (rp.strategy == "merged") {
      auto it = merge_floor.find(rp.predicate.CanonicalString());
      if (it != merge_floor.end() && rp.score < it->second) continue;
    }
    out.push_back(std::move(rp));
  }
  return out;
}

}  // namespace dbwipes
