#include "dbwipes/core/predicate_ranker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/merger.h"
#include "dbwipes/core/removal_scorer.h"
#include "dbwipes/expr/match_kernels.h"
#include "dbwipes/expr/shard_cache.h"

namespace dbwipes {

namespace {

double MillisBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Global ranking counters; incremented once per run / per block, so
/// the write path never lands inside the per-predicate loop.
struct RankerMetrics {
  MetricCounter* runs;
  MetricCounter* partial_runs;
  MetricCounter* blocks_scored;
  MetricCounter* predicates_scored;
};

const RankerMetrics& Metrics() {
  static const RankerMetrics m = {
      MetricsRegistry::Global().GetCounter("ranker.runs"),
      MetricsRegistry::Global().GetCounter("ranker.partial_runs"),
      MetricsRegistry::Global().GetCounter("ranker.blocks_scored"),
      MetricsRegistry::Global().GetCounter("ranker.predicates_scored"),
  };
  return m;
}

/// Shared scoring arithmetic: fills the score-derived fields of `rp`
/// from the raw measurements.
void FinishScore(const RankerOptions& options, bool have_reference,
                 double w_error, double w_acc, double per_group_baseline,
                 double per_group_after, size_t tp, size_t reference_size,
                 RankedPredicate* rp) {
  if (per_group_baseline > 0.0) {
    rp->error_improvement = std::clamp(
        (per_group_baseline - per_group_after) / per_group_baseline, 0.0,
        1.0);
  }
  if (have_reference) {
    rp->precision = rp->matched_in_suspects == 0
                        ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(rp->matched_in_suspects);
    rp->recall = static_cast<double>(tp) /
                 static_cast<double>(reference_size);
    rp->f1 = (rp->precision + rp->recall) > 0.0
                 ? 2.0 * rp->precision * rp->recall /
                       (rp->precision + rp->recall)
                 : 0.0;
  }
  const double complexity =
      std::min(1.0, static_cast<double>(rp->predicate.num_clauses()) /
                        static_cast<double>(options.max_clauses));
  rp->score = w_error * rp->error_improvement + w_acc * rp->f1 -
              options.w_complexity * complexity;
}

/// FNV-1a fold of per-shard bitmap part hashes: with a fixed shard
/// plan every predicate's parts have identical shapes, so part-vector
/// equality is global-bitmap equality.
uint64_t HashParts(const std::vector<Bitmap>& parts) {
  uint64_t h = 1469598103934665603ULL;
  for (const Bitmap& b : parts) {
    h ^= b.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

/// Why an anytime run wound down, as a human-readable reason. Explicit
/// cancellation wins over the deadline, which wins over the budget, so
/// a user-initiated stop is never misreported as a timeout.
std::string StopReason(const ExecContext& ctx, bool budget_stopped) {
  const Status why = ctx.CheckContinue();
  if (!why.ok()) return why.ToString();
  if (budget_stopped) return "Resource exhausted: scored-removal budget";
  return "interrupted";
}

/// Fills the outcome for a run cut at `prefix` input predicates.
RankOutcome MakeOutcome(std::vector<RankedPredicate> ranked, size_t prefix,
                        size_t total, const ExecContext& ctx,
                        bool budget_stopped) {
  RankOutcome out;
  out.predicates = std::move(ranked);
  out.scored_prefix = prefix;
  out.total_candidates = total;
  out.partial = prefix < total;
  if (out.partial) out.reason = StopReason(ctx, budget_stopped);
  return out;
}

}  // namespace

Result<std::vector<RankedPredicate>> PredicateRanker::Rank(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates,
    const ShardPlan* shards) const {
  DBW_ASSIGN_OR_RETURN(
      RankOutcome outcome,
      RankAnytime(table, result, selected_groups, metric, agg_index, suspects,
                  reference_positive, per_group_baseline, predicates,
                  ExecContext::None(), shards));
  // The null context never interrupts, so the outcome is complete.
  return std::move(outcome.predicates);
}

Result<RankOutcome> PredicateRanker::RankAnytime(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates,
    const ExecContext& ctx, const ShardPlan* shards) const {
  if (predicates.empty()) {
    return Status::InvalidArgument("no predicates to rank");
  }
  DBW_FAULT(ctx, "ranker/rank");
  DBW_TRACE_SPAN("ranker/rank");
  Metrics().runs->Increment();
  if (options_.engine == RankerOptions::Engine::kReferenceSerial) {
    // The reference engine always scores the fused view; it exists to
    // differential-test the fast paths (sharded included) against one
    // canonical serial fold.
    return RankReference(table, result, selected_groups, metric, agg_index,
                         suspects, reference_positive, per_group_baseline,
                         predicates, ctx);
  }
  return RankDelta(table, result, selected_groups, metric, agg_index,
                   suspects, reference_positive, per_group_baseline,
                   predicates, ctx, shards);
}

Result<RankOutcome> PredicateRanker::RankDelta(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates,
    const ExecContext& ctx, const ShardPlan* shards) const {
  const size_t n = predicates.size();
  const bool have_reference = !reference_positive.empty();
  double w_error = options_.w_error;
  double w_acc = options_.w_accuracy;
  if (!have_reference) {
    // No user examples to agree with: fold the accuracy weight into
    // error improvement.
    w_error += w_acc;
    w_acc = 0.0;
  }

  // One lineage walk for the whole call; scoring below never touches
  // the lineage or evaluates an expression again. An interrupt this
  // early means nothing was scored: empty partial result.
  Result<RemovalScorer> scorer_r = RemovalScorer::Create(
      table, result, selected_groups, agg_index, suspects, ctx);
  if (!scorer_r.ok()) {
    if (scorer_r.status().IsInterrupt()) {
      return MakeOutcome({}, 0, n, ctx, /*budget_stopped=*/
                         scorer_r.status().IsResourceExhausted());
    }
    return scorer_r.status();
  }
  const RemovalScorer& scorer = scorer_r.ValueUnsafe();

  // The reference set as a positional bitmap over F: tp of a predicate
  // is then a popcount of the AND.
  Bitmap reference_bitmap(suspects.size());
  if (have_reference) {
    for (size_t i = 0; i < suspects.size(); ++i) {
      if (std::binary_search(reference_positive.begin(),
                             reference_positive.end(), suspects[i])) {
        reference_bitmap.Set(i);
      }
    }
  }

  std::vector<RankedPredicate> scored(n);
  std::vector<Bitmap> matched(n);
  ParallelOptions popts;
  popts.num_threads = options_.num_threads;
  popts.ctx = &ctx;

  // Vectorized matching: enumerators emit conjunctions that share
  // single-attribute clauses (threshold families, repeated categorical
  // equalities), so each distinct clause is scanned ONCE by a typed
  // kernel — chunked over the same pool — and a predicate's bitmap is
  // an AND of cached words. MatchPrepared is const, so the scoring
  // loop below reads the cache concurrently without synchronization.
  MatchEngine engine(table, suspects);
  bool use_kernels = options_.use_match_kernels;
  RankStats stats;

  // Sharded kernel path: one cached engine per shard, each matching
  // over that shard's slice of the suspect universe in shard-local
  // coordinates. The per-set cache is what survives between explains —
  // an append grows only the tail shard's table, so every other
  // shard's engine passes the freshness check and returns warm.
  bool shard_scoring = use_kernels && shards != nullptr &&
                       shards->set != nullptr && !shards->slices.empty();
  const size_t num_slices = shard_scoring ? shards->slices.size() : 0;
  std::shared_ptr<ShardEngineCache> cache;
  std::vector<std::unique_ptr<MatchEngine>> shard_engines(num_slices);
  std::vector<Bitmap> ref_parts(num_slices);
  std::vector<size_t> offsets(num_slices, 0);
  // Reused engines carry cumulative counters across explains; per-run
  // stats are deltas from these checkout-time snapshots.
  struct CounterBase {
    size_t lookups = 0, hits = 0, misses = 0, mats = 0, boxed = 0;
    size_t f_lookups = 0, f_hits = 0, f_compiles = 0, f_fallbacks = 0;
    size_t f_evals = 0;
    double f_compile_ms = 0.0;
  };
  std::vector<CounterBase> bases(num_slices);
  // Fills per-shard stat lanes from the counter deltas and returns
  // every engine to the cache warm; safe to call at most once.
  auto finish_shards = [&]() {
    for (size_t s = 0; s < shard_engines.size(); ++s) {
      if (shard_engines[s] == nullptr) continue;
      ShardRankStats& ss = stats.shard_stats[s];
      const MatchEngine& se = *shard_engines[s];
      ss.clause_lookups = se.clause_lookups() - bases[s].lookups;
      ss.cache_hits = se.cache_hits() - bases[s].hits;
      ss.cache_misses = se.cache_misses() - bases[s].misses;
      ss.bitmaps_materialized = se.bitmaps_materialized() - bases[s].mats;
      ss.cached_clauses = se.num_cached_clauses();
      ss.fused_lookups = se.fused_lookups() - bases[s].f_lookups;
      ss.fused_hits = se.fused_hits() - bases[s].f_hits;
      ss.fused_compiles = se.fused_compiles() - bases[s].f_compiles;
      ss.fused_fallbacks = se.fused_fallbacks() - bases[s].f_fallbacks;
      ss.fused_evals = se.fused_evals() - bases[s].f_evals;
      ss.cached_programs = se.num_fused_programs();
      stats.clause_lookups += ss.clause_lookups;
      stats.cache_hits += ss.cache_hits;
      stats.cache_misses += ss.cache_misses;
      stats.bitmaps_materialized += ss.bitmaps_materialized;
      stats.boxed_fallbacks += se.boxed_fallbacks() - bases[s].boxed;
      stats.fused_lookups += ss.fused_lookups;
      stats.fused_hits += ss.fused_hits;
      stats.fused_compiles += ss.fused_compiles;
      stats.fused_fallbacks += ss.fused_fallbacks;
      stats.fused_evals += ss.fused_evals;
      stats.fused_programs += ss.cached_programs;
      stats.fused_compile_ms +=
          se.fused_compile_ms() - bases[s].f_compile_ms;
      if (stats.simd_tier.empty()) stats.simd_tier = SimdTierName(se.simd_tier());
      cache->Checkin(ss.shard_index, std::move(shard_engines[s]));
    }
  };

  std::vector<const Predicate*> preds;
  if (use_kernels) {
    preds.reserve(n);
    for (const EnumeratedPredicate& ep : predicates) {
      preds.push_back(&ep.predicate);
    }
  }
  if (shard_scoring) {
    cache = ShardEngineCache::For(*shards->set);
    stats.shard_stats.resize(num_slices);
    const auto t_mat = std::chrono::steady_clock::now();
    Status materialized = Status::OK();
    // Shards materialize serially (each internally chunked over the
    // pool), so per-shard wall times are honest and the budget charge
    // order is deterministic.
    for (size_t s = 0; s < num_slices && materialized.ok(); ++s) {
      const ShardSlice& slice = shards->slices[s];
      offsets[s] = slice.offset;
      ShardRankStats& ss = stats.shard_stats[s];
      ss.shard_index = slice.shard_index;
      ss.rows = slice.table->num_rows();
      ss.suspects = slice.local_rows.size();
      materialized = [&]() -> Status {
        DBW_FAULT(ctx, "ranker/shard");
        return Status::OK();
      }();
      if (!materialized.ok()) break;
      ShardEngineCache::Checkout co = cache->CheckoutEngine(
          slice.shard_index, *slice.table, slice.local_rows);
      ss.engine_reused = co.reused;
      bases[s] = {co.engine->clause_lookups(),
                  co.engine->cache_hits(),
                  co.engine->cache_misses(),
                  co.engine->bitmaps_materialized(),
                  co.engine->boxed_fallbacks(),
                  co.engine->fused_lookups(),
                  co.engine->fused_hits(),
                  co.engine->fused_compiles(),
                  co.engine->fused_fallbacks(),
                  co.engine->fused_evals(),
                  co.engine->fused_compile_ms()};
      shard_engines[s] = std::move(co.engine);
      const auto t_shard = std::chrono::steady_clock::now();
      materialized = shard_engines[s]->Materialize(preds, popts);
      ss.materialize_ms =
          MillisBetween(t_shard, std::chrono::steady_clock::now());
      ref_parts[s] = Bitmap(slice.local_rows.size());
      if (have_reference) {
        for (size_t i = 0; i < slice.local_rows.size(); ++i) {
          if (reference_bitmap.Test(slice.offset + i)) ref_parts[s].Set(i);
        }
      }
    }
    stats.materialize_ms =
        MillisBetween(t_mat, std::chrono::steady_clock::now());
    if (!materialized.ok()) {
      // An interrupted shard rolled its fresh entries back; completed
      // shards stay warm for the next run either way.
      finish_shards();
      stats.shard_stats.clear();
      if (materialized.IsResourceExhausted()) {
        use_kernels = false;  // degrade to the fused boxed path below
        shard_scoring = false;
      } else if (materialized.IsInterrupt()) {
        return MakeOutcome({}, 0, n, ctx, false);
      } else {
        return materialized;
      }
    }
  } else if (use_kernels) {
    const auto t_mat = std::chrono::steady_clock::now();
    Status materialized = engine.Materialize(preds, popts);
    stats.materialize_ms =
        MillisBetween(t_mat, std::chrono::steady_clock::now());
    if (!materialized.ok()) {
      if (materialized.IsResourceExhausted()) {
        // Bitmap budget cannot hold the clause cache: degrade to boxed
        // per-predicate matching, which allocates one bitmap at a time.
        use_kernels = false;
      } else if (materialized.IsInterrupt()) {
        return MakeOutcome({}, 0, n, ctx, false);
      } else {
        return materialized;
      }
    }
  }
  std::vector<std::vector<Bitmap>> matched_parts(shard_scoring ? n : 0);

  // Anytime scoring: predicates are processed in fixed-size blocks and
  // a block marks itself done only after scoring every member. On an
  // interrupt the run keeps the longest done-prefix of blocks — a cut
  // that is prefix-consistent with the full run at any thread count.
  const size_t num_blocks = (n + kScoreBlock - 1) / kScoreBlock;
  std::vector<unsigned char> block_done(num_blocks, 0);
  // Slot-per-block wall times: each block writes only its own slot, so
  // the vector needs no synchronization beyond the pool's own joins.
  std::vector<double> block_ms(num_blocks, 0.0);
  std::atomic<bool> budget_stop{false};
  const auto t_score = std::chrono::steady_clock::now();

  Status scan = ParallelForStatus(
      num_blocks,
      [&](size_t b) -> Status {
        if (budget_stop.load(std::memory_order_acquire)) return Status::OK();
        if (ctx.StopRequested()) return Status::OK();
        DBW_FAULT(ctx, "ranker/score");
        const auto t_block = std::chrono::steady_clock::now();
        const size_t lo = b * kScoreBlock;
        const size_t hi = std::min(n, lo + kScoreBlock);
        if (ctx.budget != nullptr) {
          Status charged = ctx.budget->ChargeScoredRemovals(hi - lo);
          if (!charged.ok()) {
            budget_stop.store(true, std::memory_order_release);
            return Status::OK();  // wind down; block stays incomplete
          }
        }
        for (size_t i = lo; i < hi; ++i) {
          // Per-predicate stop check: one steady-clock read against a
          // full removal-set scoring — the block is abandoned (not
          // marked done), bounding overrun to a single predicate.
          if (ctx.StopRequested()) return Status::OK();
          const EnumeratedPredicate& ep = predicates[i];
          RankedPredicate& rp = scored[i];
          rp.predicate = ep.predicate;
          rp.strategy = ep.strategy;
          RemovalScorer::Errors errors;
          size_t tp = 0;
          if (shard_scoring) {
            // Per-shard bitmaps, folded in slice order: offsets ascend,
            // so removals apply in ascending global suspect order and
            // every sum visits the same operands as the fused path.
            std::vector<Bitmap> parts(num_slices);
            size_t count = 0;
            for (size_t s = 0; s < num_slices; ++s) {
              DBW_ASSIGN_OR_RETURN(
                  parts[s],
                  shard_engines[s]->MatchPrepared(ep.predicate, ctx));
              count += parts[s].CountOnes();
              if (have_reference) tp += parts[s].CountAnd(ref_parts[s]);
            }
            rp.matched_in_suspects = count;
            errors = scorer.ErrorsAfterParts(metric, parts, offsets);
            matched_parts[i] = std::move(parts);
          } else {
            Bitmap bm;
            if (use_kernels) {
              DBW_ASSIGN_OR_RETURN(bm,
                                   engine.MatchPrepared(ep.predicate, ctx));
            } else {
              DBW_ASSIGN_OR_RETURN(BoundPredicate bound,
                                   ep.predicate.Bind(table));
              bm = bound.MatchBitmap(suspects);
            }
            rp.matched_in_suspects = bm.CountOnes();
            errors = scorer.ErrorsAfter(metric, bm);
            if (have_reference) tp = bm.CountAnd(reference_bitmap);
            matched[i] = std::move(bm);
          }
          rp.error_after = errors.raw;
          FinishScore(options_, have_reference, w_error, w_acc,
                      per_group_baseline, errors.per_group, tp,
                      reference_positive.size(), &rp);
        }
        block_ms[b] = MillisBetween(t_block, std::chrono::steady_clock::now());
        block_done[b] = 1;
        return Status::OK();
      },
      popts);
  stats.score_ms = MillisBetween(t_score, std::chrono::steady_clock::now());
  if (!scan.ok() && !scan.IsInterrupt()) {
    if (shard_scoring) finish_shards();  // hand engines back warm
    return scan;
  }

  // The deterministic cut: contiguous completed blocks from the front.
  size_t done_blocks = 0;
  while (done_blocks < num_blocks && block_done[done_blocks]) ++done_blocks;
  const size_t prefix = std::min(n, done_blocks * kScoreBlock);
  scored.resize(prefix);
  matched.resize(prefix);
  if (shard_scoring) matched_parts.resize(prefix);
  std::vector<RankedPredicate> ranked =
      shard_scoring
          ? CombinePartialRankings(
                &scored, [&](size_t i) { return HashParts(matched_parts[i]); },
                [&](size_t a, size_t b) {
                  return matched_parts[a] == matched_parts[b];
                },
                options_.top_k)
          : CombinePartialRankings(
                &scored, [&](size_t i) { return matched[i].Hash(); },
                [&](size_t a, size_t b) { return matched[a] == matched[b]; },
                options_.top_k);

  stats.blocks_total = num_blocks;
  stats.blocks_done = done_blocks;
  stats.block_ms = std::move(block_ms);
  stats.used_kernels = use_kernels;
  if (shard_scoring) {
    finish_shards();  // top-level counters become the lane sums
  } else {
    stats.clause_lookups = engine.clause_lookups();
    stats.cache_hits = engine.cache_hits();
    stats.cache_misses = engine.cache_misses();
    stats.bitmaps_materialized = engine.bitmaps_materialized();
    stats.boxed_fallbacks = engine.boxed_fallbacks();
    stats.fused_lookups = engine.fused_lookups();
    stats.fused_hits = engine.fused_hits();
    stats.fused_compiles = engine.fused_compiles();
    stats.fused_fallbacks = engine.fused_fallbacks();
    stats.fused_evals = engine.fused_evals();
    stats.fused_programs = engine.num_fused_programs();
    stats.fused_compile_ms = engine.fused_compile_ms();
    if (use_kernels) stats.simd_tier = SimdTierName(engine.simd_tier());
  }
  Metrics().blocks_scored->Increment(done_blocks);
  Metrics().predicates_scored->Increment(prefix);

  RankOutcome out = MakeOutcome(std::move(ranked), prefix, n, ctx,
                                budget_stop.load(std::memory_order_acquire));
  if (out.partial) Metrics().partial_runs->Increment();
  out.stats = std::move(stats);
  return out;
}

Result<RankOutcome> PredicateRanker::RankReference(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates,
    const ExecContext& ctx) const {
  const size_t n = predicates.size();
  const bool have_reference = !reference_positive.empty();
  double w_error = options_.w_error;
  double w_acc = options_.w_accuracy;
  if (!have_reference) {
    w_error += w_acc;
    w_acc = 0.0;
  }

  bool budget_stop = false;
  std::vector<RankedPredicate> scored;
  std::vector<std::vector<RowId>> matched_sets;
  scored.reserve(n);
  matched_sets.reserve(n);
  RankStats stats;
  stats.blocks_total = (n + kScoreBlock - 1) / kScoreBlock;
  stats.block_ms.assign(stats.blocks_total, 0.0);
  const auto t_score = std::chrono::steady_clock::now();
  auto t_block = t_score;
  // Serial loop; the anytime cut is simply how far it got, rounded
  // down to a whole block so both engines report identical prefixes.
  for (const EnumeratedPredicate& ep : predicates) {
    if (ctx.StopRequested()) break;
    if (scored.size() % kScoreBlock == 0) {
      const auto now = std::chrono::steady_clock::now();
      if (!scored.empty()) {
        stats.block_ms[scored.size() / kScoreBlock - 1] =
            MillisBetween(t_block, now);
      }
      t_block = now;
      DBW_FAULT(ctx, "ranker/score");
      if (ctx.budget != nullptr) {
        const size_t block =
            std::min(kScoreBlock, n - scored.size());
        Status charged = ctx.budget->ChargeScoredRemovals(block);
        if (!charged.ok()) {
          budget_stop = true;
          break;
        }
      }
    }
    DBW_ASSIGN_OR_RETURN(BoundPredicate bound, ep.predicate.Bind(table));

    // Tuples of F the predicate matches = the tuples cleaning removes
    // from the selected groups.
    std::vector<RowId> matched;
    for (RowId r : suspects) {
      if (bound.Matches(r)) matched.push_back(r);
    }

    RankedPredicate rp;
    rp.predicate = ep.predicate;
    rp.strategy = ep.strategy;
    rp.matched_in_suspects = matched.size();

    // Raw metric for display; per-group mean for the improvement term.
    DBW_ASSIGN_OR_RETURN(
        rp.error_after,
        ErrorAfterRemoval(table, result, selected_groups, metric, agg_index,
                          matched));
    DBW_ASSIGN_OR_RETURN(
        const double per_group_after,
        PerGroupErrorAfterRemoval(table, result, selected_groups, metric,
                                  agg_index, matched));
    size_t tp = 0;
    if (have_reference) {
      for (RowId r : matched) {
        if (std::binary_search(reference_positive.begin(),
                               reference_positive.end(), r)) {
          ++tp;
        }
      }
    }
    FinishScore(options_, have_reference, w_error, w_acc, per_group_baseline,
                per_group_after, tp, reference_positive.size(), &rp);
    scored.push_back(std::move(rp));
    matched_sets.push_back(std::move(matched));
  }

  stats.score_ms = MillisBetween(t_score, std::chrono::steady_clock::now());
  // Close the final block's slot if the loop finished it.
  if (!scored.empty() &&
      (scored.size() == n || scored.size() % kScoreBlock == 0)) {
    stats.block_ms[(scored.size() - 1) / kScoreBlock] =
        MillisBetween(t_block, std::chrono::steady_clock::now());
  }

  size_t prefix = scored.size();
  if (prefix < n) {
    prefix -= prefix % kScoreBlock;  // whole blocks only, like the
                                     // parallel engine's cut
    scored.resize(prefix);
    matched_sets.resize(prefix);
  }
  stats.blocks_done = (prefix + kScoreBlock - 1) / kScoreBlock;
  Metrics().blocks_scored->Increment(stats.blocks_done);
  Metrics().predicates_scored->Increment(prefix);

  auto hash_of = [&](size_t i) {
    uint64_t hash = 0x9E3779B97F4A7C15ULL;
    for (RowId r : matched_sets[i]) {
      hash ^= std::hash<RowId>{}(r) + 0x9E3779B9u + (hash << 6) +
              (hash >> 2);
    }
    return hash;
  };
  std::vector<RankedPredicate> ranked = CombinePartialRankings(
      &scored, hash_of,
      [&](size_t a, size_t b) { return matched_sets[a] == matched_sets[b]; },
      options_.top_k);
  RankOutcome out = MakeOutcome(std::move(ranked), prefix, n, ctx, budget_stop);
  if (out.partial) Metrics().partial_runs->Increment();
  out.stats = std::move(stats);
  return out;
}

}  // namespace dbwipes
