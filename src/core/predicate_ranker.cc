#include "dbwipes/core/predicate_ranker.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dbwipes {

Result<std::vector<RankedPredicate>> PredicateRanker::Rank(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates) const {
  if (predicates.empty()) {
    return Status::InvalidArgument("no predicates to rank");
  }

  const bool have_reference = !reference_positive.empty();
  double w_error = options_.w_error;
  double w_acc = options_.w_accuracy;
  if (!have_reference) {
    // No user examples to agree with: fold the accuracy weight into
    // error improvement.
    w_error += w_acc;
    w_acc = 0.0;
  }

  std::vector<RankedPredicate> out;
  std::vector<size_t> matched_hash;
  out.reserve(predicates.size());
  for (const EnumeratedPredicate& ep : predicates) {
    DBW_ASSIGN_OR_RETURN(BoundPredicate bound, ep.predicate.Bind(table));

    // Tuples of F the predicate matches = the tuples cleaning removes
    // from the selected groups.
    std::vector<RowId> matched;
    size_t hash = 0x9E3779B97F4A7C15ULL;
    for (RowId r : suspects) {
      if (bound.Matches(r)) {
        matched.push_back(r);
        hash ^= std::hash<RowId>{}(r) + 0x9E3779B9u + (hash << 6) +
                (hash >> 2);
      }
    }
    matched_hash.push_back(hash);

    RankedPredicate rp;
    rp.predicate = ep.predicate;
    rp.strategy = ep.strategy;
    rp.matched_in_suspects = matched.size();

    // Raw metric for display; per-group mean for the improvement term.
    DBW_ASSIGN_OR_RETURN(
        rp.error_after,
        ErrorAfterRemoval(table, result, selected_groups, metric, agg_index,
                          matched));
    DBW_ASSIGN_OR_RETURN(
        const double per_group_after,
        PerGroupErrorAfterRemoval(table, result, selected_groups, metric,
                                  agg_index, matched));
    if (per_group_baseline > 0.0) {
      rp.error_improvement = std::clamp(
          (per_group_baseline - per_group_after) / per_group_baseline, 0.0,
          1.0);
    }

    if (have_reference) {
      size_t tp = 0;
      for (RowId r : matched) {
        if (std::binary_search(reference_positive.begin(),
                               reference_positive.end(), r)) {
          ++tp;
        }
      }
      rp.precision = matched.empty()
                         ? 0.0
                         : static_cast<double>(tp) /
                               static_cast<double>(matched.size());
      rp.recall = static_cast<double>(tp) /
                  static_cast<double>(reference_positive.size());
      rp.f1 = (rp.precision + rp.recall) > 0.0
                  ? 2.0 * rp.precision * rp.recall /
                        (rp.precision + rp.recall)
                  : 0.0;
    }

    const double complexity =
        std::min(1.0, static_cast<double>(rp.predicate.num_clauses()) /
                          static_cast<double>(options_.max_clauses));
    rp.score = w_error * rp.error_improvement + w_acc * rp.f1 -
               options_.w_complexity * complexity;
    out.push_back(std::move(rp));
  }

  // Order by score, then collapse predicates that remove the same
  // tuple set: they are interchangeable repairs, so only the best-
  // scoring (shortest, by the complexity term) description survives.
  std::vector<size_t> order(out.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return out[a].score > out[b].score;
  });
  std::vector<RankedPredicate> deduped;
  std::unordered_set<size_t> seen_sets;
  for (size_t i : order) {
    if (out[i].matched_in_suspects > 0 &&
        !seen_sets.insert(matched_hash[i]).second) {
      continue;
    }
    deduped.push_back(std::move(out[i]));
    if (deduped.size() == options_.top_k) break;
  }
  return deduped;
}

}  // namespace dbwipes
