#include "dbwipes/core/predicate_ranker.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dbwipes/common/parallel.h"
#include "dbwipes/core/removal_scorer.h"
#include "dbwipes/expr/match_kernels.h"

namespace dbwipes {

namespace {

/// Shared scoring arithmetic: fills the score-derived fields of `rp`
/// from the raw measurements.
void FinishScore(const RankerOptions& options, bool have_reference,
                 double w_error, double w_acc, double per_group_baseline,
                 double per_group_after, size_t tp, size_t reference_size,
                 RankedPredicate* rp) {
  if (per_group_baseline > 0.0) {
    rp->error_improvement = std::clamp(
        (per_group_baseline - per_group_after) / per_group_baseline, 0.0,
        1.0);
  }
  if (have_reference) {
    rp->precision = rp->matched_in_suspects == 0
                        ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(rp->matched_in_suspects);
    rp->recall = static_cast<double>(tp) /
                 static_cast<double>(reference_size);
    rp->f1 = (rp->precision + rp->recall) > 0.0
                 ? 2.0 * rp->precision * rp->recall /
                       (rp->precision + rp->recall)
                 : 0.0;
  }
  const double complexity =
      std::min(1.0, static_cast<double>(rp->predicate.num_clauses()) /
                        static_cast<double>(options.max_clauses));
  rp->score = w_error * rp->error_improvement + w_acc * rp->f1 -
              options.w_complexity * complexity;
}

/// Orders by score (stable: ties keep enumeration order) and collapses
/// predicates that remove the same tuple set — interchangeable repairs;
/// only the best-scoring description survives. `set_hash`/`set_equal`
/// describe the matched tuple sets: hashes bucket, but survival is
/// decided by real set equality, so two distinct repairs can never be
/// collapsed by a hash collision.
std::vector<RankedPredicate> SortAndDedup(
    std::vector<RankedPredicate>* scored,
    const std::function<uint64_t(size_t)>& set_hash,
    const std::function<bool(size_t, size_t)>& set_equal, size_t top_k) {
  std::vector<size_t> order(scored->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*scored)[a].score > (*scored)[b].score;
  });
  std::vector<RankedPredicate> deduped;
  std::unordered_map<uint64_t, std::vector<size_t>> seen_sets;
  for (size_t i : order) {
    if ((*scored)[i].matched_in_suspects > 0) {
      std::vector<size_t>& bucket = seen_sets[set_hash(i)];
      const bool duplicate =
          std::any_of(bucket.begin(), bucket.end(),
                      [&](size_t j) { return set_equal(i, j); });
      if (duplicate) continue;
      bucket.push_back(i);
    }
    deduped.push_back(std::move((*scored)[i]));
    if (deduped.size() == top_k) break;
  }
  return deduped;
}

}  // namespace

Result<std::vector<RankedPredicate>> PredicateRanker::Rank(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates) const {
  if (predicates.empty()) {
    return Status::InvalidArgument("no predicates to rank");
  }
  if (options_.engine == RankerOptions::Engine::kReferenceSerial) {
    return RankReference(table, result, selected_groups, metric, agg_index,
                         suspects, reference_positive, per_group_baseline,
                         predicates);
  }
  return RankDelta(table, result, selected_groups, metric, agg_index,
                   suspects, reference_positive, per_group_baseline,
                   predicates);
}

Result<std::vector<RankedPredicate>> PredicateRanker::RankDelta(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates) const {
  const bool have_reference = !reference_positive.empty();
  double w_error = options_.w_error;
  double w_acc = options_.w_accuracy;
  if (!have_reference) {
    // No user examples to agree with: fold the accuracy weight into
    // error improvement.
    w_error += w_acc;
    w_acc = 0.0;
  }

  // One lineage walk for the whole call; scoring below never touches
  // the lineage or evaluates an expression again.
  DBW_ASSIGN_OR_RETURN(RemovalScorer scorer,
                       RemovalScorer::Create(table, result, selected_groups,
                                             agg_index, suspects));

  // The reference set as a positional bitmap over F: tp of a predicate
  // is then a popcount of the AND.
  Bitmap reference_bitmap(suspects.size());
  if (have_reference) {
    for (size_t i = 0; i < suspects.size(); ++i) {
      if (std::binary_search(reference_positive.begin(),
                             reference_positive.end(), suspects[i])) {
        reference_bitmap.Set(i);
      }
    }
  }

  const size_t n = predicates.size();
  std::vector<RankedPredicate> scored(n);
  std::vector<Bitmap> matched(n);
  ParallelOptions popts;
  popts.num_threads = options_.num_threads;

  // Vectorized matching: enumerators emit conjunctions that share
  // single-attribute clauses (threshold families, repeated categorical
  // equalities), so each distinct clause is scanned ONCE by a typed
  // kernel — chunked over the same pool — and a predicate's bitmap is
  // an AND of cached words. MatchPrepared is const, so the scoring
  // loop below reads the cache concurrently without synchronization.
  MatchEngine engine(table, suspects);
  if (options_.use_match_kernels) {
    std::vector<const Predicate*> preds;
    preds.reserve(n);
    for (const EnumeratedPredicate& ep : predicates) {
      preds.push_back(&ep.predicate);
    }
    DBW_RETURN_NOT_OK(engine.Materialize(preds, popts));
  }

  DBW_RETURN_NOT_OK(ParallelForStatus(
      n,
      [&](size_t i) -> Status {
        const EnumeratedPredicate& ep = predicates[i];
        Bitmap bm;
        if (options_.use_match_kernels) {
          DBW_ASSIGN_OR_RETURN(bm, engine.MatchPrepared(ep.predicate));
        } else {
          DBW_ASSIGN_OR_RETURN(BoundPredicate bound,
                               ep.predicate.Bind(table));
          bm = bound.MatchBitmap(suspects);
        }

        RankedPredicate& rp = scored[i];
        rp.predicate = ep.predicate;
        rp.strategy = ep.strategy;
        rp.matched_in_suspects = bm.CountOnes();

        const RemovalScorer::Errors errors = scorer.ErrorsAfter(metric, bm);
        rp.error_after = errors.raw;
        const size_t tp =
            have_reference ? bm.CountAnd(reference_bitmap) : 0;
        FinishScore(options_, have_reference, w_error, w_acc,
                    per_group_baseline, errors.per_group, tp,
                    reference_positive.size(), &rp);
        matched[i] = std::move(bm);
        return Status::OK();
      },
      popts));

  return SortAndDedup(
      &scored, [&](size_t i) { return matched[i].Hash(); },
      [&](size_t a, size_t b) { return matched[a] == matched[b]; },
      options_.top_k);
}

Result<std::vector<RankedPredicate>> PredicateRanker::RankReference(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<EnumeratedPredicate>& predicates) const {
  const bool have_reference = !reference_positive.empty();
  double w_error = options_.w_error;
  double w_acc = options_.w_accuracy;
  if (!have_reference) {
    w_error += w_acc;
    w_acc = 0.0;
  }

  std::vector<RankedPredicate> scored;
  std::vector<std::vector<RowId>> matched_sets;
  scored.reserve(predicates.size());
  matched_sets.reserve(predicates.size());
  for (const EnumeratedPredicate& ep : predicates) {
    DBW_ASSIGN_OR_RETURN(BoundPredicate bound, ep.predicate.Bind(table));

    // Tuples of F the predicate matches = the tuples cleaning removes
    // from the selected groups.
    std::vector<RowId> matched;
    for (RowId r : suspects) {
      if (bound.Matches(r)) matched.push_back(r);
    }

    RankedPredicate rp;
    rp.predicate = ep.predicate;
    rp.strategy = ep.strategy;
    rp.matched_in_suspects = matched.size();

    // Raw metric for display; per-group mean for the improvement term.
    DBW_ASSIGN_OR_RETURN(
        rp.error_after,
        ErrorAfterRemoval(table, result, selected_groups, metric, agg_index,
                          matched));
    DBW_ASSIGN_OR_RETURN(
        const double per_group_after,
        PerGroupErrorAfterRemoval(table, result, selected_groups, metric,
                                  agg_index, matched));
    size_t tp = 0;
    if (have_reference) {
      for (RowId r : matched) {
        if (std::binary_search(reference_positive.begin(),
                               reference_positive.end(), r)) {
          ++tp;
        }
      }
    }
    FinishScore(options_, have_reference, w_error, w_acc, per_group_baseline,
                per_group_after, tp, reference_positive.size(), &rp);
    scored.push_back(std::move(rp));
    matched_sets.push_back(std::move(matched));
  }

  auto hash_of = [&](size_t i) {
    uint64_t hash = 0x9E3779B97F4A7C15ULL;
    for (RowId r : matched_sets[i]) {
      hash ^= std::hash<RowId>{}(r) + 0x9E3779B9u + (hash << 6) +
              (hash >> 2);
    }
    return hash;
  };
  return SortAndDedup(
      &scored, hash_of,
      [&](size_t a, size_t b) { return matched_sets[a] == matched_sets[b]; },
      options_.top_k);
}

}  // namespace dbwipes
