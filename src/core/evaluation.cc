#include "dbwipes/core/evaluation.h"

#include <algorithm>

namespace dbwipes {

ExplanationQuality ScoreTupleSet(const std::vector<RowId>& predicted_sorted,
                                 const std::vector<RowId>& truth_sorted) {
  ExplanationQuality q;
  q.predicted = predicted_sorted.size();
  q.truth = truth_sorted.size();
  std::vector<RowId> common;
  std::set_intersection(predicted_sorted.begin(), predicted_sorted.end(),
                        truth_sorted.begin(), truth_sorted.end(),
                        std::back_inserter(common));
  q.intersection = common.size();
  if (q.predicted > 0) {
    q.precision = static_cast<double>(q.intersection) /
                  static_cast<double>(q.predicted);
  }
  if (q.truth > 0) {
    q.recall =
        static_cast<double>(q.intersection) / static_cast<double>(q.truth);
  }
  if (q.precision + q.recall > 0.0) {
    q.f1 = 2.0 * q.precision * q.recall / (q.precision + q.recall);
  }
  const size_t uni = q.predicted + q.truth - q.intersection;
  if (uni > 0) {
    q.jaccard = static_cast<double>(q.intersection) / static_cast<double>(uni);
  }
  return q;
}

Result<ExplanationQuality> ScorePredicate(
    const Table& table, const Predicate& predicate,
    const std::vector<RowId>& truth_sorted) {
  DBW_ASSIGN_OR_RETURN(BoundPredicate bound, predicate.Bind(table));
  return ScoreTupleSet(bound.MatchingRows(), truth_sorted);
}

}  // namespace dbwipes
