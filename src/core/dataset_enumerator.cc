#include "dbwipes/core/dataset_enumerator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/stats.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/core/removal_scorer.h"
#include "dbwipes/learn/kmeans.h"
#include "dbwipes/learn/naive_bayes.h"

namespace dbwipes {

namespace {

std::vector<RowId> SortedUnique(std::vector<RowId> rows) {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

std::vector<RowId> UnionOf(const std::vector<RowId>& a,
                           const std::vector<RowId>& b) {
  std::vector<RowId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

Result<std::vector<RowId>> DatasetEnumerator::CleanDPrime(
    const Table& /*table*/, const std::vector<RowId>& dprime,
    const std::vector<RowId>& suspect_inputs,
    const std::vector<TupleInfluence>& influences,
    const FeatureView& view, const ExecContext& ctx) const {
  DBW_FAULT(ctx, "enumerate/clean");
  DBW_TRACE_SPAN("enumerate/clean");
  DBW_RETURN_NOT_OK(ctx.CheckContinue());
  std::vector<RowId> sorted = SortedUnique(dprime);
  if (sorted.size() < 4 || options_.clean_method == CleanMethod::kNone) {
    // Too few examples to judge consistency; trust the user.
    return sorted;
  }

  // Influence lookup for majority-cluster selection.
  std::unordered_map<RowId, double> influence_of;
  for (const TupleInfluence& ti : influences) {
    influence_of[ti.row] = ti.influence;
  }

  if (options_.clean_method == CleanMethod::kKMeans) {
    std::vector<std::vector<double>> matrix;
    std::vector<size_t> numeric_features;
    view.NumericMatrix(sorted, /*standardize=*/true, &matrix,
                       &numeric_features);
    if (numeric_features.empty()) return sorted;

    Rng rng(options_.seed);
    DBW_ASSIGN_OR_RETURN(KMeansResult clusters,
                         KMeansAuto(matrix, /*max_k=*/3, &rng));
    const size_t k =
        1 + static_cast<size_t>(*std::max_element(
                clusters.assignment.begin(), clusters.assignment.end()));
    if (k <= 1) return sorted;  // D' already looks homogeneous

    // Drop only clusters that look like selection mistakes: much lower
    // mean influence than the best cluster AND small. A heterogeneous
    // but genuine D' (e.g. two failing motes) keeps all its modes.
    std::vector<double> mean_influence(k, 0.0);
    std::vector<size_t> sizes(k, 0);
    for (size_t i = 0; i < sorted.size(); ++i) {
      const int c = clusters.assignment[i];
      ++sizes[c];
      auto it = influence_of.find(sorted[i]);
      if (it != influence_of.end()) mean_influence[c] += it->second;
    }
    double best_mean = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (sizes[c] > 0) {
        mean_influence[c] /= static_cast<double>(sizes[c]);
        best_mean = std::max(best_mean, mean_influence[c]);
      }
    }
    std::vector<bool> keep_cluster(k, true);
    for (size_t c = 0; c < k; ++c) {
      const bool low_influence =
          best_mean > 0.0 && mean_influence[c] < 0.25 * best_mean;
      const bool small =
          sizes[c] * 5 < sorted.size();  // under 20% of D'
      keep_cluster[c] = !(low_influence && small);
    }
    std::vector<RowId> kept;
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (keep_cluster[clusters.assignment[i]]) kept.push_back(sorted[i]);
    }
    // Never throw away the whole selection.
    return kept.empty() ? sorted : kept;
  }

  // Classifier-based cleaning: train D' (=1) against the rest of F
  // (=0) and drop D' members the model finds unlikely to be positive.
  std::vector<RowId> rows;
  std::vector<int> labels;
  std::unordered_set<RowId> in_dprime(sorted.begin(), sorted.end());
  for (RowId r : suspect_inputs) {
    rows.push_back(r);
    labels.push_back(in_dprime.count(r) ? 1 : 0);
  }
  const bool has_negative =
      std::count(labels.begin(), labels.end(), 0) > 0;
  if (!has_negative) return sorted;

  auto model = NaiveBayes::Fit(view, rows, labels);
  if (!model.ok()) return sorted;
  std::vector<RowId> kept;
  for (RowId r : sorted) {
    if (model->PredictProba(view, r) >= 0.4) kept.push_back(r);
  }
  return kept.empty() ? sorted : kept;
}

Result<std::vector<CandidateDataset>> DatasetEnumerator::Enumerate(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups,
    const PreprocessResult& preprocess, const std::vector<RowId>& dprime,
    const FeatureView& view, const ErrorMetric& metric,
    size_t agg_index, const ExecContext& ctx) const {
  DBW_FAULT(ctx, "enumerate/datasets");
  DBW_TRACE_SPAN("enumerate/datasets");
  const std::vector<RowId>& suspects = preprocess.suspect_inputs;
  if (suspects.empty()) {
    return Status::InvalidArgument(
        "selection has no lineage tuples to explain");
  }

  // 1. Clean D'.
  DBW_ASSIGN_OR_RETURN(
      std::vector<RowId> cleaned,
      CleanDPrime(table, dprime, suspects, preprocess.influences, view, ctx));

  // 2. Positive labels for the extension step: cleaned D' plus the
  //    top-influence quantile of F.
  std::unordered_set<RowId> positives(cleaned.begin(), cleaned.end());
  std::vector<RowId> top_influence;
  {
    // Quantile over the *positive* influences: with a max-style metric
    // only the worst group's tuples can have any influence at all, so
    // a quantile over all of F would be stuck at zero.
    std::vector<double> positive_infl;
    positive_infl.reserve(preprocess.influences.size());
    for (const TupleInfluence& ti : preprocess.influences) {
      if (ti.influence > 0.0) positive_infl.push_back(ti.influence);
    }
    if (!positive_infl.empty()) {
      const double cutoff =
          Quantile(positive_infl, options_.influence_quantile);
      for (const TupleInfluence& ti : preprocess.influences) {
        if (ti.influence > 0.0 && ti.influence >= cutoff) {
          top_influence.push_back(ti.row);
          positives.insert(ti.row);
        }
      }
    }
    top_influence = SortedUnique(std::move(top_influence));
  }

  // Raw candidate row sets before scoring.
  struct RawCandidate {
    std::vector<RowId> rows;
    std::string source;
  };
  std::vector<RawCandidate> raw;
  if (!cleaned.empty()) {
    raw.push_back({cleaned, "cleaned-dprime"});
  }
  if (options_.include_top_influence_candidate && !top_influence.empty()) {
    raw.push_back({top_influence, "top-influence"});
  }

  // 3. Extend via subgroup discovery over F. Discovery is the
  //    expensive step, so it is skipped entirely once a stop is
  //    requested (the cheap candidates above still get scored).
  DBW_RETURN_NOT_OK(ctx.CheckContinue());
  if (options_.extend_with_subgroups && !positives.empty()) {
    std::vector<int> labels;
    labels.reserve(suspects.size());
    size_t num_pos = 0;
    for (RowId r : suspects) {
      const int y = positives.count(r) ? 1 : 0;
      num_pos += y;
      labels.push_back(y);
    }
    if (num_pos > 0 && num_pos < suspects.size()) {
      auto subgroups = DiscoverSubgroups(view, suspects, labels,
                                         /*init_weights=*/{},
                                         options_.subgroup_options);
      if (subgroups.ok()) {
        for (const Subgroup& sg : *subgroups) {
          std::vector<RowId> rows;
          rows.reserve(sg.covered.size());
          for (size_t idx : sg.covered) rows.push_back(suspects[idx]);
          rows = UnionOf(SortedUnique(std::move(rows)), cleaned);
          raw.push_back({std::move(rows),
                         "subgroup: " + sg.predicate.ToString()});
        }
      }
    }
  }

  if (raw.empty()) {
    return Status::InvalidArgument(
        "no candidate datasets: D' is empty and no tuple has positive "
        "influence");
  }

  // 4. Score by error reduction; epsilon controls the extension
  //    (candidates that do not reduce the error are dropped). The
  //    scorer snapshots the selected groups' aggregator state once;
  //    each candidate then costs Remove() deltas instead of a full
  //    lineage rebuild.
  DBW_ASSIGN_OR_RETURN(RemovalScorer scorer,
                       RemovalScorer::Create(table, result, selected_groups,
                                             agg_index, suspects, ctx));
  std::vector<CandidateDataset> out;
  std::unordered_set<std::string> seen_keys;
  for (RawCandidate& rc : raw) {
    DBW_RETURN_NOT_OK(ctx.CheckContinue());
    if (rc.rows.empty()) continue;
    std::string key;
    key.reserve(rc.rows.size() * 4);
    for (RowId r : rc.rows) {
      key += std::to_string(r);
      key += ',';
    }
    if (!seen_keys.insert(key).second) continue;

    // Score against the per-group mean error (smooth in partial
    // progress; see PerGroupError).
    const double err_after = scorer.ErrorsAfterRows(metric, rc.rows).per_group;
    CandidateDataset cd;
    cd.rows = std::move(rc.rows);
    cd.source = std::move(rc.source);
    cd.error_after_removal = err_after;
    cd.error_reduction = preprocess.per_group_baseline_error - err_after;
    if (options_.require_error_reduction && cd.error_reduction <= 0.0) {
      continue;
    }
    out.push_back(std::move(cd));
  }

  std::sort(out.begin(), out.end(),
            [](const CandidateDataset& a, const CandidateDataset& b) {
              return a.error_reduction > b.error_reduction;
            });
  if (out.size() > options_.max_candidates) {
    out.resize(options_.max_candidates);
  }
  if (out.empty()) {
    return Status::NotFound(
        "no candidate dataset reduces the error metric; try a different "
        "metric or selection");
  }
  static MetricCounter* const emitted =
      MetricsRegistry::Global().GetCounter("enumerate.datasets");
  emitted->Increment(out.size());
  return out;
}

}  // namespace dbwipes
