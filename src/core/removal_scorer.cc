#include "dbwipes/core/removal_scorer.h"

#include "dbwipes/common/trace.h"
#include "dbwipes/core/removal.h"

namespace dbwipes {

Result<RemovalScorer> RemovalScorer::Create(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, size_t agg_index,
    const std::vector<RowId>& suspects, const ExecContext& ctx) {
  DBW_FAULT(ctx, "scorer/create");
  DBW_TRACE_SPAN("scorer/create");
  if (agg_index >= result.query.aggregates.size()) {
    return Status::OutOfRange("agg_index out of range");
  }
  const AggSpec& spec = result.query.aggregates[agg_index];

  RemovalScorer scorer;
  scorer.entries_.assign(suspects.size(), Entry{});
  scorer.suspect_index_.reserve(suspects.size());
  for (size_t i = 0; i < suspects.size(); ++i) {
    if (!scorer.suspect_index_.emplace(suspects[i], i).second) {
      return Status::InvalidArgument("suspect set contains duplicates");
    }
  }

  scorer.base_.reserve(selected_groups.size());
  scorer.base_values_.reserve(selected_groups.size());
  for (size_t gi = 0; gi < selected_groups.size(); ++gi) {
    DBW_RETURN_NOT_OK(ctx.CheckContinue());
    const size_t g = selected_groups[gi];
    if (g >= result.num_groups()) {
      return Status::OutOfRange("selected group out of range");
    }
    AggregatorPtr agg = MakeAggregator(spec.kind);
    // Same fold order as the from-scratch path (ValuesAfterRemoval),
    // so unaffected groups reproduce its values bit for bit.
    for (RowId r : result.lineage[g]) {
      double removable_value;
      if (!spec.argument) {
        removable_value = 0.0;  // count(*)
      } else {
        DBW_ASSIGN_OR_RETURN(Value v, spec.argument->Eval(table, r));
        if (v.is_null()) continue;  // no contribution; removal is a no-op
        DBW_ASSIGN_OR_RETURN(removable_value, v.AsDouble());
      }
      agg->Add(removable_value);
      auto it = scorer.suspect_index_.find(r);
      if (it == scorer.suspect_index_.end()) continue;
      Entry& e = scorer.entries_[it->second];
      if (e.group != kNoGroup) {
        // A base row feeding two selected groups would make per-row
        // deltas ambiguous; group-by partitions rows, so this cannot
        // happen with well-formed lineage.
        return Status::InvalidArgument(
            "suspect row appears in multiple selected groups' lineage");
      }
      e.group = static_cast<uint32_t>(gi);
      e.value = removable_value;
    }
    scorer.base_values_.push_back(agg->Value());
    scorer.base_.push_back(std::move(agg));
  }
  return scorer;
}

template <typename ForEachMatched>
std::vector<double> RemovalScorer::ValuesImpl(
    const ForEachMatched& for_each) const {
  // Lazily cloned state for affected groups only; untouched groups
  // read the cached base value.
  std::vector<AggregatorPtr> scratch(base_.size());
  for_each([&](size_t suspect_idx) {
    const Entry& e = entries_[suspect_idx];
    if (e.group == kNoGroup) return;
    AggregatorPtr& agg = scratch[e.group];
    if (!agg) agg = base_[e.group]->Clone();
    agg->Remove(e.value);
  });
  std::vector<double> values(base_.size());
  for (size_t g = 0; g < base_.size(); ++g) {
    values[g] = scratch[g] ? scratch[g]->Value() : base_values_[g];
  }
  return values;
}

std::vector<double> RemovalScorer::ValuesAfterRemoval(
    const Bitmap& matched) const {
  return ValuesImpl([&](const auto& apply) { matched.ForEachSet(apply); });
}

std::vector<double> RemovalScorer::ValuesAfterRemovalMask(
    const std::vector<char>& matched) const {
  return ValuesImpl([&](const auto& apply) {
    for (size_t i = 0; i < matched.size(); ++i) {
      if (matched[i]) apply(i);
    }
  });
}

std::vector<double> RemovalScorer::ValuesAfterRemovalRows(
    const std::vector<RowId>& rows) const {
  return ValuesImpl([&](const auto& apply) {
    for (RowId r : rows) {
      auto it = suspect_index_.find(r);
      if (it != suspect_index_.end()) apply(it->second);
    }
  });
}

double RemovalScorer::ErrorAfter(const ErrorMetric& metric,
                                 const Bitmap& matched) const {
  return metric.Error(ValuesAfterRemoval(matched));
}

RemovalScorer::Errors RemovalScorer::ErrorsAfter(const ErrorMetric& metric,
                                                 const Bitmap& matched) const {
  const std::vector<double> values = ValuesAfterRemoval(matched);
  return {metric.Error(values), PerGroupError(metric, values)};
}

RemovalScorer::Errors RemovalScorer::ErrorsAfterParts(
    const ErrorMetric& metric, const std::vector<Bitmap>& parts,
    const std::vector<size_t>& offsets) const {
  DBW_DCHECK(parts.size() == offsets.size());
  const std::vector<double> values = ValuesImpl([&](const auto& apply) {
    for (size_t p = 0; p < parts.size(); ++p) {
      const size_t offset = offsets[p];
      parts[p].ForEachSet([&](size_t i) { apply(offset + i); });
    }
  });
  return {metric.Error(values), PerGroupError(metric, values)};
}

RemovalScorer::Errors RemovalScorer::ErrorsAfterRows(
    const ErrorMetric& metric, const std::vector<RowId>& rows) const {
  const std::vector<double> values = ValuesAfterRemovalRows(rows);
  return {metric.Error(values), PerGroupError(metric, values)};
}

}  // namespace dbwipes
