#include "dbwipes/core/export.h"

#include <cmath>
#include <cstdio>

namespace dbwipes {

namespace {

/// Tiny streaming JSON writer: tracks indentation and comma placement
/// so callers only emit keys and values.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  std::string Take() { return std::move(out_); }

  void BeginObject() {
    Separator();
    out_ += '{';
    PushLevel();
  }
  void EndObject() {
    PopLevel();
    out_ += '}';
  }
  void BeginArray() {
    Separator();
    out_ += '[';
    PushLevel();
  }
  void EndArray() {
    PopLevel();
    out_ += ']';
  }

  void Key(const std::string& name) {
    Separator();
    out_ += '"' + JsonEscape(name) + "\":";
    if (pretty_) out_ += ' ';
    just_wrote_key_ = true;
  }

  void String(const std::string& value) {
    Separator();
    out_ += '"' + JsonEscape(value) + '"';
  }
  void Number(double value) {
    Separator();
    if (std::isnan(value) || std::isinf(value)) {
      out_ += "null";  // JSON has no NaN/Inf
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  }
  void Number(int64_t value) {
    Separator();
    out_ += std::to_string(value);
  }
  void Number(size_t value) { Number(static_cast<int64_t>(value)); }
  void Bool(bool value) {
    Separator();
    out_ += value ? "true" : "false";
  }
  void Null() {
    Separator();
    out_ += "null";
  }

 private:
  void PushLevel() {
    ++depth_;
    needs_comma_.push_back(false);
  }
  void PopLevel() {
    --depth_;
    needs_comma_.pop_back();
    Newline();
  }
  void Separator() {
    if (just_wrote_key_) {
      just_wrote_key_ = false;
      return;
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ += ',';
      needs_comma_.back() = true;
      Newline();
    }
  }
  void Newline() {
    if (!pretty_) return;
    out_ += '\n';
    out_ += std::string(static_cast<size_t>(depth_) * 2, ' ');
  }

  bool pretty_;
  std::string out_;
  int depth_ = 0;
  std::vector<bool> needs_comma_;
  bool just_wrote_key_ = false;
};

void WriteProfile(JsonWriter* w, const ExplainProfile& p) {
  w->BeginObject();

  w->Key("rid");
  w->Number(p.rid);

  w->Key("stage_ms");
  w->BeginObject();
  w->Key("preprocess");
  w->Number(p.preprocess_ms);
  w->Key("enumerate");
  w->Number(p.enumerate_ms);
  w->Key("predicates");
  w->Number(p.predicates_ms);
  w->Key("materialize");
  w->Number(p.materialize_ms);
  w->Key("score");
  w->Number(p.score_ms);
  w->Key("rank");
  w->Number(p.rank_ms);
  w->Key("total");
  w->Number(p.total_ms);
  w->EndObject();

  w->Key("attempts");
  w->Number(p.attempts);

  w->Key("work");
  w->BeginObject();
  w->Key("table_rows");
  w->Number(p.table_rows);
  w->Key("suspect_rows");
  w->Number(p.suspect_rows);
  w->Key("candidate_datasets");
  w->Number(p.candidate_datasets);
  w->Key("predicates_enumerated");
  w->Number(p.predicates_enumerated);
  w->Key("predicates_scored");
  w->Number(p.predicates_scored);
  w->EndObject();

  w->Key("scoring_blocks");
  w->BeginObject();
  w->Key("total");
  w->Number(p.scoring_blocks_total);
  w->Key("done");
  w->Number(p.scoring_blocks_done);
  w->Key("block_ms");
  w->BeginArray();
  for (double ms : p.block_ms) w->Number(ms);
  w->EndArray();
  w->EndObject();

  w->Key("match_engine");
  w->BeginObject();
  w->Key("used_kernels");
  w->Bool(p.used_match_kernels);
  w->Key("clause_lookups");
  w->Number(p.clause_lookups);
  w->Key("cache_hits");
  w->Number(p.cache_hits);
  w->Key("cache_misses");
  w->Number(p.cache_misses);
  w->Key("bitmaps_materialized");
  w->Number(p.bitmaps_materialized);
  w->Key("boxed_fallbacks");
  w->Number(p.boxed_fallbacks);
  w->Key("fused");
  w->BeginObject();
  w->Key("lookups");
  w->Number(p.fused_lookups);
  w->Key("hits");
  w->Number(p.fused_hits);
  w->Key("compiles");
  w->Number(p.fused_compiles);
  w->Key("fallbacks");
  w->Number(p.fused_fallbacks);
  w->Key("evals");
  w->Number(p.fused_evals);
  w->Key("programs");
  w->Number(p.fused_programs);
  w->Key("compile_ms");
  w->Number(p.fused_compile_ms);
  w->Key("simd_tier");
  w->String(p.simd_tier);
  w->EndObject();
  w->EndObject();

  if (p.num_shards > 0) {
    w->Key("shards");
    w->BeginObject();
    w->Key("count");
    w->Number(p.num_shards);
    w->Key("engines_reused");
    w->Number(p.shard_engines_reused);
    w->Key("skew");
    w->Number(p.shard_skew);
    w->Key("lanes");
    w->BeginArray();
    for (const ExplainProfile::ShardLane& lane : p.shards) {
      w->BeginObject();
      w->Key("shard");
      w->Number(lane.shard_index);
      w->Key("rows");
      w->Number(lane.rows);
      w->Key("suspects");
      w->Number(lane.suspects);
      w->Key("engine_reused");
      w->Bool(lane.engine_reused);
      w->Key("materialize_ms");
      w->Number(lane.materialize_ms);
      w->Key("clause_lookups");
      w->Number(lane.clause_lookups);
      w->Key("cache_hits");
      w->Number(lane.cache_hits);
      w->Key("cache_misses");
      w->Number(lane.cache_misses);
      w->Key("bitmaps_materialized");
      w->Number(lane.bitmaps_materialized);
      w->Key("cached_clauses");
      w->Number(lane.cached_clauses);
      w->Key("fused_lookups");
      w->Number(lane.fused_lookups);
      w->Key("fused_hits");
      w->Number(lane.fused_hits);
      w->Key("fused_compiles");
      w->Number(lane.fused_compiles);
      w->Key("fused_fallbacks");
      w->Number(lane.fused_fallbacks);
      w->Key("fused_evals");
      w->Number(lane.fused_evals);
      w->Key("cached_programs");
      w->Number(lane.cached_programs);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }

  w->Key("thread_pool");
  w->BeginObject();
  w->Key("threads");
  w->Number(p.pool_threads);
  w->Key("regions");
  w->Number(static_cast<size_t>(p.pool_regions));
  w->Key("chunks");
  w->Number(static_cast<size_t>(p.pool_chunks));
  w->Key("busy_ms");
  w->Number(p.pool_busy_ms);
  w->Key("peak_queue_depth");
  w->Number(static_cast<size_t>(p.pool_peak_queue_depth));
  w->Key("utilization");
  w->Number(p.pool_utilization);
  w->EndObject();

  w->Key("anytime");
  w->BeginObject();
  w->Key("partial");
  w->Bool(p.partial);
  if (p.partial) {
    w->Key("reason");
    w->String(p.partial_reason);
  }
  w->Key("cancelled");
  w->Bool(p.cancelled);
  w->Key("deadline_expired");
  w->Bool(p.deadline_expired);
  if (p.has_deadline) {
    w->Key("deadline_remaining_ms");
    w->Number(p.deadline_remaining_ms);
  }
  if (p.has_budget) {
    w->Key("budget");
    w->BeginObject();
    w->Key("used_predicates");
    w->Number(p.budget_used_predicates);
    w->Key("used_bitmap_bytes");
    w->Number(p.budget_used_bitmap_bytes);
    w->Key("used_scored_removals");
    w->Number(p.budget_used_scored_removals);
    w->Key("predicates_exhausted");
    w->Bool(p.budget_predicates_exhausted);
    w->Key("bitmap_exhausted");
    w->Bool(p.budget_bitmap_exhausted);
    w->Key("removals_exhausted");
    w->Bool(p.budget_removals_exhausted);
    w->EndObject();
  }
  w->EndObject();

  w->EndObject();
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string ExplanationToJson(const Explanation& explanation, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();

  w.Key("baseline_error");
  w.Number(explanation.preprocess.baseline_error);
  w.Key("per_group_baseline_error");
  w.Number(explanation.preprocess.per_group_baseline_error);
  w.Key("num_suspect_inputs");
  w.Number(explanation.preprocess.suspect_inputs.size());
  w.Key("num_cleaned_dprime");
  w.Number(explanation.cleaned_dprime.size());

  w.Key("partial");
  w.Bool(explanation.partial);
  if (explanation.partial) {
    w.Key("partial_reason");
    w.String(explanation.partial_reason);
  }
  w.Key("ranked_considered");
  w.Number(explanation.ranked_considered);
  w.Key("total_enumerated");
  w.Number(explanation.total_enumerated);

  w.Key("timings_ms");
  w.BeginObject();
  w.Key("preprocess");
  w.Number(explanation.preprocess_ms);
  w.Key("enumerate");
  w.Number(explanation.enumerate_ms);
  w.Key("predicates");
  w.Number(explanation.predicates_ms);
  w.Key("rank");
  w.Number(explanation.rank_ms);
  w.Key("total");
  w.Number(explanation.total_ms());
  w.EndObject();

  w.Key("profile");
  WriteProfile(&w, explanation.profile);

  w.Key("candidates");
  w.BeginArray();
  for (const CandidateDataset& c : explanation.candidates) {
    w.BeginObject();
    w.Key("source");
    w.String(c.source);
    w.Key("num_rows");
    w.Number(c.rows.size());
    w.Key("error_after_removal");
    w.Number(c.error_after_removal);
    w.Key("error_reduction");
    w.Number(c.error_reduction);
    w.EndObject();
  }
  w.EndArray();

  w.Key("predicates");
  w.BeginArray();
  for (const RankedPredicate& p : explanation.predicates) {
    w.BeginObject();
    w.Key("predicate");
    w.String(p.predicate.ToString());
    w.Key("num_clauses");
    w.Number(p.predicate.num_clauses());
    w.Key("score");
    w.Number(p.score);
    w.Key("error_improvement");
    w.Number(p.error_improvement);
    w.Key("error_after");
    w.Number(p.error_after);
    w.Key("precision");
    w.Number(p.precision);
    w.Key("recall");
    w.Number(p.recall);
    w.Key("f1");
    w.Number(p.f1);
    w.Key("matched_in_suspects");
    w.Number(p.matched_in_suspects);
    w.Key("strategy");
    w.String(p.strategy);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  std::string out = w.Take();
  if (pretty) out += '\n';
  return out;
}

std::string ExplainProfileToJson(const ExplainProfile& profile, bool pretty) {
  JsonWriter w(pretty);
  WriteProfile(&w, profile);
  std::string out = w.Take();
  if (pretty) out += '\n';
  return out;
}

std::string QueryResultToJson(const QueryResult& result, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.Key("sql");
  w.String(result.query.ToSql());
  w.Key("columns");
  w.BeginArray();
  if (result.rows) {
    for (const Field& f : result.rows->schema().fields()) {
      w.String(f.name);
    }
  }
  w.EndArray();
  w.Key("rows");
  w.BeginArray();
  if (result.rows) {
    for (RowId r = 0; r < result.rows->num_rows(); ++r) {
      w.BeginArray();
      for (size_t c = 0; c < result.rows->num_columns(); ++c) {
        const Column& col = result.rows->column(c);
        if (col.IsNull(r)) {
          w.Null();
        } else if (col.type() == DataType::kString) {
          w.String(col.GetString(r));
        } else if (col.type() == DataType::kInt64) {
          w.Number(col.GetInt64(r));
        } else {
          w.Number(col.GetDouble(r));
        }
      }
      w.EndArray();
    }
  }
  w.EndArray();
  w.EndObject();
  std::string out = w.Take();
  if (pretty) out += '\n';
  return out;
}

}  // namespace dbwipes
