#include "dbwipes/viz/histogram.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

Result<Histogram> Histogram::FromColumn(const Table& table,
                                        const std::string& column,
                                        const std::vector<RowId>& rows,
                                        size_t num_buckets) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("num_buckets must be > 0");
  }
  DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(column));
  const Column& col = table.column(idx);

  std::vector<RowId> all;
  const std::vector<RowId>* target = &rows;
  if (rows.empty()) {
    all.resize(table.num_rows());
    for (RowId r = 0; r < table.num_rows(); ++r) all[r] = r;
    target = &all;
  }

  Histogram h;
  h.column_ = column;
  h.total_count_ = target->size();

  if (col.type() == DataType::kString) {
    std::unordered_map<int32_t, size_t> freq;
    for (RowId r : *target) {
      if (col.IsNull(r)) {
        ++h.null_count_;
      } else {
        ++freq[col.StringCode(r)];
      }
    }
    std::vector<std::pair<int32_t, size_t>> cats(freq.begin(), freq.end());
    std::sort(cats.begin(), cats.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (cats.size() > num_buckets) cats.resize(num_buckets);
    for (const auto& [code, count] : cats) {
      Bucket b;
      b.label = col.DictionaryValue(code);
      b.count = count;
      h.buckets_.push_back(std::move(b));
    }
    return h;
  }

  // Numeric: equal-width bins over [min, max].
  double lo = 0.0, hi = 0.0;
  bool found = false;
  for (RowId r : *target) {
    if (col.IsNull(r)) {
      ++h.null_count_;
      continue;
    }
    const double v = col.AsDouble(r);
    if (!found) {
      lo = hi = v;
      found = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!found) return h;  // only NULLs
  if (hi == lo) hi = lo + 1.0;

  h.buckets_.resize(num_buckets);
  const double width = (hi - lo) / static_cast<double>(num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    h.buckets_[b].lo = lo + width * static_cast<double>(b);
    h.buckets_[b].hi = h.buckets_[b].lo + width;
    h.buckets_[b].label = "[" + FormatDouble(h.buckets_[b].lo, 4) + ", " +
                          FormatDouble(h.buckets_[b].hi, 4) + ")";
  }
  for (RowId r : *target) {
    if (col.IsNull(r)) continue;
    const double v = col.AsDouble(r);
    size_t b = static_cast<size_t>((v - lo) / width);
    if (b >= num_buckets) b = num_buckets - 1;  // v == hi
    ++h.buckets_[b].count;
  }
  return h;
}

std::string Histogram::Render(size_t width) const {
  std::string out = column_ + " (" + std::to_string(total_count_) +
                    " rows, " + std::to_string(null_count_) + " null)\n";
  size_t max_count = 1;
  size_t label_width = 0;
  for (const Bucket& b : buckets_) {
    max_count = std::max(max_count, b.count);
    label_width = std::max(label_width, b.label.size());
  }
  for (const Bucket& b : buckets_) {
    const size_t bar =
        b.count == 0
            ? 0
            : std::max<size_t>(
                  1, b.count * width / max_count);
    out += "  " + b.label + std::string(label_width - b.label.size(), ' ') +
           " |" + std::string(bar, '#') + " " + std::to_string(b.count) +
           "\n";
  }
  return out;
}

}  // namespace dbwipes
