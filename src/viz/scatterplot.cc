#include "dbwipes/viz/scatterplot.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/string_util.h"
#include "dbwipes/learn/pca.h"

namespace dbwipes {

Result<ScatterPlot> ScatterPlot::FromResult(const QueryResult& result,
                                            const std::string& y_column,
                                            const std::string& x_column) {
  if (!result.rows) return Status::InvalidArgument("empty query result");
  const Table& rows = *result.rows;
  DBW_ASSIGN_OR_RETURN(size_t y_idx, rows.schema().GetIndex(y_column));

  // Resolve the x axis: explicit column, else first group-by column,
  // else the group ordinal.
  std::optional<size_t> x_idx;
  std::string x_label = "group";
  if (!x_column.empty()) {
    DBW_ASSIGN_OR_RETURN(size_t idx, rows.schema().GetIndex(x_column));
    x_idx = idx;
    x_label = x_column;
  } else if (!result.query.group_by.empty()) {
    DBW_ASSIGN_OR_RETURN(size_t idx,
                         rows.schema().GetIndex(result.query.group_by[0]));
    x_idx = idx;
    x_label = result.query.group_by[0];
  }

  ScatterPlot plot;
  plot.x_label_ = x_label;
  plot.y_label_ = y_column;
  plot.points_.reserve(rows.num_rows());
  for (RowId r = 0; r < rows.num_rows(); ++r) {
    ScatterPoint p;
    p.group = r;
    if (x_idx) {
      const Column& xc = rows.column(*x_idx);
      if (xc.IsNull(r)) {
        p.drawable = false;
      } else if (xc.type() == DataType::kString) {
        // Categorical x: position by dictionary code.
        p.x = static_cast<double>(xc.StringCode(r));
      } else {
        p.x = xc.AsDouble(r);
      }
    } else {
      p.x = static_cast<double>(r);
    }
    const Column& yc = rows.column(y_idx);
    if (yc.IsNull(r)) {
      p.drawable = false;
    } else {
      p.y = yc.AsDouble(r);
    }
    plot.points_.push_back(p);
  }
  return plot;
}

Result<ScatterPlot> ScatterPlot::FromResultPca(const QueryResult& result) {
  if (!result.rows) return Status::InvalidArgument("empty query result");
  if (result.query.group_by.size() < 2) {
    return Status::InvalidArgument(
        "PCA projection needs a multi-attribute group-by");
  }
  const Table& rows = *result.rows;
  const size_t d = result.query.group_by.size();

  std::vector<std::vector<double>> keys;
  std::vector<bool> drawable(rows.num_rows(), true);
  keys.reserve(rows.num_rows());
  for (RowId r = 0; r < rows.num_rows(); ++r) {
    std::vector<double> key(d, 0.0);
    for (size_t c = 0; c < d; ++c) {
      const Column& col = rows.column(c);
      if (col.IsNull(r)) {
        drawable[r] = false;
      } else if (col.type() == DataType::kString) {
        key[c] = static_cast<double>(col.StringCode(r));
      } else {
        key[c] = col.AsDouble(r);
      }
    }
    keys.push_back(std::move(key));
  }
  DBW_ASSIGN_OR_RETURN(PcaResult pca, ComputePca(keys, 2));

  ScatterPlot plot;
  plot.x_label_ = "PC1";
  plot.y_label_ = "PC2";
  plot.points_.reserve(keys.size());
  for (size_t r = 0; r < keys.size(); ++r) {
    ScatterPoint p;
    p.group = r;
    p.drawable = drawable[r];
    const std::vector<double> projected = pca.Project(keys[r]);
    p.x = projected[0];
    p.y = projected[1];
    plot.points_.push_back(p);
  }
  return plot;
}

std::vector<size_t> ScatterPlot::Brush(double x_lo, double x_hi, double y_lo,
                                       double y_hi) {
  for (ScatterPoint& p : points_) {
    if (!p.drawable) continue;
    if (p.x >= x_lo && p.x <= x_hi && p.y >= y_lo && p.y <= y_hi) {
      p.selected = true;
    }
  }
  return SelectedGroups();
}

std::vector<size_t> ScatterPlot::BrushY(double y_lo, double y_hi) {
  return Brush(-std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity(), y_lo, y_hi);
}

void ScatterPlot::ClearSelection() {
  for (ScatterPoint& p : points_) p.selected = false;
}

std::vector<size_t> ScatterPlot::SelectedGroups() const {
  std::vector<size_t> out;
  for (const ScatterPoint& p : points_) {
    if (p.selected) out.push_back(p.group);
  }
  return out;
}

std::string ScatterPlot::Render(size_t width, size_t height) const {
  width = std::max<size_t>(width, 16);
  height = std::max<size_t>(height, 4);

  double x_min = 0.0, x_max = 1.0, y_min = 0.0, y_max = 1.0;
  bool first = true;
  for (const ScatterPoint& p : points_) {
    if (!p.drawable) continue;
    if (first) {
      x_min = x_max = p.x;
      y_min = y_max = p.y;
      first = false;
    } else {
      x_min = std::min(x_min, p.x);
      x_max = std::max(x_max, p.x);
      y_min = std::min(y_min, p.y);
      y_max = std::max(y_max, p.y);
    }
  }
  if (first) return "(no drawable points)\n";
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (const ScatterPoint& p : points_) {
    if (!p.drawable) continue;
    const size_t cx = static_cast<size_t>(
        (p.x - x_min) / (x_max - x_min) * static_cast<double>(width - 1));
    const size_t cy = static_cast<size_t>(
        (p.y - y_min) / (y_max - y_min) * static_cast<double>(height - 1));
    char& cell = grid[height - 1 - cy][cx];
    const char mark = p.selected ? '#' : '*';
    // Selected marks win over plain ones when points overlap.
    if (cell != '#') cell = mark;
  }

  std::string out;
  out += y_label_ + " (" + FormatDouble(y_min, 4) + " .. " +
         FormatDouble(y_max, 4) + ")\n";
  for (const std::string& line : grid) {
    out += "|" + line + "\n";
  }
  out += "+" + std::string(width, '-') + "\n";
  out += " " + x_label_ + " (" + FormatDouble(x_min, 4) + " .. " +
         FormatDouble(x_max, 4) + ")   [* point, # selected]\n";
  return out;
}

}  // namespace dbwipes
