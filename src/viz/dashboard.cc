#include "dbwipes/viz/dashboard.h"

#include <algorithm>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

std::string Dashboard::RenderQueryForm() const {
  std::string out = "=== Query ===\n";
  const std::string sql = session_->CurrentSql();
  out += (sql.empty() ? "(no query)" : sql) + "\n";
  if (!session_->applied_predicates().empty()) {
    out += "cleaning predicates applied:\n";
    for (const Predicate& p : session_->applied_predicates()) {
      out += "  - NOT (" + p.ToString() + ")\n";
    }
  }
  return out;
}

Result<std::string> Dashboard::RenderVisualization(const std::string& y_column,
                                                   size_t width,
                                                   size_t height) const {
  if (!session_->has_result()) {
    return std::string("=== Visualization ===\n(no result)\n");
  }
  const QueryResult& result = session_->result();
  std::string y = y_column;
  if (y.empty()) {
    if (result.query.aggregates.empty()) {
      return Status::InvalidArgument("query has no aggregates to plot");
    }
    y = result.query.aggregates[0].output_name;
  }
  DBW_ASSIGN_OR_RETURN(ScatterPlot plot, ScatterPlot::FromResult(result, y));
  for (size_t g : session_->selected_groups()) {
    // Re-mark the session's selection on the fresh plot.
    plot.Brush(plot.points()[g].x, plot.points()[g].x, plot.points()[g].y,
               plot.points()[g].y);
  }
  return "=== Visualization ===\n" + plot.Render(width, height);
}

Result<std::string> Dashboard::RenderErrorForms(size_t agg_index) const {
  DBW_ASSIGN_OR_RETURN(std::vector<MetricSuggestion> suggestions,
                       session_->SuggestErrorMetrics(agg_index));
  std::string out = "=== Error metric ===\n";
  for (size_t i = 0; i < suggestions.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + suggestions[i].label +
           " (default expected: " +
           FormatDouble(suggestions[i].default_expected, 4) + ")\n";
  }
  return out;
}

std::string Dashboard::RenderRankedPredicates() const {
  std::string out = "=== Ranked predicates ===\n";
  if (!session_->has_explanation()) {
    out += "(click debug! first)\n";
    return out;
  }
  const Explanation& exp = session_->explanation();
  if (exp.predicates.empty()) {
    out += "(no predicates found)\n";
    return out;
  }
  for (size_t i = 0; i < exp.predicates.size(); ++i) {
    const RankedPredicate& rp = exp.predicates[i];
    out += "  [" + std::to_string(i) + "] " + rp.predicate.ToString() + "\n";
    out += "       score=" + FormatDouble(rp.score, 3) +
           "  err_improvement=" + FormatDouble(rp.error_improvement, 3) +
           "  f1(D')=" + FormatDouble(rp.f1, 3) + "  matches " +
           std::to_string(rp.matched_in_suspects) + " suspect tuples\n";
  }
  return out;
}

std::string Dashboard::RenderProfile(size_t width) const {
  std::string out = "=== Profile ===\n";
  if (!session_->has_explanation()) {
    out += "(click debug! first)\n";
    return out;
  }
  const ExplainProfile& p = session_->explanation().profile;
  if (width == 0) width = 1;

  struct Stage {
    const char* name;
    double ms;
  };
  const Stage stages[] = {
      {"preprocess", p.preprocess_ms}, {"enumerate", p.enumerate_ms},
      {"predicates", p.predicates_ms}, {"materialize", p.materialize_ms},
      {"score", p.score_ms},           {"rank", p.rank_ms},
  };
  double max_ms = 0.0;
  for (const Stage& s : stages) max_ms = std::max(max_ms, s.ms);

  for (const Stage& s : stages) {
    const size_t bar =
        max_ms > 0.0
            ? static_cast<size_t>(s.ms / max_ms * static_cast<double>(width))
            : 0;
    std::string line = "  ";
    line += s.name;
    line.resize(14, ' ');
    line += std::string(bar, '#');
    line += " " + FormatDouble(s.ms, 2) + " ms\n";
    out += line;
  }
  out += "  total        " + FormatDouble(p.total_ms, 2) + " ms\n";

  if (p.used_match_kernels) {
    out += "  match cache: " + std::to_string(p.cache_hits) + " hits / " +
           std::to_string(p.cache_misses) + " misses (" +
           std::to_string(p.bitmaps_materialized) + " bitmaps)\n";
  }
  out += "  pool: " + std::to_string(p.pool_threads) + " threads, " +
         std::to_string(p.pool_chunks) + " chunks, utilization " +
         FormatDouble(p.pool_utilization * 100.0, 1) + "%\n";
  if (p.partial) {
    out += "  PARTIAL: " + p.partial_reason + " (" +
           std::to_string(p.scoring_blocks_done) + "/" +
           std::to_string(p.scoring_blocks_total) + " scoring blocks)\n";
  }
  return out;
}

Result<std::string> Dashboard::RenderAll() const {
  std::string out = RenderQueryForm();
  DBW_ASSIGN_OR_RETURN(std::string viz, RenderVisualization());
  out += viz;
  if (session_->has_result() && !session_->selected_groups().empty()) {
    DBW_ASSIGN_OR_RETURN(std::string forms, RenderErrorForms());
    out += forms;
  }
  out += RenderRankedPredicates();
  if (session_->has_explanation()) out += RenderProfile();
  return out;
}

}  // namespace dbwipes
