#include "dbwipes/viz/dashboard.h"

#include <algorithm>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

std::string Dashboard::RenderQueryForm() const {
  std::string out = "=== Query ===\n";
  const std::string sql = session_->CurrentSql();
  out += (sql.empty() ? "(no query)" : sql) + "\n";
  if (!session_->applied_predicates().empty()) {
    out += "cleaning predicates applied:\n";
    for (const Predicate& p : session_->applied_predicates()) {
      out += "  - NOT (" + p.ToString() + ")\n";
    }
  }
  return out;
}

Result<std::string> Dashboard::RenderVisualization(const std::string& y_column,
                                                   size_t width,
                                                   size_t height) const {
  if (!session_->has_result()) {
    return std::string("=== Visualization ===\n(no result)\n");
  }
  const QueryResult& result = session_->result();
  std::string y = y_column;
  if (y.empty()) {
    if (result.query.aggregates.empty()) {
      return Status::InvalidArgument("query has no aggregates to plot");
    }
    y = result.query.aggregates[0].output_name;
  }
  DBW_ASSIGN_OR_RETURN(ScatterPlot plot, ScatterPlot::FromResult(result, y));
  for (size_t g : session_->selected_groups()) {
    // Re-mark the session's selection on the fresh plot.
    plot.Brush(plot.points()[g].x, plot.points()[g].x, plot.points()[g].y,
               plot.points()[g].y);
  }
  return "=== Visualization ===\n" + plot.Render(width, height);
}

Result<std::string> Dashboard::RenderErrorForms(size_t agg_index) const {
  DBW_ASSIGN_OR_RETURN(std::vector<MetricSuggestion> suggestions,
                       session_->SuggestErrorMetrics(agg_index));
  std::string out = "=== Error metric ===\n";
  for (size_t i = 0; i < suggestions.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + suggestions[i].label +
           " (default expected: " +
           FormatDouble(suggestions[i].default_expected, 4) + ")\n";
  }
  return out;
}

std::string Dashboard::RenderRankedPredicates() const {
  std::string out = "=== Ranked predicates ===\n";
  if (!session_->has_explanation()) {
    out += "(click debug! first)\n";
    return out;
  }
  const Explanation& exp = session_->explanation();
  if (exp.predicates.empty()) {
    out += "(no predicates found)\n";
    return out;
  }
  for (size_t i = 0; i < exp.predicates.size(); ++i) {
    const RankedPredicate& rp = exp.predicates[i];
    out += "  [" + std::to_string(i) + "] " + rp.predicate.ToString() + "\n";
    out += "       score=" + FormatDouble(rp.score, 3) +
           "  err_improvement=" + FormatDouble(rp.error_improvement, 3) +
           "  f1(D')=" + FormatDouble(rp.f1, 3) + "  matches " +
           std::to_string(rp.matched_in_suspects) + " suspect tuples\n";
  }
  return out;
}

Result<std::string> Dashboard::RenderAll() const {
  std::string out = RenderQueryForm();
  DBW_ASSIGN_OR_RETURN(std::string viz, RenderVisualization());
  out += viz;
  if (session_->has_result() && !session_->selected_groups().empty()) {
    DBW_ASSIGN_OR_RETURN(std::string forms, RenderErrorForms());
    out += forms;
  }
  out += RenderRankedPredicates();
  return out;
}

}  // namespace dbwipes
