#include "dbwipes/query/derived.h"

#include <cmath>

namespace dbwipes {

Result<std::shared_ptr<Table>> WithDerivedColumn(const Table& table,
                                                 const std::string& name,
                                                 const ScalarExprPtr& expr) {
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  if (table.schema().Contains(name)) {
    return Status::AlreadyExists("column '" + name + "' already exists");
  }
  DBW_RETURN_NOT_OK(expr->Validate(table.schema()));

  // Evaluate everything once to decide the column type.
  std::vector<Value> values;
  values.reserve(table.num_rows());
  bool all_integral = true;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    DBW_ASSIGN_OR_RETURN(Value v, expr->Eval(table, r));
    if (!v.is_null()) {
      DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
      if (!(std::isfinite(d) && d == std::floor(d) &&
            std::fabs(d) < 9.0e15)) {
        all_integral = false;
      }
    }
    values.push_back(std::move(v));
  }

  std::vector<Field> fields = table.schema().fields();
  fields.push_back(
      Field{name, all_integral ? DataType::kInt64 : DataType::kDouble});
  auto out = std::make_shared<Table>(Schema(std::move(fields)), table.name());

  std::vector<Value> row(out->num_columns());
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = table.GetValue(r, c);
    }
    const Value& v = values[r];
    if (v.is_null()) {
      row.back() = Value::Null();
    } else if (all_integral) {
      row.back() = Value(static_cast<int64_t>(*v.AsDouble()));
    } else {
      row.back() = Value(*v.AsDouble());
    }
    DBW_RETURN_NOT_OK(out->AppendRow(row));
  }
  return out;
}

ScalarExprPtr Bucket(ScalarExprPtr input, double width) {
  DBW_CHECK(width > 0.0) << "bucket width must be positive";
  return std::make_shared<FunctionExpr>(
      "floor", +[](double x) { return std::floor(x); },
      Div(std::move(input), Lit(Value(width))));
}

}  // namespace dbwipes
