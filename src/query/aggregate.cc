#include "dbwipes/query/aggregate.h"

#include <cmath>
#include <limits>

#include "dbwipes/common/logging.h"

namespace dbwipes {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double AvgAggregator::Value() const {
  if (n_ == 0) return kNaN;
  return sum_ / static_cast<double>(n_);
}

void MinAggregator::Remove(double v) {
  auto it = values_.find(v);
  DBW_CHECK(it != values_.end()) << "Remove of value never added: " << v;
  if (--it->second == 0) values_.erase(it);
}

double MinAggregator::Value() const {
  if (values_.empty()) return kNaN;
  return values_.begin()->first;
}

size_t MinAggregator::Count() const {
  size_t n = 0;
  for (const auto& [v, c] : values_) n += c;
  return n;
}

void MaxAggregator::Remove(double v) {
  auto it = values_.find(v);
  DBW_CHECK(it != values_.end()) << "Remove of value never added: " << v;
  if (--it->second == 0) values_.erase(it);
}

double MaxAggregator::Value() const {
  if (values_.empty()) return kNaN;
  return values_.rbegin()->first;
}

size_t MaxAggregator::Count() const {
  size_t n = 0;
  for (const auto& [v, c] : values_) n += c;
  return n;
}

double StddevAggregator::Value() const {
  if (stats_.count() < 2) return kNaN;
  return stats_.sample_stddev();
}

double VarAggregator::Value() const {
  if (stats_.count() < 2) return kNaN;
  return stats_.sample_variance();
}

void MedianAggregator::Add(double v) {
  if (low_.empty() || v <= *low_.rbegin()) {
    low_.insert(v);
  } else {
    high_.insert(v);
  }
  Rebalance();
}

void MedianAggregator::Remove(double v) {
  auto it = low_.find(v);
  if (it != low_.end()) {
    low_.erase(it);
  } else {
    it = high_.find(v);
    DBW_CHECK(it != high_.end()) << "Remove of value never added: " << v;
    high_.erase(it);
  }
  Rebalance();
}

void MedianAggregator::Rebalance() {
  while (low_.size() > high_.size() + 1) {
    auto it = std::prev(low_.end());
    high_.insert(*it);
    low_.erase(it);
  }
  while (high_.size() > low_.size()) {
    auto it = high_.begin();
    low_.insert(*it);
    high_.erase(it);
  }
}

double MedianAggregator::Value() const {
  if (low_.empty()) return kNaN;
  if (low_.size() > high_.size()) return *low_.rbegin();
  return (*low_.rbegin() + *high_.begin()) / 2.0;
}

AggregatorPtr MakeAggregator(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return std::make_unique<CountAggregator>();
    case AggKind::kSum:
      return std::make_unique<SumAggregator>();
    case AggKind::kAvg:
      return std::make_unique<AvgAggregator>();
    case AggKind::kMin:
      return std::make_unique<MinAggregator>();
    case AggKind::kMax:
      return std::make_unique<MaxAggregator>();
    case AggKind::kStddev:
      return std::make_unique<StddevAggregator>();
    case AggKind::kVar:
      return std::make_unique<VarAggregator>();
    case AggKind::kMedian:
      return std::make_unique<MedianAggregator>();
  }
  DBW_CHECK(false) << "unknown AggKind";
  return nullptr;
}

DataType AggOutputType(AggKind kind) {
  return kind == AggKind::kCount ? DataType::kInt64 : DataType::kDouble;
}

}  // namespace dbwipes
