#include "dbwipes/query/database.h"

#include <algorithm>

#include "dbwipes/expr/parser.h"

namespace dbwipes {

void Database::RegisterTable(std::shared_ptr<const Table> table) {
  DBW_CHECK(table != nullptr);
  const std::string name = table->name();
  tables_[name] = std::move(table);
}

void Database::RegisterTable(const std::string& name,
                             std::shared_ptr<const Table> table) {
  DBW_CHECK(table != nullptr);
  tables_[name] = std::move(table);
}

Result<std::shared_ptr<const Table>> Database::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql,
                                         const ExecOptions& options) const {
  DBW_ASSIGN_OR_RETURN(AggregateQuery query, ParseQuery(sql));
  return Execute(query, options);
}

Result<QueryResult> Database::Execute(const AggregateQuery& query,
                                      const ExecOptions& options) const {
  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       GetTable(query.table_name));
  return ExecuteQuery(query, *table, options);
}

}  // namespace dbwipes
