#include "dbwipes/query/database.h"

#include <algorithm>
#include <chrono>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {

namespace {

/// SQL front-door counters; one increment / observe per statement.
struct SqlMetrics {
  MetricCounter* queries;
  MetricCounter* parse_errors;
  MetricHistogram* execute_ms;
};

const SqlMetrics& Metrics() {
  static const SqlMetrics m = {
      MetricsRegistry::Global().GetCounter("sql.queries"),
      MetricsRegistry::Global().GetCounter("sql.parse_errors"),
      MetricsRegistry::Global().GetHistogram("sql.execute_ms"),
  };
  return m;
}

}  // namespace

void Database::RegisterTable(std::shared_ptr<const Table> table) {
  DBW_CHECK(table != nullptr);
  const std::string name = table->name();
  tables_[name] = std::move(table);
}

void Database::RegisterTable(const std::string& name,
                             std::shared_ptr<const Table> table) {
  DBW_CHECK(table != nullptr);
  tables_[name] = std::move(table);
}

Result<std::shared_ptr<const Table>> Database::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql,
                                         const ExecOptions& options) const {
  Result<AggregateQuery> query = [&]() -> Result<AggregateQuery> {
    DBW_TRACE_SPAN("sql/parse");
    return ParseQuery(sql);
  }();
  if (!query.ok()) {
    Metrics().parse_errors->Increment();
    return query.status();
  }
  return Execute(*query, options);
}

Result<QueryResult> Database::Execute(const AggregateQuery& query,
                                      const ExecOptions& options) const {
  DBW_TRACE_SPAN("sql/execute");
  Metrics().queries->Increment();
  const auto t0 = std::chrono::steady_clock::now();
  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       GetTable(query.table_name));
  Result<QueryResult> r = ExecuteQuery(query, *table, options);
  Metrics().execute_ms->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return r;
}

}  // namespace dbwipes
