#include "dbwipes/query/database.h"

#include <algorithm>
#include <chrono>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/trace.h"
#include "dbwipes/expr/parser.h"

namespace dbwipes {

namespace {

/// SQL front-door counters; one increment / observe per statement.
struct SqlMetrics {
  MetricCounter* queries;
  MetricCounter* parse_errors;
  MetricHistogram* execute_ms;
};

const SqlMetrics& Metrics() {
  static const SqlMetrics m = {
      MetricsRegistry::Global().GetCounter("sql.queries"),
      MetricsRegistry::Global().GetCounter("sql.parse_errors"),
      MetricsRegistry::Global().GetHistogram("sql.execute_ms"),
  };
  return m;
}

}  // namespace

void Database::RegisterTable(std::shared_ptr<const Table> table) {
  DBW_CHECK(table != nullptr);
  const std::string name = table->name();
  RegisterTable(name, std::move(table));
}

void Database::RegisterTable(const std::string& name,
                             std::shared_ptr<const Table> table) {
  DBW_CHECK(table != nullptr);
  std::unique_lock<std::shared_mutex> lock(mu_);
  tables_[name] = std::move(table);
  shard_sets_.erase(name);  // a plain table supersedes any shard layout
}

void Database::RegisterShardSet(const std::string& name,
                                std::shared_ptr<ShardSet> set) {
  DBW_CHECK(set != nullptr);
  std::unique_lock<std::shared_mutex> lock(mu_);
  tables_[name] = set->fused();
  shard_sets_[name] = std::move(set);
}

Result<std::shared_ptr<const Table>> Database::GetTable(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

std::shared_ptr<ShardSet> Database::GetShardSet(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = shard_sets_.find(name);
  return it == shard_sets_.end() ? nullptr : it->second;
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Database::ShardedNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(shard_sets_.size());
  for (const auto& [name, set] : shard_sets_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql,
                                         const ExecOptions& options) const {
  Result<AggregateQuery> query = [&]() -> Result<AggregateQuery> {
    DBW_TRACE_SPAN("sql/parse");
    return ParseQuery(sql);
  }();
  if (!query.ok()) {
    Metrics().parse_errors->Increment();
    return query.status();
  }
  return Execute(*query, options);
}

Result<QueryResult> Database::Execute(const AggregateQuery& query,
                                      const ExecOptions& options) const {
  DBW_TRACE_SPAN("sql/execute");
  Metrics().queries->Increment();
  const auto t0 = std::chrono::steady_clock::now();
  DBW_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       GetTable(query.table_name));
  // A sharded table's fused view grows on Append; the lease keeps the
  // scan on one epoch. (Plain tables are immutable once registered.)
  std::shared_ptr<ShardSet> set = GetShardSet(query.table_name);
  std::shared_lock<std::shared_mutex> lease;
  if (set != nullptr) lease = set->ReadLease();
  Result<QueryResult> r = ExecuteQuery(query, *table, options);
  Metrics().execute_ms->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return r;
}

}  // namespace dbwipes
