#include "dbwipes/query/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "dbwipes/query/aggregate.h"

namespace dbwipes {

namespace {

struct KeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = 0x9E3779B97F4A7C15ULL;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

struct KeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

bool KeyLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.size() < b.size();
}

}  // namespace

Result<size_t> QueryResult::AggColumnIndex(
    const std::string& output_name) const {
  if (!rows) return Status::RuntimeError("empty query result");
  return rows->schema().GetIndex(output_name);
}

double QueryResult::AggValue(size_t group, size_t agg_idx) const {
  const size_t col = query.group_by.size() + agg_idx;
  const Column& c = rows->column(col);
  if (c.IsNull(static_cast<RowId>(group))) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return c.AsDouble(static_cast<RowId>(group));
}

std::vector<Value> QueryResult::GroupKey(size_t group) const {
  std::vector<Value> key;
  key.reserve(query.group_by.size());
  for (size_t c = 0; c < query.group_by.size(); ++c) {
    key.push_back(rows->GetValue(static_cast<RowId>(group), c));
  }
  return key;
}

Result<QueryResult> ExecuteQuery(const AggregateQuery& query,
                                 const Table& table,
                                 const ExecOptions& options) {
  DBW_RETURN_NOT_OK(query.Validate(table.schema()));

  // Resolve group-by column indices.
  std::vector<size_t> group_cols;
  group_cols.reserve(query.group_by.size());
  for (const std::string& g : query.group_by) {
    DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(g));
    group_cols.push_back(idx);
  }

  struct GroupState {
    std::vector<Value> key;
    std::vector<AggregatorPtr> aggs;
    std::vector<RowId> lineage;
  };
  std::unordered_map<std::vector<Value>, size_t, KeyHash, KeyEq> group_index;
  std::vector<GroupState> groups;

  const size_t nrows = table.num_rows();
  std::vector<Value> key(group_cols.size());
  for (RowId r = 0; r < nrows; ++r) {
    DBW_ASSIGN_OR_RETURN(bool pass, query.where->Eval(table, r));
    if (!pass) continue;

    for (size_t i = 0; i < group_cols.size(); ++i) {
      key[i] = table.column(group_cols[i]).GetValue(r);
    }
    auto it = group_index.find(key);
    size_t gi;
    if (it == group_index.end()) {
      gi = groups.size();
      group_index.emplace(key, gi);
      GroupState state;
      state.key = key;
      for (const AggSpec& a : query.aggregates) {
        state.aggs.push_back(MakeAggregator(a.kind));
      }
      groups.push_back(std::move(state));
    } else {
      gi = it->second;
    }
    GroupState& g = groups[gi];

    for (size_t ai = 0; ai < query.aggregates.size(); ++ai) {
      const AggSpec& spec = query.aggregates[ai];
      if (!spec.argument) {
        g.aggs[ai]->Add(0.0);  // count(*)
        continue;
      }
      DBW_ASSIGN_OR_RETURN(Value v, spec.argument->Eval(table, r));
      if (v.is_null()) continue;  // SQL: aggregates skip NULLs
      DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
      g.aggs[ai]->Add(d);
    }
    if (options.capture_lineage) g.lineage.push_back(r);
  }

  // Deterministic ordering: sort groups by key.
  std::vector<size_t> order(groups.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return KeyLess(groups[a].key, groups[b].key);
  });

  // Build the result table schema: group-by columns, then aggregates.
  std::vector<Field> fields;
  for (size_t i = 0; i < group_cols.size(); ++i) {
    fields.push_back(table.schema().field(group_cols[i]));
  }
  for (const AggSpec& a : query.aggregates) {
    fields.push_back(Field{a.output_name, AggOutputType(a.kind)});
  }

  QueryResult result;
  result.query = query;
  result.rows = std::make_shared<Table>(Schema(std::move(fields)), "result");
  result.lineage.reserve(groups.size());

  std::vector<Value> out_row(group_cols.size() + query.aggregates.size());
  for (size_t oi : order) {
    GroupState& g = groups[oi];
    for (size_t i = 0; i < g.key.size(); ++i) out_row[i] = g.key[i];
    for (size_t ai = 0; ai < g.aggs.size(); ++ai) {
      const double v = g.aggs[ai]->Value();
      const size_t col = group_cols.size() + ai;
      if (std::isnan(v)) {
        out_row[col] = Value::Null();
      } else if (query.aggregates[ai].kind == AggKind::kCount) {
        out_row[col] = Value(static_cast<int64_t>(v));
      } else {
        out_row[col] = Value(v);
      }
    }
    DBW_RETURN_NOT_OK(result.rows->AppendRow(out_row));
    result.lineage.push_back(std::move(g.lineage));
  }
  return result;
}

}  // namespace dbwipes
