#include "dbwipes/query/incremental.h"

#include <cmath>

#include "dbwipes/expr/match_kernels.h"

namespace dbwipes {

namespace {

/// Boxes an aggregate's double value into the result-row Value
/// convention (NaN -> NULL, count -> int64).
Value BoxAggValue(const AggSpec& spec, double value) {
  if (std::isnan(value)) return Value::Null();
  if (spec.kind == AggKind::kCount) {
    return Value(static_cast<int64_t>(value));
  }
  return Value(value);
}

}  // namespace

Result<CleanSnapshot> CleanSnapshot::Build(const Table& table,
                                           const QueryResult& result) {
  if (!result.rows) return Status::InvalidArgument("empty query result");
  const size_t num_aggs = result.query.aggregates.size();
  CleanSnapshot snap;
  snap.groups_.resize(result.num_groups());
  for (size_t g = 0; g < result.num_groups(); ++g) {
    const std::vector<RowId>& lineage = result.lineage[g];
    GroupState& gs = snap.groups_[g];
    gs.aggs.reserve(num_aggs);
    gs.values.assign(num_aggs, std::vector<double>(lineage.size(), 0.0));
    gs.contributes.assign(num_aggs,
                          std::vector<uint8_t>(lineage.size(), 0));
    for (size_t ai = 0; ai < num_aggs; ++ai) {
      const AggSpec& spec = result.query.aggregates[ai];
      AggregatorPtr agg = MakeAggregator(spec.kind);
      for (size_t p = 0; p < lineage.size(); ++p) {
        double v = 0.0;  // count(*)
        if (spec.argument) {
          DBW_ASSIGN_OR_RETURN(Value val,
                               spec.argument->Eval(table, lineage[p]));
          if (val.is_null()) continue;  // contributes nothing
          DBW_ASSIGN_OR_RETURN(v, val.AsDouble());
        }
        agg->Add(v);
        gs.values[ai][p] = v;
        gs.contributes[ai][p] = 1;
      }
      gs.aggs.push_back(std::move(agg));
    }
  }
  return snap;
}

Result<QueryResult> IncrementalClean(const Table& table,
                                     const QueryResult& result,
                                     const Predicate& predicate,
                                     const CleanSnapshot* snapshot) {
  if (!result.rows) return Status::InvalidArgument("empty query result");
  if (predicate.empty()) {
    return Status::InvalidArgument("cannot clean with an empty predicate");
  }
  if (snapshot != nullptr &&
      snapshot->num_groups() != result.num_groups()) {
    return Status::InvalidArgument(
        "snapshot was built from a different result");
  }
  // Lineage capture is a precondition; an all-empty lineage with a
  // non-empty result means it was disabled.
  bool any_lineage = false;
  for (const auto& rows : result.lineage) {
    if (!rows.empty()) {
      any_lineage = true;
      break;
    }
  }
  if (!any_lineage && result.num_groups() > 0) {
    return Status::InvalidArgument(
        "result was executed without lineage capture");
  }

  // Kernel-match the cleaning predicate once over the concatenation of
  // every group's lineage: each clause is scanned by a typed batch
  // kernel (chunked over the shared pool for large results), and a
  // group's matches are then bit tests against its slice. Predicates
  // the kernels cannot translate fall back to the boxed path inside
  // the engine with identical errors.
  std::vector<RowId> universe;
  std::vector<size_t> group_offset(result.num_groups(), 0);
  for (size_t g = 0; g < result.num_groups(); ++g) {
    group_offset[g] = universe.size();
    universe.insert(universe.end(), result.lineage[g].begin(),
                    result.lineage[g].end());
  }
  MatchEngine engine(table, std::move(universe));
  DBW_RETURN_NOT_OK(engine.Materialize({&predicate}, ParallelOptions{}));
  DBW_ASSIGN_OR_RETURN(const Bitmap matched_bits,
                       engine.MatchPrepared(predicate));

  const AggregateQuery& query = result.query;
  const size_t num_keys = query.group_by.size();
  const size_t num_aggs = query.aggregates.size();

  QueryResult out;
  out.query = query.WithCleaningPredicate(predicate);
  out.rows = std::make_shared<Table>(result.rows->schema(), "result");

  std::vector<Value> row(num_keys + num_aggs);
  std::vector<size_t> matched_positions;
  for (size_t g = 0; g < result.num_groups(); ++g) {
    const std::vector<RowId>& lineage = result.lineage[g];
    const size_t base = group_offset[g];
    std::vector<RowId> survivors;
    survivors.reserve(lineage.size());
    matched_positions.clear();
    for (size_t p = 0; p < lineage.size(); ++p) {
      if (matched_bits.Test(base + p)) {
        matched_positions.push_back(p);
      } else {
        survivors.push_back(lineage[p]);
      }
    }
    if (survivors.empty()) continue;  // the whole group was cleaned away

    if (matched_positions.empty()) {
      // Untouched group: copy the result row and lineage verbatim.
      DBW_RETURN_NOT_OK(out.rows->AppendRow(result.rows->GetRow(
          static_cast<RowId>(g))));
      out.lineage.push_back(lineage);
      continue;
    }

    for (size_t k = 0; k < num_keys; ++k) {
      row[k] = result.rows->GetValue(static_cast<RowId>(g), k);
    }
    if (snapshot != nullptr) {
      // Delta path: clone the snapshotted aggregator state and remove
      // the matched tuples' cached contributions. No argument
      // evaluation; cost is O(|matched|) per aggregate.
      const CleanSnapshot::GroupState& gs = snapshot->groups_[g];
      for (size_t ai = 0; ai < num_aggs; ++ai) {
        AggregatorPtr agg = gs.aggs[ai]->Clone();
        for (size_t p : matched_positions) {
          if (gs.contributes[ai][p]) agg->Remove(gs.values[ai][p]);
        }
        row[num_keys + ai] = BoxAggValue(query.aggregates[ai], agg->Value());
      }
    } else {
      // Rebuild path: re-aggregate the survivors from scratch.
      for (size_t ai = 0; ai < num_aggs; ++ai) {
        const AggSpec& spec = query.aggregates[ai];
        AggregatorPtr agg = MakeAggregator(spec.kind);
        for (RowId r : survivors) {
          if (!spec.argument) {
            agg->Add(0.0);  // count(*)
            continue;
          }
          DBW_ASSIGN_OR_RETURN(Value v, spec.argument->Eval(table, r));
          if (v.is_null()) continue;
          DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
          agg->Add(d);
        }
        row[num_keys + ai] = BoxAggValue(spec, agg->Value());
      }
    }
    DBW_RETURN_NOT_OK(out.rows->AppendRow(row));
    out.lineage.push_back(std::move(survivors));
  }
  return out;
}

Result<QueryResult> IncrementalClean(const Table& table,
                                     const QueryResult& result,
                                     const Predicate& predicate) {
  return IncrementalClean(table, result, predicate, nullptr);
}

}  // namespace dbwipes
