#include "dbwipes/query/incremental.h"

#include <cmath>

#include "dbwipes/query/aggregate.h"

namespace dbwipes {

Result<QueryResult> IncrementalClean(const Table& table,
                                     const QueryResult& result,
                                     const Predicate& predicate) {
  if (!result.rows) return Status::InvalidArgument("empty query result");
  if (predicate.empty()) {
    return Status::InvalidArgument("cannot clean with an empty predicate");
  }
  // Lineage capture is a precondition; an all-empty lineage with a
  // non-empty result means it was disabled.
  bool any_lineage = false;
  for (const auto& rows : result.lineage) {
    if (!rows.empty()) {
      any_lineage = true;
      break;
    }
  }
  if (!any_lineage && result.num_groups() > 0) {
    return Status::InvalidArgument(
        "result was executed without lineage capture");
  }

  DBW_ASSIGN_OR_RETURN(BoundPredicate bound, predicate.Bind(table));
  const AggregateQuery& query = result.query;
  const size_t num_keys = query.group_by.size();
  const size_t num_aggs = query.aggregates.size();

  QueryResult out;
  out.query = query.WithCleaningPredicate(predicate);
  out.rows = std::make_shared<Table>(result.rows->schema(), "result");

  std::vector<Value> row(num_keys + num_aggs);
  for (size_t g = 0; g < result.num_groups(); ++g) {
    const std::vector<RowId>& lineage = result.lineage[g];
    std::vector<RowId> survivors;
    survivors.reserve(lineage.size());
    for (RowId r : lineage) {
      if (!bound.Matches(r)) survivors.push_back(r);
    }
    if (survivors.empty()) continue;  // the whole group was cleaned away

    if (survivors.size() == lineage.size()) {
      // Untouched group: copy the result row and lineage verbatim.
      DBW_RETURN_NOT_OK(out.rows->AppendRow(result.rows->GetRow(
          static_cast<RowId>(g))));
      out.lineage.push_back(lineage);
      continue;
    }

    // Affected group: rebuild only its aggregates over the survivors.
    for (size_t k = 0; k < num_keys; ++k) {
      row[k] = result.rows->GetValue(static_cast<RowId>(g), k);
    }
    for (size_t ai = 0; ai < num_aggs; ++ai) {
      const AggSpec& spec = query.aggregates[ai];
      AggregatorPtr agg = MakeAggregator(spec.kind);
      for (RowId r : survivors) {
        if (!spec.argument) {
          agg->Add(0.0);  // count(*)
          continue;
        }
        DBW_ASSIGN_OR_RETURN(Value v, spec.argument->Eval(table, r));
        if (v.is_null()) continue;
        DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
        agg->Add(d);
      }
      const double value = agg->Value();
      if (std::isnan(value)) {
        row[num_keys + ai] = Value::Null();
      } else if (spec.kind == AggKind::kCount) {
        row[num_keys + ai] = Value(static_cast<int64_t>(value));
      } else {
        row[num_keys + ai] = Value(value);
      }
    }
    DBW_RETURN_NOT_OK(out.rows->AppendRow(row));
    out.lineage.push_back(std::move(survivors));
  }
  return out;
}

}  // namespace dbwipes
