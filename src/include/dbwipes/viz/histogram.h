#ifndef DBWIPES_VIZ_HISTOGRAM_H_
#define DBWIPES_VIZ_HISTOGRAM_H_

#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Distribution view of one column — the "zoom in to view the
/// individual tuple values" half of Figure 4, rendered as an ASCII
/// histogram so outliers (the 100-degree readings, the negative
/// donations) jump out in the terminal.
class Histogram {
 public:
  /// Builds a histogram of `column` over the given rows (all rows when
  /// `rows` is empty). Numeric columns bucket into `num_buckets`
  /// equal-width bins; string columns count category frequencies
  /// (top `num_buckets` by count). NULLs are tallied separately.
  static Result<Histogram> FromColumn(const Table& table,
                                      const std::string& column,
                                      const std::vector<RowId>& rows = {},
                                      size_t num_buckets = 20);

  struct Bucket {
    std::string label;
    size_t count = 0;
    double lo = 0.0;  // numeric bounds (lo == hi for categories)
    double hi = 0.0;
  };

  const std::vector<Bucket>& buckets() const { return buckets_; }
  size_t null_count() const { return null_count_; }
  size_t total_count() const { return total_count_; }

  /// Bar chart, one bucket per line, bars scaled to `width`.
  std::string Render(size_t width = 50) const;

 private:
  Histogram() = default;

  std::string column_;
  std::vector<Bucket> buckets_;
  size_t null_count_ = 0;
  size_t total_count_ = 0;
};

}  // namespace dbwipes

#endif  // DBWIPES_VIZ_HISTOGRAM_H_
