#ifndef DBWIPES_VIZ_SCATTERPLOT_H_
#define DBWIPES_VIZ_SCATTERPLOT_H_

#include <optional>
#include <string>
#include <vector>

#include "dbwipes/query/executor.h"

namespace dbwipes {

/// \brief One plotted point: a result group positioned by (x, y).
struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  /// Index of the result row (group) this point represents.
  size_t group = 0;
  bool selected = false;
  /// Points whose y (or x) was NULL are kept but not drawn.
  bool drawable = true;
};

/// \brief The dashboard's result visualization (Figure 2, component 2):
/// group keys on the x-axis, aggregate values on the y-axis, with
/// brush selection.
class ScatterPlot {
 public:
  /// Plots aggregate `y_column` (an output name from the query's
  /// SELECT list) against `x_column` (a group-by column; pass empty to
  /// use the first group-by column, or the group ordinal when the
  /// query has none that is numeric). When the query has a
  /// multi-attribute group-by, the user picks which one to plot — the
  /// paper's "pick two group-by attributes" control.
  static Result<ScatterPlot> FromResult(const QueryResult& result,
                                        const std::string& y_column,
                                        const std::string& x_column = "");

  /// Multi-attribute group-by visualization the paper floats in §2.2.1:
  /// projects each group's key vector onto its two largest principal
  /// components and plots PC1 (x) against PC2 (y). Categorical key
  /// attributes enter the projection via their dictionary codes;
  /// requires at least two group-by attributes.
  static Result<ScatterPlot> FromResultPca(const QueryResult& result);

  const std::vector<ScatterPoint>& points() const { return points_; }
  const std::string& x_label() const { return x_label_; }
  const std::string& y_label() const { return y_label_; }

  /// Marks every point inside the rectangle as selected (the mouse
  /// brush); returns the group indices now selected. Cumulative until
  /// ClearSelection().
  std::vector<size_t> Brush(double x_lo, double x_hi, double y_lo,
                            double y_hi);

  /// Selects groups whose y value lies in [y_lo, y_hi] regardless of x.
  std::vector<size_t> BrushY(double y_lo, double y_hi);

  void ClearSelection();
  std::vector<size_t> SelectedGroups() const;

  /// ASCII rendering: '*' = point, '#' = selected point, with axis
  /// ranges in the margins. Suitable for the REPL and examples.
  std::string Render(size_t width = 72, size_t height = 20) const;

 private:
  ScatterPlot() = default;

  std::vector<ScatterPoint> points_;
  std::string x_label_;
  std::string y_label_;
};

}  // namespace dbwipes

#endif  // DBWIPES_VIZ_SCATTERPLOT_H_
