#ifndef DBWIPES_VIZ_DASHBOARD_H_
#define DBWIPES_VIZ_DASHBOARD_H_

#include <string>

#include "dbwipes/core/session.h"
#include "dbwipes/viz/scatterplot.h"

namespace dbwipes {

/// \brief Text renderings of the four dashboard components (Figure 2):
/// 1) query input form, 2) visualization with S/D' selection, 3) error
/// metric form, 4) ranked predicate list.
///
/// The Session owns the state; the Dashboard is pure presentation, so
/// the REPL example and the F1/F2 tests can assert on exactly what a
/// user would see.
class Dashboard {
 public:
  explicit Dashboard(const Session* session) : session_(session) {}

  /// Component 1: the query form, including accumulated cleaning
  /// predicates (Figure 3).
  std::string RenderQueryForm() const;

  /// Component 2: scatterplot of aggregate `y_column` (empty = first
  /// aggregate) vs the first group-by column, selected groups marked.
  Result<std::string> RenderVisualization(const std::string& y_column = "",
                                          size_t width = 72,
                                          size_t height = 20) const;

  /// Component 3: the dynamically offered error metrics (Figure 5).
  Result<std::string> RenderErrorForms(size_t agg_index = 0) const;

  /// Component 4: the ranked predicate list (Figure 6), with scores
  /// and the effect of clicking each.
  std::string RenderRankedPredicates() const;

  /// Observability panel: per-stage latency bars from the last
  /// explanation's profile, plus MatchEngine cache and thread-pool
  /// utilization lines. Width is the bar span of the slowest stage.
  std::string RenderProfile(size_t width = 40) const;

  /// All four components stacked.
  Result<std::string> RenderAll() const;

 private:
  const Session* session_;
};

}  // namespace dbwipes

#endif  // DBWIPES_VIZ_DASHBOARD_H_
