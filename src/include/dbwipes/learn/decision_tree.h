#ifndef DBWIPES_LEARN_DECISION_TREE_H_
#define DBWIPES_LEARN_DECISION_TREE_H_

#include <string>
#include <vector>

#include "dbwipes/expr/predicate.h"
#include "dbwipes/learn/feature.h"

namespace dbwipes {

/// Split quality measure. The Predicate Enumerator fits one tree per
/// (candidate dataset x criterion x pruning config) — the paper's "m
/// standard splitting and pruning strategies (e.g., gini, gain ratio)".
enum class SplitCriterion { kGini, kGainRatio };

const char* SplitCriterionToString(SplitCriterion c);

struct DecisionTreeOptions {
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Depth bound doubles as a predicate-complexity bound: a leaf at
  /// depth d yields a predicate with at most d clauses.
  size_t max_depth = 4;
  double min_samples_leaf = 1.0;    // weighted
  double min_samples_split = 2.0;   // weighted
  double min_impurity_decrease = 0.0;
  /// Cost-complexity post-pruning strength (0 = off).
  double ccp_alpha = 0.0;
  /// One-vs-rest candidates per categorical feature are limited to the
  /// most frequent categories.
  size_t max_categories_per_feature = 64;
};

/// \brief Binary-classification decision tree over a FeatureView.
///
/// Split conventions (which predicate extraction relies on):
///  - numeric feature: left branch = (x <= threshold); rows with NULL
///    in the split feature go right.
///  - categorical feature: one-vs-rest, left branch = (x == category);
///    NULL goes right.
class DecisionTree {
 public:
  struct Node {
    bool is_leaf = true;
    // Split description (when !is_leaf).
    size_t feature = 0;
    bool categorical = false;
    double threshold = 0.0;
    int32_t category = -1;
    int left = -1;
    int right = -1;
    // Weighted class mass reaching the node.
    double n0 = 0.0;
    double n1 = 0.0;
    int depth = 0;

    double total() const { return n0 + n1; }
    double prob1() const { return total() > 0.0 ? n1 / total() : 0.0; }
  };

  /// Fits a tree on `rows` with binary labels and optional per-example
  /// weights (pass empty for uniform). Both vectors must align with
  /// `rows`.
  static Result<DecisionTree> Fit(const FeatureView& view,
                                  const std::vector<RowId>& rows,
                                  const std::vector<int>& labels,
                                  const std::vector<double>& weights,
                                  const DecisionTreeOptions& options = {});

  double PredictProba(const FeatureView& view, RowId row) const;
  int Predict(const FeatureView& view, RowId row) const {
    return PredictProba(view, row) >= 0.5 ? 1 : 0;
  }

  const std::vector<Node>& nodes() const { return nodes_; }
  size_t num_leaves() const;
  size_t depth() const;

  /// Extracts one conjunctive Predicate per leaf whose positive-class
  /// probability is >= min_precision and whose weighted positive mass
  /// is >= min_positive_weight. Each predicate is the conjunction of
  /// the split conditions along the root-to-leaf path, simplified.
  std::vector<Predicate> PositiveLeafPredicates(
      const FeatureView& view, double min_precision = 0.5,
      double min_positive_weight = 0.0) const;

  /// Indented multi-line rendering for debugging and the REPL.
  std::string ToString(const FeatureView& view) const;

 private:
  DecisionTree() = default;

  std::vector<Node> nodes_;
};

}  // namespace dbwipes

#endif  // DBWIPES_LEARN_DECISION_TREE_H_
