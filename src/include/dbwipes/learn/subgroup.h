#ifndef DBWIPES_LEARN_SUBGROUP_H_
#define DBWIPES_LEARN_SUBGROUP_H_

#include <vector>

#include "dbwipes/expr/predicate.h"
#include "dbwipes/learn/feature.h"

namespace dbwipes {

/// Options for CN2-SD-style subgroup discovery (Lavrac et al., JMLR
/// 2004 — reference [4] of the paper).
struct SubgroupOptions {
  /// Rules kept per beam-search level.
  size_t beam_width = 8;
  /// Maximum clauses per subgroup description.
  size_t max_clauses = 3;
  /// Subgroups to return (one per weighted-covering round).
  size_t num_rules = 5;
  /// Candidate thresholds per numeric feature (taken at quantiles).
  size_t max_numeric_thresholds = 8;
  /// One-vs-rest candidates per categorical feature (most frequent).
  size_t max_categories_per_feature = 32;
  /// Multiplicative weight decay applied to covered positive examples
  /// after each round (CN2-SD weighted covering).
  double gamma = 0.5;
  /// Minimum (unweighted) rows a subgroup must cover.
  size_t min_coverage = 2;
};

/// \brief One discovered subgroup: a compact description of a region
/// dense in positive examples.
struct Subgroup {
  Predicate predicate;
  /// Weighted relative accuracy at the time of selection.
  double wracc = 0.0;
  /// Unweighted counts over the training rows.
  size_t coverage = 0;
  size_t positives = 0;
  /// Indices (into the input `rows`) the subgroup covers.
  std::vector<size_t> covered;
};

/// Finds up to options.num_rules subgroups of the positive class
/// (label 1) among `rows`, using beam search over conjunctions of
/// attribute conditions scored by WRAcc with CN2-SD weighted covering
/// for diversity. Initial per-example weights may be supplied (e.g.
/// influence-derived); pass empty for uniform.
///
/// DBWipes uses this as the Dataset Enumerator's extension step: the
/// positive class marks high-influence / user-selected tuples, and
/// each subgroup (its covered row set) becomes one candidate D*.
Result<std::vector<Subgroup>> DiscoverSubgroups(
    const FeatureView& view, const std::vector<RowId>& rows,
    const std::vector<int>& labels, const std::vector<double>& init_weights,
    const SubgroupOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_LEARN_SUBGROUP_H_
