#ifndef DBWIPES_LEARN_NAIVE_BAYES_H_
#define DBWIPES_LEARN_NAIVE_BAYES_H_

#include <unordered_map>
#include <vector>

#include "dbwipes/learn/feature.h"

namespace dbwipes {

/// \brief Mixed-feature naive Bayes classifier (binary classes).
///
/// Numeric features use Gaussian likelihoods; categorical features use
/// frequency estimates with Laplace smoothing. Used by the Dataset
/// Enumerator's classifier-based D' cleaning: train on D' vs the rest
/// of F, then drop D' members the model itself finds unlikely.
class NaiveBayes {
 public:
  /// Fits on `rows` with binary `labels` (0/1, same length). Both
  /// classes must be present.
  static Result<NaiveBayes> Fit(const FeatureView& view,
                                const std::vector<RowId>& rows,
                                const std::vector<int>& labels);

  /// P(label = 1 | row features).
  double PredictProba(const FeatureView& view, RowId row) const;

  /// 1 if PredictProba >= 0.5.
  int Predict(const FeatureView& view, RowId row) const {
    return PredictProba(view, row) >= 0.5 ? 1 : 0;
  }

 private:
  struct NumericStats {
    double mean = 0.0;
    double var = 1.0;
  };
  struct FeatureModel {
    bool categorical = false;
    // Numeric: per-class Gaussian.
    NumericStats numeric[2];
    // Categorical: per-class code -> count, plus totals.
    std::unordered_map<int32_t, double> counts[2];
    double totals[2] = {0.0, 0.0};
    double num_categories = 1.0;
  };

  double log_prior_[2] = {0.0, 0.0};
  std::vector<FeatureModel> features_;
};

}  // namespace dbwipes

#endif  // DBWIPES_LEARN_NAIVE_BAYES_H_
