#ifndef DBWIPES_LEARN_FEATURE_H_
#define DBWIPES_LEARN_FEATURE_H_

#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Describes how one table column is used as a learning feature.
struct FeatureSpec {
  size_t column = 0;
  /// Categorical features compare dictionary codes; numeric features
  /// compare doubles.
  bool categorical = false;
  std::string name;
};

/// \brief A view of (a subset of) a table as a learning problem.
///
/// Learners read feature values through this view; rows are base-table
/// RowIds so any predicate or tree learned here translates directly
/// back to table predicates.
class FeatureView {
 public:
  /// Uses every column in `columns` (by name); string columns become
  /// categorical features. Errors on unknown columns.
  static Result<FeatureView> Create(const Table& table,
                                    const std::vector<std::string>& columns);

  /// Uses all columns except those named in `exclude`.
  static Result<FeatureView> CreateExcluding(
      const Table& table, const std::vector<std::string>& exclude);

  const Table& table() const { return *table_; }
  const std::vector<FeatureSpec>& features() const { return features_; }
  size_t num_features() const { return features_.size(); }

  /// Numeric value of feature f at base row r. Categorical features
  /// return their dictionary code as a double; NULL returns NaN.
  double Get(RowId row, size_t f) const;

  bool IsNull(RowId row, size_t f) const;

  /// Distinct category codes appearing among `rows` for categorical
  /// feature f (sorted).
  std::vector<int32_t> CategoriesIn(const std::vector<RowId>& rows,
                                    size_t f) const;

  /// The string behind a categorical code of feature f.
  const std::string& CategoryName(size_t f, int32_t code) const;

  /// Dense numeric matrix (rows x numeric-features) for the numeric
  /// features only, standardized to zero mean / unit variance when
  /// `standardize`; NULLs are imputed with the (pre-standardization)
  /// column mean. Also returns the indices (into features()) used.
  void NumericMatrix(const std::vector<RowId>& rows, bool standardize,
                     std::vector<std::vector<double>>* matrix,
                     std::vector<size_t>* feature_indices) const;

 private:
  FeatureView(const Table* table, std::vector<FeatureSpec> features)
      : table_(table), features_(std::move(features)) {}

  const Table* table_;
  std::vector<FeatureSpec> features_;
};

}  // namespace dbwipes

#endif  // DBWIPES_LEARN_FEATURE_H_
