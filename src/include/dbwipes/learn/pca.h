#ifndef DBWIPES_LEARN_PCA_H_
#define DBWIPES_LEARN_PCA_H_

#include <vector>

#include "dbwipes/common/result.h"

namespace dbwipes {

/// \brief Result of a principal component analysis.
struct PcaResult {
  /// Row-major principal axes (num_components x dims), unit length,
  /// ordered by decreasing explained variance.
  std::vector<std::vector<double>> components;
  /// Variance captured by each returned component.
  std::vector<double> explained_variance;
  /// Per-dimension means subtracted before projection.
  std::vector<double> means;

  /// Projects one point (dims) onto the components (num_components).
  std::vector<double> Project(const std::vector<double>& point) const;
};

/// Computes the top `num_components` principal components of `points`
/// (rows = observations) by power iteration with deflation on the
/// covariance matrix. Deterministic. Errors on empty/ragged input or
/// num_components > dims.
///
/// The paper (§2.2.1) floats exactly this as the visualization for
/// multi-attribute group-bys: "plotting the two largest principal
/// components against each other".
Result<PcaResult> ComputePca(const std::vector<std::vector<double>>& points,
                             size_t num_components);

}  // namespace dbwipes

#endif  // DBWIPES_LEARN_PCA_H_
