#ifndef DBWIPES_LEARN_KMEANS_H_
#define DBWIPES_LEARN_KMEANS_H_

#include <vector>

#include "dbwipes/common/random.h"
#include "dbwipes/common/result.h"

namespace dbwipes {

struct KMeansOptions {
  size_t max_iterations = 100;
  /// Converged when total centroid movement (squared) drops below this.
  double tolerance = 1e-8;
  /// Independent restarts; the best-inertia run wins.
  size_t num_restarts = 3;
};

struct KMeansResult {
  /// assignment[i] = cluster of points[i], in [0, k).
  std::vector<int> assignment;
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  size_t iterations = 0;

  /// Points per cluster.
  std::vector<size_t> ClusterSizes(size_t k) const;
};

/// Lloyd's algorithm with k-means++ seeding. Points must be non-empty
/// and rectangular; k must satisfy 1 <= k <= |points|.
///
/// Used by the Dataset Enumerator to find a self-consistent subset of
/// the user's example tuples D' (paper §2.2.2).
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            size_t k, Rng* rng,
                            const KMeansOptions& options = {});

/// Picks k in [1, max_k] by the largest relative inertia drop ("elbow")
/// and returns that clustering.
Result<KMeansResult> KMeansAuto(const std::vector<std::vector<double>>& points,
                                size_t max_k, Rng* rng,
                                const KMeansOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_LEARN_KMEANS_H_
