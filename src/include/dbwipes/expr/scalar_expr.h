#ifndef DBWIPES_EXPR_SCALAR_EXPR_H_
#define DBWIPES_EXPR_SCALAR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Row-level scalar expression: literal, column reference, or
/// arithmetic combination. Used as the argument of aggregates
/// (e.g. `avg(temp - 32)`).
class ScalarExpr {
 public:
  enum class Kind { kLiteral, kColumnRef, kBinary, kFunction };
  enum class BinaryOp { kAdd, kSub, kMul, kDiv };

  virtual ~ScalarExpr() = default;

  virtual Kind kind() const = 0;
  /// Evaluates against one row. NULL inputs propagate to a NULL output.
  virtual Result<Value> Eval(const Table& table, RowId row) const = 0;
  /// Checks column references and types against a schema.
  virtual Status Validate(const Schema& schema) const = 0;
  virtual std::string ToString() const = 0;
  /// Column names this expression reads.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;
};

using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// A constant.
class LiteralExpr final : public ScalarExpr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  Kind kind() const override { return Kind::kLiteral; }
  Result<Value> Eval(const Table&, RowId) const override { return value_; }
  Status Validate(const Schema&) const override { return Status::OK(); }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<std::string>*) const override {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// A reference to a column by name.
class ColumnRefExpr final : public ScalarExpr {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}

  Kind kind() const override { return Kind::kColumnRef; }
  Result<Value> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Arithmetic on two sub-expressions; operands must be numeric.
class BinaryExpr final : public ScalarExpr {
 public:
  BinaryExpr(BinaryOp op, ScalarExprPtr left, ScalarExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Kind kind() const override { return Kind::kBinary; }
  Result<Value> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

  BinaryOp op() const { return op_; }

 private:
  BinaryOp op_;
  ScalarExprPtr left_;
  ScalarExprPtr right_;
};

/// A named unary numeric function applied to a sub-expression (floor,
/// abs, ...). NULL propagates.
class FunctionExpr final : public ScalarExpr {
 public:
  using Fn = double (*)(double);

  FunctionExpr(std::string name, Fn fn, ScalarExprPtr arg)
      : name_(std::move(name)), fn_(fn), arg_(std::move(arg)) {}

  Kind kind() const override { return Kind::kFunction; }
  Result<Value> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override {
    return name_ + "(" + arg_->ToString() + ")";
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    arg_->CollectColumns(out);
  }

 private:
  std::string name_;
  Fn fn_;
  ScalarExprPtr arg_;
};

// Convenience builders.
ScalarExprPtr Lit(Value v);
ScalarExprPtr Col(std::string name);
ScalarExprPtr Add(ScalarExprPtr a, ScalarExprPtr b);
ScalarExprPtr Sub(ScalarExprPtr a, ScalarExprPtr b);
ScalarExprPtr Mul(ScalarExprPtr a, ScalarExprPtr b);
ScalarExprPtr Div(ScalarExprPtr a, ScalarExprPtr b);

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_SCALAR_EXPR_H_
