#ifndef DBWIPES_EXPR_BOOL_EXPR_H_
#define DBWIPES_EXPR_BOOL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/expr/predicate.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Boolean filter expression tree: comparisons combined with
/// AND / OR / NOT. This is what a WHERE clause parses into and what
/// cleaning rewrites manipulate (`old_where AND NOT predicate`).
///
/// Evaluation is two-valued: a comparison touching a NULL cell is
/// false, and NOT is plain negation. (Documented divergence from SQL
/// three-valued logic; it makes "remove tuples matching P" keep rows
/// whose attribute is NULL, which is the conservative choice for
/// cleaning.)
class BoolExpr {
 public:
  enum class Kind { kTrue, kComparison, kAnd, kOr, kNot };

  virtual ~BoolExpr() = default;
  virtual Kind kind() const = 0;
  virtual Result<bool> Eval(const Table& table, RowId row) const = 0;
  virtual Status Validate(const Schema& schema) const = 0;
  virtual std::string ToString() const = 0;
};

using BoolExprPtr = std::shared_ptr<const BoolExpr>;

/// Constant TRUE (the empty WHERE clause).
class TrueExpr final : public BoolExpr {
 public:
  Kind kind() const override { return Kind::kTrue; }
  Result<bool> Eval(const Table&, RowId) const override { return true; }
  Status Validate(const Schema&) const override { return Status::OK(); }
  std::string ToString() const override { return "TRUE"; }
};

/// A single clause (attr op literal) as a BoolExpr leaf.
class ComparisonExpr final : public BoolExpr {
 public:
  explicit ComparisonExpr(Clause clause) : clause_(std::move(clause)) {}

  Kind kind() const override { return Kind::kComparison; }
  Result<bool> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override { return clause_.ToString(); }

  const Clause& clause() const { return clause_; }

 private:
  Clause clause_;
};

class AndExpr final : public BoolExpr {
 public:
  AndExpr(BoolExprPtr left, BoolExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Kind kind() const override { return Kind::kAnd; }
  Result<bool> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override;

  const BoolExprPtr& left() const { return left_; }
  const BoolExprPtr& right() const { return right_; }

 private:
  BoolExprPtr left_;
  BoolExprPtr right_;
};

class OrExpr final : public BoolExpr {
 public:
  OrExpr(BoolExprPtr left, BoolExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}

  Kind kind() const override { return Kind::kOr; }
  Result<bool> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  BoolExprPtr left_;
  BoolExprPtr right_;
};

class NotExpr final : public BoolExpr {
 public:
  explicit NotExpr(BoolExprPtr child) : child_(std::move(child)) {}

  Kind kind() const override { return Kind::kNot; }
  Result<bool> Eval(const Table& table, RowId row) const override;
  Status Validate(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  BoolExprPtr child_;
};

// Builders.
BoolExprPtr MakeTrue();
BoolExprPtr MakeComparison(Clause clause);
BoolExprPtr MakeAnd(BoolExprPtr a, BoolExprPtr b);
BoolExprPtr MakeOr(BoolExprPtr a, BoolExprPtr b);
BoolExprPtr MakeNot(BoolExprPtr a);

/// Converts a conjunctive Predicate into the equivalent BoolExpr.
BoolExprPtr PredicateToBoolExpr(const Predicate& pred);

/// Evaluates the filter across all rows; out[i] = expr matches row i.
Result<std::vector<bool>> EvalFilter(const BoolExpr& expr, const Table& table);

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_BOOL_EXPR_H_
