#ifndef DBWIPES_EXPR_FUSED_KERNELS_H_
#define DBWIPES_EXPR_FUSED_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dbwipes/common/bitmap.h"
#include "dbwipes/expr/predicate.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

struct CompiledClause;

/// \brief SIMD tier the fused evaluator dispatches to at runtime.
///
/// Selected per MatchEngine from a one-time cpuid probe, overridable
/// via the DBWIPES_SIMD environment variable ("off" / "scalar" / "0"
/// forces the portable tier). Every tier produces bit-identical words:
/// the AVX2 comparisons use the exact predicate encodings of the
/// scalar path (kLe/kGe as negated strict comparisons ⇒ unordered-true
/// _CMP_NGT_UQ / _CMP_NLT_UQ, kNe as _CMP_NEQ_UQ), and int64 widens to
/// double with the full-range magic-constant conversion, which rounds
/// to nearest exactly like static_cast<double>. Partial tail blocks
/// always take the scalar body, so padding bits stay zero.
enum class SimdTier : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// cpuid-guarded tier selection honoring DBWIPES_SIMD. The cpuid probe
/// is cached process-wide; the environment variable is re-read per
/// call so tests and benches can flip tiers between engine builds.
SimdTier ResolveSimdTier();

const char* SimdTierName(SimdTier tier);

/// \brief One clause of a fused-conjunction program.
///
/// Inline bodies (kDoubleCmp .. kCodeTable) re-scan their column for
/// the 64 rows of the current block; kBitmapRef reads one word of an
/// already-materialized clause bitmap (shared clauses stay on the PR 2
/// materialize-once path — fusing them would multiply column traffic).
/// All pointers are borrowed: columns outlive the engine, truth tables
/// and IN sets live in the owning FusedProgram's pools (raw data
/// pointers stay valid when the program or its pools move), and
/// `valid` points at a heap bitmap owned by the MatchEngine.
struct FusedOp {
  enum class Body : uint8_t {
    kDoubleCmp,   // double column vs threshold
    kInt64Cmp,    // int64 column widened to double vs threshold
    kNumericIn,   // binary search of a sorted numeric IN set (scalar)
    kCodeEq,      // dictionary code == code (-2 = absent literal)
    kCodeNe,      // code >= 0 && code != key
    kCodeTable,   // truth table per code, shifted by one for null -1
    kBitmapRef,   // AND a cached clause bitmap's word
  };
  Body body = Body::kBitmapRef;
  CompareOp op = CompareOp::kEq;
  const double* dbl = nullptr;
  const int64_t* i64 = nullptr;
  const int32_t* codes = nullptr;
  double threshold = 0.0;
  int32_t code = -2;
  const double* in_data = nullptr;  // sorted, NaN-free
  size_t in_size = 0;
  /// kCodeTable truth table widened to 32 bits so the AVX2 tier can
  /// gather it directly; index 0 answers the null sentinel code -1.
  const uint32_t* table = nullptr;
  /// Universe-positional validity words for numeric columns with
  /// nulls (bit i = rows[i] is non-null); null when the column has no
  /// nulls. ANDed into the clause word — nulls never match.
  const Bitmap* valid = nullptr;
  /// kBitmapRef: index into the refs array passed to EvalFusedWords.
  uint32_t ref_slot = 0;
};

/// \brief A whole conjunction lowered into one scan program.
///
/// Evaluation walks the row universe once, 64 rows per block: each op
/// produces a register-resident word which is ANDed in place (with
/// early exit on an all-zero accumulator), and only the final word is
/// stored — no intermediate per-clause bitmaps exist.
struct FusedProgram {
  std::vector<FusedOp> ops;
  // Owned payloads behind the ops' raw pointers.
  std::vector<std::vector<double>> in_pool;
  std::vector<std::vector<uint32_t>> table_pool;
};

/// Lowers one compiled clause into an inline op appended to `prog`
/// (copying its IN set / truth table into the program's pools).
/// `valid` must be the column's universe validity bitmap when the
/// clause is numeric over a column with nulls, null otherwise.
void AppendClauseOp(const CompiledClause& cc, const Bitmap* valid,
                    FusedProgram* prog);

/// Appends a cached-bitmap reference op reading refs[ref_slot].
void AppendBitmapRef(uint32_t ref_slot, FusedProgram* prog);

/// True when the AVX2 tier has a vector body for the clause (numeric
/// IN stays scalar in every tier).
bool ClauseOpHasSimdBody(const CompiledClause& cc);

/// Evaluates `prog` over positions [64*word_begin, 64*word_end) of
/// `rows` (clamped to num_rows), writing one finished bitmap word per
/// 64 positions into `out`. `contiguous` asserts rows[i] == rows[0]+i,
/// letting the SIMD tier use plain loads instead of gathers. `refs`
/// resolves kBitmapRef slots; may be null when the program has none.
/// Chunks owning disjoint word ranges may run concurrently on one
/// bitmap. Deterministic: the emitted words are identical at any tier,
/// chunking, or thread count.
void EvalFusedWords(const FusedProgram& prog, SimdTier tier,
                    const RowId* rows, size_t num_rows, bool contiguous,
                    const Bitmap* const* refs, size_t word_begin,
                    size_t word_end, Bitmap* out);

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_FUSED_KERNELS_H_
