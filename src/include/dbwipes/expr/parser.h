#ifndef DBWIPES_EXPR_PARSER_H_
#define DBWIPES_EXPR_PARSER_H_

#include <string>

#include "dbwipes/common/result.h"
#include "dbwipes/expr/ast.h"

namespace dbwipes {

/// Parses the SQL subset DBWipes queries use:
///
///   SELECT item (, item)* FROM ident [WHERE filter] [GROUP BY col (, col)*]
///   item   := agg '(' scalar ')' [AS ident] | agg '(' '*' ')' | ident
///   agg    := avg | sum | count | min | max | stddev | var
///   scalar := arithmetic over columns, numbers, parens
///   filter := boolean algebra (AND / OR / NOT / parens) over
///             comparisons: col (=|!=|<>|<|<=|>|>=) literal,
///             col IN (lit, ...), col CONTAINS 'text',
///             col BETWEEN lit AND lit
///
/// Plain identifiers in the SELECT list must also appear in GROUP BY.
/// Keywords are case-insensitive; strings are single-quoted with ''
/// escapes.
Result<AggregateQuery> ParseQuery(const std::string& sql);

/// Parses a bare filter expression (the `filter` production above) —
/// used by tests and by the REPL's "where" shorthand.
Result<BoolExprPtr> ParseFilter(const std::string& text);

/// Parses a conjunction of comparisons into a Predicate; rejects OR /
/// NOT, since a Predicate is a pure conjunction.
Result<Predicate> ParsePredicate(const std::string& text);

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_PARSER_H_
