#ifndef DBWIPES_EXPR_AST_H_
#define DBWIPES_EXPR_AST_H_

#include <string>
#include <vector>

#include "dbwipes/expr/bool_expr.h"
#include "dbwipes/expr/scalar_expr.h"

namespace dbwipes {

/// Aggregate functions supported by the engine (the PostgreSQL
/// aggregates the paper lists: avg, sum, min, max, stddev; plus count,
/// variance, and median).
enum class AggKind { kCount, kSum, kAvg, kMin, kMax, kStddev, kVar, kMedian };

const char* AggKindToString(AggKind kind);
Result<AggKind> AggKindFromString(std::string_view name);

/// \brief One aggregate in the SELECT list, e.g. `avg(temp) AS t`.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  /// Argument expression; null for COUNT(*).
  ScalarExprPtr argument;
  /// Output column name (defaults to e.g. "avg(temp)").
  std::string output_name;

  std::string ToString() const;
};

/// \brief A parsed single-block aggregate query:
/// `SELECT aggs FROM table [WHERE filter] [GROUP BY attrs]`.
///
/// This is exactly the query class DBWipes operates on (paper §2.1):
/// one table, a filter, one group-by, one or more aggregates.
struct AggregateQuery {
  std::vector<AggSpec> aggregates;
  std::string table_name;
  /// Never null; TrueExpr when the query has no WHERE.
  BoolExprPtr where;
  std::vector<std::string> group_by;

  /// Renders back to SQL text (used by the dashboard's query form,
  /// which shows the query as cleaning predicates accumulate).
  std::string ToSql() const;

  /// Checks aggregates, filter, and group-by columns against a schema.
  Status Validate(const Schema& schema) const;

  /// Copy of this query with `AND NOT pred` appended to the filter —
  /// the "clean by clicking a predicate" rewrite.
  AggregateQuery WithCleaningPredicate(const Predicate& pred) const;
};

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_AST_H_
