#ifndef DBWIPES_EXPR_SHARD_CACHE_H_
#define DBWIPES_EXPR_SHARD_CACHE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "dbwipes/expr/match_kernels.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {

/// \brief Per-ShardSet pool of MatchEngines, one slot per shard.
///
/// This is what turns sharding into cache retention: a MatchEngine's
/// clause bitmaps are valid for one (table size, row universe) pair,
/// so the monolithic table loses its whole cache on every append. With
/// one engine per shard, an append touches only the tail shard's table
/// — every other shard's engine still passes the freshness check and
/// is handed back with its bitmaps warm.
///
/// The cache lives in the ShardSet's extension slot (the storage layer
/// cannot name MatchEngine, which sits a layer above it), so it shares
/// the set's lifetime exactly.
///
/// Concurrency: Checkout removes the slot's engine under the cache
/// mutex, so two overlapping explains never share one engine — the
/// second simply builds fresh and the later Checkin wins the slot.
/// Engine internals therefore never need cross-thread protection
/// beyond what MatchEngine already documents for a serialized caller.
class ShardEngineCache {
 public:
  /// The cache for `set`, created on first use (one per set).
  static std::shared_ptr<ShardEngineCache> For(const ShardSet& set);

  struct Checkout {
    std::unique_ptr<MatchEngine> engine;
    /// True when the engine came out of the slot with its clause cache
    /// intact; false when it had to be built (first use, stale table
    /// size, different row universe, or slot checked out elsewhere).
    bool reused = false;
  };

  /// An engine over `table` restricted to `local_rows`. The slot's
  /// engine is reused iff it was built against exactly table.num_rows()
  /// rows and the same universe; otherwise a fresh engine is built.
  Checkout CheckoutEngine(size_t shard, const Table& table,
                          std::vector<RowId> local_rows);

  /// Returns an engine to its slot (replacing any later occupant).
  void Checkin(size_t shard, std::unique_ptr<MatchEngine> engine);

  /// Cached clause-bitmap count per shard slot (0 while checked out or
  /// never built). Sums to the retained-cache size the bench reports.
  std::vector<size_t> CachedClausesPerShard() const;

  /// Compiled fused predicate programs per shard slot (0 while checked
  /// out or never built). Retained programs are what a warm lane
  /// answers fused lookups from across re-explains.
  std::vector<size_t> CachedProgramsPerShard() const;

  size_t num_shards() const { return num_shards_; }
  size_t engines_built() const;
  size_t engines_reused() const;

 private:
  explicit ShardEngineCache(size_t num_shards);

  const size_t num_shards_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MatchEngine>> slots_;
  size_t built_ = 0;
  size_t reused_ = 0;
};

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_SHARD_CACHE_H_
