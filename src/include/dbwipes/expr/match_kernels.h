#ifndef DBWIPES_EXPR_MATCH_KERNELS_H_
#define DBWIPES_EXPR_MATCH_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/common/bitmap.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/common/result.h"
#include "dbwipes/expr/predicate.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief A clause translated once into a typed batch-kernel program.
///
/// Numeric clauses become a double comparison against the column's
/// flat int64/double storage (int64 widens to double exactly like
/// Column::AsDouble). String clauses are translated to dictionary-code
/// comparisons: kEq/kNe compare a single code, kIn/kContains gather
/// through a per-code truth table built once from the dictionary (so a
/// CONTAINS scan costs one substring search per *distinct string*, not
/// per row). Null rows never match; string kernels exploit the code -1
/// null sentinel, numeric kernels fold the validity vector in without
/// per-row branching on boxed values.
///
/// Match semantics are identical to Clause::Matches (the boxed
/// row-at-a-time path): kLe/kGe are the negated strict comparisons, so
/// NaN cells satisfy kLe/kGe/kNe and nothing else; a NaN probe is IN
/// nothing; a string literal absent from the dictionary (FindCode ==
/// -1) makes kEq match nothing and kNe match every non-null row.
struct CompiledClause {
  const Column* column = nullptr;
  CompareOp op = CompareOp::kEq;
  bool is_string = false;
  /// Numeric binary comparisons.
  double threshold = 0.0;
  /// String kEq/kNe dictionary code; -2 = literal absent.
  int32_t code = -2;
  /// kIn over numerics: sorted, NaN-free.
  std::vector<double> in_numbers;
  /// String kIn/kContains: truth per dictionary code, shifted by one so
  /// index 0 answers the null sentinel code -1 (always false).
  std::vector<uint8_t> code_table;
};

/// Translates `clause` against `table`. Returns exactly the errors
/// Predicate::Bind would (ordered comparison on a string column,
/// string/numeric literal mismatches, ...), so engine users see
/// unchanged failure behavior.
Result<CompiledClause> CompileClause(const Clause& clause, const Table& table);

/// Evaluates `clause` over positions [64*word_begin, 64*word_end) of
/// `rows` (clamped to rows.size()), writing one whole bitmap word per
/// 64 positions: bit i of `out` = clause matches rows[i]. Chunks that
/// own disjoint word ranges may run concurrently on the same bitmap.
void MatchClauseWords(const CompiledClause& clause,
                      const std::vector<RowId>& rows, size_t word_begin,
                      size_t word_end, Bitmap* out);

/// \brief Vectorized conjunction matching with a shared clause-bitmap
/// cache.
///
/// Bound to one table and one row universe (e.g. the suspect set F, a
/// selectivity sample, or the union of a result's lineage). Enumerators
/// emit many conjunctions sharing single-attribute clauses — threshold
/// families on one column, repeated categorical equalities — so the
/// engine canonicalizes each clause to a key, materializes its bitmap
/// ONCE via the typed kernels, and matches a conjunction by ANDing
/// cached words. Clauses the kernels cannot translate (in ways Bind
/// also rejects) fall back to the boxed BoundPredicate path per
/// predicate, preserving error behavior exactly.
///
/// The engine is a snapshot: it caches bitmaps against the table size
/// at construction, and every Match checks that the table has not
/// grown since (append invalidates; rebuild the engine). See DESIGN.md
/// §5d.
///
/// Thread safety: Materialize() mutates the cache (its own scans run
/// chunked on the PR-1 ParallelFor; output is deterministic at any
/// thread count because chunk boundaries depend only on sizes).
/// MatchPrepared() is const and touches only cached state, so any
/// number of threads may call it concurrently after Materialize().
class MatchEngine {
 public:
  MatchEngine(const Table& table, std::vector<RowId> rows);

  // Movable (the atomic fallback counter is carried over by value; no
  // concurrent use may straddle a move).
  MatchEngine(MatchEngine&& other) noexcept
      : table_(other.table_),
        rows_(std::move(other.rows_)),
        built_num_rows_(other.built_num_rows_),
        index_(std::move(other.index_)),
        entries_(std::move(other.entries_)),
        cache_hits_(other.cache_hits_),
        cache_misses_(other.cache_misses_),
        bitmaps_materialized_(other.bitmaps_materialized_),
        boxed_fallbacks_(
            other.boxed_fallbacks_.load(std::memory_order_relaxed)) {}
  MatchEngine& operator=(MatchEngine&& other) noexcept {
    table_ = other.table_;
    rows_ = std::move(other.rows_);
    built_num_rows_ = other.built_num_rows_;
    index_ = std::move(other.index_);
    entries_ = std::move(other.entries_);
    cache_hits_ = other.cache_hits_;
    cache_misses_ = other.cache_misses_;
    bitmaps_materialized_ = other.bitmaps_materialized_;
    boxed_fallbacks_.store(
        other.boxed_fallbacks_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  const std::vector<RowId>& rows() const { return rows_; }

  /// Compiles and materializes every distinct clause of `predicates`
  /// that is not cached yet, scanning in word-aligned chunks on the
  /// shared pool. Compile *errors* are returned only when the boxed
  /// fallback would fail too — i.e. exactly when Bind fails.
  Status Materialize(const std::vector<const Predicate*>& predicates,
                     const ParallelOptions& options = {});

  /// Bitmap of one predicate over the universe (bit i = matches
  /// rows[i]; empty predicate = all ones). Requires every clause to
  /// have been seen by Materialize(); const, safe for concurrent use.
  Result<Bitmap> MatchPrepared(const Predicate& predicate) const;

  /// Serial convenience: Materialize({&predicate}) + MatchPrepared.
  Result<Bitmap> Match(const Predicate& predicate);

  /// Bitmap of a single materialized-on-demand clause (serial).
  Result<const Bitmap*> ClauseBitmap(const Clause& clause);

  // Cache introspection (for tests/benches/profiles). Hits + misses
  // always equals clause lookups: every canonical-key probe counts
  // exactly one of the two (a law the observability test checks
  // against the global metric counters).
  size_t num_cached_clauses() const { return entries_.size(); }
  /// Table size the cache snapshot was built against; a cached engine
  /// is reusable only while its table still has exactly this many rows.
  size_t built_table_rows() const { return built_num_rows_; }
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }
  size_t clause_lookups() const { return cache_hits_ + cache_misses_; }
  /// Clause bitmaps actually scanned (supported cache misses).
  size_t bitmaps_materialized() const { return bitmaps_materialized_; }
  /// Predicates routed through the boxed row-at-a-time fallback.
  size_t boxed_fallbacks() const {
    return boxed_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct ClauseEntry {
    /// Kernels cover the clause; `bits` is valid once materialized.
    bool supported = false;
    Bitmap bits;
  };

  /// Cache entry for `key`, creating (and, for supported clauses,
  /// materializing serially) on miss. Valid until the next insertion.
  ClauseEntry* EnsureClause(const Clause& clause, const std::string& key);
  Status CheckFresh() const;

  /// Boxed fallback for predicates with unsupported clauses.
  Result<Bitmap> MatchBoxed(const Predicate& predicate) const;

  const Table* table_;
  std::vector<RowId> rows_;
  size_t built_num_rows_;  // table size the cache snapshot is valid for
  std::unordered_map<std::string, size_t> index_;  // canonical key -> entry
  std::vector<ClauseEntry> entries_;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t bitmaps_materialized_ = 0;
  /// Atomic: MatchPrepared is const and called concurrently by the
  /// scoring threads; the fallback path is the only one that counts.
  mutable std::atomic<size_t> boxed_fallbacks_{0};
};

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_MATCH_KERNELS_H_
