#ifndef DBWIPES_EXPR_MATCH_KERNELS_H_
#define DBWIPES_EXPR_MATCH_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/common/bitmap.h"
#include "dbwipes/common/parallel.h"
#include "dbwipes/common/result.h"
#include "dbwipes/expr/fused_kernels.h"
#include "dbwipes/expr/predicate.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief A clause translated once into a typed batch-kernel program.
///
/// Numeric clauses become a double comparison against the column's
/// flat int64/double storage (int64 widens to double exactly like
/// Column::AsDouble). String clauses are translated to dictionary-code
/// comparisons: kEq/kNe compare a single code, kIn/kContains gather
/// through a per-code truth table built once from the dictionary (so a
/// CONTAINS scan costs one substring search per *distinct string*, not
/// per row). Null rows never match; string kernels exploit the code -1
/// null sentinel, numeric kernels fold the validity vector in without
/// per-row branching on boxed values.
///
/// Match semantics are identical to Clause::Matches (the boxed
/// row-at-a-time path): kLe/kGe are the negated strict comparisons, so
/// NaN cells satisfy kLe/kGe/kNe and nothing else; a NaN probe is IN
/// nothing; a string literal absent from the dictionary (FindCode ==
/// -1) makes kEq match nothing and kNe match every non-null row.
struct CompiledClause {
  const Column* column = nullptr;
  CompareOp op = CompareOp::kEq;
  bool is_string = false;
  /// Numeric binary comparisons.
  double threshold = 0.0;
  /// String kEq/kNe dictionary code; -2 = literal absent.
  int32_t code = -2;
  /// kIn over numerics: sorted, NaN-free.
  std::vector<double> in_numbers;
  /// String kIn/kContains: truth per dictionary code, shifted by one so
  /// index 0 answers the null sentinel code -1 (always false).
  std::vector<uint8_t> code_table;
};

/// Translates `clause` against `table`. Returns exactly the errors
/// Predicate::Bind would (ordered comparison on a string column,
/// string/numeric literal mismatches, ...), so engine users see
/// unchanged failure behavior.
Result<CompiledClause> CompileClause(const Clause& clause, const Table& table);

/// Evaluates `clause` over positions [64*word_begin, 64*word_end) of
/// `rows` (clamped to rows.size()), writing one whole bitmap word per
/// 64 positions: bit i of `out` = clause matches rows[i]. Chunks that
/// own disjoint word ranges may run concurrently on the same bitmap.
void MatchClauseWords(const CompiledClause& clause,
                      const std::vector<RowId>& rows, size_t word_begin,
                      size_t word_end, Bitmap* out);

/// \brief Vectorized conjunction matching with a shared clause-bitmap
/// cache.
///
/// Bound to one table and one row universe (e.g. the suspect set F, a
/// selectivity sample, or the union of a result's lineage). Enumerators
/// emit many conjunctions sharing single-attribute clauses — threshold
/// families on one column, repeated categorical equalities — so the
/// engine canonicalizes each clause to a key, materializes its bitmap
/// ONCE via the typed kernels, and matches a conjunction by ANDing
/// cached words. Clauses the kernels cannot translate (in ways Bind
/// also rejects) fall back to the boxed BoundPredicate path per
/// predicate, preserving error behavior exactly.
///
/// The engine is a snapshot: it caches bitmaps against the table size
/// at construction, and every Match checks that the table has not
/// grown since (append invalidates; rebuild the engine). See DESIGN.md
/// §5d.
///
/// Fused conjunctions (DESIGN.md §5i): Materialize additionally lowers
/// multi-clause predicates whose clauses are unique within the batch
/// into one-pass FusedPrograms — per 64-row block every clause becomes
/// a register word ANDed in place, with no intermediate per-clause
/// bitmaps — dispatched to a cpuid-selected SIMD tier (DBWIPES_SIMD=off
/// forces the bit-identical scalar tier). Clauses shared across the
/// batch (threshold families, repeated equalities) stay on the
/// materialize-once + word-AND path and enter fused programs as cached
/// bitmap references. Programs are cached keyed by the sorted canonical
/// clause-key set, so shard engines reuse compilations across
/// re-explains. Disable wholesale with DBWIPES_FUSED=off (read at
/// engine construction).
///
/// Thread safety: Materialize() mutates the cache (its own scans run
/// chunked on the PR-1 ParallelFor; output is deterministic at any
/// thread count because chunk boundaries depend only on sizes).
/// MatchPrepared() is const and touches only cached state, so any
/// number of threads may call it concurrently after Materialize().
class MatchEngine {
 public:
  MatchEngine(const Table& table, std::vector<RowId> rows);

  // Movable (the atomic counters are carried over by value; no
  // concurrent use may straddle a move). Fused-program op pointers
  // into the pools and validity bitmaps survive the move: the pointed
  // heap buffers do not relocate.
  MatchEngine(MatchEngine&& other) noexcept
      : table_(other.table_),
        rows_(std::move(other.rows_)),
        built_num_rows_(other.built_num_rows_),
        rows_contiguous_(other.rows_contiguous_),
        tier_(other.tier_),
        fused_enabled_(other.fused_enabled_),
        index_(std::move(other.index_)),
        entries_(std::move(other.entries_)),
        fused_index_(std::move(other.fused_index_)),
        fused_entries_(std::move(other.fused_entries_)),
        validity_(std::move(other.validity_)),
        cache_hits_(other.cache_hits_),
        cache_misses_(other.cache_misses_),
        bitmaps_materialized_(other.bitmaps_materialized_),
        fused_lookups_(other.fused_lookups_),
        fused_hits_(other.fused_hits_),
        fused_compiles_(other.fused_compiles_),
        fused_fallbacks_(other.fused_fallbacks_),
        fused_compile_ms_(other.fused_compile_ms_),
        boxed_fallbacks_(
            other.boxed_fallbacks_.load(std::memory_order_relaxed)),
        fused_evals_(other.fused_evals_.load(std::memory_order_relaxed)) {}
  MatchEngine& operator=(MatchEngine&& other) noexcept {
    table_ = other.table_;
    rows_ = std::move(other.rows_);
    built_num_rows_ = other.built_num_rows_;
    rows_contiguous_ = other.rows_contiguous_;
    tier_ = other.tier_;
    fused_enabled_ = other.fused_enabled_;
    index_ = std::move(other.index_);
    entries_ = std::move(other.entries_);
    fused_index_ = std::move(other.fused_index_);
    fused_entries_ = std::move(other.fused_entries_);
    validity_ = std::move(other.validity_);
    cache_hits_ = other.cache_hits_;
    cache_misses_ = other.cache_misses_;
    bitmaps_materialized_ = other.bitmaps_materialized_;
    fused_lookups_ = other.fused_lookups_;
    fused_hits_ = other.fused_hits_;
    fused_compiles_ = other.fused_compiles_;
    fused_fallbacks_ = other.fused_fallbacks_;
    fused_compile_ms_ = other.fused_compile_ms_;
    boxed_fallbacks_.store(
        other.boxed_fallbacks_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    fused_evals_.store(other.fused_evals_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  const std::vector<RowId>& rows() const { return rows_; }

  /// Compiles and materializes every distinct clause of `predicates`
  /// that is not cached yet, scanning in word-aligned chunks on the
  /// shared pool. Compile *errors* are returned only when the boxed
  /// fallback would fail too — i.e. exactly when Bind fails.
  Status Materialize(const std::vector<const Predicate*>& predicates,
                     const ParallelOptions& options = {});

  /// Bitmap of one predicate over the universe (bit i = matches
  /// rows[i]; empty predicate = all ones). Requires every clause to
  /// have been seen by Materialize(); const, safe for concurrent use.
  /// Predicates Materialize compiled into a fused program evaluate in
  /// one pass over the columns; everything else takes the word-AND of
  /// cached clause bitmaps (or the boxed fallback). All three paths
  /// produce bit-identical bitmaps.
  Result<Bitmap> MatchPrepared(const Predicate& predicate) const;

  /// Anytime variant: fused evaluation checks `ctx` every few hundred
  /// words, so a cancellation or deadline inside a long scan returns
  /// the interrupt status instead of finishing the pass (the partial
  /// bitmap is discarded — clean rollback).
  Result<Bitmap> MatchPrepared(const Predicate& predicate,
                               const ExecContext& ctx) const;

  /// Serial convenience: Materialize({&predicate}) + MatchPrepared.
  Result<Bitmap> Match(const Predicate& predicate);

  /// Bitmap of a single materialized-on-demand clause (serial).
  Result<const Bitmap*> ClauseBitmap(const Clause& clause);

  // Cache introspection (for tests/benches/profiles). Hits + misses
  // always equals clause lookups: every canonical-key probe counts
  // exactly one of the two (a law the observability test checks
  // against the global metric counters).
  size_t num_cached_clauses() const { return entries_.size(); }
  /// Table size the cache snapshot was built against; a cached engine
  /// is reusable only while its table still has exactly this many rows.
  size_t built_table_rows() const { return built_num_rows_; }
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }
  size_t clause_lookups() const { return cache_hits_ + cache_misses_; }
  /// Clause bitmaps actually scanned (supported cache misses).
  size_t bitmaps_materialized() const { return bitmaps_materialized_; }
  /// Predicates routed through the boxed row-at-a-time fallback.
  size_t boxed_fallbacks() const {
    return boxed_fallbacks_.load(std::memory_order_relaxed);
  }

  // Fused-conjunction introspection. Every multi-clause predicate a
  // Materialize batch examines counts exactly one of hit (program
  // already cached), compile (newly lowered), or fallback (unfusible
  // or all clauses shared ⇒ word-AND/boxed) — so fused_lookups ==
  // fused_hits + fused_compiles + fused_fallbacks, the law the
  // observability test checks against the global metrics.
  size_t fused_lookups() const { return fused_lookups_; }
  size_t fused_hits() const { return fused_hits_; }
  size_t fused_compiles() const { return fused_compiles_; }
  size_t fused_fallbacks() const { return fused_fallbacks_; }
  /// MatchPrepared calls answered by a fused one-pass evaluation.
  size_t fused_evals() const {
    return fused_evals_.load(std::memory_order_relaxed);
  }
  /// Compiled predicate programs retained in the cache.
  size_t num_fused_programs() const { return fused_entries_.size(); }
  /// Wall time spent planning + lowering fused programs (cumulative).
  double fused_compile_ms() const { return fused_compile_ms_; }
  SimdTier simd_tier() const { return tier_; }
  bool fused_enabled() const { return fused_enabled_; }

 private:
  struct ClauseEntry {
    /// Kernels cover the clause; `bits` is valid once materialized.
    bool supported = false;
    Bitmap bits;
  };

  /// A compiled conjunction: the one-pass program plus the entry slots
  /// its kBitmapRef ops read (resolved to Bitmap pointers per eval, so
  /// entries_ may relocate between calls).
  struct FusedEntry {
    FusedProgram program;
    std::vector<size_t> ref_entries;  // ref_slot -> entries_ index
  };

  /// Cache entry for `key`, creating (and, for supported clauses,
  /// materializing serially) on miss. Valid until the next insertion.
  ClauseEntry* EnsureClause(const Clause& clause, const std::string& key);
  Status CheckFresh() const;

  /// Universe-positional validity bitmap for a numeric column with
  /// nulls, built once per column (heap-allocated: op pointers stay
  /// valid across rehashes and engine moves). Newly built columns are
  /// recorded in `added` for rollback.
  const Bitmap* EnsureValidity(const Column& col,
                               std::vector<const Column*>* added);

  /// One-pass evaluation of a cached fused program.
  Result<Bitmap> EvalFused(const FusedEntry& fe, const ExecContext& ctx) const;

  /// Boxed fallback for predicates with unsupported clauses.
  Result<Bitmap> MatchBoxed(const Predicate& predicate) const;

  const Table* table_;
  std::vector<RowId> rows_;
  size_t built_num_rows_;  // table size the cache snapshot is valid for
  bool rows_contiguous_ = false;  // rows_[i] == rows_[0] + i
  SimdTier tier_ = SimdTier::kScalar;
  bool fused_enabled_ = true;
  std::unordered_map<std::string, size_t> index_;  // canonical key -> entry
  std::vector<ClauseEntry> entries_;
  /// Sorted clause-key set -> fused_entries_ slot.
  std::unordered_map<std::string, size_t> fused_index_;
  std::vector<FusedEntry> fused_entries_;
  /// Column -> universe validity bitmap (shared by every fused op and
  /// SIMD clause scan over that column).
  std::unordered_map<const Column*, std::unique_ptr<Bitmap>> validity_;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t bitmaps_materialized_ = 0;
  size_t fused_lookups_ = 0;
  size_t fused_hits_ = 0;
  size_t fused_compiles_ = 0;
  size_t fused_fallbacks_ = 0;
  double fused_compile_ms_ = 0.0;
  /// Atomic: MatchPrepared is const and called concurrently by the
  /// scoring threads; these are the only counters it touches.
  mutable std::atomic<size_t> boxed_fallbacks_{0};
  mutable std::atomic<size_t> fused_evals_{0};
};

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_MATCH_KERNELS_H_
