#ifndef DBWIPES_EXPR_PREDICATE_H_
#define DBWIPES_EXPR_PREDICATE_H_

#include <string>
#include <vector>

#include "dbwipes/common/bitmap.h"
#include "dbwipes/common/result.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// Comparison operators usable in clauses.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,        // attribute value is in a literal set
  kContains,  // string attribute contains a substring
};

const char* CompareOpToString(CompareOp op);
/// kLt <-> kGe etc. kIn and kContains have no single-clause negation
/// (error).
Result<CompareOp> NegateOp(CompareOp op);

/// \brief One atomic condition `attr OP literal` (or `attr IN (...)`).
struct Clause {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  /// Literal for the binary ops and kContains (must be a string there).
  Value literal;
  /// Literal set for kIn.
  std::vector<Value> in_set;

  static Clause Make(std::string attr, CompareOp op, Value lit) {
    Clause c;
    c.attribute = std::move(attr);
    c.op = op;
    c.literal = std::move(lit);
    return c;
  }
  static Clause In(std::string attr, std::vector<Value> values) {
    Clause c;
    c.attribute = std::move(attr);
    c.op = CompareOp::kIn;
    c.in_set = std::move(values);
    return c;
  }

  /// True when `v` satisfies the clause. NULL never matches.
  bool Matches(const Value& v) const;

  /// SQL-ish rendering, e.g. `temp >= 100`, `memo CONTAINS 'SPOUSE'`.
  std::string ToString() const;

  /// Canonical text used for semantic deduplication (sorts IN sets).
  std::string CanonicalString() const;

  bool operator==(const Clause& other) const {
    return CanonicalString() == other.CanonicalString();
  }
};

class BoundPredicate;

/// \brief Conjunction of clauses — the unit DBWipes returns to the
/// user ("sensorid = 15 AND time >= 11:00").
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Clause> clauses)
      : clauses_(std::move(clauses)) {}

  static Predicate True() { return Predicate(); }

  bool empty() const { return clauses_.empty(); }
  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Clause>& clauses() const { return clauses_; }

  void AddClause(Clause c) { clauses_.push_back(std::move(c)); }

  /// Conjunction of this and other.
  Predicate And(const Predicate& other) const;

  /// Merges clauses on the same attribute (tightest range, duplicate
  /// removal). Returns the simplified copy; detection of contradictions
  /// is left to evaluation (an unsatisfiable predicate matches nothing).
  Predicate Simplify() const;

  /// Row-at-a-time evaluation by attribute lookup; for hot loops use
  /// Bind() once and evaluate the BoundPredicate.
  Result<bool> Matches(const Table& table, RowId row) const;

  /// Resolves attribute names to column indices against a table.
  Result<BoundPredicate> Bind(const Table& table) const;

  /// `a = 1 AND b >= 2`; "TRUE" when empty.
  std::string ToString() const;
  /// Order-independent canonical form for dedup.
  std::string CanonicalString() const;

  bool operator==(const Predicate& other) const {
    return CanonicalString() == other.CanonicalString();
  }

 private:
  std::vector<Clause> clauses_;
};

/// \brief A Predicate resolved against one table for fast evaluation.
///
/// String equality/IN compare dictionary codes; numeric comparisons go
/// through a branch-predictable switch. Valid only as long as the
/// table it was bound to.
class BoundPredicate {
 public:
  /// True when the row satisfies all clauses.
  bool Matches(RowId row) const;

  /// Evaluates over all rows; out[i] = Matches(i).
  std::vector<bool> MatchAll() const;

  /// Row ids of all matching rows.
  std::vector<RowId> MatchingRows() const;

  /// Evaluates over an arbitrary row subset (e.g. the suspect set F):
  /// bit i of the result is Matches(rows[i]). The positional bitmap is
  /// the ranking fast path's currency — intersection popcounts give
  /// precision/recall, equality gives exact tuple-set dedup.
  Bitmap MatchBitmap(const std::vector<RowId>& rows) const;

  size_t num_clauses() const { return clauses_.size(); }

 private:
  friend class Predicate;

  struct BoundClause {
    const Column* column;
    CompareOp op;
    // Numeric comparisons.
    double threshold = 0.0;
    // String equality via dictionary code; -2 = literal absent from
    // dictionary (kEq never matches, kNe matches all non-null).
    int32_t code = -2;
    // kIn: sorted numeric values and/or string codes.
    std::vector<double> in_numbers;
    std::vector<int32_t> in_codes;
    bool in_has_missing_string = false;
    // kContains.
    std::string substring;
    bool is_string_column = false;
  };

  explicit BoundPredicate(std::vector<BoundClause> clauses,
                          const Table* table)
      : clauses_(std::move(clauses)), table_(table) {}

  static bool ClauseMatches(const BoundClause& c, RowId row);

  std::vector<BoundClause> clauses_;
  const Table* table_;
};

}  // namespace dbwipes

#endif  // DBWIPES_EXPR_PREDICATE_H_
