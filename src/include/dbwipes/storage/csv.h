#ifndef DBWIPES_STORAGE_CSV_H_
#define DBWIPES_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Cells matching this exact text (after trimming) become NULL, in
  /// addition to the empty string.
  std::string null_token = "NULL";
  /// Rows to sample for type inference (per column: int64 if every
  /// sampled cell parses as an integer, else double if every cell
  /// parses as a number, else string).
  size_t type_inference_rows = 1000;
};

/// Parses CSV text into a Table, inferring column types. Fails with
/// ParseError on ragged rows or on cells that contradict the inferred
/// type. Quoted fields ("..." with "" escapes) are supported.
Result<Table> ReadCsv(const std::string& text, const CsvOptions& options = {},
                      const std::string& table_name = "t");

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table as CSV (header + rows). Strings containing the
/// delimiter, quotes, or newlines are quoted.
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

/// Writes table CSV to a file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_CSV_H_
