#ifndef DBWIPES_STORAGE_TABLE_H_
#define DBWIPES_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/column.h"
#include "dbwipes/storage/schema.h"

namespace dbwipes {

/// \brief In-memory columnar table: a schema plus one Column per field.
///
/// Tables are append-only (AppendRow) and row-addressable by RowId,
/// which is what the lineage machinery records. Shared via
/// std::shared_ptr<const Table> once loaded.
class Table {
 public:
  explicit Table(Schema schema, std::string name = "t");

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  /// Column by name, or NotFound.
  Result<const Column*> GetColumn(const std::string& name) const;

  /// Appends one row; the value count must match the schema and each
  /// value must be appendable to its column (nulls always are).
  Status AppendRow(const std::vector<Value>& values);

  /// Boxed cell access.
  Value GetValue(RowId row, size_t col) const {
    return columns_[col].GetValue(row);
  }
  /// One whole row, boxed.
  std::vector<Value> GetRow(RowId row) const;

  /// New table containing exactly the given rows (in the given order).
  Table Select(const std::vector<RowId>& rows) const;

  /// New table with rows where keep[row] is true.
  Table Filter(const std::vector<bool>& keep) const;

  /// Renders up to `max_rows` rows as an aligned text grid (for
  /// examples and the REPL).
  std::string ToString(size_t max_rows = 10) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_TABLE_H_
