#ifndef DBWIPES_STORAGE_VALUE_H_
#define DBWIPES_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "dbwipes/common/result.h"

namespace dbwipes {

/// \brief Physical type of a column or value.
enum class DataType { kInt64, kDouble, kString };

/// Returns "int64" / "double" / "string".
const char* DataTypeToString(DataType type);

/// Parses a type name produced by DataTypeToString.
Result<DataType> DataTypeFromString(std::string_view name);

/// \brief A dynamically-typed SQL value: NULL, int64, double, or string.
///
/// Values appear at system boundaries (row construction, literals in
/// predicates, query results); inner loops operate on typed column
/// storage instead.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}               // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)
  // Guard against the bool->int64 surprise.
  Value(bool) = delete;

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int64() || is_double(); }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 widens to double. Error on NULL or string.
  Result<double> AsDouble() const;

  /// The type of a non-null value; error for NULL.
  Result<DataType> type() const;

  /// SQL-style rendering: NULL, bare numbers, single-quoted strings.
  std::string ToString() const;

  /// Total ordering for use as map keys: NULL < numerics < strings;
  /// numerics compare by value across int64/double.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  /// Hash consistent with operator== (numeric equality across types).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_VALUE_H_
