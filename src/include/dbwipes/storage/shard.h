#ifndef DBWIPES_STORAGE_SHARD_H_
#define DBWIPES_STORAGE_SHARD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief A horizontally-partitioned table: S physical shard Tables
/// plus a fused global view, under one reader/writer lock.
///
/// Each shard owns a contiguous global RowId range and is a full
/// columnar Table with its OWN string dictionaries (codes are assigned
/// by first appearance within the shard, so a shard's dictionary is a
/// deterministic function of the fused content and the boundaries —
/// re-partitioning the same rows at the same boundaries reproduces
/// every code byte for byte). The fused view keeps every global-RowId
/// consumer (executor lineage, preprocessing, the boxed matching
/// fallback) working unchanged; shard-local consumers (per-shard
/// MatchEngines) translate global ids to local ones by subtracting the
/// shard's begin offset.
///
/// Appends route to the tail shard and the fused view together, under
/// the writer side of the lock. Because only the tail shard's Table
/// ever grows, snapshot caches bound to the other shards (clause
/// bitmaps in per-shard MatchEngines) stay valid across appends —
/// this is the fix for the whole-cache-nuke the monolithic table
/// forced on every ingest.
///
/// Thread safety: all reads that may overlap an Append must hold
/// ReadLease() for their duration (the explain pipeline and SQL
/// execution take one lease for the whole run). Append takes the
/// writer side. The extension slot has its own mutex.
class ShardSet {
 public:
  /// Partitions `fused` into `num_shards` contiguous near-equal range
  /// shards (the first `rows % num_shards` shards get one extra row).
  /// The set deep-copies the rows, so the source table is not aliased.
  /// num_shards must be in [1, kMaxShards]; shards may be empty when
  /// there are fewer rows than shards.
  static Result<std::shared_ptr<ShardSet>> Create(const Table& fused,
                                                  size_t num_shards);

  /// Re-partitions at explicit boundaries: shard s gets shard_rows[s]
  /// rows; the counts must sum to fused.num_rows(). This is the
  /// snapshot-restore entry point — identical boundaries reproduce
  /// identical per-shard dictionaries, hence identical clause bitmaps.
  static Result<std::shared_ptr<ShardSet>> CreateWithRows(
      const Table& fused, const std::vector<size_t>& shard_rows);

  /// Hard cap on the shard count (beyond this, per-shard fixed costs
  /// dwarf any locality or cache-retention win at demo scale).
  static constexpr size_t kMaxShards = 256;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_shards() const { return shards_.size(); }

  /// The fused global view. The Table object mutates on Append, so
  /// consumers that may overlap one must hold ReadLease().
  std::shared_ptr<const Table> fused() const { return fused_; }

  /// Takes the reader side of the data lock. Not recursive: a holder
  /// must not re-enter (the explain pipeline takes exactly one lease
  /// for the whole run).
  std::shared_lock<std::shared_mutex> ReadLease() const {
    return std::shared_lock<std::shared_mutex>(data_mu_);
  }

  /// Appends one row to the tail shard and the fused view atomically
  /// (writer lock). Validation errors leave both untouched.
  Status Append(const std::vector<Value>& values);

  // --- Layout accessors (hold ReadLease() if appends may overlap) ---

  size_t num_rows() const { return fused_->num_rows(); }
  /// Row count per shard, in shard order.
  std::vector<size_t> ShardRowCounts() const;
  /// First global RowId shard `s` owns.
  RowId shard_begin(size_t s) const { return shards_[s].begin; }
  /// The shard's physical table (local RowIds start at 0).
  const Table& shard_table(size_t s) const { return *shards_[s].table; }
  /// Shard owning global row `row` (row must be < num_rows()).
  size_t ShardOfRow(RowId row) const;
  /// Total appends routed to the tail shard since construction.
  size_t appends() const { return appends_; }

  /// Opaque per-set extension slot: higher layers (the expr-level
  /// per-shard engine cache) hang state here so it lives exactly as
  /// long as the shards it indexes. Get-or-create under the slot's own
  /// mutex; `make` runs at most once per set.
  std::shared_ptr<void> GetOrCreateExtension(
      const std::function<std::shared_ptr<void>()>& make) const;

 private:
  struct Shard {
    std::shared_ptr<Table> table;
    RowId begin = 0;
  };

  ShardSet() = default;

  std::string name_;
  Schema schema_;
  std::shared_ptr<Table> fused_;
  std::vector<Shard> shards_;
  size_t appends_ = 0;

  mutable std::shared_mutex data_mu_;
  mutable std::mutex extension_mu_;
  mutable std::shared_ptr<void> extension_;
};

/// \brief One shard's slice of an explain's row universe (the suspect
/// set F), in shard-local coordinates.
struct ShardSlice {
  size_t shard_index = 0;
  /// The shard's physical table (kept alive by the plan holder's
  /// shared_ptr<ShardSet>).
  const Table* table = nullptr;
  /// Universe members this shard owns, as shard-local RowIds,
  /// ascending.
  std::vector<RowId> local_rows;
  /// Position of this slice's first member in the global (sorted)
  /// universe: global universe index = offset + local position. Slices
  /// are in shard order, so offsets ascend — iterating slices in order
  /// visits universe indices in ascending order, which is what keeps
  /// per-shard delta scoring bit-identical to the fused path.
  size_t offset = 0;
};

/// \brief A per-explain partition of a sorted global row universe
/// across a ShardSet's shards. One slice per shard, in shard order
/// (slices may be empty). Built once per explain; the ranker and
/// enumerators consume it read-only.
struct ShardPlan {
  ShardSet* set = nullptr;
  std::vector<ShardSlice> slices;

  /// Partitions `sorted_rows` (ascending global RowIds, all <
  /// set.num_rows()) by the set's shard boundaries. Caller holds the
  /// set's ReadLease().
  static ShardPlan Build(ShardSet& set, const std::vector<RowId>& sorted_rows);
};

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_SHARD_H_
