#ifndef DBWIPES_STORAGE_COLUMN_H_
#define DBWIPES_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/value.h"

namespace dbwipes {

/// Row index within a table. 32 bits keeps lineage sets compact; the
/// demo datasets top out in the low millions.
using RowId = uint32_t;

/// \brief Append-only typed column with null tracking.
///
/// Numeric columns store a flat vector. String columns are dictionary
/// encoded (codes + dictionary), which makes categorical machine-
/// learning features and group-by keys cheap. Nulls are tracked in a
/// validity vector; the value slot of a null row is a default.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }
  bool empty() const { return validity_.empty(); }

  bool IsNull(RowId row) const { return !validity_[row]; }
  size_t null_count() const { return null_count_; }

  // Typed readers. The row must be non-null and of the column's type
  // (DBW_DCHECK-enforced).
  int64_t GetInt64(RowId row) const;
  double GetDouble(RowId row) const;
  const std::string& GetString(RowId row) const;

  /// Numeric view of a non-null row: int64 widens to double. Must not
  /// be called on string columns.
  double AsDouble(RowId row) const;

  /// Boxed value (NULL for null rows).
  Value GetValue(RowId row) const;

  // Appends.
  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(const std::string& v);
  /// Type-checked boxed append; int64 promotes into double columns.
  Status AppendValue(const Value& v);

  // Dictionary access (string columns only).
  /// Number of distinct strings ever appended.
  size_t dictionary_size() const { return dictionary_.size(); }
  /// Code of the string at `row` (must be non-null), in
  /// [0, dictionary_size()).
  int32_t StringCode(RowId row) const;
  /// The string for a dictionary code.
  const std::string& DictionaryValue(int32_t code) const;
  /// Code for `s` if it appears in the dictionary, else -1.
  int32_t FindCode(const std::string& s) const;

  // Batch accessors: the raw flat storage, for vectorized kernels
  // (see dbwipes/expr/match_kernels.h). Null rows hold the type's
  // default slot value (0 / 0.0 / code -1); consumers mask them via
  // IsNull or, for codes, the -1 sentinel. Only valid for the matching
  // type (DBW_DCHECK-enforced).
  const std::vector<int64_t>& int64_data() const;
  const std::vector<double>& double_data() const;
  const std::vector<int32_t>& code_data() const;
  bool has_nulls() const { return null_count_ != 0; }

  /// Appends row `row` of `src` (same type) to this column.
  void AppendFrom(const Column& src, RowId row);

  /// Min/max over non-null numeric rows; error if none.
  Result<double> MinNumeric() const;
  Result<double> MaxNumeric() const;

 private:
  DataType type_;
  std::vector<bool> validity_;
  size_t null_count_ = 0;

  std::vector<int64_t> ints_;
  std::vector<double> doubles_;

  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;

  int32_t InternString(const std::string& s);
};

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_COLUMN_H_
