#ifndef DBWIPES_STORAGE_SCHEMA_H_
#define DBWIPES_STORAGE_SCHEMA_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/storage/value.h"

namespace dbwipes {

/// \brief A named, typed column descriptor.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Ordered collection of fields with by-name lookup.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields);
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with this name, if present.
  std::optional<size_t> FindIndex(const std::string& name) const;
  /// Index of the column with this name, or NotFound.
  Result<size_t> GetIndex(const std::string& name) const;
  /// The field with this name, or NotFound.
  Result<Field> GetField(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return FindIndex(name).has_value();
  }

  /// "name:type, name:type, ..." — used in error messages and docs.
  std::string ToString() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

 private:
  void RebuildIndex();

  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_SCHEMA_H_
