#ifndef DBWIPES_STORAGE_WAL_H_
#define DBWIPES_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/result.h"

namespace dbwipes {

/// \brief Knobs for a WriteAheadLog.
struct WalOptions {
  /// Directory holding the segments (and, at the service layer, the
  /// checkpoint snapshot). Created if absent.
  std::string dir;
  /// Roll the active segment once it exceeds this many bytes. Small
  /// values are useful in tests to force multi-segment logs.
  size_t segment_bytes = 4u << 20;
  /// fsync each commit batch before acknowledging. Turning this off
  /// trades power-loss durability for speed (process-crash durability
  /// remains: the page cache survives _exit/SIGKILL).
  bool sync = true;
  /// Service-level policy: auto-checkpoint (snapshot + segment
  /// truncation) once the log exceeds this many bytes. The WAL itself
  /// does not act on it.
  size_t checkpoint_bytes = 8u << 20;
  /// I/O fault sites ("wal/*") hit through this when non-null. Not
  /// owned; null in production.
  FaultInjector* faults = nullptr;
  /// First LSN a brand-new (empty-directory) log assigns. Replication
  /// bootstrap sets this to snapshot_lsn + 1 so a follower's local log
  /// carries the primary's LSNs verbatim. Ignored when the directory
  /// already holds segments — an existing log dictates its own LSNs.
  uint64_t start_lsn = 1;
};

/// \brief Point-in-time counters for `wal status` and tests.
struct WalStats {
  uint64_t next_lsn = 1;
  uint64_t durable_lsn = 0;
  size_t segments = 0;
  size_t total_bytes = 0;    // record bytes across live segments
  size_t appends = 0;        // records acknowledged since Open
  size_t fsyncs = 0;         // commit fsyncs since Open
  bool poisoned = false;
};

/// \brief Segmented, length-prefixed, FNV-1a-checksummed write-ahead
/// log with group-commit fsync.
///
/// Records are opaque (type byte + body — the service logs command
/// lines) and are assigned contiguous LSNs starting at 1. Append() is
/// durable when it returns: the caller's record has been written and
/// (when `sync`) fsynced. Concurrent appenders group-commit — the
/// first waiter becomes the leader, writes every pending record in one
/// write+fsync, and wakes the rest — so N concurrent acknowledgements
/// cost ~1 fsync, not N.
///
/// On-disk layout: `wal-<seq>.log` files, each starting with an
/// 16-byte header (magic + base LSN), then records framed as
/// [u32 body_len][u64 fnv1a(lsn,rid,type,body)][u64 lsn][u64 rid]
/// [u8 type][body]. The rid is the request id that produced the
/// record (0 when unknown) — checksummed frame metadata, so a
/// recovered log still tells which request wrote what, and replay can
/// re-bind each command to its original id.
/// Open() validates every record: a torn tail (short frame or bad
/// checksum) in the LAST segment is truncated away — exactly what a
/// crash mid-write leaves — while the same damage in an earlier
/// segment, or an LSN discontinuity anywhere, is real corruption and
/// refuses to open.
///
/// Failure handling: if a commit batch's write or fsync fails, the
/// file is truncated back to the last durable size, the batch's
/// records are dropped (their Append() calls all fail), and the LSN
/// counter rewinds so the log never contains a gap. Only if that
/// restore itself fails does the log poison (every later Append fails
/// until reopen).
///
/// Thread safety: Append/stats are fully thread-safe, and
/// ReplayDurable may race both (it delivers only the immutable durable
/// prefix). Replay/Rotate/TruncateThrough must not race Append (the
/// service calls them while holding its checkpoint gate exclusively).
class WriteAheadLog {
 public:
  static constexpr uint8_t kRecordCommand = 1;

  /// Scans `options.dir` (creating it if needed), validates existing
  /// segments, truncates a torn tail, and opens the log for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(WalOptions options);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Durably appends one record; returns its LSN once every byte up to
  /// and including it is committed (group-commit fsync). `rid` is the
  /// originating request id stamped into the frame (0 = none).
  Result<uint64_t> Append(uint8_t type, const std::string& body,
                          uint64_t rid = 0);
  Result<uint64_t> AppendCommand(const std::string& line, uint64_t rid = 0) {
    return Append(kRecordCommand, line, rid);
  }

  /// A staged-but-not-yet-durable record. The epoch pins the commit
  /// generation at staging time so WaitDurable can tell "my record
  /// committed" from "my record was dropped by a failed batch and its
  /// LSN was reused".
  struct Ticket {
    uint64_t lsn = 0;
    uint64_t epoch = 0;
    size_t bytes = 0;  // frame size, for the byte counters
  };

  /// First half of Append(): assigns the LSN and buffers the encoded
  /// frame, returning immediately. A caller that must keep log order
  /// equal to apply order can stage under its own serializing lock and
  /// release that lock before WaitDurable — concurrent clients then
  /// share one group-commit fsync instead of serializing on it.
  Result<Ticket> Stage(uint8_t type, const std::string& body,
                       uint64_t rid = 0);
  Result<Ticket> StageCommand(const std::string& line, uint64_t rid = 0) {
    return Stage(kRecordCommand, line, rid);
  }

  /// Second half of Append(): blocks until the staged record is
  /// durable (possibly becoming the commit leader), or returns the
  /// failure that dropped its batch.
  Status WaitDurable(const Ticket& ticket);

  /// Invokes `fn` for every record with lsn > after_lsn, in LSN order,
  /// with the request id recovered from the frame. Reads from disk, so
  /// it sees exactly what a recovery would.
  Status Replay(uint64_t after_lsn,
                const std::function<Status(uint64_t lsn, uint64_t rid,
                                           uint8_t type,
                                           const std::string& body)>& fn) const;

  /// Tailing read, safe to race Append/Rotate: invokes `fn` for every
  /// record with after_lsn < lsn <= D where D is the durable LSN
  /// captured atomically with the segment list at entry. Capping at D
  /// is what makes the race safe — a failed commit only ever drops and
  /// reuses LSNs *above* the durable mark, so everything delivered here
  /// is acknowledged history that can never be rewritten. Torn or extra
  /// frames past D (a concurrent group commit mid-write) are expected
  /// and ignored; durable records missing below D are corruption.
  /// Segments wholly <= after_lsn are skipped without touching disk, so
  /// a replication sender polling the tail re-reads only the active
  /// segment. Racing TruncateThrough can unlink a segment mid-read —
  /// that surfaces as an IoError and the caller should restart from a
  /// checkpoint. `delivered_through` (optional) reports D.
  Status ReplayDurable(
      uint64_t after_lsn,
      const std::function<Status(uint64_t lsn, uint64_t rid, uint8_t type,
                                 const std::string& body)>& fn,
      uint64_t* delivered_through = nullptr) const;

  /// The base LSN of the oldest retained segment — the smallest LSN a
  /// Replay can still deliver. Replication uses CanReplayAfter to
  /// decide between tailing the log and shipping a snapshot.
  uint64_t first_lsn() const;
  bool CanReplayAfter(uint64_t lsn) const;

  /// Closes the active segment (if it holds records) and starts a
  /// fresh one, so TruncateThrough can retire it.
  Status Rotate();

  /// Unlinks every closed segment whose records are all <= lsn (the
  /// checkpoint made them redundant). Never touches the active
  /// segment.
  Status TruncateThrough(uint64_t lsn);

  const std::string& dir() const { return options_.dir; }
  uint64_t next_lsn() const;
  uint64_t durable_lsn() const;
  size_t num_segments() const;
  /// Record bytes across live segments (headers excluded) — the
  /// service's auto-checkpoint trigger.
  size_t total_bytes() const;
  WalStats stats() const;

 private:
  struct Segment {
    std::string path;
    uint64_t seq = 0;
    uint64_t base_lsn = 0;  // LSN of the segment's first record
    uint64_t max_lsn = 0;   // 0 while empty
    size_t record_bytes = 0;
  };

  WriteAheadLog() = default;

  /// Pure-I/O half of the group commit: write `batch` to `fd`, fsync.
  /// Runs with mu_ released (the sync_in_flight_ flag serializes
  /// leaders); every member mutation happens back under the lock.
  Status WriteAndSync(int fd, const std::string& path,
                      const std::string& batch);
  /// Seals the active segment and opens the next with `base_lsn` as its
  /// first record's LSN. Requires mu_.
  Status RotateLocked(uint64_t base_lsn);
  Status CreateSegment(uint64_t seq, uint64_t base_lsn);

  WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Segment> segments_;  // last entry is the active segment
  int active_fd_ = -1;
  size_t active_synced_bytes_ = 0;  // file size covered by the last fsync

  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  std::string pending_;       // encoded records awaiting the next commit
  size_t pending_records_ = 0;
  uint64_t pending_first_lsn_ = 0;
  bool sync_in_flight_ = false;
  /// Bumped when a failed commit drops pending records; waiters whose
  /// epoch changed know their record was discarded.
  uint64_t commit_epoch_ = 0;
  /// One entry per epoch bump: the epoch it ended and how far the log
  /// was durable at that instant. A ticket from epoch E with
  /// lsn <= drops_[E].durable_lsn committed before the failure; any
  /// later lsn was dropped (and possibly reused). Grows only on commit
  /// failures, resets on Open.
  struct DropEvent {
    uint64_t epoch = 0;
    uint64_t durable_lsn = 0;
    Status status;
  };
  std::vector<DropEvent> drops_;
  Status last_error_ = Status::OK();
  bool poisoned_ = false;

  size_t appends_ = 0;
  size_t fsyncs_ = 0;
};

}  // namespace dbwipes

#endif  // DBWIPES_STORAGE_WAL_H_
