#ifndef DBWIPES_REPLICATION_REPLICATION_H_
#define DBWIPES_REPLICATION_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/result.h"
#include "dbwipes/common/retry.h"
#include "dbwipes/storage/wal.h"

namespace dbwipes {

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------
//
// Length-prefixed little-endian messages over a plain TCP socket:
// [u32 payload_len][u8 type][u64 a][u64 b][u64 c][payload bytes]. The
// three u64 slots carry per-type metadata (documented per type below);
// `payload` carries frame bodies, snapshot chunks, or refusal text.
//
// Session shape: the follower dials and sends HELLO(epoch,
// last_applied_lsn). The primary fences (REFUSE) or answers
// WELCOME(epoch, start_lsn, needs_snapshot). When the log no longer
// reaches start_lsn the WELCOME is followed by SNAPSHOT_META /
// SNAPSHOT_CHUNK* / SNAPSHOT_DONE before any FRAME. From then on the
// primary streams FRAME messages as records become durable,
// interleaved with HEARTBEATs; the follower answers with ACK
// (applied_lsn) which drives the primary's lag gauge.

enum class ReplMsgType : uint8_t {
  kHello = 1,         // a=proto version, b=epoch, c=last applied lsn
  kWelcome = 2,       // a=epoch, b=start lsn (stream begins after it),
                      // c=1 when a snapshot transfer follows
  kSnapshotMeta = 3,  // a=snapshot lsn, b=total bytes
  kSnapshotChunk = 4, // payload=raw snapshot file bytes (<=64 KiB)
  kSnapshotDone = 5,  // a=fnv1a-64 of the whole snapshot file
  kFrame = 6,         // a=lsn, b=rid, c=checksum, payload=command body
  kHeartbeat = 7,     // a=epoch, b=primary durable lsn
  kAck = 8,           // a=follower applied lsn
  kRefuse = 9,        // a=speaker's epoch, payload=reason text
};

constexpr uint64_t kReplProtocolVersion = 1;

struct ReplMessage {
  ReplMsgType type = ReplMsgType::kHello;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  std::string payload;
};

std::string EncodeReplMessage(const ReplMessage& m);

/// Blocking send/recv of one message on `fd`. Both honor the socket's
/// SO_SNDTIMEO/SO_RCVTIMEO; a timeout surfaces as an IoError mentioning
/// "timed out". `max_payload` guards against garbage lengths.
Status WriteReplMessage(int fd, const ReplMessage& m);
Status ReadReplMessage(int fd, ReplMessage* out,
                       size_t max_payload = 256u << 20);

/// The frame checksum carried in ReplMsgType::kFrame — identical maths
/// to the WAL's record checksum (FNV-1a over lsn|rid|type|body), so a
/// frame that survives the wire is exactly a frame that will verify on
/// the follower's disk.
uint64_t ReplFrameChecksum(uint64_t lsn, uint64_t rid, uint8_t type,
                           const std::string& body);

/// FNV-1a-64 over a byte string (snapshot transfer integrity).
uint64_t ReplBytesChecksum(const std::string& bytes);

// ---------------------------------------------------------------------------
// Epoch persistence
// ---------------------------------------------------------------------------

/// Reads `dir`/repl-epoch. Absent file = epoch 1 (every node starts in
/// the first epoch); a malformed file is an error, not a silent reset —
/// inventing a low epoch could un-fence a stale primary.
Result<uint64_t> LoadReplicationEpoch(const std::string& dir);

/// Durably (write + fsync + rename) records `epoch` in `dir`. Called
/// before a promotion takes effect, so a crashed-and-restarted new
/// primary can never come back believing an older epoch.
Status StoreReplicationEpoch(const std::string& dir, uint64_t epoch);

// ---------------------------------------------------------------------------
// ReplicationServer (primary side)
// ---------------------------------------------------------------------------

struct ReplicationServerOptions {
  /// Port to listen on (loopback); 0 picks an ephemeral port.
  uint16_t port = 0;
  double heartbeat_interval_ms = 100.0;
  /// Per-read bound while handshaking / reading ACKs.
  double recv_timeout_ms = 5000.0;
  /// "repl/*" fault sites fire through this when non-null (tests).
  FaultInjector* faults = nullptr;
};

/// \brief Streams durable WAL frames to followers.
///
/// One accept thread plus one thread per connected follower. Each
/// follower thread loops: poll for ACKs, ship every newly durable
/// record via WriteAheadLog::ReplayDurable (race-safe tailing read),
/// heartbeat on the interval. All state the server needs from its host
/// comes through `Source` callbacks so the library never depends on
/// the service layer.
class ReplicationServer {
 public:
  struct Source {
    /// Must outlive the server; Stop() before closing the log.
    WriteAheadLog* wal = nullptr;
    std::function<uint64_t()> epoch;
    /// A higher epoch was seen on the wire (stale-primary fencing).
    std::function<void(uint64_t)> observe_epoch;
    /// The checkpoint file image + the LSN it is consistent through,
    /// read atomically (same bytes, same lsn). Used for bootstrap.
    std::function<Result<std::pair<std::string, uint64_t>>()> snapshot;
  };

  struct Stats {
    bool running = false;
    uint16_t port = 0;
    size_t followers = 0;       // currently connected
    uint64_t min_acked_lsn = 0; // lowest ACK across connections (0: none)
    uint64_t frames_sent = 0;
    uint64_t snapshots_sent = 0;
    uint64_t epoch_refusals = 0;
  };

  ReplicationServer() = default;
  ~ReplicationServer();
  ReplicationServer(const ReplicationServer&) = delete;
  ReplicationServer& operator=(const ReplicationServer&) = delete;

  Status Start(ReplicationServerOptions options, Source source);
  void Stop();
  uint16_t port() const { return port_; }
  Stats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<uint64_t> acked_lsn{0};
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeFollower(Conn* conn);
  /// One streaming round: ship frames in (last_sent, durable]; returns
  /// the new last_sent or an error when the connection should drop.
  Result<uint64_t> ShipFrames(int fd, uint64_t last_sent);

  ReplicationServerOptions options_;
  Source source_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex mu_;  // conns_ + counters
  std::vector<std::unique_ptr<Conn>> conns_;
  uint64_t frames_sent_ = 0;
  uint64_t snapshots_sent_ = 0;
  uint64_t epoch_refusals_ = 0;
};

// ---------------------------------------------------------------------------
// ReplicationClient (follower side)
// ---------------------------------------------------------------------------

struct ReplicationClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// No heartbeat or frame for this long = dead primary: reconnect.
  double heartbeat_timeout_ms = 2000.0;
  /// Backoff between reconnect attempts (decorrelated jitter
  /// recommended — a herd of followers should not redial in lockstep).
  RetryPolicy reconnect;
  FaultInjector* faults = nullptr;
};

/// \brief Tails a primary, applying frames through host callbacks.
///
/// One thread: connect, HELLO, then apply whatever the primary sends
/// (snapshot bootstrap and/or frames). Any error — timeout, refused
/// connect, corrupt frame — tears the connection down and redials
/// after a backoff, resuming from last_applied(). The loop only stops
/// for Stop() or a fencing verdict (the primary's epoch is stale, or
/// it refused ours): retrying a fenced pairing cannot succeed.
class ReplicationClient {
 public:
  struct Callbacks {
    std::function<uint64_t()> last_applied;
    std::function<uint64_t()> epoch;
    /// The primary's (higher or equal) epoch, to adopt + persist.
    std::function<void(uint64_t)> observe_epoch;
    /// Apply one replicated command. An error here forces a snapshot
    /// resync (the local log diverged or refused the frame's LSN).
    std::function<Status(uint64_t lsn, uint64_t rid,
                         const std::string& body)> apply;
    /// Install a checkpoint image consistent through snapshot_lsn,
    /// replacing all local state and the local log.
    std::function<Status(const std::string& bytes, uint64_t snapshot_lsn)>
        install_snapshot;
  };

  struct Stats {
    bool running = false;
    bool connected = false;
    /// The pairing is dead by epoch: either side refused the other.
    bool fenced = false;
    uint64_t source_epoch = 0;
    uint64_t source_durable_lsn = 0;  // from the last heartbeat
    uint64_t reconnects = 0;
    uint64_t frames_applied = 0;
    uint64_t snapshot_installs = 0;
    uint64_t corrupt_frames = 0;
    std::string last_error;
  };

  ReplicationClient() = default;
  ~ReplicationClient();
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  Status Start(ReplicationClientOptions options, Callbacks callbacks);
  /// Joins the tail thread; safe to call twice. After Stop no callback
  /// is in flight.
  void Stop();
  Stats stats() const;

 private:
  void Run();
  /// One connection lifetime; returns false when the loop should stop
  /// for good (Stop() or fenced).
  bool RunOnce();
  void SetError(const std::string& what);

  ReplicationClientOptions options_;
  Callbacks callbacks_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> fenced_{false};
  std::atomic<int> fd_{-1};
  std::thread thread_;
  /// Next HELLO advertises lsn 0 to force a snapshot bootstrap (set
  /// after divergence: an apply failure or an LSN gap in the stream).
  std::atomic<bool> force_resync_{false};

  mutable std::mutex mu_;  // stats strings/counters
  Stats stats_;
};

}  // namespace dbwipes

#endif  // DBWIPES_REPLICATION_REPLICATION_H_
