#ifndef DBWIPES_DATAGEN_FEC_GENERATOR_H_
#define DBWIPES_DATAGEN_FEC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/datagen/labeled_dataset.h"

namespace dbwipes {

/// Options for the FEC campaign-contributions simulator. Defaults
/// reproduce the paper's Figure 7 walkthrough: McCain's daily totals
/// show a negative spike near day 500 caused by "REATTRIBUTION TO
/// SPOUSE" rows.
struct FecOptions {
  size_t num_donations = 60000;
  /// Campaign length in days (Figure 7 starts 11/14/2006).
  int64_t num_days = 600;
  uint64_t seed = 2008;
  /// Candidate receiving the reattribution anomaly.
  std::string target_candidate = "MCCAIN";
  /// Number of negative reattribution rows injected.
  size_t num_reattributions = 400;
  /// Center of the anomaly (days into the campaign).
  int64_t reattribution_day = 500;
  /// Spread (stddev, days) of the anomaly around its center.
  double reattribution_spread = 5.0;
  /// Benign negative rows ("REFUND ISSUED") scattered uniformly, to
  /// keep the anomaly non-trivial. Fraction of num_donations.
  double refund_rate = 0.002;
};

/// Generates the donations table:
///   candidate:string, state:string, city:string, occupation:string,
///   amount:double, day:int64, memo:string
/// Normal donations are log-normal amounts on a day distribution with
/// campaign-event spikes; the injected anomaly is a burst of negative
/// large-dollar rows with memo "REATTRIBUTION TO SPOUSE" for the
/// target candidate around `reattribution_day`. Ground truth:
/// description `memo CONTAINS 'REATTRIBUTION TO SPOUSE'`.
Result<LabeledDataset> GenerateFecDataset(const FecOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_DATAGEN_FEC_GENERATOR_H_
