#ifndef DBWIPES_DATAGEN_LABELED_DATASET_H_
#define DBWIPES_DATAGEN_LABELED_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/expr/predicate.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief One injected anomaly with its ground truth.
///
/// The real FEC / Intel datasets contain anomalies but no labels; the
/// generators reproduce the anomaly structure *and* record exactly
/// which rows are anomalous, so explanations can be scored (something
/// the original demo could only eyeball).
struct InjectedAnomaly {
  /// The true compact description, e.g. `sensorid = 15 AND minute >= 28800`.
  Predicate description;
  /// Affected base-table rows, sorted ascending.
  std::vector<RowId> rows;
  /// Human-readable note ("battery death of mote 15 on day 20").
  std::string note;
};

/// \brief A generated table plus the anomalies injected into it.
struct LabeledDataset {
  std::shared_ptr<Table> table;
  std::vector<InjectedAnomaly> anomalies;

  /// Union of all anomaly rows, sorted.
  std::vector<RowId> AllAnomalousRows() const;
};

}  // namespace dbwipes

#endif  // DBWIPES_DATAGEN_LABELED_DATASET_H_
