#ifndef DBWIPES_DATAGEN_INTEL_GENERATOR_H_
#define DBWIPES_DATAGEN_INTEL_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "dbwipes/common/result.h"
#include "dbwipes/datagen/labeled_dataset.h"

namespace dbwipes {

/// \brief A failing mote: from `start_minute` on, its temperature
/// ramps toward `plateau_temp` (the Intel Lab dataset's famous
/// battery-death signature) and its voltage sags.
struct SensorFault {
  int64_t sensor_id = 15;
  int64_t start_minute = 0;
  /// Minutes to climb from normal to the plateau.
  int64_t ramp_minutes = 720;
  double plateau_temp = 120.0;
};

/// Options for the Intel Lab sensor simulator. Defaults produce a
/// workable-size slice (7 days, one reading per 10 minutes); the F4
/// benchmark scales duration/rate up toward the real deployment
/// (54 motes, ~2 readings/minute, 1 month, 2.3M rows).
struct IntelOptions {
  size_t num_sensors = 54;
  int64_t duration_days = 7;
  /// Minutes between consecutive readings of one mote (real: ~0.5).
  double reading_interval_minutes = 10.0;
  uint64_t seed = 7;
  /// Injected faults; default: motes 15 and 18 die after day 4.
  std::vector<SensorFault> faults = {
      {15, 4 * 1440, 720, 122.0},
      {18, 5 * 1440, 720, 110.0},
  };
  /// Fraction of readings dropped at random (sensor networks lose
  /// packets).
  double drop_rate = 0.02;
};

/// Generates the sensor table:
///   sensorid:int64, minute:int64, window:int64 (30-minute window id),
///   hour:int64, temp:double, humidity:double, light:double,
///   voltage:double
/// Temperature follows a diurnal cycle (~16-24 C) with per-sensor
/// offsets and noise; humidity anti-correlates with temperature; light
/// follows day/night; voltage decays slowly. Faulty motes reproduce
/// the battery-death ramp. Ground truth: one anomaly per fault with
/// description `sensorid = k AND minute >= start`.
Result<LabeledDataset> GenerateIntelDataset(const IntelOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_DATAGEN_INTEL_GENERATOR_H_
