#ifndef DBWIPES_DATAGEN_SYNTHETIC_H_
#define DBWIPES_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "dbwipes/common/result.h"
#include "dbwipes/datagen/labeled_dataset.h"

namespace dbwipes {

/// Options for the controlled-anomaly generator driving the
/// quantitative benchmarks (E1 quality sweeps, E2 scaling, E3
/// ablations).
struct SyntheticOptions {
  size_t num_rows = 20000;
  /// Values of the group-by column `g` (0..num_groups-1).
  size_t num_groups = 50;
  /// Numeric attribute columns a0..a{n-1}, iid N(0, 1).
  size_t num_numeric_attrs = 3;
  /// Categorical attribute columns c0..c{n-1}.
  size_t num_categorical_attrs = 2;
  /// Distinct values per categorical column ("cat_<k>").
  size_t categorical_cardinality = 12;
  /// Zipf skew of categorical values (0 = uniform).
  double categorical_skew = 0.5;
  /// Fraction of rows made anomalous (the anomaly's selectivity).
  double anomaly_selectivity = 0.02;
  /// Clauses in the true anomaly description: 1 = one categorical
  /// equality; 2 = categorical equality AND numeric range.
  size_t anomaly_clauses = 2;
  /// Amount added to the measure `v` (baseline N(50, 5)) on anomalous
  /// rows.
  double anomaly_shift = 40.0;
  uint64_t seed = 123;
};

/// Generates:
///   g:int64, a0..:double, c0..:string, v:double
/// A hidden predicate over the attribute columns selects ~selectivity
/// of the rows and shifts their measure by anomaly_shift, so
/// `SELECT avg(v) FROM synthetic GROUP BY g` shows elevated groups.
/// Ground truth carries the hidden predicate and exact row set.
Result<LabeledDataset> GenerateSyntheticDataset(
    const SyntheticOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_DATAGEN_SYNTHETIC_H_
