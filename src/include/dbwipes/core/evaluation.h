#ifndef DBWIPES_CORE_EVALUATION_H_
#define DBWIPES_CORE_EVALUATION_H_

#include <vector>

#include "dbwipes/expr/predicate.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Agreement between a produced explanation and the ground
/// truth rows a data generator injected.
///
/// The demo paper offers no quantitative evaluation; these scores are
/// what our added E1/E3 benchmarks report.
struct ExplanationQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double jaccard = 0.0;
  size_t predicted = 0;
  size_t truth = 0;
  size_t intersection = 0;
};

/// Scores a tuple-set explanation against ground-truth rows (both
/// sorted ascending).
ExplanationQuality ScoreTupleSet(const std::vector<RowId>& predicted_sorted,
                                 const std::vector<RowId>& truth_sorted);

/// Scores a predicate by the rows it matches in `table` against
/// ground-truth rows (sorted).
Result<ExplanationQuality> ScorePredicate(
    const Table& table, const Predicate& predicate,
    const std::vector<RowId>& truth_sorted);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_EVALUATION_H_
