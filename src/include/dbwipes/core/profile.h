#ifndef DBWIPES_CORE_PROFILE_H_
#define DBWIPES_CORE_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dbwipes {

/// \brief Per-Explain telemetry summary, attached to every
/// Explanation.
///
/// Where the Tracer answers "what happened when" across the process,
/// the profile answers "where did THIS request's budget go": per-stage
/// wall time, work counts per stage, MatchEngine cache behavior,
/// ThreadPool utilization over the run, and the anytime events
/// (cancellation / deadline / budget) that cut it short. Collection is
/// always on — the fields are filled from measurements the pipeline
/// already takes (stage clocks, engine counters, pool counter deltas),
/// so there is no separate profiling mode to forget to enable.
/// Serialized by ExplainProfileToJson (export.h) and surfaced by the
/// Service's `profile on` mode.
struct ExplainProfile {
  /// Request id of the Service request that ran this explain (0 when
  /// the pipeline ran outside the Service). The same id appears in the
  /// JSON response, every trace span the request recorded, its log
  /// lines, and any WAL frames it wrote.
  uint64_t rid = 0;

  /// Attempts the Service made to produce this explanation: 1 plus the
  /// number of transient failures its retry policy recovered from.
  /// Always 1 outside the Service (the pipeline itself never retries).
  size_t attempts = 1;

  // --- Stage wall clock (ms) ---
  double preprocess_ms = 0.0;
  double enumerate_ms = 0.0;    // dataset enumeration incl. D' cleaning
  double predicates_ms = 0.0;   // predicate enumeration
  double materialize_ms = 0.0;  // MatchEngine::Materialize inside ranking
  double score_ms = 0.0;        // scoring blocks inside ranking
  double rank_ms = 0.0;         // whole ranking stage (incl. merge)
  double total_ms = 0.0;

  // --- Work processed ---
  size_t table_rows = 0;
  size_t suspect_rows = 0;
  size_t candidate_datasets = 0;
  size_t predicates_enumerated = 0;
  size_t predicates_scored = 0;

  // --- Scoring blocks (the anytime cut's granularity) ---
  size_t scoring_blocks_total = 0;
  size_t scoring_blocks_done = 0;
  /// Wall ms per scoring block, index-aligned with the candidate
  /// prefix; blocks past the anytime cut stay 0, so a partial ranking
  /// shows exactly where the deadline landed.
  std::vector<double> block_ms;

  // --- MatchEngine (vectorized matching) ---
  bool used_match_kernels = false;
  size_t clause_lookups = 0;  // == cache_hits + cache_misses
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t bitmaps_materialized = 0;
  size_t boxed_fallbacks = 0;

  // --- Fused conjunctions (one-pass SIMD matching, DESIGN.md §5i) ---
  /// fused_lookups == fused_hits + fused_compiles + fused_fallbacks:
  /// every multi-clause predicate a materialize batch examines counts
  /// exactly one of program-cache hit, new compilation, or fallback to
  /// the word-AND path.
  size_t fused_lookups = 0;
  size_t fused_hits = 0;
  size_t fused_compiles = 0;
  size_t fused_fallbacks = 0;
  /// MatchPrepared calls answered by a one-pass fused evaluation.
  size_t fused_evals = 0;
  /// Compiled predicate programs retained across this run's engines.
  size_t fused_programs = 0;
  /// Wall ms spent planning + lowering fused programs (the fused
  /// pipeline's per-stage timing lane, alongside materialize_ms).
  double fused_compile_ms = 0.0;
  /// SIMD tier the run dispatched to: "avx2", "scalar", or "" when
  /// match kernels were off.
  std::string simd_tier;

  // --- Shards (sharded tables only; num_shards == 0 otherwise) ---
  /// One lane per shard of the target ShardSet, in shard order.
  /// Counter fields are per-run deltas (reused engines accumulate
  /// across explains), so the hits + misses == lookups law holds per
  /// lane as well as for the totals above (which are the lane sums).
  struct ShardLane {
    size_t shard_index = 0;
    size_t rows = 0;      // shard table rows at ranking time
    size_t suspects = 0;  // suspect-universe members the shard owns
    bool engine_reused = false;
    double materialize_ms = 0.0;
    size_t clause_lookups = 0;
    size_t cache_hits = 0;
    size_t cache_misses = 0;
    size_t bitmaps_materialized = 0;
    size_t cached_clauses = 0;  // clause bitmaps retained after the run
    // Fused lane counters (per-run deltas; lookups == hits + compiles
    // + fallbacks per lane, and the profile totals are the lane sums).
    size_t fused_lookups = 0;
    size_t fused_hits = 0;
    size_t fused_compiles = 0;
    size_t fused_fallbacks = 0;
    size_t fused_evals = 0;
    size_t cached_programs = 0;  // programs retained after the run
  };
  size_t num_shards = 0;
  std::vector<ShardLane> shards;
  /// Engines that came back warm from the per-set cache this run.
  size_t shard_engines_reused = 0;
  /// Suspect-distribution skew: max over shards of (shard suspects /
  /// mean suspects per shard); 1.0 = perfectly even, meaningless when
  /// num_shards == 0.
  double shard_skew = 0.0;

  // --- ThreadPool utilization (delta over this Explain) ---
  size_t pool_threads = 0;  // workers + the calling thread
  uint64_t pool_regions = 0;
  uint64_t pool_chunks = 0;
  double pool_busy_ms = 0.0;
  uint64_t pool_peak_queue_depth = 0;
  /// pool_busy_ms / (total_ms * pool_threads), clamped to [0, 1]:
  /// the fraction of available thread-time spent inside chunk bodies.
  double pool_utilization = 0.0;

  // --- Anytime events (ExecContext) ---
  bool partial = false;
  std::string partial_reason;
  bool cancelled = false;
  bool deadline_expired = false;
  bool has_deadline = false;
  /// ms left on the deadline when the run returned (negative once
  /// past); meaningless unless has_deadline.
  double deadline_remaining_ms = 0.0;
  bool has_budget = false;
  size_t budget_used_predicates = 0;
  size_t budget_used_bitmap_bytes = 0;
  size_t budget_used_scored_removals = 0;
  bool budget_predicates_exhausted = false;
  bool budget_bitmap_exhausted = false;
  bool budget_removals_exhausted = false;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_PROFILE_H_
