#ifndef DBWIPES_CORE_PREDICATE_ENUMERATOR_H_
#define DBWIPES_CORE_PREDICATE_ENUMERATOR_H_

#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/core/dataset_enumerator.h"
#include "dbwipes/learn/decision_tree.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {

/// \brief A predicate together with the tree strategy and candidate
/// dataset that produced it.
struct EnumeratedPredicate {
  Predicate predicate;
  /// Index into the candidate-dataset list this predicate describes.
  size_t candidate_index = 0;
  /// e.g. "gini/d3" — which splitting/pruning strategy built the tree.
  std::string strategy;
};

struct PredicateEnumeratorOptions {
  /// The strategy matrix: one decision tree is fitted per (candidate
  /// dataset x strategy). Defaults to gini and gain-ratio at depths 3
  /// and 4 with light pruning — the paper's "m standard splitting and
  /// pruning strategies".
  std::vector<DecisionTreeOptions> strategies;
  /// Positive leaves below this precision are not turned into
  /// predicates.
  double min_precision = 0.5;
  /// Positive leaves must carry at least this many positive examples.
  double min_positive_weight = 2.0;

  /// Also emit, per candidate, a "bounding description": the
  /// conjunction of each attribute's value span over the candidate
  /// rows, keeping only attributes whose span is selective against the
  /// whole table. Trees need negative examples inside F; when a
  /// selection's lineage is (almost) entirely anomalous — e.g. groups
  /// are per-sensor and a whole sensor is broken — the bounding
  /// description is what produces the paper's
  /// "sensorid = 15 AND time in [...]"-shaped answers.
  bool add_bounding_predicates = true;
  /// Bounding clauses are dropped when they match more than this
  /// fraction of a table sample (not selective enough to matter).
  double bounding_max_table_fraction = 0.9;
  /// Bounding descriptions use at most this many clauses.
  size_t bounding_max_clauses = 4;
  /// Categorical attributes enter a bounding description only when the
  /// candidate uses at most this many distinct values.
  size_t bounding_max_categories = 8;

  static PredicateEnumeratorOptions Defaults();
};

/// \brief Third backend stage: for each candidate D*, label it
/// positive against F - D* and fit decision trees under several
/// strategies; root-to-positive-leaf paths become candidate predicates
/// (paper §2.2.2).
class PredicateEnumerator {
 public:
  explicit PredicateEnumerator(PredicateEnumeratorOptions options =
                                   PredicateEnumeratorOptions::Defaults())
      : options_(std::move(options)) {}

  /// `suspects` is F; `candidates` the Dataset Enumerator's output.
  /// Returned predicates are deduplicated semantically. `ctx` is
  /// checked between tree fits (fault site "enumerate/predicates");
  /// when ctx.budget caps candidate predicates, enumeration stops at
  /// the cap and returns the (deterministic) prefix emitted so far,
  /// latching the budget's exhausted flag for upstream reporting.
  ///
  /// `shards` (optional, caller holds the set's ReadLease): bounding-
  /// description selectivity sampling runs against per-shard engines
  /// over the shards' own tables instead of one fused scan; fractions
  /// are sums of per-shard counts, so emitted predicates are identical
  /// at every shard count.
  Result<std::vector<EnumeratedPredicate>> Enumerate(
      const FeatureView& view, const std::vector<RowId>& suspects,
      const std::vector<CandidateDataset>& candidates,
      const ExecContext& ctx = ExecContext::None(),
      const ShardPlan* shards = nullptr) const;

 private:
  PredicateEnumeratorOptions options_;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_PREDICATE_ENUMERATOR_H_
