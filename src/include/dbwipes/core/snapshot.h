#ifndef DBWIPES_CORE_SNAPSHOT_H_
#define DBWIPES_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dbwipes/core/session_manager.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Everything needed to rebuild a service after a crash: the
/// loaded tables (by registration name) and, per session, the client
/// settings plus the replayable interaction record.
///
/// Explanations are deliberately not persisted — they are recomputable
/// (and the restore oracle is exactly that: re-running `debug` on a
/// restored session reproduces the pre-crash ranking byte for byte).
struct ServiceSnapshot {
  struct SessionState {
    std::string name;
    SessionSettings settings;
    SessionReplay replay;
  };

  /// A sharded table's partition boundaries. Only the per-shard row
  /// counts are persisted — shard contents, dictionaries, and codes
  /// are all reproducible from the fused table plus the boundaries
  /// (codes are first-appearance within each shard), so a restore
  /// rebuilds every shard byte for byte via ShardSet::CreateWithRows.
  struct ShardLayout {
    std::string table;  // registration name in `tables`
    std::vector<uint64_t> shard_rows;
  };

  /// registration name -> table (a sharded table's fused view).
  std::vector<std::pair<std::string, TablePtr>> tables;
  std::vector<SessionState> sessions;
  std::vector<ShardLayout> shard_layouts;  // format v2+; empty in v1
};

/// On-disk format version this build writes. Version history:
///   1 — tables + sessions (PR 5).
///   2 — adds shard layouts after the session section.
/// This build reads versions 1..2 (a v1 file simply has no shard
/// layouts) and refuses anything newer with a precise error.
constexpr uint32_t kSnapshotFormatVersion = 2;

/// Writes `snapshot` to `path` crash-consistently: the bytes go to a
/// temporary sibling file which is atomically renamed over `path`, so
/// a crash mid-save leaves either the old snapshot or the new one,
/// never a torn mix. The payload is FNV-1a-64 checksummed and carries
/// a magic + format version header.
Status WriteSnapshot(const std::string& path, const ServiceSnapshot& snapshot);

/// Reads and fully validates a snapshot: magic, format version,
/// declared payload length, checksum, and every field bound are
/// checked before anything is returned, so a truncated, bit-flipped,
/// or foreign-version file fails with a precise error and can never be
/// partially applied.
Result<ServiceSnapshot> ReadSnapshot(const std::string& path);

/// Serializes/parses the snapshot payload without the file envelope
/// (exposed for tests; Write/ReadSnapshot add the header + checksum).
/// `version` selects the section set to expect — pass the envelope's
/// version when parsing an older file.
std::string SerializeSnapshotPayload(const ServiceSnapshot& snapshot);
Result<ServiceSnapshot> ParseSnapshotPayload(
    const std::string& payload, uint32_t version = kSnapshotFormatVersion);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SNAPSHOT_H_
