#ifndef DBWIPES_CORE_SNAPSHOT_H_
#define DBWIPES_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/core/session_manager.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Everything needed to rebuild a service after a crash: the
/// loaded tables (by registration name) and, per session, the client
/// settings plus the replayable interaction record.
///
/// Explanations are deliberately not persisted — they are recomputable
/// (and the restore oracle is exactly that: re-running `debug` on a
/// restored session reproduces the pre-crash ranking byte for byte).
struct ServiceSnapshot {
  struct SessionState {
    std::string name;
    SessionSettings settings;
    SessionReplay replay;
  };

  /// A sharded table's partition boundaries. Only the per-shard row
  /// counts are persisted — shard contents, dictionaries, and codes
  /// are all reproducible from the fused table plus the boundaries
  /// (codes are first-appearance within each shard), so a restore
  /// rebuilds every shard byte for byte via ShardSet::CreateWithRows.
  struct ShardLayout {
    std::string table;  // registration name in `tables`
    std::vector<uint64_t> shard_rows;
  };

  /// registration name -> table (a sharded table's fused view).
  std::vector<std::pair<std::string, TablePtr>> tables;
  std::vector<SessionState> sessions;
  std::vector<ShardLayout> shard_layouts;  // format v2+; empty in v1
  /// The WAL LSN this snapshot is consistent through: recovery replays
  /// only records with lsn > wal_lsn. 0 in v1/v2 files and in snapshots
  /// saved with the WAL off (replay everything / nothing to replay).
  uint64_t wal_lsn = 0;  // format v3+
  /// Process-level runtime settings (v3+): the `retry` command's knobs.
  /// Logged `retry` records older than the checkpoint are truncated
  /// away, so the checkpoint itself must carry the current values.
  /// max_attempts 0 = not recorded (v1/v2 files); restore keeps the
  /// configured default.
  uint32_t retry_max_attempts = 0;
  double retry_backoff_ms = 0.0;
};

/// On-disk format version this build writes. Version history:
///   1 — tables + sessions (PR 5).
///   2 — adds shard layouts after the session section.
///   3 — adds the WAL checkpoint LSN after the shard layouts.
/// This build reads versions 1..3 (older files simply lack the later
/// sections) and refuses anything newer with a precise error.
constexpr uint32_t kSnapshotFormatVersion = 3;

/// Writes `snapshot` to `path` crash-consistently AND durably: the
/// bytes go to a temporary sibling file which is fsynced, atomically
/// renamed over `path`, and sealed with an fsync of the parent
/// directory — so a crash (or power cut) mid-save leaves either the
/// old snapshot or the new one, never a torn mix, and a completed save
/// actually survives the cut. The payload is FNV-1a-64 checksummed and
/// carries a magic + format version header. `faults` (test-only) hits
/// the "snapshot/*" I/O sites.
Status WriteSnapshot(const std::string& path, const ServiceSnapshot& snapshot,
                     FaultInjector* faults = nullptr);

/// Reads and fully validates a snapshot: magic, format version,
/// declared payload length, checksum, and every field bound are
/// checked before anything is returned, so a truncated, bit-flipped,
/// or foreign-version file fails with a precise error and can never be
/// partially applied.
Result<ServiceSnapshot> ReadSnapshot(const std::string& path);

/// Same validation as ReadSnapshot, but over an in-memory file image.
/// Replication uses this to read the checkpoint file once and parse
/// the very bytes it ships, so the snapshot a follower installs and
/// the LSN it tails from can never disagree. `origin` labels errors.
Result<ServiceSnapshot> ReadSnapshotFromBytes(const std::string& file,
                                              const std::string& origin);

/// Serializes/parses the snapshot payload without the file envelope
/// (exposed for tests; Write/ReadSnapshot add the header + checksum).
/// `version` selects the section set to expect — pass the envelope's
/// version when parsing an older file.
std::string SerializeSnapshotPayload(const ServiceSnapshot& snapshot);
Result<ServiceSnapshot> ParseSnapshotPayload(
    const std::string& payload, uint32_t version = kSnapshotFormatVersion);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SNAPSHOT_H_
