#ifndef DBWIPES_CORE_PREDICATE_RANKER_H_
#define DBWIPES_CORE_PREDICATE_RANKER_H_

#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/core/predicate_enumerator.h"
#include "dbwipes/core/removal.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {

/// \brief A scored predicate, ready for the dashboard's ranked list
/// (Figure 6).
struct RankedPredicate {
  Predicate predicate;
  /// Combined score (higher is better).
  double score = 0.0;
  /// Relative reduction of the per-group mean error when tuples
  /// matching the predicate are removed, clamped to [0, 1]. (The
  /// per-group mean is used rather than the raw metric so that a
  /// max-style eps still rewards partial repairs; see PerGroupError.)
  double error_improvement = 0.0;
  /// Agreement with the user's (cleaned) example tuples within F.
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Tuples of F the predicate matches.
  size_t matched_in_suspects = 0;
  /// eps after cleaning with this predicate.
  double error_after = 0.0;
  /// Strategy that produced the predicate (diagnostics).
  std::string strategy;
};

struct RankerOptions {
  /// score = w_error * error_improvement + w_accuracy * F1
  ///         - w_complexity * clauses/max_clauses.
  double w_error = 0.6;
  double w_accuracy = 0.3;
  double w_complexity = 0.1;
  /// Clause count treated as "maximally complex".
  size_t max_clauses = 5;
  /// Ranked predicates returned.
  size_t top_k = 10;

  /// Which scoring engine Rank uses. Both produce identical orderings
  /// (a law checked by tests); the delta engine is the fast path.
  enum class Engine {
    /// Snapshot + Aggregator::Remove deltas (RemovalScorer), bitmap
    /// matching, and chunked multi-threaded scoring.
    kDeltaParallel,
    /// From-scratch per-predicate recomputation, single-threaded — the
    /// original implementation, kept as the differential-testing
    /// reference.
    kReferenceSerial,
  };
  Engine engine = Engine::kDeltaParallel;
  /// Scoring threads for the delta engine; 0 = DefaultParallelism(),
  /// 1 = single-threaded delta scoring. Output is identical at every
  /// thread count.
  size_t num_threads = 0;
  /// Delta engine only: match predicates through the vectorized
  /// MatchEngine (typed clause kernels + shared clause-bitmap cache,
  /// see dbwipes/expr/match_kernels.h) instead of per-row
  /// BoundPredicate evaluation. Bitmaps — and therefore orderings —
  /// are identical either way; off is the differential-testing /
  /// ablation path.
  bool use_match_kernels = true;
};

/// \brief Result of an anytime ranking run.
///
/// A complete run has partial == false and scored_prefix ==
/// total_candidates. When the ExecContext interrupts the run
/// (cancellation, deadline, or budget), the ranker returns the best
/// ranking over a *deterministic* cut: the longest prefix of the input
/// predicate list whose fixed-size scoring blocks all completed.
/// Because the cut is a prefix of enumeration order, the partial
/// ranking equals a full run restricted to predicates[0,
/// scored_prefix) at any thread count — degraded, never wrong.
/// \brief One shard's lane of a sharded ranking run. Counter fields
/// are per-run deltas (a reused engine's counters are cumulative
/// across explains, so each run snapshots them at checkout), which is
/// what makes the warm-cache law checkable: a shard untouched by
/// appends re-ranks with cache_misses == 0 and cache_hits ==
/// clause_lookups.
struct ShardRankStats {
  size_t shard_index = 0;
  /// Shard table rows at ranking time.
  size_t rows = 0;
  /// Suspect-universe members this shard owns.
  size_t suspects = 0;
  /// Engine came out of the per-set cache with bitmaps warm.
  bool engine_reused = false;
  /// This shard's slice of the Materialize wall time.
  double materialize_ms = 0.0;
  size_t clause_lookups = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t bitmaps_materialized = 0;
  /// Clause bitmaps cached in the shard's engine after the run.
  size_t cached_clauses = 0;
  // Fused-conjunction lane counters (per-run deltas, like the clause
  // counters above): lookups == hits + compiles + fallbacks. A warm
  // lane re-ranks with fused_compiles == 0 and fused_hits ==
  // fused_lookups — the fused face of the warm-cache law.
  size_t fused_lookups = 0;
  size_t fused_hits = 0;
  size_t fused_compiles = 0;
  size_t fused_fallbacks = 0;
  /// MatchPrepared calls this run answered by a one-pass fused scan.
  size_t fused_evals = 0;
  /// Compiled predicate programs retained in the engine after the run.
  size_t cached_programs = 0;
};

/// \brief Telemetry one ranking run produces for the ExplainProfile:
/// phase wall times, per-block timings, and MatchEngine cache totals.
struct RankStats {
  /// MatchEngine::Materialize wall time (0 when kernels are off).
  double materialize_ms = 0.0;
  /// Wall time of the scoring phase (all blocks).
  double score_ms = 0.0;
  size_t blocks_total = 0;
  /// Contiguous done-prefix of blocks (the anytime cut).
  size_t blocks_done = 0;
  /// Wall ms per block, slot-per-block; blocks that never completed
  /// keep 0, so a partial run shows where the deadline cut.
  std::vector<double> block_ms;
  bool used_kernels = false;
  size_t clause_lookups = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t bitmaps_materialized = 0;
  size_t boxed_fallbacks = 0;
  // Fused-conjunction counters (DESIGN.md §5i); lookups == hits +
  // compiles + fallbacks, a law the observability test checks.
  size_t fused_lookups = 0;
  size_t fused_hits = 0;
  size_t fused_compiles = 0;
  size_t fused_fallbacks = 0;
  size_t fused_evals = 0;
  /// Compiled predicate programs retained across the run's engines.
  size_t fused_programs = 0;
  /// Wall ms spent planning + lowering fused programs this run.
  double fused_compile_ms = 0.0;
  /// SIMD tier the engines dispatched to ("avx2" / "scalar"; "" when
  /// kernels were off).
  std::string simd_tier;
  /// Sharded runs only: one lane per shard, in shard order (empty for
  /// single-engine runs). The top-level counters above are the lane
  /// sums, so the hits + misses == lookups law holds unchanged.
  std::vector<ShardRankStats> shard_stats;
};

struct RankOutcome {
  std::vector<RankedPredicate> predicates;
  bool partial = false;
  /// Why the run stopped early ("" when complete), e.g. "Cancelled:
  /// user hit stop" or "Deadline exceeded: deadline expired".
  std::string reason;
  /// Input predicates the ranking considered (prefix length).
  size_t scored_prefix = 0;
  size_t total_candidates = 0;
  RankStats stats;
};

/// \brief Final backend stage: score each enumerated predicate by
/// error-metric improvement, accuracy at matching the user's examples,
/// and description complexity (paper §2.1, sub-problem 3).
class PredicateRanker {
 public:
  explicit PredicateRanker(RankerOptions options = {})
      : options_(options) {}

  /// `suspects` is F (sorted, unique); `reference_positive` is the
  /// cleaned D' (accuracy ground truth within F, sorted); may be
  /// empty, in which case accuracy weight shifts to error improvement.
  /// `per_group_baseline` is
  /// PreprocessResult::per_group_baseline_error.
  ///
  /// With the delta engine, predicates are scored concurrently; the
  /// metric's Error() must therefore be safe to call from multiple
  /// threads (all built-in metrics are pure). Output order is
  /// deterministic: by score, ties broken by enumeration order,
  /// independent of the thread count.
  ///
  /// `shards` (optional) partitions the suspect universe by a
  /// ShardSet's boundaries: matching and materialization then run
  /// per shard against cached per-shard MatchEngines (warm bitmaps
  /// survive appends to other shards), per-shard partial scores are
  /// folded in ascending-offset order, and the final ranking is
  /// combined by the merger's CombinePartialRankings. Results are
  /// bit-identical to the fused path at every shard count — a law the
  /// equivalence suite checks. The caller must hold the set's
  /// ReadLease() across the call.
  Result<std::vector<RankedPredicate>> Rank(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
      size_t agg_index, const std::vector<RowId>& suspects,
      const std::vector<RowId>& reference_positive,
      double per_group_baseline,
      const std::vector<EnumeratedPredicate>& predicates,
      const ShardPlan* shards = nullptr) const;

  /// Anytime entry point: like Rank, but wound down cooperatively by
  /// `ctx` (token/deadline checked per predicate, budget charged per
  /// scoring block). Interrupts yield a partial RankOutcome instead of
  /// an error; real failures (bad predicates, injected faults) are
  /// still returned as error Status. Fault sites: "ranker/rank" at
  /// entry, "ranker/score" per scoring block.
  Result<RankOutcome> RankAnytime(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
      size_t agg_index, const std::vector<RowId>& suspects,
      const std::vector<RowId>& reference_positive,
      double per_group_baseline,
      const std::vector<EnumeratedPredicate>& predicates,
      const ExecContext& ctx, const ShardPlan* shards = nullptr) const;

  /// Predicates per scoring block — the anytime cut's granularity.
  /// Fixed (never derived from the thread count) so partial prefixes
  /// are comparable across machines.
  static constexpr size_t kScoreBlock = 32;

 private:
  Result<RankOutcome> RankDelta(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
      size_t agg_index, const std::vector<RowId>& suspects,
      const std::vector<RowId>& reference_positive,
      double per_group_baseline,
      const std::vector<EnumeratedPredicate>& predicates,
      const ExecContext& ctx, const ShardPlan* shards) const;

  Result<RankOutcome> RankReference(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
      size_t agg_index, const std::vector<RowId>& suspects,
      const std::vector<RowId>& reference_positive,
      double per_group_baseline,
      const std::vector<EnumeratedPredicate>& predicates,
      const ExecContext& ctx) const;

  RankerOptions options_;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_PREDICATE_RANKER_H_
