#ifndef DBWIPES_CORE_REMOVAL_H_
#define DBWIPES_CORE_REMOVAL_H_

#include <vector>

#include "dbwipes/core/error_metric.h"
#include "dbwipes/query/executor.h"

namespace dbwipes {

/// Recomputes eps(O(D - removed)) over the selected groups: for each
/// group in `selected_groups` the aggregate is rebuilt from its
/// lineage minus the rows in `removed_sorted`, and the metric is
/// applied to the resulting values.
///
/// PRECONDITION: `removed_sorted` must be sorted ascending (it is
/// binary-searched per lineage tuple). Violations are detected and
/// returned as InvalidArgument rather than producing silently wrong
/// values.
///
/// This is the objective every DBWipes stage optimizes — candidate
/// datasets and predicates are scored by how far they push it toward
/// 0. It is the exact but slow path: hot loops (the ranker, the
/// dataset enumerator, the exhaustive baseline) use RemovalScorer,
/// which snapshots the aggregator state once and applies
/// Aggregator::Remove deltas per candidate instead of rebuilding.
Result<double> ErrorAfterRemoval(const Table& table, const QueryResult& result,
                                 const std::vector<size_t>& selected_groups,
                                 const ErrorMetric& metric, size_t agg_index,
                                 const std::vector<RowId>& removed_sorted);

/// Aggregate values of the selected groups after removal (NaN = the
/// group lost all its inputs / has no defined value).
Result<std::vector<double>> ValuesAfterRemoval(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, size_t agg_index,
    const std::vector<RowId>& removed_sorted);

/// Mean of the metric applied to each selected group's value alone:
/// (1/|S|) * sum_g eps({v_g}).
///
/// A smoother internal objective than eps itself: under the paper's
/// max-style `diff` metric, a removal that fixes 99 of 100 suspicious
/// groups scores zero raw improvement (the max is unchanged until the
/// last group is fixed), which would starve the search of gradient.
/// The per-group mean is monotone in partial progress while agreeing
/// with eps on "0 = error-free".
double PerGroupError(const ErrorMetric& metric,
                     const std::vector<double>& values);

/// Per-group mean error after removing `removed_sorted`.
Result<double> PerGroupErrorAfterRemoval(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& removed_sorted);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_REMOVAL_H_
