#ifndef DBWIPES_CORE_SESSION_H_
#define DBWIPES_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dbwipes/core/dbwipes.h"

namespace dbwipes {

/// \brief The frontend interaction loop (Figure 1, top): execute query
/// -> visualize -> select suspicious results S -> zoom -> select
/// suspicious inputs D' -> pick an error metric -> debug -> click a
/// predicate to clean -> repeat.
///
/// The Session enforces the loop's ordering (e.g. Debug() before any
/// selection is an error), which is what the demo's UI guarantees by
/// construction.
class Session {
 public:
  explicit Session(std::shared_ptr<Database> db, ExplainOptions options = {})
      : engine_(std::move(db), std::move(options)) {}

  // --- Step 1: query ---

  /// Parses, validates, and executes `sql`; resets all selections and
  /// cleaning state. This is the "original" query the cleaning
  /// predicates accumulate onto.
  Status ExecuteSql(const std::string& sql);

  bool has_result() const { return result_.has_value(); }
  const QueryResult& result() const;

  /// The query text as the dashboard's query form shows it: the
  /// original SQL plus every applied cleaning predicate.
  std::string CurrentSql() const;

  // --- Step 2: select suspicious results (S) ---

  /// Selects result rows by index (the brush's output).
  Status SelectResults(const std::vector<size_t>& groups);

  /// Selects result rows whose aggregate `agg_output_name` lies in
  /// [lo, hi] — the programmatic equivalent of a y-axis brush.
  Status SelectResultsInRange(const std::string& agg_output_name, double lo,
                              double hi);

  const std::vector<size_t>& selected_groups() const {
    return selected_groups_;
  }

  // --- Step 3: zoom to the raw tuples ---

  /// The tuples feeding the selected groups (Figure 4, right panel),
  /// with a leading `_rowid` column so the user's input selection can
  /// be mapped back to base-table rows.
  Result<Table> Zoom() const;

  // --- Step 4: select suspicious inputs (D') ---

  Status SelectInputs(const std::vector<RowId>& rows);

  /// Selects inputs among the zoomed tuples with a filter expression,
  /// e.g. "temp > 100" — the highlight-the-outliers gesture.
  Status SelectInputsWhere(const std::string& filter);

  const std::vector<RowId>& selected_inputs() const {
    return selected_inputs_;
  }

  // --- Step 5: error metric ---

  /// Metric choices for the current selection (Figure 5's forms),
  /// with data-derived defaults.
  Result<std::vector<MetricSuggestion>> SuggestErrorMetrics(
      size_t agg_index = 0) const;

  Status SetMetric(ErrorMetricPtr metric, size_t agg_index = 0);

  // --- Step 6: debug ---

  /// Runs the ranked-provenance backend. Requires a result, a
  /// non-empty S, and a metric. The `ctx` overload makes the run
  /// anytime: under a deadline/cancellation/budget the explanation
  /// comes back flagged partial instead of blocking or erroring.
  Result<Explanation> Debug();
  Result<Explanation> Debug(const ExecContext& ctx);

  bool has_explanation() const { return explanation_.has_value(); }
  const Explanation& explanation() const;

  // --- Step 7: clean ---

  /// Applies ranked predicate `index` from the last explanation:
  /// appends AND NOT pred to the query, re-executes, clears the
  /// selections (the visualization "automatically updates").
  Status ApplyPredicate(size_t index);

  /// Applies an arbitrary predicate (e.g. hand-written).
  Status ApplyPredicateDirect(const Predicate& predicate);

  const std::vector<Predicate>& applied_predicates() const {
    return applied_predicates_;
  }

  /// Removes the most recently applied cleaning predicate and
  /// re-executes — the dashboard's undo.
  Status UndoLastPredicate();

  /// Drops all cleaning predicates and re-runs the original query.
  Status ResetCleaning();

  /// The coarse-grained provenance view (for contrast, per the
  /// paper's introduction).
  Result<std::string> DescribePlan() const;

 private:
  Status Reexecute();

  DBWipes engine_;
  std::optional<AggregateQuery> original_query_;
  std::optional<QueryResult> result_;
  std::vector<size_t> selected_groups_;
  std::vector<RowId> selected_inputs_;
  ErrorMetricPtr metric_;
  size_t agg_index_ = 0;
  std::optional<Explanation> explanation_;
  std::vector<Predicate> applied_predicates_;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SESSION_H_
