#ifndef DBWIPES_CORE_EXPORT_H_
#define DBWIPES_CORE_EXPORT_H_

#include <string>

#include "dbwipes/core/dbwipes.h"

namespace dbwipes {

/// Serializes an Explanation as JSON — the payload the paper's web
/// frontend receives from the backend ("sends a ranked list of
/// predicates for the frontend to display"). Includes the ranked
/// predicates with their scores, the stage timings, the baseline
/// error, and per-candidate provenance. Strings are escaped per RFC
/// 8259; numbers use enough digits to round-trip.
std::string ExplanationToJson(const Explanation& explanation,
                              bool pretty = true);

/// Serializes a query result (group keys + aggregate values) as JSON
/// for the visualization component.
std::string QueryResultToJson(const QueryResult& result, bool pretty = true);

/// Serializes an ExplainProfile (per-stage wall time, work counts,
/// MatchEngine cache behavior, pool utilization, anytime events) —
/// also embedded in ExplanationToJson under "profile", and attached to
/// Service debug responses when `profile on` is set.
std::string ExplainProfileToJson(const ExplainProfile& profile,
                                 bool pretty = true);

/// JSON string escaping helper (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_EXPORT_H_
