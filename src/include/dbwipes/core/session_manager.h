#ifndef DBWIPES_CORE_SESSION_MANAGER_H_
#define DBWIPES_CORE_SESSION_MANAGER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/core/session.h"

namespace dbwipes {

/// \brief Per-session client settings (the Service's knobs that apply
/// to one session rather than the process).
struct SessionSettings {
  /// Per-debug wall-clock cap in ms; <= 0 means none.
  double deadline_ms = 0.0;
  /// Attach the Explain profile to debug responses.
  bool profile_enabled = false;
};

/// \brief Replayable record of how a session reached its current
/// state — exactly what a crash-consistent snapshot persists. The
/// Service refreshes it after every successful state-changing command;
/// restore replays it against a fresh Session (query, then cleaning
/// predicates, then selections, then the metric).
struct SessionReplay {
  /// The original SQL text; "" = no query executed yet.
  std::string original_sql;
  std::vector<Predicate> applied_predicates;
  std::vector<size_t> selected_groups;
  std::vector<RowId> selected_inputs;
  bool has_metric = false;
  /// Wire name of the metric ("too_high", ...) plus its parameters.
  std::string metric_kind;
  double metric_expected = 0.0;
  size_t agg_index = 0;
};

/// \brief One named session plus everything the concurrent service
/// needs around it: the serialization mutex, client settings, the
/// replay record for snapshots, and the cancellation seam.
///
/// Locking: `mu` serializes command execution on the session (hold it
/// for the whole command). `cancel_mu` guards only the cancellation
/// fields and must be acquirable while `mu` is held by a debug in
/// flight — that is the one cross-thread interaction; never take `mu`
/// while holding `cancel_mu`.
struct ManagedSession {
  ManagedSession(std::shared_ptr<Database> db, ExplainOptions options)
      : session(std::move(db), std::move(options)) {}

  /// Serializes commands on this session.
  std::mutex mu;
  Session session;
  SessionSettings settings;
  SessionReplay replay;

  /// Cross-thread cancellation seam (see class comment).
  std::mutex cancel_mu;
  std::shared_ptr<CancellationSource> active_cancel;
  bool pending_cancel = false;
};

/// \brief Owns many named sessions: per-session serialization (each
/// entry carries its own mutex), concurrent cross-session execution
/// (the manager's map lock is held only for lookup, never during
/// command execution), and idle-session eviction.
///
/// Entries are handed out as shared_ptr, so Drop()/EvictIdle() while a
/// command is in flight is safe: the map entry disappears but the
/// in-flight holder keeps the session alive until it finishes.
class SessionManager {
 public:
  struct Options {
    /// Hard cap on live sessions; GetOrCreate past the cap tries to
    /// evict an idle session first and otherwise fails with
    /// kResourceExhausted (a transient error — clients may retry).
    size_t max_sessions = 64;
    /// Sessions idle longer than this are evictable; <= 0 means only
    /// explicit eviction/drop removes sessions.
    double idle_timeout_ms = 0.0;
    /// Attached to the kResourceExhausted status as a
    /// "[retry_after_ms=N]" hint so RetryTransient waits at least this
    /// long before hammering a full session table again; <= 0 omits
    /// the hint.
    double retry_after_hint_ms = 25.0;
  };

  SessionManager(std::shared_ptr<Database> db, ExplainOptions explain_options);
  SessionManager(std::shared_ptr<Database> db, ExplainOptions explain_options,
                 Options options);

  /// Looks up `name`, creating the session on first use. Updates the
  /// entry's last-used time.
  Result<std::shared_ptr<ManagedSession>> GetOrCreate(const std::string& name);

  /// Looks up `name` without creating; null when absent.
  std::shared_ptr<ManagedSession> Find(const std::string& name);

  /// Removes `name` from the map (in-flight holders keep it alive).
  Status Drop(const std::string& name);

  /// Session names, sorted (with per-entry idle ms).
  std::vector<std::string> Names() const;
  /// Milliseconds since the session was last acquired; negative when
  /// the session does not exist.
  double IdleMs(const std::string& name) const;

  size_t size() const;

  /// Evicts every session idle longer than `idle_ms` (skipping any
  /// whose mutex is currently held). Returns the number evicted.
  size_t EvictIdleOlderThan(double idle_ms);
  /// EvictIdleOlderThan(options.idle_timeout_ms); no-op when the
  /// timeout is unset.
  size_t EvictIdle();

  const std::shared_ptr<Database>& database() const { return db_; }
  const ExplainOptions& explain_options() const { return explain_options_; }
  const Options& options() const { return options_; }

  /// Session names are `[A-Za-z0-9_.-]{1,64}` so the `@name` command
  /// routing prefix stays unambiguous.
  static Status ValidateName(const std::string& name);

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::shared_ptr<ManagedSession> session;
    Clock::time_point last_used;
  };

  std::shared_ptr<Database> db_;
  ExplainOptions explain_options_;
  Options options_;

  mutable std::mutex mu_;  // guards entries_ only
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SESSION_MANAGER_H_
