#ifndef DBWIPES_CORE_SERVICE_H_
#define DBWIPES_CORE_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>

#include "dbwipes/core/session.h"

namespace dbwipes {

/// \brief Machine-facing façade over a Session: a line-oriented
/// command protocol with JSON responses.
///
/// This is the seam where the paper's web frontend attaches — every
/// dashboard gesture maps to one command, and every response is a JSON
/// document the visualization can render. The REPL example is the
/// human sibling of this interface.
///
/// Commands (one per line; single-quoted SQL-style strings):
///   sql <query>                  run an aggregate query
///   result                       current result rows
///   select_range <agg> <lo> <hi> brush result groups by value range
///   select_groups <i> <j> ...    brush result groups by index
///   inputs_where <filter>        select D' among the zoomed tuples
///   metrics [agg_index]          list suggested error metrics
///   metric <kind> <expected> [agg_index]
///                                set the metric; kind in {too_high,
///                                too_low, not_equal, total_above,
///                                total_below}
///   debug                        run the backend, return ranked
///                                predicates (JSON)
///   set_deadline <ms>            cap each debug run's wall clock;
///                                0 or negative clears the deadline
///   cancel                       cancel the in-flight debug (from
///                                another thread), or arm a pending
///                                cancel for the next one
///   clean <i>                    apply ranked predicate i
///   clean_where <predicate>      apply an explicit predicate
///   undo                         remove the last cleaning predicate
///   reset                        drop all cleaning predicates
///   state                        session status summary
///   stats                        process-wide metrics snapshot (JSON)
///   profile on|off               attach the per-Explain profile to
///                                debug responses
///   trace on|off                 enable/disable the pipeline tracer
///   trace <path>                 write recorded spans to <path> as
///                                Chrome trace_event JSON
///
/// Every response is a JSON object: {"ok": true, ...} on success or
/// {"ok": false, "error": "..."} on failure — errors never throw; an
/// unknown subcommand of a multi-word command (e.g. `profile bogus`)
/// fails with the offending token in the error. A debug run wound
/// down early by a deadline, cancel, or budget responds {"ok": true,
/// "partial": true, "reason": "...", ...}.
///
/// Threading: commands are serial except `cancel`, which may be issued
/// from another thread to interrupt an in-flight `debug`.
class Service {
 public:
  explicit Service(std::shared_ptr<Database> db, ExplainOptions options = {})
      : session_(std::move(db), std::move(options)) {}

  /// Executes one command line, returning the JSON response.
  std::string Execute(const std::string& line);

  /// The wrapped session (for tests and embedding).
  Session& session() { return session_; }

  /// Debug runs hit these (not owned; may be null). Test seams for the
  /// fault matrix and budget-exhaustion paths.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  void set_budget(ResourceBudget* budget) { budget_ = budget; }

 private:
  /// Execute minus the command/error accounting.
  std::string ExecuteCommand(const std::string& line);
  std::string RunDebug();

  Session session_;
  /// Per-debug wall-clock cap in ms; <= 0 means none.
  double deadline_ms_ = 0.0;
  /// `profile on`: debug responses carry the Explain's profile.
  bool profile_enabled_ = false;
  FaultInjector* faults_ = nullptr;
  ResourceBudget* budget_ = nullptr;
  /// Guards the in-flight debug's cancellation source and the
  /// armed-for-next-run flag (the one cross-thread seam).
  std::mutex cancel_mu_;
  std::shared_ptr<CancellationSource> active_cancel_;
  bool pending_cancel_ = false;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SERVICE_H_
