#ifndef DBWIPES_CORE_SERVICE_H_
#define DBWIPES_CORE_SERVICE_H_

#include <memory>
#include <string>

#include "dbwipes/core/session.h"

namespace dbwipes {

/// \brief Machine-facing façade over a Session: a line-oriented
/// command protocol with JSON responses.
///
/// This is the seam where the paper's web frontend attaches — every
/// dashboard gesture maps to one command, and every response is a JSON
/// document the visualization can render. The REPL example is the
/// human sibling of this interface.
///
/// Commands (one per line; single-quoted SQL-style strings):
///   sql <query>                  run an aggregate query
///   result                       current result rows
///   select_range <agg> <lo> <hi> brush result groups by value range
///   select_groups <i> <j> ...    brush result groups by index
///   inputs_where <filter>        select D' among the zoomed tuples
///   metrics [agg_index]          list suggested error metrics
///   metric <kind> <expected> [agg_index]
///                                set the metric; kind in {too_high,
///                                too_low, not_equal, total_above,
///                                total_below}
///   debug                        run the backend, return ranked
///                                predicates (JSON)
///   clean <i>                    apply ranked predicate i
///   clean_where <predicate>      apply an explicit predicate
///   undo                         remove the last cleaning predicate
///   reset                        drop all cleaning predicates
///   state                        session status summary
///
/// Every response is a JSON object: {"ok": true, ...} on success or
/// {"ok": false, "error": "..."} on failure — errors never throw.
class Service {
 public:
  explicit Service(std::shared_ptr<Database> db, ExplainOptions options = {})
      : session_(std::move(db), std::move(options)) {}

  /// Executes one command line, returning the JSON response.
  std::string Execute(const std::string& line);

  /// The wrapped session (for tests and embedding).
  Session& session() { return session_; }

 private:
  Session session_;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SERVICE_H_
