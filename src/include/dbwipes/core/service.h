#ifndef DBWIPES_CORE_SERVICE_H_
#define DBWIPES_CORE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dbwipes/common/retry.h"
#include "dbwipes/common/telemetry.h"
#include "dbwipes/core/session_manager.h"
#include "dbwipes/storage/wal.h"

namespace dbwipes {

struct ServiceSnapshot;  // core/snapshot.h
class ReplicationServer;  // replication/replication.h
class ReplicationClient;

/// \brief Configuration for the resilient service layer.
struct ServiceOptions {
  ExplainOptions explain;
  SessionManager::Options sessions;

  /// Durability. When `wal.dir` is non-empty the constructor enables
  /// the write-ahead log there — recovering any existing snapshot +
  /// log first — exactly as `wal on <dir>` would. `wal.checkpoint_bytes`
  /// sets the auto-checkpoint threshold.
  WalOptions wal;

  /// Worker threads draining the admission queue. 0 keeps the service
  /// purely synchronous: Execute() works, Submit() fails cleanly.
  size_t num_workers = 0;
  /// Bounded request queue: Submit() beyond this sheds immediately.
  size_t queue_capacity = 64;
  /// Shed when the bytes of queued request lines would exceed this
  /// watermark (guards against a few giant requests exhausting memory
  /// long before the queue is full by count).
  size_t queue_memory_watermark_bytes = 64u << 20;
  /// retry_after_ms hint attached to shed responses.
  double shed_retry_after_ms = 25.0;

  /// Applied to transient `debug` failures; the attempt count lands in
  /// the Explain profile. max_attempts = 1 disables retries. The
  /// policy's sleep_fn seam is honored (tests capture backoffs).
  RetryPolicy retry;

  /// Request-telemetry knobs (DESIGN.md §5k). The background threads
  /// (sampler + watchdog) default OFF so embedded/test services stay
  /// single-threaded and fork-safe; dbwipes_server turns them on.
  /// Request-id stamping and the slow-request log are always-on
  /// per-request features, not threads.
  struct TelemetryOptions {
    /// Sample MetricsRegistry into the TelemetryHistory ring at
    /// `sample_interval_ms` cadence (the `history` command's source).
    bool history_enabled = false;
    double sample_interval_ms = 100.0;
    /// Ring capacity per series — bounds memory at
    /// series * points * 16 bytes regardless of uptime.
    size_t history_points = 600;

    /// Watchdog thread: flags requests in flight longer than
    /// `stall_threshold_ms`, deadline overruns past
    /// `deadline_grace_ms`, and WAL fsyncs stuck past
    /// `fsync_stall_ms`, via `watchdog.*` alert counters and instant
    /// trace events.
    bool watchdog_enabled = false;
    double watchdog_interval_ms = 100.0;
    double stall_threshold_ms = 5000.0;
    double deadline_grace_ms = 500.0;
    double fsync_stall_ms = 500.0;

    /// Slow-request log threshold: requests at or above this emit one
    /// structured JSON line (stderr, "SLOWREQ " prefix) and land in
    /// the `slowlog` ring. >= 0 takes effect directly; < 0 defers to
    /// the DBWIPES_SLOW_MS environment variable; with neither set the
    /// log is off.
    double slow_ms = -1.0;
    size_t slow_log_entries = 64;
  };
  TelemetryOptions telemetry;

  /// Primary/follower replication knobs (DESIGN.md §5l). Both roles
  /// can also be entered at runtime via the `replicate` command; these
  /// options just wire them up at construction.
  struct ReplicationOptions {
    /// >= 0 starts a replication listener on that port (0 picks an
    /// ephemeral port, readable from `replication status`). Requires
    /// the WAL to be enabled via `wal.dir`.
    int listen_port = -1;
    /// Non-empty ("host:port") starts this node as a read-only
    /// follower of that primary.
    std::string follow;
    /// Primary: heartbeat cadence per follower connection.
    double heartbeat_interval_ms = 100.0;
    /// Follower: socket recv/send timeout; a primary silent for this
    /// long triggers a reconnect (with backoff).
    double heartbeat_timeout_ms = 1000.0;
    /// Follower reconnect backoff ladder.
    RetryPolicy reconnect;
    /// retry_after_ms hint attached to not_primary rejections.
    double not_primary_retry_after_ms = 50.0;
    /// Fault injector for the replication sites (repl/*); falls back
    /// to the service-wide injector when null.
    FaultInjector* faults = nullptr;
  };
  ReplicationOptions replication;
};

/// \brief Machine-facing façade over named sessions: a line-oriented
/// command protocol with JSON responses, admission control, and
/// crash-consistent snapshots.
///
/// This is the seam where the paper's web frontend attaches — every
/// dashboard gesture maps to one command, and every response is a JSON
/// document the visualization can render. The REPL example is the
/// human sibling of this interface.
///
/// Commands (one per line; single-quoted SQL-style strings). Any
/// command may be prefixed with `@<session>` to route it to a named
/// session (created on first use); without the prefix it runs on the
/// implicit session "main":
///   sql <query>                  run an aggregate query
///   result                       current result rows
///   select_range <agg> <lo> <hi> brush result groups by value range
///   select_groups <i> <j> ...    brush result groups by index
///   inputs_where <filter>        select D' among the zoomed tuples
///   metrics [agg_index]          list suggested error metrics
///   metric <kind> <expected> [agg_index]
///                                set the metric; kind in {too_high,
///                                too_low, not_equal, total_above,
///                                total_below}
///   debug                        run the backend, return ranked
///                                predicates (JSON); transient
///                                failures are retried per the retry
///                                policy (attempts recorded in the
///                                profile)
///   set_deadline <ms>            cap each debug run's wall clock;
///                                0 or negative clears the deadline
///   cancel                       cancel the in-flight debug (from
///                                another thread), or arm a pending
///                                cancel for the next one
///   clean <i>                    apply ranked predicate i
///   clean_where <predicate>      apply an explicit predicate
///   undo                         remove the last cleaning predicate
///   reset                        drop all cleaning predicates
///   state                        session status summary
///   session list                 live sessions with idle times
///   session drop <name>          remove a session
///   session evict [idle_ms]      evict sessions idle > idle_ms
///   snapshot save <path>         checksummed crash-consistent dump of
///                                all sessions + loaded tables + shard
///                                layouts
///   snapshot load <path>         validate and restore a snapshot
///                                (all-or-nothing)
///   retry <max_attempts> [initial_backoff_ms] | retry off
///                                configure the transient-retry policy
///   ping [ms]                    liveness probe (optionally sleeps)
///   shards <table> <count>       partition a loaded table into
///                                <count> contiguous range shards
///                                (count in [1, 256]); later appends
///                                route to the tail shard and explains
///                                run shard-parallel
///   append <table> <v1> ...      append one row to a sharded table's
///                                tail shard (one value per schema
///                                column; `null` for NULL)
///   stats                        process-wide metrics snapshot (JSON)
///                                plus per-table shard layout: shard
///                                count, per-shard row counts, cached
///                                clause bitmaps per shard
///   history [metric] [window_ms] sampled time series: no args lists
///                                the series; with a metric returns its
///                                [t_ms, value] points (optionally only
///                                the last window_ms)
///   slowlog                      recent slow-request log entries
///                                (structured JSON, newest last)
///   wal on <dir>                 enable the write-ahead log in <dir>,
///                                first recovering any snapshot + log
///                                already there (latest valid snapshot
///                                + replay of newer records)
///   wal off                      checkpoint, then disable the log
///   wal checkpoint               snapshot the world + truncate the
///                                log's retired segments
///   wal status                   durability status JSON: lsns,
///                                segments, bytes, replay/recovery
///                                stats, last checkpoint error
///   profile on|off               attach the per-Explain profile to
///                                debug responses (per session)
///   trace on|off                 enable/disable the pipeline tracer
///   trace <path>                 write recorded spans to <path> as
///                                Chrome trace_event JSON
///
/// Every response is a JSON object: {"ok": true, ...} on success or
/// {"ok": false, "error": "..."} on failure — errors never throw.
/// Every response additionally carries "rid": N, the request's
/// process-unique id, which the same request stamps into its trace
/// spans, log lines, ExplainProfile, and WAL frames (end-to-end
/// correlation; DESIGN.md §5k). An unknown subcommand of a multi-word
/// command (e.g. `profile bogus`)
/// fails with the offending token in the error. Failures that may
/// clear on their own (overload, session-limit, I/O) additionally
/// carry "retryable": true. A debug run wound down early by a
/// deadline, cancel, or budget responds {"ok": true, "partial": true,
/// "reason": "...", ...}.
///
/// Durability: with the WAL on, every acknowledged state-mutating
/// command (sql/selection/metric/clean/undo/reset/settings, append,
/// shards, retry, session drop) is logged — and group-commit fsynced —
/// BEFORE its ok response returns, so a crash after the ack never
/// loses it: recovery = latest valid snapshot + replay of newer log
/// records. Should the log append itself fail after the in-memory
/// apply, the response reports {"ok": false, "durability": "lost",
/// "applied": true} — the operation took effect but is not crash-safe
/// (deliberately NOT marked retryable: re-running it would double-
/// apply). Reads (debug/result/state/stats) and `cancel` are never
/// logged and never wait on the checkpoint gate.
///
/// Threading: Execute() is fully thread-safe — commands on the same
/// session serialize on that session's mutex while commands on
/// different sessions run concurrently; `cancel` reaches an in-flight
/// `debug` without blocking behind it. Start() spins up the worker
/// pool behind Submit(), the queued entry point with admission
/// control: when the queue is full (or the memory watermark is
/// crossed) requests are rejected immediately with
/// {"ok": false, "retryable": true, "reason": "overloaded",
///  "retry_after_ms": ...} instead of queueing unboundedly. Stop()
/// drains the queue — accepted requests are never silently dropped.
class Service {
 public:
  explicit Service(std::shared_ptr<Database> db, ExplainOptions options = {});
  Service(std::shared_ptr<Database> db, ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Executes one command line synchronously, returning the JSON
  /// response. Thread-safe (see class comment).
  std::string Execute(const std::string& line);

  /// Starts the worker pool (requires options.num_workers > 0).
  Status Start();
  /// Drains the queue and joins the workers. Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Queued entry point with admission control. The future always
  /// resolves: with the command's response, or immediately with an
  /// overloaded/not-running rejection.
  std::future<std::string> Submit(std::string line);

  /// The implicit "main" session (for tests and embedding). State
  /// changes made directly on it bypass the snapshot replay record.
  Session& session();
  SessionManager& sessions() { return *manager_; }

  /// Debug runs hit these (not owned; may be null). Test seams for the
  /// fault matrix and budget-exhaustion paths.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  void set_budget(ResourceBudget* budget) { budget_ = budget; }

  /// Sampled metric time series behind the `history` command (always
  /// allocated; only populated while telemetry.history_enabled).
  TelemetryHistory& history() { return history_; }

 private:
  struct QueuedRequest {
    std::string line;
    uint64_t rid = 0;  // assigned at admission so sheds are correlated
    std::promise<std::string> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One live request, tracked for the watchdog: begin/end bracket
  /// Execute, RunDebug upgrades the entry with the session deadline.
  struct InflightRequest {
    std::string cmd;  // first token (plus session route) of the line
    double start_ms = 0.0;
    double deadline_ms = 0.0;  // 0 = none
    bool stall_alerted = false;
    bool deadline_alerted = false;
  };

  /// Execute body with an externally-assigned request id (Submit
  /// assigns at admission; Execute assigns fresh).
  std::string ExecuteWithRid(const std::string& line, uint64_t rid);
  /// Execute minus the command/error accounting.
  std::string ExecuteCommand(const std::string& line);
  /// The per-session command dispatch (caller holds the session mutex).
  std::string ExecuteSessionCommand(ManagedSession& ms,
                                    const std::string& cmd,
                                    std::istream& in);
  std::string RunDebug(ManagedSession& ms);
  std::string HandleSession(std::istream& in);
  std::string HandleSnapshot(std::istream& in);
  std::string HandleRetry(std::istream& in);
  std::string HandleStats();
  std::string HandleShards(std::istream& in);
  std::string HandleAppend(std::istream& in);
  std::string HandleWal(std::istream& in);
  std::string HandleHistory(std::istream& in);
  std::string HandleSlowlog();
  RetryPolicy CurrentRetryPolicy() const;
  void WorkerLoop();

  // --- Request telemetry (DESIGN.md §5k) ---

  void TrackInflightBegin(uint64_t rid, const std::string& line,
                          double start_ms);
  void TrackInflightEnd(uint64_t rid);
  /// RunDebug publishes the session deadline so the watchdog can tell
  /// "slow" from "past its promised deadline".
  void SetInflightDeadline(uint64_t rid, double deadline_ms);
  /// Appends a slow-request entry (and mirrors it to stderr) when the
  /// request's wall time crosses the threshold.
  void MaybeSlowLog(uint64_t rid, const std::string& line, double elapsed_ms,
                    const std::string& response);
  void StartTelemetryThreads();
  void StopTelemetryThreads();
  void SamplerLoop();
  void WatchdogLoop();
  void SampleOnce();
  void WatchdogScan();

  // --- Durability (see the class comment) ---

  /// Serializes the whole live world — every session (under its mutex)
  /// then every shard layout (under its read lease) then the tables —
  /// into `snapshot`. The same collection the `snapshot save` command
  /// performs; prefix-consistent against concurrent appends.
  void CollectSnapshot(ServiceSnapshot* snapshot);
  /// Validates and rebuilds a world from `snapshot` off to the side,
  /// then swaps it in under a brief exclusive state_mu_ hold (the
  /// `snapshot load` body). Any failure leaves the live state intact.
  Status LoadWorld(const ServiceSnapshot& snapshot);
  /// Opens/recovers the WAL in `dir`: loads `dir`/snapshot.dbw when
  /// present, replays newer records by re-executing their command
  /// lines, then checkpoints. Caller holds wal_gate_ exclusively with
  /// gate_owner_ set (replayed commands re-enter ExecuteCommand).
  Status EnableWalLocked(const std::string& dir);
  /// snapshot + rotate + truncate. Caller holds wal_gate_ exclusively.
  Status CheckpointLocked();
  /// Auto-checkpoint probe run after every command (outside all locks).
  void MaybeAutoCheckpoint();
  /// Appends `logged_line` to the WAL (no-op when off); on failure
  /// rewrites *response into the durability-lost error. Caller holds
  /// the gate shared (or is the gate owner) plus the order-defining
  /// lock (session mutex / append_wal_mu_).
  /// Stages `logged_line` into the WAL, releases `order` (when given),
  /// then blocks for durability — staging under the caller's ordering
  /// lock keeps log order == apply order, while waiting outside it
  /// lets concurrent clients share one group-commit fsync. On failure
  /// rewrites `*response` to the durability-lost form.
  void ApplyWalLog(const std::string& logged_line, std::string* response,
                   std::unique_lock<std::mutex>* order = nullptr);
  bool ReplayingOnThisThread() const {
    return gate_owner_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  // --- Replication (DESIGN.md §5l) ---

  /// Rejects state-mutating commands on a follower (retryable
  /// not_primary) or on a fenced stale primary (terminal). Returns the
  /// rejection response, or "" when the command may proceed. `in` is
  /// only peeked, never consumed.
  std::string MaybeRejectForRole(const std::string& cmd, std::istream& in);
  std::string HandleReplicate(std::istream& in);
  std::string HandleReplicationStatus();
  std::string HandlePromote();
  /// Caller holds repl_mu_. Lock order: repl_mu_, then wal_gate_.
  Status StartReplicationListenLocked(int port);
  Status StartReplicationFollowLocked(const std::string& target);
  /// Follower apply path: re-executes `body` under the exclusive gate
  /// in replay mode (original rid preserved, no internal logging),
  /// then stages the same line into the local WAL asserting it lands
  /// on exactly `lsn`, and waits for durability before acking.
  Status ApplyReplicatedFrame(uint64_t lsn, uint64_t rid,
                              const std::string& body);
  /// Follower bootstrap: validates the shipped checkpoint bytes, wipes
  /// the local log, reopens it starting at snapshot_lsn + 1, persists
  /// the snapshot locally, and swaps the world in.
  Status InstallReplicaSnapshot(const std::string& bytes,
                                uint64_t snapshot_lsn);
  /// Primary side of snapshot catch-up: returns the checkpoint file's
  /// bytes plus its wal_lsn, checkpointing first when the existing
  /// file is missing, invalid, or no longer tailable.
  Result<std::pair<std::string, uint64_t>> ReplicationSnapshotImage();
  /// Records a peer-observed epoch: maxes repl_seen_epoch_, adopts a
  /// newer epoch when following, fences this node when primary.
  void ObserveReplicationEpoch(uint64_t epoch);
  /// Stops client then server (outside repl_mu_ — their threads call
  /// back into the service). Used by `replicate stop` and teardown.
  void StopReplication();

  /// Replication lifecycle lock (server/client start/stop, promote).
  /// Lock order: repl_mu_ before wal_gate_; never taken from the
  /// replication threads themselves.
  std::mutex repl_mu_;
  std::unique_ptr<ReplicationServer> repl_server_;
  std::unique_ptr<ReplicationClient> repl_client_;
  size_t repl_promotions_ = 0;    // under repl_mu_
  std::string repl_last_error_;   // under repl_mu_
  /// Serializes repl-epoch file writes (leaf lock — safe from the
  /// replication threads).
  std::mutex epoch_file_mu_;
  std::atomic<bool> follower_{false};
  std::atomic<bool> repl_fenced_{false};
  /// This node's replication epoch (persisted in <wal dir>/repl-epoch).
  std::atomic<uint64_t> repl_epoch_{1};
  /// Highest epoch ever observed from any peer (>= repl_epoch_).
  std::atomic<uint64_t> repl_seen_epoch_{1};
  /// Highest lsn locally applied+durable from the replication stream.
  std::atomic<uint64_t> repl_last_applied_{0};
  /// Remembers the WAL directory across InstallReplicaSnapshot's
  /// close/wipe/reopen cycle (and failed reopens).
  std::string wal_dir_hint_;

  ServiceOptions options_;

  /// Guards the db_/manager_/default_session_ trio as a unit. Commands
  /// hold it shared just long enough to resolve their session; snapshot
  /// load builds the restored world off to the side and swaps the trio
  /// under a brief exclusive hold, so new commands atomically see the
  /// new world while in-flight ones finish against the old (kept alive
  /// by shared_ptr). No path ever blocks on this lock while holding a
  /// session mutex, so `cancel` always gets through.
  std::shared_mutex state_mu_;
  std::shared_ptr<Database> db_;
  std::unique_ptr<SessionManager> manager_;
  std::shared_ptr<ManagedSession> default_session_;

  FaultInjector* faults_ = nullptr;
  ResourceBudget* budget_ = nullptr;

  /// The checkpoint gate. State-mutating commands hold it SHARED for
  /// the duration of apply+log; checkpoint, `wal on|off`, and
  /// `snapshot load` hold it EXCLUSIVE, so a checkpoint observes a
  /// world where every logged command is either fully applied+logged
  /// or not started — the invariant that makes snapshot.wal_lsn exact.
  /// Reads and `cancel` never touch it. Lock order: gate, then the
  /// session mutex / append_wal_mu_, then shard leases / the WAL's
  /// internal mutex.
  std::shared_mutex wal_gate_;
  /// Thread currently holding the gate exclusively for recovery; its
  /// re-entrant ExecuteCommand calls (replay) skip gate acquisition
  /// and logging.
  std::atomic<std::thread::id> gate_owner_{};
  /// Serializes apply+log for process-wide mutations (append/shards/
  /// retry/session drop) so WAL order matches apply order; per-session
  /// commands get the same guarantee from the session mutex.
  std::mutex append_wal_mu_;
  /// Non-null while the WAL is on. Written under the exclusive gate,
  /// read under the shared gate (or by the gate owner).
  std::unique_ptr<WriteAheadLog> wal_;
  FaultInjector* wal_faults_ = nullptr;  // resolved at enable time
  // Recovery/checkpoint bookkeeping, guarded by wal_gate_.
  uint64_t wal_snapshot_lsn_ = 0;   // lsn the last checkpoint covered
  size_t wal_replayed_ = 0;         // records replayed at last enable
  size_t wal_replay_errors_ = 0;    // replayed commands answering not-ok
  double wal_recovery_ms_ = 0.0;
  size_t wal_checkpoints_ = 0;
  std::string wal_last_error_;      // last async checkpoint failure
  std::atomic<bool> wal_enabled_{false};  // cheap probe for the hot path

  /// Retry knobs adjustable at runtime via the `retry` command.
  std::atomic<size_t> retry_max_attempts_;
  std::atomic<double> retry_backoff_ms_;

  // --- Request telemetry ---
  TelemetryHistory history_;
  /// Resolved slow-log threshold: options.telemetry.slow_ms, else
  /// DBWIPES_SLOW_MS, else -1 (disabled).
  double slow_threshold_ms_ = -1.0;
  std::mutex slowlog_mu_;
  std::deque<std::string> slowlog_;  // newest at the back
  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, InflightRequest> inflight_;
  std::mutex telemetry_mu_;  // pairs with telemetry_cv_ for shutdown
  std::condition_variable telemetry_cv_;
  bool telemetry_stop_ = false;
  std::thread sampler_;
  std::thread watchdog_;
  /// Alerted fsync episode (its start timestamp); suppresses repeat
  /// alerts for the same stuck fsync.
  double fsync_alerted_since_ = 0.0;

  // --- Admission queue ---
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedRequest> queue_;
  size_t queued_bytes_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_SERVICE_H_
