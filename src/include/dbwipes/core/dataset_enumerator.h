#ifndef DBWIPES_CORE_DATASET_ENUMERATOR_H_
#define DBWIPES_CORE_DATASET_ENUMERATOR_H_

#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/random.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/learn/feature.h"
#include "dbwipes/learn/subgroup.h"

namespace dbwipes {

/// \brief One candidate D* — a hypothesized set of error-causing
/// input tuples (paper §2.1, sub-problem 1).
struct CandidateDataset {
  /// Sorted base-table RowIds (subset of F).
  std::vector<RowId> rows;
  /// Where the candidate came from ("cleaned-dprime",
  /// "subgroup: <pred>", "top-influence"), for diagnostics.
  std::string source;
  /// eps after removing the candidate (lower is better).
  double error_after_removal = 0.0;
  /// baseline - error_after_removal.
  double error_reduction = 0.0;
};

/// How the user's noisy example set D' is made self-consistent.
enum class CleanMethod { kNone, kKMeans, kClassifier };

struct DatasetEnumeratorOptions {
  CleanMethod clean_method = CleanMethod::kKMeans;
  /// Extend the cleaned D' with subgroup discovery over F.
  bool extend_with_subgroups = true;
  /// Add the top-influence tuple set as its own candidate.
  bool include_top_influence_candidate = true;
  /// Tuples whose influence is above this quantile of F's influence
  /// distribution count as positives for subgroup discovery.
  double influence_quantile = 0.90;
  /// Candidates kept (best error reduction first).
  size_t max_candidates = 6;
  /// Candidates that do not reduce eps at all are discarded.
  bool require_error_reduction = true;
  SubgroupOptions subgroup_options;
  uint64_t seed = 42;
};

/// \brief Second backend stage: clean D' into a self-consistent
/// subset, then extend it into candidate D* datasets guided by the
/// error metric (paper §2.2.2).
class DatasetEnumerator {
 public:
  explicit DatasetEnumerator(DatasetEnumeratorOptions options = {})
      : options_(std::move(options)) {}

  /// `view` defines the attributes subgroups may describe; `dprime`
  /// holds the user's example suspicious inputs (base-table RowIds,
  /// may be empty — then influence alone drives the search);
  /// `preprocess` supplies F, the influence ranking, and the baseline
  /// error; `metric`/`agg_index` evaluate candidates. `ctx` is checked
  /// between candidates, so an expired deadline or tripped token stops
  /// the enumeration with an interrupt Status (fault site
  /// "enumerate/datasets").
  Result<std::vector<CandidateDataset>> Enumerate(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups,
      const PreprocessResult& preprocess, const std::vector<RowId>& dprime,
      const FeatureView& view, const ErrorMetric& metric,
      size_t agg_index = 0,
      const ExecContext& ctx = ExecContext::None()) const;

  /// The D'-cleaning step alone (exposed for tests and ablations):
  /// returns the subset of `dprime` judged self-consistent. Fault
  /// site "enumerate/clean".
  Result<std::vector<RowId>> CleanDPrime(
      const Table& table, const std::vector<RowId>& dprime,
      const std::vector<RowId>& suspect_inputs,
      const std::vector<TupleInfluence>& influences,
      const FeatureView& view,
      const ExecContext& ctx = ExecContext::None()) const;

 private:
  DatasetEnumeratorOptions options_;
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_DATASET_ENUMERATOR_H_
