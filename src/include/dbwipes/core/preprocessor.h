#ifndef DBWIPES_CORE_PREPROCESSOR_H_
#define DBWIPES_CORE_PREPROCESSOR_H_

#include <vector>

#include "dbwipes/core/error_metric.h"
#include "dbwipes/provenance/lineage.h"

namespace dbwipes {

/// \brief Output of the Preprocessor stage (paper §2.2.2).
struct PreprocessResult {
  /// F: all input tuples feeding the suspicious results S (sorted).
  std::vector<RowId> suspect_inputs;
  /// Leave-one-out influence of every tuple in F, descending.
  std::vector<TupleInfluence> influences;
  /// eps(S) before any cleaning (the user's raw metric).
  double baseline_error = 0.0;
  /// Mean per-group error before cleaning (the search's smoother
  /// internal objective; see PerGroupError in removal.h).
  double per_group_baseline_error = 0.0;
};

/// \brief First backend stage: compute F = lineage(S) and rank each
/// tuple by how much it influences the error metric.
class Preprocessor {
 public:
  /// `selected_groups` indexes result rows (S); `agg_index` selects
  /// which aggregate of the query the metric reads. `per_group`
  /// chooses the influence mode (see InfluenceOptions::per_group).
  static Result<PreprocessResult> Run(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
      size_t agg_index = 0, bool per_group = true);
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_PREPROCESSOR_H_
