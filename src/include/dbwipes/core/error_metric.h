#ifndef DBWIPES_CORE_ERROR_METRIC_H_
#define DBWIPES_CORE_ERROR_METRIC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dbwipes/expr/ast.h"
#include "dbwipes/provenance/influence.h"

namespace dbwipes {

/// \brief User-selected error metric eps(S) (paper §2.1): maps the
/// aggregate values of the suspicious result groups S to a value >= 0,
/// where 0 means "no error".
///
/// NaN entries (NULL aggregates) contribute no error.
class ErrorMetric {
 public:
  virtual ~ErrorMetric() = default;

  /// values[i] = aggregate value of the i'th selected group.
  virtual double Error(const std::vector<double>& values) const = 0;

  /// Human-readable, e.g. "values too high (expected <= 70)".
  virtual std::string Describe() const = 0;

  /// Adapter to the provenance module's functional interface.
  ErrorFn AsErrorFn() const {
    return [this](const std::vector<double>& v) { return Error(v); };
  }
};

using ErrorMetricPtr = std::shared_ptr<const ErrorMetric>;

/// The paper's `diff`: max(0, max_i(v_i - c)) — "values are too high;
/// they should be at most c".
ErrorMetricPtr TooHigh(double expected);

/// max(0, max_i(c - v_i)) — "values are too low".
ErrorMetricPtr TooLow(double expected);

/// max_i |v_i - c| — "values should equal c".
ErrorMetricPtr NotEqual(double expected);

/// sum_i max(0, v_i - c) — cumulative overshoot; smoother than TooHigh
/// for multi-group selections.
ErrorMetricPtr TotalAbove(double expected);

/// sum_i max(0, c - v_i) — cumulative undershoot.
ErrorMetricPtr TotalBelow(double expected);

/// Wraps an arbitrary user lambda (limitation 1 of prior systems: the
/// user's notion of error rarely matches a fixed criterion).
ErrorMetricPtr Custom(std::string description,
                      std::function<double(const std::vector<double>&)> fn);

/// Builds a metric from its wire name — "too_high", "too_low",
/// "not_equal", "total_above", or "total_below". This is the spelling
/// the Service's `metric` command accepts and snapshots persist.
Result<ErrorMetricPtr> MetricFromKind(const std::string& kind,
                                      double expected);

/// \brief A metric choice the dashboard offers (Figure 5's dynamically
/// generated error forms).
struct MetricSuggestion {
  std::string label;           // e.g. "values are too high"
  /// Instantiates the metric once the user supplies the expected value
  /// (the forms' single free parameter).
  std::function<ErrorMetricPtr(double expected)> make;
  /// Sensible default for the expected value, derived from the
  /// unselected groups.
  double default_expected = 0.0;
};

/// Suggests metrics for a selection over an aggregate of kind `kind`,
/// mirroring how the frontend "dynamically offers the user a choice of
/// predefined metric functions depending on the query results that are
/// highlighted". `selected` / `unselected` are the aggregate values in
/// and out of the selection (used to pick defaults, e.g. the median of
/// the unselected groups).
std::vector<MetricSuggestion> SuggestMetrics(
    AggKind kind, const std::vector<double>& selected,
    const std::vector<double>& unselected);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_ERROR_METRIC_H_
