#ifndef DBWIPES_CORE_MERGER_H_
#define DBWIPES_CORE_MERGER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dbwipes/core/predicate_ranker.h"

namespace dbwipes {

/// Options for the predicate-merging stage.
struct MergerOptions {
  /// Top predicates considered for pairwise merging.
  size_t max_inputs = 8;
  /// Merged predicates are kept only when their score is at least
  /// max(parents' scores) - tolerance.
  double score_tolerance = 0.02;
};

/// Attempts to generalize two conjunctive predicates into one:
/// both must constrain the same attribute set; numeric ranges widen to
/// the union's hull, equality/IN sets union, and any other clause kind
/// (!=, CONTAINS) must be identical on both sides. Returns nullopt
/// when the predicates are not mergeable.
///
/// This is the MERGER idea from Scorpion (the successor system this
/// demo paper previews): tree leaves fragment a single anomalous
/// region into slivers ("a0 in (2.0, 2.1]", "a0 in (2.1, 2.4]"), and
/// merging reassembles the human-sized description.
std::optional<Predicate> MergePredicates(const Predicate& a,
                                         const Predicate& b);

/// Combines partial rankings into one final ranking: stable-sorts by
/// score (ties keep input order), collapses entries whose removal sets
/// are equal — interchangeable repairs; only the best-scoring
/// description survives — and caps the result at `top_k`.
/// `set_hash`/`set_equal` describe entry i's matched tuple set in
/// whatever representation the caller scored with (a fused bitmap, a
/// vector of per-shard bitmap parts, a RowId list): hashes bucket, but
/// survival is decided by real set equality, so two distinct repairs
/// can never be collapsed by a hash collision.
///
/// This is the shard-merge contract's combiner: per-shard partial
/// scores arrive already folded into each entry, input order is
/// enumeration order, and the sort is stable — so the output is a
/// deterministic function of (scores, enumeration order) alone,
/// independent of shard count and thread count. Under an anytime cut
/// the caller passes the done-prefix only, and the combined ranking
/// equals a full run restricted to that prefix.
std::vector<RankedPredicate> CombinePartialRankings(
    std::vector<RankedPredicate>* scored,
    const std::function<uint64_t(size_t)>& set_hash,
    const std::function<bool(size_t, size_t)>& set_equal, size_t top_k);

/// Post-ranking pass: tries all pairs among the top ranked predicates,
/// scores every successful merge with the same ranker, and returns the
/// re-ranked union of originals and worthwhile merges. `shards` (may
/// be null) is forwarded to the re-ranking Rank call, so a sharded
/// explain's merge stage scores through the same warm per-shard
/// engines as the main ranking.
Result<std::vector<RankedPredicate>> MergeAndRerank(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<RankedPredicate>& ranked,
    const RankerOptions& ranker_options, const MergerOptions& options = {},
    const ShardPlan* shards = nullptr);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_MERGER_H_
