#ifndef DBWIPES_CORE_MERGER_H_
#define DBWIPES_CORE_MERGER_H_

#include <optional>
#include <vector>

#include "dbwipes/core/predicate_ranker.h"

namespace dbwipes {

/// Options for the predicate-merging stage.
struct MergerOptions {
  /// Top predicates considered for pairwise merging.
  size_t max_inputs = 8;
  /// Merged predicates are kept only when their score is at least
  /// max(parents' scores) - tolerance.
  double score_tolerance = 0.02;
};

/// Attempts to generalize two conjunctive predicates into one:
/// both must constrain the same attribute set; numeric ranges widen to
/// the union's hull, equality/IN sets union, and any other clause kind
/// (!=, CONTAINS) must be identical on both sides. Returns nullopt
/// when the predicates are not mergeable.
///
/// This is the MERGER idea from Scorpion (the successor system this
/// demo paper previews): tree leaves fragment a single anomalous
/// region into slivers ("a0 in (2.0, 2.1]", "a0 in (2.1, 2.4]"), and
/// merging reassembles the human-sized description.
std::optional<Predicate> MergePredicates(const Predicate& a,
                                         const Predicate& b);

/// Post-ranking pass: tries all pairs among the top ranked predicates,
/// scores every successful merge with the same ranker, and returns the
/// re-ranked union of originals and worthwhile merges.
Result<std::vector<RankedPredicate>> MergeAndRerank(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const std::vector<RowId>& suspects,
    const std::vector<RowId>& reference_positive, double per_group_baseline,
    const std::vector<RankedPredicate>& ranked,
    const RankerOptions& ranker_options, const MergerOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_CORE_MERGER_H_
