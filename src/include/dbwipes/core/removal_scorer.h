#ifndef DBWIPES_CORE_REMOVAL_SCORER_H_
#define DBWIPES_CORE_REMOVAL_SCORER_H_

#include <unordered_map>
#include <vector>

#include "dbwipes/common/bitmap.h"
#include "dbwipes/common/exec_context.h"
#include "dbwipes/core/error_metric.h"
#include "dbwipes/query/aggregate.h"
#include "dbwipes/query/executor.h"

namespace dbwipes {

/// \brief Delta-based evaluation of "what do the selected groups'
/// aggregates become if this tuple set is removed?".
///
/// The naive path (removal.h) rebuilds every selected group's
/// aggregate from its full lineage per candidate — O(|lineage|)
/// argument evaluations and a binary search per tuple, repeated for
/// every one of hundreds of predicates. This class does the lineage
/// walk ONCE per Rank call: it snapshots each selected group's
/// Aggregator state and caches each suspect tuple's (group, argument
/// value) contribution. Scoring a candidate then clones only the
/// affected groups' aggregator state and calls Remove(v) per matched
/// tuple — the exact-removal primitive Aggregator already provides —
/// for O(|matched| + |affected groups|) work with zero expression
/// evaluations.
///
/// Exactness: count/sum/avg removal is a float subtraction (bitwise
/// results can differ from a fresh fold in the last ulps);
/// min/max/median removal is exact (multiset-backed); stddev/var use
/// Welford removal (same tolerance class as sum). Group values for
/// *unaffected* groups are byte-identical to the from-scratch path by
/// construction (the snapshot folds lineage in the same order).
///
/// Thread safety: all scoring methods are const and allocate only
/// call-local scratch, so one scorer may be shared by any number of
/// concurrent scoring threads (the parallel ranking engine does
/// exactly that).
class RemovalScorer {
 public:
  /// Snapshots aggregator state for `selected_groups` of `result` and
  /// caches the per-suspect contributions. `suspects` must be the
  /// sorted union of the selected groups' lineage (F); tuples outside
  /// it cannot affect the selected groups and are ignored by the
  /// row-based scoring entry points. `ctx` lets the lineage walk stop
  /// cooperatively (checked per selected group); fault site
  /// "scorer/create".
  static Result<RemovalScorer> Create(
      const Table& table, const QueryResult& result,
      const std::vector<size_t>& selected_groups, size_t agg_index,
      const std::vector<RowId>& suspects,
      const ExecContext& ctx = ExecContext::None());

  size_t num_suspects() const { return entries_.size(); }
  size_t num_groups() const { return base_.size(); }

  /// Aggregate values of the selected groups after removing the
  /// suspects whose bit is set (bit i = suspects[i]); same value
  /// conventions as ValuesAfterRemoval (NaN = group lost its value).
  std::vector<double> ValuesAfterRemoval(const Bitmap& matched) const;

  /// Same, from a byte mask over suspect indices (the exhaustive
  /// baseline's native coverage representation).
  std::vector<double> ValuesAfterRemovalMask(
      const std::vector<char>& matched) const;

  /// Same, from an arbitrary RowId set (any order, duplicates not
  /// allowed); rows outside the suspect set are ignored — by
  /// definition they feed no selected group.
  std::vector<double> ValuesAfterRemovalRows(
      const std::vector<RowId>& rows) const;

  /// metric.Error over ValuesAfterRemoval(matched).
  double ErrorAfter(const ErrorMetric& metric, const Bitmap& matched) const;

  /// Per-group mean error (see PerGroupError) plus the raw metric in
  /// one pass, sharing the values vector.
  struct Errors {
    double raw = 0.0;        // eps over the group values
    double per_group = 0.0;  // mean of eps({v_g})
  };
  Errors ErrorsAfter(const ErrorMetric& metric, const Bitmap& matched) const;
  Errors ErrorsAfterRows(const ErrorMetric& metric,
                         const std::vector<RowId>& rows) const;

  /// ErrorsAfter over a partitioned coverage: parts[p] bit i marks
  /// suspect index offsets[p] + i. Parts must be disjoint slices of
  /// the suspect universe with ascending offsets (the sharded ranker's
  /// per-shard bitmaps), so walking them in order applies removals in
  /// exactly the ascending-suspect-index order ErrorsAfter uses —
  /// keeping the fold, and hence every last-ulp of the result,
  /// identical to the fused path.
  Errors ErrorsAfterParts(const ErrorMetric& metric,
                          const std::vector<Bitmap>& parts,
                          const std::vector<size_t>& offsets) const;

 private:
  /// One suspect tuple's cached contribution.
  struct Entry {
    /// Index into the selected-group arrays; kNoGroup when the tuple
    /// contributes nothing removable (NULL argument value, or not in
    /// any selected group's lineage).
    uint32_t group = kNoGroup;
    /// Value passed to Aggregator::Remove (the evaluated argument, or
    /// 0.0 for count(*)).
    double value = 0.0;
  };
  static constexpr uint32_t kNoGroup = 0xFFFFFFFFu;

  RemovalScorer() = default;

  /// Applies the matched entries to lazily cloned per-group state and
  /// reads out the values.
  template <typename ForEachMatched>
  std::vector<double> ValuesImpl(const ForEachMatched& for_each) const;

  std::vector<AggregatorPtr> base_;   // snapshot per selected group
  std::vector<double> base_values_;   // base_[g]->Value(), cached
  std::vector<Entry> entries_;        // per suspect index
  std::unordered_map<RowId, uint32_t> suspect_index_;  // row -> index
};

}  // namespace dbwipes

#endif  // DBWIPES_CORE_REMOVAL_SCORER_H_
