#ifndef DBWIPES_CORE_DBWIPES_H_
#define DBWIPES_CORE_DBWIPES_H_

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/core/dataset_enumerator.h"
#include "dbwipes/core/merger.h"
#include "dbwipes/core/predicate_enumerator.h"
#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/profile.h"
#include "dbwipes/query/database.h"

namespace dbwipes {

/// \brief One ranked-provenance request: everything the frontend
/// collects before clicking "debug!" (paper Figure 1, top row).
struct ExplanationRequest {
  /// S: indices of suspicious result rows.
  std::vector<size_t> selected_groups;
  /// D': example suspicious input tuples (base-table RowIds). May be
  /// empty; the influence ranking then drives the search alone.
  std::vector<RowId> suspicious_inputs;
  /// eps.
  ErrorMetricPtr metric;
  /// Which aggregate of the query the metric reads (0-based).
  size_t agg_index = 0;
  /// Attributes predicates may mention; empty = every table column
  /// except the aggregate's own input column(s).
  std::vector<std::string> explain_columns;
};

struct ExplainOptions {
  DatasetEnumeratorOptions enumerator;
  PredicateEnumeratorOptions predicates =
      PredicateEnumeratorOptions::Defaults();
  RankerOptions ranker;
  /// Influence mode (see InfluenceOptions::per_group).
  bool per_group_influence = true;
  /// Scorpion-style post-pass: try to merge top predicates into more
  /// general descriptions and keep merges that score as well.
  bool merge_predicates = true;
  MergerOptions merger;
};

/// \brief Full output of the backend pipeline.
struct Explanation {
  /// Ranked predicates, best first (Figure 6's list).
  std::vector<RankedPredicate> predicates;
  /// Anytime outcome: true when the run was wound down early by a
  /// deadline, cancellation, or resource budget. The predicates are
  /// then the best ranking over a deterministic prefix of the
  /// candidate list (possibly empty when the stop landed before the
  /// ranking stage) — degraded, never wrong.
  bool partial = false;
  /// Why the run stopped early ("" when complete).
  std::string partial_reason;
  /// Candidate predicates the ranker considered / was given. Equal
  /// when the ranking stage ran to completion.
  size_t ranked_considered = 0;
  size_t total_enumerated = 0;
  /// Stage artifacts for inspection/ablation.
  PreprocessResult preprocess;
  std::vector<CandidateDataset> candidates;
  std::vector<RowId> cleaned_dprime;
  /// Wall-clock milliseconds per backend stage.
  double preprocess_ms = 0.0;
  double enumerate_ms = 0.0;
  double predicates_ms = 0.0;
  double rank_ms = 0.0;

  /// Telemetry summary (always collected; see profile.h). The stage
  /// clocks above are mirrored into it together with work counts,
  /// MatchEngine cache behavior, pool utilization, and anytime events.
  ExplainProfile profile;

  double total_ms() const {
    return preprocess_ms + enumerate_ms + predicates_ms + rank_ms;
  }
};

/// \brief The DBWipes backend facade: run aggregate queries, explain
/// suspicious results as ranked predicates, clean by re-querying with
/// a predicate's complement.
class DBWipes {
 public:
  explicit DBWipes(std::shared_ptr<Database> db, ExplainOptions options = {})
      : db_(std::move(db)), options_(std::move(options)) {}

  const Database& database() const { return *db_; }

  /// Parses and executes SQL with lineage capture.
  Result<QueryResult> Query(const std::string& sql) const {
    return db_->ExecuteSql(sql);
  }

  /// Runs the four backend stages (Preprocessor, Dataset Enumerator,
  /// Predicate Enumerator, Predicate Ranker) on a query result.
  ///
  /// `ctx` makes the run anytime: on cancellation, deadline expiry, or
  /// budget exhaustion the pipeline stops cooperatively and returns a
  /// *partial* Explanation (partial=true + reason) holding whatever
  /// completed deterministically, instead of an error. Real failures
  /// (bad requests, injected faults) still surface as error Status.
  Result<Explanation> Explain(
      const QueryResult& result, const ExplanationRequest& request,
      const ExecContext& ctx = ExecContext::None()) const;

  /// The cleaning interaction: re-executes `result.query` with
  /// `AND NOT predicate` appended to its filter.
  Result<QueryResult> Clean(const QueryResult& result,
                            const Predicate& predicate) const;

 private:
  std::shared_ptr<Database> db_;
  ExplainOptions options_;
};

/// Default explanation attributes for a query: every table column
/// except the columns the scored aggregate reads (predicates over the
/// measure itself are usually the user's intent only when they list
/// the column explicitly).
std::vector<std::string> DefaultExplainColumns(const Table& table,
                                               const AggregateQuery& query,
                                               size_t agg_index);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_DBWIPES_H_
