#ifndef DBWIPES_CORE_BASELINES_H_
#define DBWIPES_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "dbwipes/core/predicate_ranker.h"
#include "dbwipes/core/preprocessor.h"
#include "dbwipes/learn/feature.h"

namespace dbwipes {

/// \brief Baseline explainers DBWipes is compared against in the
/// benchmark harness.
///
/// The paper motivates DBWipes by the failure modes of these exact
/// approaches: fine-grained provenance returns everything ("very low
/// precision"), influence-only rankings return tuples without a
/// description, and exhaustive predicate search is exponential.

/// Classic fine-grained provenance: the "explanation" is all of F.
/// Returned as a tuple set (no predicate exists).
struct TupleSetExplanation {
  std::vector<RowId> rows;
  std::string source;
};

TupleSetExplanation NaiveProvenance(const PreprocessResult& preprocess);

/// Influence-ranked provenance without descriptions: the top-k tuples
/// by leave-one-out influence.
TupleSetExplanation InfluenceTopK(const PreprocessResult& preprocess,
                                  size_t k);

struct ExhaustiveSearchOptions {
  /// Conjunctions up to this many clauses are enumerated.
  size_t max_clauses = 2;
  /// Candidate thresholds per numeric attribute.
  size_t max_numeric_thresholds = 8;
  size_t max_categories_per_feature = 32;
  /// Minimum rows of F a predicate must match.
  size_t min_coverage = 2;
  /// Ranked predicates returned.
  size_t top_k = 10;
};

/// Exhaustively enumerates conjunctive predicates over the feature
/// attributes (the same atomic-condition space subgroup discovery
/// searches heuristically) and scores every one by error improvement.
/// Exponential in max_clauses — the E2 benchmark demonstrates the
/// blow-up that motivates DBWipes' staged search.
///
/// Also reports how many predicates were evaluated via
/// `num_evaluated`.
Result<std::vector<RankedPredicate>> ExhaustivePredicateSearch(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorMetric& metric,
    size_t agg_index, const FeatureView& view,
    const PreprocessResult& preprocess,
    const ExhaustiveSearchOptions& options, size_t* num_evaluated = nullptr);

}  // namespace dbwipes

#endif  // DBWIPES_CORE_BASELINES_H_
