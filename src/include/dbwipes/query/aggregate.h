#ifndef DBWIPES_QUERY_AGGREGATE_H_
#define DBWIPES_QUERY_AGGREGATE_H_

#include <map>
#include <memory>
#include <set>

#include "dbwipes/common/stats.h"
#include "dbwipes/expr/ast.h"

namespace dbwipes {

/// \brief Incremental aggregate state with exact removal.
///
/// Removal is the primitive behind DBWipes' leave-one-out influence
/// analysis (Preprocessor, paper §2.2.2): the influence of every tuple
/// in a group is computed by Remove(v) / read / Add(v) in O(1) or
/// O(log n) instead of recomputing the aggregate from scratch.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Folds in one non-null input value.
  virtual void Add(double v) = 0;
  /// Removes a previously added value (exact inverse of Add).
  virtual void Remove(double v) = 0;
  /// Current aggregate value. Empty-state conventions: count/sum = 0,
  /// others = NaN (rendered as NULL by the executor).
  virtual double Value() const = 0;
  /// Number of values currently folded in.
  virtual size_t Count() const = 0;
  virtual std::unique_ptr<Aggregator> Clone() const = 0;
};

using AggregatorPtr = std::unique_ptr<Aggregator>;

/// Creates the aggregator implementing `kind`.
AggregatorPtr MakeAggregator(AggKind kind);

/// Output type of an aggregate: count is int64, others double.
DataType AggOutputType(AggKind kind);

// --- Implementations (exposed for direct use by influence analysis
// and tests) ---

class CountAggregator final : public Aggregator {
 public:
  void Add(double) override { ++n_; }
  void Remove(double) override { --n_; }
  double Value() const override { return static_cast<double>(n_); }
  size_t Count() const override { return n_; }
  AggregatorPtr Clone() const override {
    return std::make_unique<CountAggregator>(*this);
  }

 private:
  size_t n_ = 0;
};

class SumAggregator final : public Aggregator {
 public:
  void Add(double v) override {
    ++n_;
    sum_ += v;
  }
  void Remove(double v) override {
    --n_;
    sum_ -= v;
  }
  double Value() const override { return sum_; }
  size_t Count() const override { return n_; }
  AggregatorPtr Clone() const override {
    return std::make_unique<SumAggregator>(*this);
  }

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
};

class AvgAggregator final : public Aggregator {
 public:
  void Add(double v) override {
    ++n_;
    sum_ += v;
  }
  void Remove(double v) override {
    --n_;
    sum_ -= v;
  }
  double Value() const override;
  size_t Count() const override { return n_; }
  AggregatorPtr Clone() const override {
    return std::make_unique<AvgAggregator>(*this);
  }

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
};

/// Min/max keep a multiset of values so Remove works in O(log n).
class MinAggregator final : public Aggregator {
 public:
  void Add(double v) override { values_[v]++; }
  void Remove(double v) override;
  double Value() const override;
  size_t Count() const override;
  AggregatorPtr Clone() const override {
    return std::make_unique<MinAggregator>(*this);
  }

 private:
  std::map<double, size_t> values_;
};

class MaxAggregator final : public Aggregator {
 public:
  void Add(double v) override { values_[v]++; }
  void Remove(double v) override;
  double Value() const override;
  size_t Count() const override;
  AggregatorPtr Clone() const override {
    return std::make_unique<MaxAggregator>(*this);
  }

 private:
  std::map<double, size_t> values_;
};

/// Sample standard deviation (matches PostgreSQL stddev).
class StddevAggregator final : public Aggregator {
 public:
  void Add(double v) override { stats_.Add(v); }
  void Remove(double v) override { stats_.Remove(v); }
  double Value() const override;
  size_t Count() const override { return stats_.count(); }
  AggregatorPtr Clone() const override {
    return std::make_unique<StddevAggregator>(*this);
  }

 private:
  OnlineStats stats_;
};

/// Exact median with O(log n) insert/remove: the values are kept split
/// into a lower and an upper multiset balanced so that
/// |low| == |high| or |low| == |high| + 1; the median reads from the
/// boundary.
class MedianAggregator final : public Aggregator {
 public:
  void Add(double v) override;
  void Remove(double v) override;
  double Value() const override;
  size_t Count() const override { return low_.size() + high_.size(); }
  AggregatorPtr Clone() const override {
    return std::make_unique<MedianAggregator>(*this);
  }

 private:
  void Rebalance();

  std::multiset<double> low_;   // max at *low_.rbegin()
  std::multiset<double> high_;  // min at *high_.begin()
};

/// Sample variance (matches PostgreSQL variance).
class VarAggregator final : public Aggregator {
 public:
  void Add(double v) override { stats_.Add(v); }
  void Remove(double v) override { stats_.Remove(v); }
  double Value() const override;
  size_t Count() const override { return stats_.count(); }
  AggregatorPtr Clone() const override {
    return std::make_unique<VarAggregator>(*this);
  }

 private:
  OnlineStats stats_;
};

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_AGGREGATE_H_
