#ifndef DBWIPES_QUERY_DATABASE_H_
#define DBWIPES_QUERY_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/query/executor.h"

namespace dbwipes {

/// \brief Named-table catalog plus a SQL entry point.
///
/// The role PostgreSQL plays in the paper's deployment: hold the
/// imported datasets and execute the dashboard's aggregate queries.
class Database {
 public:
  /// Registers (or replaces) a table under its own name.
  void RegisterTable(std::shared_ptr<const Table> table);
  /// Registers under an explicit name.
  void RegisterTable(const std::string& name,
                     std::shared_ptr<const Table> table);

  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Parses and runs a SQL aggregate query against the catalog.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 const ExecOptions& options = {}) const;

  /// Runs an already-parsed query.
  Result<QueryResult> Execute(const AggregateQuery& query,
                              const ExecOptions& options = {}) const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_DATABASE_H_
