#ifndef DBWIPES_QUERY_DATABASE_H_
#define DBWIPES_QUERY_DATABASE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/query/executor.h"
#include "dbwipes/storage/shard.h"

namespace dbwipes {

/// \brief Named-table catalog plus a SQL entry point.
///
/// The role PostgreSQL plays in the paper's deployment: hold the
/// imported datasets and execute the dashboard's aggregate queries.
///
/// A table may additionally be *sharded*: RegisterShardSet binds the
/// name to a ShardSet whose fused view doubles as the catalog entry,
/// so plain SQL keeps working while shard-aware consumers (the explain
/// pipeline, the service's append path) fetch the set and take its
/// read lease. The catalog itself is guarded by an internal lock —
/// the service mutates it (shard/append commands) while sessions read
/// it concurrently.
class Database {
 public:
  /// Registers (or replaces) a table under its own name.
  void RegisterTable(std::shared_ptr<const Table> table);
  /// Registers under an explicit name.
  void RegisterTable(const std::string& name,
                     std::shared_ptr<const Table> table);

  /// Binds `name` to a shard set; the set's fused view becomes the
  /// catalog's table for the name (replacing any plain table).
  void RegisterShardSet(const std::string& name,
                        std::shared_ptr<ShardSet> set);

  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;
  /// The shard set bound to `name`, or nullptr when the name is
  /// unsharded or unknown.
  std::shared_ptr<ShardSet> GetShardSet(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  /// Names currently bound to shard sets, sorted.
  std::vector<std::string> ShardedNames() const;

  /// Parses and runs a SQL aggregate query against the catalog.
  Result<QueryResult> ExecuteSql(const std::string& sql,
                                 const ExecOptions& options = {}) const;

  /// Runs an already-parsed query. When the target is sharded, the
  /// whole execution runs under the set's read lease so a concurrent
  /// Append cannot grow the fused view mid-scan.
  Result<QueryResult> Execute(const AggregateQuery& query,
                              const ExecOptions& options = {}) const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<ShardSet>> shard_sets_;
};

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_DATABASE_H_
