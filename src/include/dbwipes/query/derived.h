#ifndef DBWIPES_QUERY_DERIVED_H_
#define DBWIPES_QUERY_DERIVED_H_

#include <memory>
#include <string>

#include "dbwipes/expr/scalar_expr.h"

namespace dbwipes {

/// Returns a copy of `table` with one extra column `name` holding
/// `expr` evaluated per row (NULL where the expression is NULL). The
/// column type is int64 when every produced value is integral, double
/// otherwise.
///
/// This is how ad-hoc bucketings are prepared for GROUP BY — e.g. the
/// paper's 30-minute windows: WithDerivedColumn(t, "window",
/// Bucket(Col("minute"), 30)). The new column participates in
/// lineage, predicates, and explanations like any stored attribute.
Result<std::shared_ptr<Table>> WithDerivedColumn(const Table& table,
                                                 const std::string& name,
                                                 const ScalarExprPtr& expr);

/// floor(input / width): the bucketing expression for numeric columns
/// (time windows, price bands). width must be > 0.
ScalarExprPtr Bucket(ScalarExprPtr input, double width);

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_DERIVED_H_
