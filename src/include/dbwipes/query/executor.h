#ifndef DBWIPES_QUERY_EXECUTOR_H_
#define DBWIPES_QUERY_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "dbwipes/expr/ast.h"
#include "dbwipes/storage/table.h"

namespace dbwipes {

/// \brief Result of one aggregate query, with fine-grained lineage.
///
/// Each result row corresponds to one group. `lineage[i]` holds the
/// base-table RowIds that contributed to group i (i.e. survived the
/// WHERE filter and hashed into that group) — the fine-grained
/// provenance that backward tracing and the DBWipes Preprocessor
/// consume.
struct QueryResult {
  /// The executed query (after any cleaning rewrites).
  AggregateQuery query;
  /// Result rows: group-by columns first, then one column per
  /// aggregate (count -> int64, others -> double; NULL when the group
  /// had no valid input, e.g. stddev of one value).
  std::shared_ptr<Table> rows;
  /// lineage[i] = sorted base-table RowIds feeding result row i.
  std::vector<std::vector<RowId>> lineage;

  size_t num_groups() const { return rows ? rows->num_rows() : 0; }

  /// Index of aggregate `output_name` within the result schema, or
  /// NotFound. (Group-by columns come first.)
  Result<size_t> AggColumnIndex(const std::string& output_name) const;

  /// Numeric value of aggregate column `agg_idx` (0-based among the
  /// aggregates) for group `group`; NaN encodes NULL.
  double AggValue(size_t group, size_t agg_idx) const;

  /// Group-key values for result row `group`.
  std::vector<Value> GroupKey(size_t group) const;
};

/// \brief Executes single-block aggregate queries over one table.
///
/// Deterministic output: groups are sorted ascending by key. Lineage
/// capture can be disabled for benchmarking the raw engine.
struct ExecOptions {
  bool capture_lineage = true;
};

/// Runs `query` against `table` (which must be the query's FROM
/// table). Validates the query against the table schema first.
Result<QueryResult> ExecuteQuery(const AggregateQuery& query,
                                 const Table& table,
                                 const ExecOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_EXECUTOR_H_
