#ifndef DBWIPES_QUERY_INCREMENTAL_H_
#define DBWIPES_QUERY_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "dbwipes/expr/predicate.h"
#include "dbwipes/query/aggregate.h"
#include "dbwipes/query/executor.h"

namespace dbwipes {

/// \brief Per-(group, aggregate) delta state for repeated
/// IncrementalClean calls against the same result.
///
/// Built once (one lineage walk per aggregate), it snapshots every
/// group's Aggregator state plus each lineage tuple's evaluated
/// argument value. A subsequent IncrementalClean then updates an
/// affected group by cloning its snapshot and calling Remove(v) per
/// matched tuple — no expression evaluation at all — which is what
/// makes a "click through the ranked predicates" loop O(|matched|)
/// per click instead of O(|lineage|).
class CleanSnapshot {
 public:
  /// Walks every group's lineage once per aggregate. `result` must
  /// have been executed with lineage capture against `table`.
  static Result<CleanSnapshot> Build(const Table& table,
                                     const QueryResult& result);

  size_t num_groups() const { return groups_.size(); }

 private:
  friend Result<QueryResult> IncrementalClean(const Table&,
                                              const QueryResult&,
                                              const Predicate&,
                                              const CleanSnapshot*);

  struct GroupState {
    /// One snapshot per aggregate of the query.
    std::vector<AggregatorPtr> aggs;
    /// values[a][p] = evaluated argument of aggregate a at lineage
    /// position p; meaningful only where contributes[a][p] != 0 (NULL
    /// arguments contribute nothing, so their removal is a no-op).
    std::vector<std::vector<double>> values;
    std::vector<std::vector<uint8_t>> contributes;
  };
  std::vector<GroupState> groups_;
};

/// Applies a cleaning predicate to an existing result *incrementally*:
/// tuples matching `predicate` are deleted from the groups they fed,
/// untouched groups are copied verbatim, and groups that lose every
/// tuple disappear — exactly what re-executing
/// `query AND NOT predicate` would produce (a law checked by tests),
/// but without re-evaluating the WHERE clause, re-hashing group keys,
/// or re-sorting.
///
/// This is the engine behind a responsive "click a predicate" loop:
/// the demo re-ran the query against PostgreSQL on every click; with
/// captured lineage the update is proportional to the affected groups.
/// Requires `result` to have been executed with lineage capture.
///
/// The returned result's `query` carries the rewrite
/// (`WithCleaningPredicate`), so downstream display and further
/// cleaning compose as usual.
///
/// When `snapshot` (built from the same table/result pair) is
/// supplied, affected groups are updated by aggregator-state deltas —
/// cached values and Aggregator::Remove — instead of re-evaluating
/// aggregate arguments over the survivors; results are identical up to
/// floating-point removal error (count/min/max/median are exact,
/// sum/avg/stddev within ulps). Passing nullptr keeps the
/// rebuild-from-survivors path.
Result<QueryResult> IncrementalClean(const Table& table,
                                     const QueryResult& result,
                                     const Predicate& predicate,
                                     const CleanSnapshot* snapshot);

Result<QueryResult> IncrementalClean(const Table& table,
                                     const QueryResult& result,
                                     const Predicate& predicate);

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_INCREMENTAL_H_
