#ifndef DBWIPES_QUERY_INCREMENTAL_H_
#define DBWIPES_QUERY_INCREMENTAL_H_

#include "dbwipes/expr/predicate.h"
#include "dbwipes/query/executor.h"

namespace dbwipes {

/// Applies a cleaning predicate to an existing result *incrementally*:
/// tuples matching `predicate` are deleted from the groups they fed,
/// untouched groups are copied verbatim, and groups that lose every
/// tuple disappear — exactly what re-executing
/// `query AND NOT predicate` would produce (a law checked by tests),
/// but without re-evaluating the WHERE clause, re-hashing group keys,
/// or re-sorting.
///
/// This is the engine behind a responsive "click a predicate" loop:
/// the demo re-ran the query against PostgreSQL on every click; with
/// captured lineage the update is proportional to the affected groups.
/// Requires `result` to have been executed with lineage capture.
///
/// The returned result's `query` carries the rewrite
/// (`WithCleaningPredicate`), so downstream display and further
/// cleaning compose as usual.
Result<QueryResult> IncrementalClean(const Table& table,
                                     const QueryResult& result,
                                     const Predicate& predicate);

}  // namespace dbwipes

#endif  // DBWIPES_QUERY_INCREMENTAL_H_
