#ifndef DBWIPES_COMMON_TELEMETRY_H_
#define DBWIPES_COMMON_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dbwipes {

/// \brief Request-identity plumbing: one monotonically-assigned id per
/// externally-visible request, stamped into every trace span, log
/// line, ExplainProfile, WAL frame, and JSON response, so a single
/// grep for `rid` correlates one request end-to-end across the whole
/// process (and across a crash, via the WAL frame).
///
/// The id rides in a thread-local: the Service assigns it at its entry
/// points (Execute/Submit) and scopes it with RequestScope, so every
/// layer below — tracer, logger, profile, WAL — picks it up without
/// threading a context parameter through a dozen signatures. Work
/// handed to pool threads does not inherit it (the per-stage spans the
/// correlation story needs are all recorded on the request thread).
/// Id 0 means "no request in scope" and is never assigned.

/// Next process-wide request id (first call returns 1).
uint64_t NextRequestId();

/// The request id bound to the calling thread, or 0 outside a request.
uint64_t CurrentRequestId();

/// \brief RAII binding of a request id to the calling thread. Nests:
/// the previous binding is restored on destruction (WAL replay runs
/// commands under their original frame's rid inside the recovery
/// request's scope).
class RequestScope {
 public:
  explicit RequestScope(uint64_t rid);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  uint64_t prev_;
};

/// \brief Fixed-size time series of sampled metric values — the "when
/// did p99 start climbing" store behind the Service `history` command.
///
/// One ring per series name, each holding the latest `points_per_series`
/// (t_ms, value) samples; memory is therefore bounded at
/// series_count * points_per_series * sizeof(Point) regardless of
/// uptime. Writes come from one sampler thread at a fixed cadence
/// (~10 Hz) and reads from occasional `history` commands, so a single
/// short-critical-section mutex is cheap: the hot request path never
/// touches this class at all.
class TelemetryHistory {
 public:
  struct Point {
    double t_ms = 0.0;  // MonotonicMillis timestamp of the sample
    double value = 0.0;
  };

  explicit TelemetryHistory(size_t points_per_series = 600);

  /// Appends one sample, evicting the oldest when the ring is full.
  /// Creates the series on first use.
  void Record(const std::string& series, double t_ms, double value);

  /// Appends one sample per (series, value) pair under a single lock
  /// acquisition, so a reader never observes a half-written sampler
  /// tick (some series advanced, others not yet) — and a tick costs
  /// one lock round-trip instead of one per series.
  void RecordBatch(double t_ms,
                   const std::vector<std::pair<std::string, double>>& samples);

  /// Registered series names, sorted.
  std::vector<std::string> Names() const;

  /// Samples with t_ms >= now_ms - window_ms, oldest first. window_ms
  /// <= 0 returns the whole ring. Unknown series -> empty.
  std::vector<Point> Query(const std::string& series, double window_ms,
                           double now_ms) const;

  size_t points_per_series() const { return capacity_; }

  /// Upper bound on resident bytes: ring storage is preallocated at
  /// series creation, so this is also the steady-state footprint.
  size_t MemoryBytes() const;

 private:
  struct Ring {
    std::vector<Point> points;  // capacity_ slots, preallocated
    size_t next = 0;            // slot the next sample lands in
    size_t size = 0;            // valid samples (<= capacity_)
  };

  Ring* FindOrCreateLocked(const std::string& series);
  void RecordLocked(const std::string& series, double t_ms, double value);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Ring>>> series_;
};

/// \brief WAL fsync stall probe: the commit leader publishes the
/// monotonic-ms timestamp when it enters fsync and clears it when the
/// fsync returns; the Service watchdog reads it to flag an fsync stuck
/// past its threshold (disk gone away, saturated device). 0 = no fsync
/// in flight. Only ever one commit-leader fsync runs at a time, so a
/// single process-wide slot suffices.
void SetFsyncInFlight(double start_ms);
void ClearFsyncInFlight();
double FsyncInFlightSinceMs();

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_TELEMETRY_H_
