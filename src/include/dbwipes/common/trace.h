#ifndef DBWIPES_COMMON_TRACE_H_
#define DBWIPES_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dbwipes/common/status.h"

namespace dbwipes {

/// Small dense id for the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Stable for the thread's lifetime; used
/// to correlate log lines with trace spans.
size_t CurrentThreadId();

/// Milliseconds since the process-wide steady-clock epoch (the first
/// call wins the epoch). Monotonic; shared by the tracer and the log
/// prefix so the two timelines line up.
double MonotonicMillis();

/// \brief Process-wide span recorder with per-thread buffers and a
/// Chrome trace_event exporter.
///
/// Discipline mirrors the PR 3 FaultInjector: production pays a single
/// relaxed-load branch per DBW_TRACE_SPAN while disabled, and nothing
/// else. When enabled, each thread appends completed spans to its own
/// chunked buffer — the hot path is one relaxed load, an in-place
/// event write, and one release store; the only lock is taken when a
/// buffer grows by a whole chunk (every kChunkEvents spans). Readers
/// (ExportJson) acquire each buffer's published count and walk the
/// stable heap chunks, so concurrent export during tracing is safe and
/// tsan-clean. Clear() requires no concurrent writers (quiesce first).
///
/// ExportJson emits Chrome trace_event JSON — an object with a
/// "traceEvents" array of complete ("X") and instant ("i") events —
/// loadable directly in chrome://tracing or Perfetto. Spans recorded
/// via the RAII TraceSpan are strictly nested per thread by
/// construction (stack discipline), which those viewers require.
class Tracer {
 public:
  /// One recorded event. `dur_us < 0` marks an instant event.
  struct Event {
    const char* name = "";  // static-storage string (span/site name)
    double ts_us = 0.0;     // steady-clock microseconds since epoch
    double dur_us = -1.0;
    size_t tid = 0;
    /// Pre-rendered inner JSON for the Chrome "args" object, e.g.
    /// "\"rows\":123,\"stage\":\"rank\"". Empty = no args.
    std::string args;
  };

  static Tracer& Global();

  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends `e` (tid is overwritten with the caller's) to the calling
  /// thread's buffer. Callers normally use TraceSpan / RecordInstant.
  void Record(Event e);

  /// Instant event ("i" phase, thread scope) at now.
  void RecordInstant(const char* name, std::string args = "");

  /// All recorded events across threads as Chrome trace_event JSON.
  std::string ExportJson() const;

  /// ExportJson written to `path` (overwrites).
  Status WriteJson(const std::string& path) const;

  /// Total events currently recorded.
  size_t num_events() const;

  /// Drops every recorded event. Callers must ensure no thread is
  /// concurrently recording (disable + drain in-flight work first).
  void Clear();

  static constexpr size_t kChunkEvents = 1024;

 private:
  struct Chunk {
    std::array<Event, kChunkEvents> events;
  };
  struct Buffer {
    size_t tid = 0;
    /// Events [0, count) are fully written (release/acquire pairing).
    std::atomic<size_t> count{0};
    /// Guards growth of `chunks` only; chunk storage never moves.
    mutable std::mutex grow_mu;
    std::vector<std::unique_ptr<Chunk>> chunks;
  };

  Buffer* LocalBuffer();

  mutable std::mutex mu_;  // guards buffers_ registration
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<bool> enabled_{false};
};

/// \brief RAII span: captures the start on construction (when tracing
/// is enabled) and records a complete event on destruction. Scope
/// nesting gives strict per-thread span nesting in the export.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::Global().enabled()) Start(name);
  }
  ~TraceSpan() {
    if (active_) Finish();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

  /// Attaches a key/value to the span's Chrome "args" object. No-op
  /// while inactive, so annotation sites cost one branch when disabled.
  void Annotate(const char* key, const std::string& value);
  void Annotate(const char* key, double value);
  void Annotate(const char* key, size_t value);

 private:
  void Start(const char* name);
  void Finish();

  bool active_ = false;
  const char* name_ = "";
  double start_us_ = 0.0;
  std::string args_;
};

}  // namespace dbwipes

#define DBW_TRACE_CONCAT_INNER(a, b) a##b
#define DBW_TRACE_CONCAT(a, b) DBW_TRACE_CONCAT_INNER(a, b)

/// Scoped pipeline span: one relaxed atomic load when tracing is off.
#define DBW_TRACE_SPAN(name) \
  ::dbwipes::TraceSpan DBW_TRACE_CONCAT(_dbw_trace_span_, __LINE__)(name)

#endif  // DBWIPES_COMMON_TRACE_H_
