#ifndef DBWIPES_COMMON_RETRY_H_
#define DBWIPES_COMMON_RETRY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>

#include "dbwipes/common/result.h"
#include "dbwipes/common/status.h"

namespace dbwipes {

/// \brief Retry taxonomy: is an error worth trying again?
///
/// `kTransient` errors describe a condition that may clear on its own
/// — an I/O hiccup, an internal runtime failure (the injected-fault
/// family), a missed deadline, or exhausted resources (including the
/// service's load shedding). `kPermanent` errors describe the request
/// itself — bad arguments, parse errors, missing tables — and no
/// number of retries will change the answer. Cancellation is
/// deliberately permanent: the client asked the work to stop, so
/// retrying would override user intent.
enum class ErrorClass { kPermanent, kTransient };

/// Classifies a Status. OK classifies as permanent (nothing to retry).
ErrorClass ClassifyStatus(const Status& status);

/// True when retrying could plausibly succeed.
inline bool IsTransient(const Status& status) {
  return ClassifyStatus(status) == ErrorClass::kTransient;
}

/// "permanent" / "transient" — used in error payloads and docs.
const char* ErrorClassToString(ErrorClass c);

/// \brief Deterministic exponential backoff.
///
/// The backoff schedule is a pure function of the attempt number
/// (initial * multiplier^(attempt-1), capped at max) — no jitter, so
/// tests can assert the exact sleep sequence. The `sleep_fn` seam lets
/// tests capture backoffs instead of sleeping; when unset the policy
/// really sleeps.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  size_t max_attempts = 3;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Test seam: called with the backoff instead of sleeping. Null =
  /// std::this_thread::sleep_for.
  std::function<void(double ms)> sleep_fn;

  /// Backoff applied after failed attempt `attempt` (1-based).
  double BackoffMs(size_t attempt) const;

  /// Sleeps (or calls sleep_fn with) BackoffMs(attempt).
  void Backoff(size_t attempt) const;
};

namespace retry_internal {
inline Status StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace retry_internal

/// Runs `fn` until it succeeds, fails permanently, or exhausts
/// `policy.max_attempts`; only transient failures are retried, with
/// the policy's backoff between attempts. Returns the last outcome.
/// `attempts_out` (optional) receives the number of attempts made —
/// K transient failures before a success yield K+1.
///
/// `fn` may return Status or Result<T>; the call returns the same
/// type.
template <typename Fn>
auto RetryTransient(const RetryPolicy& policy, Fn&& fn,
                    size_t* attempts_out = nullptr) -> decltype(fn()) {
  const size_t max_attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  size_t attempt = 0;
  while (true) {
    ++attempt;
    auto outcome = fn();
    if (attempts_out != nullptr) *attempts_out = attempt;
    if (outcome.ok()) return outcome;
    const Status st = retry_internal::StatusOf(outcome);
    if (!IsTransient(st) || attempt >= max_attempts) return outcome;
    policy.Backoff(attempt);
  }
}

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_RETRY_H_
