#ifndef DBWIPES_COMMON_RETRY_H_
#define DBWIPES_COMMON_RETRY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <utility>

#include "dbwipes/common/result.h"
#include "dbwipes/common/status.h"

namespace dbwipes {

/// \brief Retry taxonomy: is an error worth trying again?
///
/// `kTransient` errors describe a condition that may clear on its own
/// — an I/O hiccup, an internal runtime failure (the injected-fault
/// family), a missed deadline, or exhausted resources (including the
/// service's load shedding). `kPermanent` errors describe the request
/// itself — bad arguments, parse errors, missing tables — and no
/// number of retries will change the answer. Cancellation is
/// deliberately permanent: the client asked the work to stop, so
/// retrying would override user intent.
enum class ErrorClass { kPermanent, kTransient };

/// Classifies a Status. OK classifies as permanent (nothing to retry).
ErrorClass ClassifyStatus(const Status& status);

/// True when retrying could plausibly succeed.
inline bool IsTransient(const Status& status) {
  return ClassifyStatus(status) == ErrorClass::kTransient;
}

/// "permanent" / "transient" — used in error payloads and docs.
const char* ErrorClassToString(ErrorClass c);

/// \brief Exponential backoff, deterministic by default, with opt-in
/// decorrelated jitter.
///
/// With `jitter` off the schedule is a pure function of the attempt
/// number (initial * multiplier^(attempt-1), capped at max), so tests
/// can assert the exact sleep sequence. With `jitter` on, each sleep
/// is drawn uniformly from [initial, prev*3] (capped at max) — the
/// "decorrelated jitter" scheme — so a thundering herd of clients that
/// failed together does NOT retry together: synchronized retries
/// against an overloaded server stay desynchronized across rounds.
/// The `sleep_fn` seam lets tests capture backoffs instead of
/// sleeping; `rand_fn` stubs the jitter draw.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  size_t max_attempts = 3;
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Decorrelated jitter. Off by default: existing callers (and tests
  /// asserting exact schedules) keep the deterministic ladder.
  bool jitter = false;
  /// Test seam: called with the backoff instead of sleeping. Null =
  /// std::this_thread::sleep_for.
  std::function<void(double ms)> sleep_fn;
  /// Test seam: uniform draw from [0,1) for the jitter. Null = a
  /// thread-local PRNG.
  std::function<double()> rand_fn;

  /// Deterministic backoff after failed attempt `attempt` (1-based);
  /// ignores `jitter` (use BackoffSequence for the jittered walk).
  double BackoffMs(size_t attempt) const;

  /// Sleeps (or calls sleep_fn with) BackoffMs(attempt).
  void Backoff(size_t attempt) const;
};

/// \brief The stateful backoff walk for one retry loop.
///
/// Yields the policy's deterministic ladder, or the decorrelated
/// jitter walk when `policy.jitter` is set. A server-supplied
/// retry-after hint (ObserveRetryAfterMs) floors the next sleep: the
/// server knows when capacity returns better than any client-side
/// curve, but jitter on top still spreads the stampede.
class BackoffSequence {
 public:
  explicit BackoffSequence(const RetryPolicy& policy);

  /// The next sleep duration, advancing the walk.
  double NextMs();

  /// Sleeps (or calls policy.sleep_fn with) NextMs().
  void Backoff();

  /// Records a server-supplied "come back in N ms" hint; the next
  /// sleep will be at least N (one-shot, then the walk resumes).
  void ObserveRetryAfterMs(double ms);

 private:
  const RetryPolicy& policy_;
  size_t attempt_ = 0;
  double prev_ms_ = 0.0;        // last jittered sleep
  double retry_after_ms_ = 0.0; // pending server hint
};

/// Extracts a server-supplied retry-after hint from a Status message
/// (the "[retry_after_ms=N]" tag a shedding server attaches), or 0
/// when absent/malformed.
double RetryAfterHintMs(const Status& status);

/// Appends the "[retry_after_ms=N]" tag RetryAfterHintMs parses.
Status WithRetryAfterHint(Status status, double retry_after_ms);

/// True when a service JSON response says "ok": false with
/// "retryable": true; fills *retry_after_ms with the response's hint
/// (0 when absent). A well-formed ok response returns false.
bool ResponseRetryable(const std::string& response, double* retry_after_ms);

namespace retry_internal {
inline Status StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace retry_internal

/// Runs `fn` until it succeeds, fails permanently, or exhausts
/// `policy.max_attempts`; only transient failures are retried, with
/// the policy's backoff (jittered when `policy.jitter`) between
/// attempts. A "[retry_after_ms=N]" hint in a failure's message floors
/// the following sleep. Returns the last outcome. `attempts_out`
/// (optional) receives the number of attempts made — K transient
/// failures before a success yield K+1.
///
/// `fn` may return Status or Result<T>; the call returns the same
/// type.
template <typename Fn>
auto RetryTransient(const RetryPolicy& policy, Fn&& fn,
                    size_t* attempts_out = nullptr) -> decltype(fn()) {
  const size_t max_attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  BackoffSequence backoff(policy);
  size_t attempt = 0;
  while (true) {
    ++attempt;
    auto outcome = fn();
    if (attempts_out != nullptr) *attempts_out = attempt;
    if (outcome.ok()) return outcome;
    const Status st = retry_internal::StatusOf(outcome);
    if (!IsTransient(st) || attempt >= max_attempts) return outcome;
    backoff.ObserveRetryAfterMs(RetryAfterHintMs(st));
    backoff.Backoff();
  }
}

/// Client-side retry over the Service JSON line protocol: runs
/// `execute` (a fn returning the response string) until the response
/// is not retryable or attempts run out, honoring the response's
/// "retry_after_ms" hint between attempts. Returns the last response.
template <typename Fn>
std::string RetryExecute(const RetryPolicy& policy, Fn&& execute,
                         size_t* attempts_out = nullptr) {
  const size_t max_attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  BackoffSequence backoff(policy);
  size_t attempt = 0;
  while (true) {
    ++attempt;
    std::string response = execute();
    if (attempts_out != nullptr) *attempts_out = attempt;
    double retry_after_ms = 0.0;
    if (!ResponseRetryable(response, &retry_after_ms) ||
        attempt >= max_attempts) {
      return response;
    }
    backoff.ObserveRetryAfterMs(retry_after_ms);
    backoff.Backoff();
  }
}

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_RETRY_H_
