#ifndef DBWIPES_COMMON_EXEC_CONTEXT_H_
#define DBWIPES_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbwipes/common/status.h"

namespace dbwipes {

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

class CancellationSource;

/// \brief Read side of a cooperative cancellation flag.
///
/// A default-constructed token is the null token: it can never become
/// cancelled and costs one pointer compare per check. Tokens are cheap
/// to copy (shared_ptr) and safe to read from any thread while the
/// owning CancellationSource may cancel concurrently.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool IsCancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// The reason passed to Cancel(), or "" while not cancelled.
  std::string reason() const;

 private:
  friend class CancellationSource;
  struct State {
    std::atomic<bool> cancelled{false};
    mutable std::mutex mu;
    std::string reason;  // written once, before `cancelled` is set
  };
  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// \brief Write side: owns the flag, hands out tokens, trips them.
///
/// Copyable (copies share the same flag) so a Service can keep a
/// handle to the in-flight request's source while the request thread
/// holds another.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<CancellationToken::State>()) {}

  /// Idempotent; the first call's reason wins.
  void Cancel(std::string reason = "cancelled");

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<CancellationToken::State> state_;
};

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

/// \brief A steady-clock expiry point. Default-constructed = infinite
/// (never expires, one branch per check). Composes with tokens via
/// ExecContext::StopRequested().
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline.
  Deadline() = default;

  static Deadline After(double ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return infinite_; }
  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry (negative once past), +inf if infinite.
  double remaining_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

// ---------------------------------------------------------------------------
// Resource budget
// ---------------------------------------------------------------------------

/// \brief Caps on the explanation pipeline's dominant allocations.
/// A limit of 0 means unlimited. Charging is atomic, so concurrent
/// scoring threads may share one budget; the first charge that would
/// cross a limit fails with kResourceExhausted (and latches the
/// corresponding exhausted flag for pipeline-level reporting).
class ResourceBudget {
 public:
  ResourceBudget() = default;
  ResourceBudget(size_t max_candidate_predicates, size_t max_bitmap_bytes,
                 size_t max_scored_removals)
      : max_candidate_predicates(max_candidate_predicates),
        max_bitmap_bytes(max_bitmap_bytes),
        max_scored_removals(max_scored_removals) {}

  // Non-copyable: shared by pointer from ExecContext.
  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Candidate predicates the enumerator may emit.
  size_t max_candidate_predicates = 0;
  /// Bytes of clause bitmaps the MatchEngine may cache.
  size_t max_bitmap_bytes = 0;
  /// Removal sets the ranker may score.
  size_t max_scored_removals = 0;

  Status ChargePredicates(size_t n) {
    return Charge(&used_predicates_, n, max_candidate_predicates,
                  &predicates_exhausted_, "candidate-predicate budget");
  }
  Status ChargeBitmapBytes(size_t n) {
    return Charge(&used_bitmap_bytes_, n, max_bitmap_bytes,
                  &bitmap_exhausted_, "bitmap-byte budget");
  }
  Status ChargeScoredRemovals(size_t n) {
    return Charge(&used_scored_removals_, n, max_scored_removals,
                  &removals_exhausted_, "scored-removal budget");
  }

  size_t used_predicates() const { return used_predicates_.load(); }
  size_t used_bitmap_bytes() const { return used_bitmap_bytes_.load(); }
  size_t used_scored_removals() const { return used_scored_removals_.load(); }

  bool predicates_exhausted() const { return predicates_exhausted_.load(); }
  bool bitmap_exhausted() const { return bitmap_exhausted_.load(); }
  bool removals_exhausted() const { return removals_exhausted_.load(); }
  bool any_exhausted() const {
    return predicates_exhausted() || bitmap_exhausted() ||
           removals_exhausted();
  }

 private:
  static Status Charge(std::atomic<size_t>* used, size_t n, size_t limit,
                       std::atomic<bool>* exhausted, const char* what);

  std::atomic<size_t> used_predicates_{0};
  std::atomic<size_t> used_bitmap_bytes_{0};
  std::atomic<size_t> used_scored_removals_{0};
  std::atomic<bool> predicates_exhausted_{false};
  std::atomic<bool> bitmap_exhausted_{false};
  std::atomic<bool> removals_exhausted_{false};
};

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Exit code a crash fault terminates the process with (via _exit, so
/// no destructors, atexit hooks, or buffered-I/O flushes run — the
/// closest in-process stand-in for a power cut). The crash-recovery
/// harness asserts on this code to tell an injected kill apart from a
/// sanitizer abort or a genuine crash.
constexpr int kFaultCrashExit = 61;

/// \brief Test-armable failure registry behind the DBW_FAULT sites.
///
/// Production code never allocates one: ExecContext::faults stays
/// nullptr and a fault site is a single pointer compare. Tests arm a
/// site by name to return an error Status, inject latency, trip a
/// CancellationSource, hard-crash the process (`crash`), or shape I/O
/// (`short_write_limit`); each armed fault fires `count` times
/// (default: every hit), optionally after `skip` pass-through hits —
/// the seam the crash harness uses to kill a child at "the Nth append"
/// rather than the first. Thread-safe.
class FaultInjector {
 public:
  struct Fault {
    /// Returned from the site when non-OK (kError behavior).
    Status status = Status::OK();
    /// Sleep this long at the site before continuing (latency fault).
    double latency_ms = 0.0;
    /// Trip this source at the site (cancellation fault).
    std::shared_ptr<CancellationSource> trip;
    /// Hits before the fault disarms itself; 0 = fire forever.
    size_t count = 0;
    /// Pass-through hits before the fault starts firing (armable "crash
    /// at the Nth hit" points for the kill matrix).
    size_t skip = 0;
    /// _exit(kFaultCrashExit) when the fault fires. Hit() crashes at
    /// the site; HitIo() leaves the crash to the caller so a torn
    /// partial write can land first.
    bool crash = false;
    /// >0: an I/O site consuming this fault may write at most this many
    /// bytes before failing — a short write (ENOSPC/EIO mid-record),
    /// the generator for torn WAL tails.
    size_t short_write_limit = 0;
  };

  /// Arms (or re-arms) `site`.
  void Arm(const std::string& site, Fault fault);
  /// Shorthand: arm `site` to return `status` on every hit.
  void ArmError(const std::string& site, Status status);
  /// Shorthand: arm `site` to _exit(kFaultCrashExit) on its
  /// `skip+1`-th hit.
  void ArmCrash(const std::string& site, size_t skip = 0);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Times `site` was hit while armed (including skipped hits).
  size_t hits(const std::string& site) const;

  /// Called by DBW_FAULT when an injector is installed. Applies the
  /// armed behavior for `site` (latency, then trip, then crash, then
  /// status); unarmed or still-skipping sites return OK.
  Status Hit(const std::string& site);

  /// I/O-site variant: applies latency and trip, then hands the fired
  /// fault back instead of acting on crash/status, so the caller can
  /// interleave them with real I/O (write `short_write_limit` bytes,
  /// THEN crash or fail). Returns false when nothing fired.
  bool HitIo(const std::string& site, Fault* fired);

 private:
  /// Consumes one hit: skip/count bookkeeping under the lock; true when
  /// the fault fires, with a copy in *out.
  bool Consume(const std::string& site, Fault* out);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Fault> armed_;
  std::unordered_map<std::string, size_t> hits_;
};

/// The canonical list of fault-site names compiled into the pipeline.
/// Naming convention: "<stage>/<step>" with stages matching the source
/// layout (scorer, match, ranker, enumerate, pipeline). Tests iterate
/// this list to prove every site degrades cleanly; keep it in sync
/// when adding a DBW_FAULT.
const std::vector<std::string>& AllFaultSites();

/// The I/O fault sites compiled into the durability paths (WAL append/
/// fsync/rotate, snapshot write/rename/dirsync, checkpoint begin/
/// truncate). These sit on the storage side rather than the explain
/// pipeline, so they are hit through FaultInjector::Hit/HitIo directly
/// (no ExecContext flows there). The crash harness iterates this list
/// as its kill-point menu; keep it in sync when adding a site.
const std::vector<std::string>& AllIoFaultSites();

/// The replication network fault sites ("repl/*"): connect, handshake,
/// frame send/receive, snapshot chunking, corruption, and apply. Kept
/// separate from AllIoFaultSites so the WAL crash harness's kill-point
/// menu (and its run budget) is not diluted by sites that never fire
/// in a single-node child; the failover matrix iterates this list
/// instead.
const std::vector<std::string>& AllReplicationFaultSites();

// ---------------------------------------------------------------------------
// ExecContext
// ---------------------------------------------------------------------------

/// \brief Everything a pipeline stage needs to stop early: the
/// cancellation token, the deadline, the resource budget, and the
/// fault registry. Default-constructed = run to completion (all checks
/// reduce to a couple of branches). Passed by const reference down the
/// query -> enumerate -> match -> score -> rank pipeline; cheap to
/// copy.
class ExecContext {
 public:
  ExecContext() = default;

  CancellationToken token;
  Deadline deadline;
  ResourceBudget* budget = nullptr;  // not owned; may be null
  FaultInjector* faults = nullptr;   // not owned; null in production

  /// True once the work should wind down (cancelled or past deadline).
  bool StopRequested() const {
    return token.IsCancelled() || deadline.expired();
  }

  /// OK while the work may continue; otherwise the interrupt Status
  /// that explains why (kCancelled before kDeadlineExceeded when both
  /// hold, so an explicit cancel is never misreported as a timeout).
  Status CheckContinue() const;

  /// Shared run-to-completion context for default arguments.
  static const ExecContext& None();
};

}  // namespace dbwipes

/// Named fault site: no-op (one pointer compare) unless a test has
/// installed a FaultInjector on the context. Must appear in
/// AllFaultSites(). Usable in functions returning Status or Result<T>.
#define DBW_FAULT(ctx, site)                          \
  do {                                                \
    if ((ctx).faults != nullptr) {                    \
      ::dbwipes::Status _fault_st = (ctx).faults->Hit(site); \
      if (!_fault_st.ok()) return _fault_st;          \
    }                                                 \
  } while (false)

#endif  // DBWIPES_COMMON_EXEC_CONTEXT_H_
