#ifndef DBWIPES_COMMON_BITMAP_H_
#define DBWIPES_COMMON_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbwipes {

/// \brief Fixed-size bitset over 64-bit words.
///
/// The predicate-ranking fast path represents "which suspect tuples
/// does this predicate match" as one Bitmap per predicate: intersection
/// popcounts give precision/recall counts in O(n/64), and full
/// equality comparison makes tuple-set deduplication exact (a 64-bit
/// hash alone can collapse distinct repairs).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// Whole-word access for batch writers (the match kernels build one
  /// word at a time so parallel chunks own disjoint words). Callers
  /// must keep padding bits past num_bits() zero — Hash() and
  /// operator== compare whole words.
  uint64_t word(size_t wi) const { return words_[wi]; }
  void set_word(size_t wi, uint64_t w) { words_[wi] = w; }

  /// this &= other; the bitmaps must be the same size.
  void AndWith(const Bitmap& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// Sets every bit in [0, num_bits()).
  void SetAll() {
    if (words_.empty()) return;
    for (uint64_t& w : words_) w = ~uint64_t{0};
    const size_t tail = num_bits_ & 63;
    if (tail != 0) words_.back() = (uint64_t{1} << tail) - 1;
  }

  /// Number of set bits.
  size_t CountOnes() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  /// |this AND other|; the bitmaps must be the same size.
  size_t CountAnd(const Bitmap& other) const {
    size_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return n;
  }

  /// 64-bit content hash (splitmix-style word mixing). Equal bitmaps
  /// hash equal; the converse needs operator==.
  uint64_t Hash() const {
    uint64_t h = 0x9E3779B97F4A7C15ULL ^ num_bits_;
    for (uint64_t w : words_) {
      uint64_t x = w + 0x9E3779B97F4A7C15ULL;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      h ^= x ^ (x >> 31);
      h *= 0x2545F4914F6CDD1DULL;
    }
    return h;
  }

  bool operator==(const Bitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Calls fn(i) for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_BITMAP_H_
