#ifndef DBWIPES_COMMON_HTTP_LISTENER_H_
#define DBWIPES_COMMON_HTTP_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "dbwipes/common/status.h"

namespace dbwipes {

/// \brief Minimal single-threaded HTTP/1.0 GET server for the
/// observability endpoints (/metrics, /healthz, /readyz) — just enough
/// protocol for curl and a Prometheus scraper, with no third-party
/// dependencies.
///
/// One accept loop thread serves connections serially: reads the
/// request head (method + path, headers ignored), invokes the handler,
/// writes the response with Content-Length, and closes. Scrapes are
/// rare (seconds apart) and responses are small, so serial service is
/// deliberate — there is no connection pool to size or exhaust. The
/// accept loop polls with a short timeout so Stop() takes effect
/// within ~100 ms without needing a wakeup pipe.
class HttpListener {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  /// Maps a request path ("/metrics") to a response. Non-GET methods
  /// are answered 405 before the handler is consulted.
  using Handler = std::function<Response(const std::string& path)>;

  HttpListener() = default;
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port())
  /// and starts the accept thread. Loopback-only by design: the
  /// observability endpoints are not exposed off-host unless the
  /// operator puts a proxy in front. Fails if already started or the
  /// bind is refused. Start/Stop are mutually serialized and safe to
  /// call from different threads.
  Status Start(uint16_t port, Handler handler);

  /// The bound port (resolves an ephemeral request). 0 until Start.
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

 private:
  void Loop();
  void ServeConnection(int fd);

  std::mutex lifecycle_mu_;  // serializes Start/Stop
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// The standard observability route table: "/metrics" serves
/// MetricsRegistry::Global().PrometheusText(), "/healthz" answers 200
/// while the process is up, "/readyz" answers 200/503 from `ready`,
/// anything else 404. Shared by dbwipes_server --metrics-port and the
/// tests so both exercise the same handler.
HttpListener::Handler MakeObservabilityHandler(std::function<bool()> ready);

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_HTTP_LISTENER_H_
