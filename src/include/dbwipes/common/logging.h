#ifndef DBWIPES_COMMON_LOGGING_H_
#define DBWIPES_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dbwipes {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction. A kFatal
/// message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement with zero evaluation cost.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

/// glog-style helper: `operator&` binds looser than `<<` but tighter
/// than `?:`, letting DBW_CHECK swallow a whole streamed expression.
class Voidify {
 public:
  void operator&(LogMessage&) {}
  void operator&(NullLog&) {}
};

}  // namespace internal
}  // namespace dbwipes

#define DBW_LOG(level)                                                     \
  ::dbwipes::internal::LogMessage(::dbwipes::LogLevel::k##level, __FILE__, \
                                  __LINE__)

/// Invariant check: always on (tests and production alike); failure is
/// a bug, so the process aborts with the location and streamed context.
/// Extra context may be streamed: DBW_CHECK(n > 0) << "n=" << n;
#define DBW_CHECK(cond)                                            \
  (cond) ? static_cast<void>(0)                                    \
         : ::dbwipes::internal::Voidify() &                        \
               ::dbwipes::internal::LogMessage(                    \
                   ::dbwipes::LogLevel::kFatal, __FILE__, __LINE__) \
                   << "Check failed: " #cond " "

#define DBW_CHECK_OK(expr)                                    \
  do {                                                        \
    ::dbwipes::Status _st = (expr);                           \
    DBW_CHECK(_st.ok()) << _st.ToString();                    \
  } while (false)

#ifndef NDEBUG
#define DBW_DCHECK(cond) DBW_CHECK(cond)
#else
#define DBW_DCHECK(cond)                       \
  true ? static_cast<void>(0)                  \
       : ::dbwipes::internal::Voidify() &      \
             ::dbwipes::internal::NullLog() << 0
#endif

#endif  // DBWIPES_COMMON_LOGGING_H_
