#ifndef DBWIPES_COMMON_STATUS_H_
#define DBWIPES_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dbwipes {

/// \brief Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kParseError,
  kTypeError,
  kNotImplemented,
  kRuntimeError,
  // Interrupt codes (see IsInterrupt): the operation stopped early on
  // purpose — by a CancellationToken, an expired Deadline, or an
  // exhausted ResourceBudget — rather than failing.
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Arrow/RocksDB-style operation outcome: a code plus a message.
///
/// Functions that can fail return Status (or Result<T> when they also
/// produce a value). The OK state carries no allocation. Statuses are
/// cheap to copy and move; [[nodiscard]] makes the compiler reject a
/// call site that drops a failure on the floor (use IgnoreError() for
/// the rare deliberate discard).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// True for the interrupt family: cancellation, deadline expiry, or
  /// budget exhaustion. The anytime pipeline turns these into partial
  /// results instead of errors.
  bool IsInterrupt() const {
    return code_ == StatusCode::kCancelled ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kResourceExhausted;
  }

  /// Explicitly discards a possibly-failed Status (satisfies
  /// [[nodiscard]] at call sites where failure is genuinely benign).
  void IgnoreError() const {}

  /// Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dbwipes

/// Propagates a non-OK Status to the caller.
#define DBW_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::dbwipes::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define DBW_CONCAT_IMPL(x, y) x##y
#define DBW_CONCAT(x, y) DBW_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, on
/// success binds the value to `lhs` (which may include a declaration).
#define DBW_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  DBW_ASSIGN_OR_RETURN_IMPL(DBW_CONCAT(_result_, __LINE__), lhs, rexpr)

#define DBW_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueUnsafe();

#endif  // DBWIPES_COMMON_STATUS_H_
