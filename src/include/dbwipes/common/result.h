#ifndef DBWIPES_COMMON_RESULT_H_
#define DBWIPES_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "dbwipes/common/logging.h"
#include "dbwipes/common/status.h"

namespace dbwipes {

/// \brief Holds either a value of type T or the Status explaining why
/// no value could be produced.
///
/// Mirrors arrow::Result. Construct implicitly from a T or from a
/// non-OK Status. Access with ValueOrDie() in tests/examples (aborts on
/// error) or via DBW_ASSIGN_OR_RETURN in library code.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Wraps a successfully produced value.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Wraps a failure. `status` must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    DBW_CHECK(!this->status().ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The failure, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Value access; undefined if !ok(). Use after checking ok(), or via
  /// the DBW_ASSIGN_OR_RETURN macro.
  const T& ValueUnsafe() const& { return std::get<T>(data_); }
  T& ValueUnsafe() & { return std::get<T>(data_); }
  T&& ValueUnsafe() && { return std::get<T>(std::move(data_)); }

  /// Returns the value or aborts the process with the error message.
  /// Intended for tests, examples, and benchmarks.
  const T& ValueOrDie() const& {
    DBW_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& ValueOrDie() & {
    DBW_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& ValueOrDie() && {
    DBW_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(data_));
  }

  /// Returns the value, or `alternative` when this holds an error.
  T ValueOr(T alternative) const {
    if (ok()) return std::get<T>(data_);
    return alternative;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_RESULT_H_
