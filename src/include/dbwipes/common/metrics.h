#ifndef DBWIPES_COMMON_METRICS_H_
#define DBWIPES_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dbwipes {

/// \brief Monotonic event count. Write path is one relaxed fetch_add.
class MetricCounter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time level (queue depth, thread count).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket latency histogram (milliseconds). Bounds are
/// compiled in — identical across every histogram, so snapshots are
/// comparable — and the write path is two relaxed fetch_adds (bucket
/// count + sum in nanoseconds), no locks. Buckets are cumulative-free:
/// bucket i counts observations <= bounds[i], the last bucket is the
/// explicit overflow (see overflow()).
///
/// count() is DERIVED from the buckets rather than kept as a third
/// atomic: a snapshot that reads the buckets once therefore always
/// satisfies count == sum(buckets), even while Observe calls race it.
class MetricHistogram {
 public:
  /// Upper bounds in ms. The sub-0.1 ms bounds give microsecond
  /// resolution for span-scale latencies (a disabled trace span is
  /// ~4 ns, a fused-program compile tens of µs — all of which a purely
  /// ms-scale ladder would flatten into one bucket). Observations
  /// above the last bound land in the overflow bucket.
  static constexpr double kBoundsMs[] = {0.001, 0.0025, 0.005, 0.01,  0.025,
                                         0.05,  0.1,  0.25, 0.5,  1.0,   2.5,
                                         5.0,  10.0, 25.0, 50.0,  100.0,
                                         250.0, 500.0, 1000.0, 2500.0,
                                         5000.0, 10000.0};
  static constexpr size_t kNumBounds = sizeof(kBoundsMs) / sizeof(double);
  static constexpr size_t kNumBuckets = kNumBounds + 1;  // + overflow

  /// An atomically-consistent read of the whole histogram: count is
  /// computed from the buckets read, so count == sum(buckets) holds by
  /// construction (sum_ms may trail by in-flight observations).
  struct Snapshot {
    uint64_t buckets[kNumBuckets] = {};
    uint64_t count = 0;
    uint64_t overflow = 0;
    double sum_ms = 0.0;
  };

  void Observe(double ms);

  uint64_t count() const;
  double sum_ms() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Observations above kBoundsMs[kNumBounds - 1].
  uint64_t overflow() const { return bucket(kNumBounds); }

  Snapshot Snap() const;

  /// Estimated quantile (q in [0, 1]) by linear interpolation within
  /// the bucket the q-th observation falls in; the overflow bucket
  /// reports the last finite bound. 0 when empty.
  static double EstimateQuantile(const Snapshot& snap, double q);

  void ResetForTest();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_ns_{0};
};

/// \brief Process-wide registry of named counters, gauges, and
/// histograms.
///
/// Get*() registers on first use (mutex-protected, cold) and returns a
/// pointer that stays valid for the process lifetime — hot code caches
/// it in a function-local static, so the steady-state write path is
/// atomics only. SnapshotJson() serializes every metric; ResetForTest()
/// zeroes values without invalidating cached pointers.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricCounter* GetCounter(const std::string& name);
  MetricGauge* GetGauge(const std::string& name);
  MetricHistogram* GetHistogram(const std::string& name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// names sorted for deterministic output. Histogram entries are read
  /// via MetricHistogram::Snap, so count == sum(buckets) in every
  /// snapshot even under concurrent Observe calls.
  std::string SnapshotJson(bool pretty = false) const;

  /// Prometheus text exposition format 0.0.4: counters as
  /// `dbwipes_<name>_total`, gauges as `dbwipes_<name>`, histograms as
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`. Names
  /// are sanitized (non-alphanumerics -> '_') and sorted.
  std::string PrometheusText() const;

  /// Flattens every metric into (name, value) pairs for the telemetry
  /// sampler: counters and gauges as-is; each histogram contributes
  /// `<name>.count`, `<name>.p50_ms`, and `<name>.p99_ms`. Sorted by
  /// name.
  std::vector<std::pair<std::string, double>> SampleValues() const;

  /// Zeroes every registered metric (pointers stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<MetricCounter>>>
      counters_;
  std::vector<std::pair<std::string, std::unique_ptr<MetricGauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<MetricHistogram>>>
      histograms_;
};

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_METRICS_H_
