#ifndef DBWIPES_COMMON_STRING_UTIL_H_
#define DBWIPES_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dbwipes/common/result.h"

namespace dbwipes {

/// Splits on every occurrence of `delim`; consecutive delimiters yield
/// empty fields (CSV semantics), so Split(",a,", ',') -> {"", "a", ""}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins parts with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);
/// ASCII upper-casing (locale-independent).
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict integer parse: the whole string must be a base-10 integer.
Result<int64_t> ParseInt64(std::string_view s);
/// Strict floating-point parse: the whole string must be a number.
Result<double> ParseDouble(std::string_view s);

/// Formats a double compactly: integral values without trailing
/// zeros, otherwise up to `precision` significant digits.
std::string FormatDouble(double v, int precision = 6);

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_STRING_UTIL_H_
