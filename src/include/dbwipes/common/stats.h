#ifndef DBWIPES_COMMON_STATS_H_
#define DBWIPES_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace dbwipes {

/// \brief Streaming moments accumulator (Welford), mergeable and
/// removable.
///
/// Supports Add, Remove (exact inverse of Add, enabling the leave-one-
/// out influence analysis to run in O(1) per tuple), and Merge. Keeps
/// count / mean / M2, from which variance and stddev derive.
class OnlineStats {
 public:
  void Add(double x);
  /// Removes a previously added value. Undefined if x was never added.
  void Remove(double x);
  void Merge(const OnlineStats& other);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Population variance (divide by n).
  double variance() const;
  /// Sample variance (divide by n-1); 0 when count < 2.
  double sample_variance() const;
  double stddev() const;
  double sample_stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);
/// Population variance; 0 for fewer than 1 element.
double Variance(const std::vector<double>& xs);
double Stddev(const std::vector<double>& xs);

/// Quantile by linear interpolation on the sorted copy; q in [0, 1].
double Quantile(std::vector<double> xs, double q);
double Median(std::vector<double> xs);

/// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_STATS_H_
