#ifndef DBWIPES_COMMON_PARALLEL_H_
#define DBWIPES_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "dbwipes/common/status.h"

namespace dbwipes {
class ExecContext;
}

namespace dbwipes {

/// Worker-thread count used when a caller asks for "auto" parallelism:
/// the hardware concurrency, overridable (e.g. for tests or container
/// limits) via the DBWIPES_THREADS environment variable. Always >= 1.
size_t DefaultParallelism();

/// \brief A lazily started, process-wide pool of worker threads that
/// executes chunked index ranges.
///
/// The pool exists so that hot ranking paths can fan out hundreds of
/// independent predicate evaluations without paying thread start-up
/// cost per call. One parallel region runs at a time (calls are
/// serialized internally); a ParallelFor issued from inside a worker
/// runs inline on that worker, so nested use degrades to serial
/// instead of deadlocking.
class ThreadPool {
 public:
  /// The shared pool, sized to DefaultParallelism() workers on first
  /// use.
  static ThreadPool& Global();

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// \brief Monotonic utilization counters, readable at any time.
  ///
  /// `busy_ms` sums wall time spent inside chunk bodies across every
  /// thread, so per-chunk utilization over an interval is
  /// delta(busy_ms) / (interval_ms * (num_threads + 1)). `peak_queue_
  /// depth` is the largest number of chunks ever queued by one region
  /// (the pool drains regions one at a time, so this is the high-water
  /// queue depth). Snapshots are relaxed-atomic reads; deltas between
  /// two snapshots around a pipeline run give that run's share.
  struct StatsSnapshot {
    uint64_t regions = 0;        // Run() invocations with work
    uint64_t chunks = 0;         // chunk bodies executed
    double busy_ms = 0.0;        // wall time inside chunk bodies
    uint64_t peak_queue_depth = 0;
  };
  StatsSnapshot stats() const;

  /// Runs fn(chunk) for every chunk in [0, num_chunks), distributing
  /// chunks dynamically over the workers plus the calling thread, and
  /// returns when all chunks finished. fn must be safe to call
  /// concurrently from multiple threads; determinism is the caller's
  /// job (write only to chunk-owned output slots).
  ///
  /// Task failure has a defined path: if a chunk throws, the exception
  /// with the lowest chunk index is captured, chunks not yet claimed
  /// are skipped (in-flight chunks finish), and the exception is
  /// rethrown on the calling thread after the region drains — a worker
  /// never terminates the process. The pool stays usable afterwards.
  void Run(size_t num_chunks, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and executes chunks of the current task until exhausted.
  void DrainCurrentTask();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a task
  std::condition_variable done_cv_;  // Run waits for completion
  const std::function<void(size_t)>* task_ = nullptr;
  size_t task_epoch_ = 0;
  size_t num_chunks_ = 0;
  size_t next_chunk_ = 0;
  size_t chunks_done_ = 0;
  /// First (lowest-chunk-index) exception thrown by the current task.
  std::exception_ptr task_error_;
  size_t task_error_chunk_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
  // Utilization counters (relaxed; see StatsSnapshot).
  std::atomic<uint64_t> stat_regions_{0};
  std::atomic<uint64_t> stat_chunks_{0};
  std::atomic<uint64_t> stat_busy_ns_{0};
  std::atomic<uint64_t> stat_peak_queue_{0};
};

/// Tuning knobs for ParallelFor.
struct ParallelOptions {
  /// Worker threads to use; 0 = DefaultParallelism(). 1 forces the
  /// serial path (no pool involvement at all).
  size_t num_threads = 0;
  /// Below this many items the loop runs serially: spawning chunks for
  /// tiny loops costs more than it saves.
  size_t min_items_for_threading = 64;
  /// Cooperative-stop context (not owned; may be null). When set,
  /// every chunk checks StopRequested() before running: once the token
  /// trips or the deadline expires, remaining chunks are skipped, so a
  /// parallel region winds down within one chunk's latency. Which
  /// chunks ran is then timing-dependent — anytime callers that need a
  /// deterministic cut must track per-chunk completion themselves (the
  /// ranker does).
  const ExecContext* ctx = nullptr;
};

/// Runs fn(begin, end) over disjoint subranges covering [begin, end).
/// Chunk boundaries depend only on the range size and options — never
/// on thread scheduling — so a body that writes result[i] for
/// i in [begin, end) produces identical output at every thread count
/// (including 1).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& chunk_fn,
                 const ParallelOptions& options = {});

/// Per-index convenience wrapper over ParallelFor.
void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& fn,
                     const ParallelOptions& options = {});

/// Status-aware variant: runs fn(i) for every i in [0, n); if any call
/// fails, the failure of the *lowest* index is returned (deterministic
/// regardless of which thread observed it first). Indices after a
/// failing one may or may not have run. A chunk that throws is
/// surfaced as StatusCode::kRuntimeError instead of propagating the
/// exception; options.ctx interruption is reported via its
/// CheckContinue() status.
Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn,
                         const ParallelOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_PARALLEL_H_
