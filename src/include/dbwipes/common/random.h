#ifndef DBWIPES_COMMON_RANDOM_H_
#define DBWIPES_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dbwipes {

/// \brief Deterministic pseudo-random generator (xoshiro256++) with the
/// distribution helpers the generators and learners need.
///
/// All randomized components in the library take an explicit Rng (or a
/// seed) so that every dataset, model fit, and benchmark run is exactly
/// reproducible. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);
  /// Normal (Gaussian) with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);
  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);
  /// Zipf-distributed integer in [0, n) with skew s >= 0 (s = 0 is
  /// uniform). Uses rejection-inversion; suitable for n up to millions.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index with probability proportional to weights[i].
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles v in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  // Cached second Box-Muller variate.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dbwipes

#endif  // DBWIPES_COMMON_RANDOM_H_
