#ifndef DBWIPES_PROVENANCE_INFLUENCE_H_
#define DBWIPES_PROVENANCE_INFLUENCE_H_

#include <functional>
#include <vector>

#include "dbwipes/query/executor.h"

namespace dbwipes {

/// Maps the aggregate values of the user-selected groups S (in
/// selection order; NaN = NULL) to an error >= 0, where 0 means
/// "error-free". The core module adapts its ErrorMetric objects into
/// this signature.
using ErrorFn = std::function<double(const std::vector<double>&)>;

/// \brief A tuple's leave-one-out influence on the error metric.
///
/// influence = eps(S) - eps(S with the tuple removed): positive values
/// mean deleting the tuple shrinks the error; the Preprocessor ranks F
/// by this number (paper §2.2.2).
struct TupleInfluence {
  RowId row = 0;
  /// Index (within the selection) of the group the tuple feeds.
  size_t selected_group = 0;
  double influence = 0.0;
};

struct InfluenceOptions {
  /// Which aggregate of the query the error metric reads (0-based
  /// among query.aggregates).
  size_t agg_index = 0;
  /// When true (default), a tuple's influence is computed with the
  /// metric applied to its own group's value alone, treating every
  /// selected group as an independent error instance. When false, the
  /// metric sees the full selection vector — the paper's literal
  /// formulation, under which a max-style metric assigns zero
  /// influence to every tuple outside the argmax group. Per-group is
  /// the robust default for multi-group selections; the global mode is
  /// kept for the E3 ablation.
  bool per_group = true;
};

/// Computes leave-one-out influence for every tuple in the lineage of
/// the selected groups, using incremental aggregate Remove/Add (O(1)
/// or O(log n) per tuple instead of re-aggregating the group).
///
/// Returns influences sorted descending (most error-reducing first).
Result<std::vector<TupleInfluence>> LeaveOneOutInfluence(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorFn& error_fn,
    const InfluenceOptions& options = {});

/// Reference implementation that re-aggregates each group from scratch
/// for every removed tuple. O(sum |group|^2); exists to validate the
/// incremental path in tests and to serve as an ablation baseline.
Result<std::vector<TupleInfluence>> LeaveOneOutInfluenceBruteForce(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorFn& error_fn,
    const InfluenceOptions& options = {});

/// Baseline error of the selection (no tuple removed).
Result<double> SelectionError(const QueryResult& result,
                              const std::vector<size_t>& selected_groups,
                              const ErrorFn& error_fn,
                              const InfluenceOptions& options = {});

}  // namespace dbwipes

#endif  // DBWIPES_PROVENANCE_INFLUENCE_H_
