#ifndef DBWIPES_PROVENANCE_LINEAGE_H_
#define DBWIPES_PROVENANCE_LINEAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "dbwipes/query/executor.h"

namespace dbwipes {

/// \brief Fine-grained provenance index over one query result.
///
/// Wraps the per-group lineage captured by the executor with forward
/// (input row -> group) and backward (groups -> input rows) tracing.
/// Backward tracing of the user's suspicious selection S yields F, the
/// candidate input set the DBWipes Preprocessor starts from.
class LineageStore {
 public:
  /// Builds the index. `result` must have been executed with
  /// capture_lineage = true; `num_base_rows` is the FROM table's size.
  LineageStore(const QueryResult& result, size_t num_base_rows);

  /// All base rows feeding result group `group`, sorted ascending.
  const std::vector<RowId>& Backward(size_t group) const;

  /// Union of the lineage of several groups, sorted, deduplicated.
  std::vector<RowId> BackwardUnion(const std::vector<size_t>& groups) const;

  /// The group a base row fed, if it passed the filter.
  std::optional<size_t> Forward(RowId row) const;

  size_t num_groups() const { return lineage_->size(); }
  /// Rows that passed the query's filter (i.e. appear in any group).
  size_t num_traced_rows() const { return traced_rows_; }

 private:
  const std::vector<std::vector<RowId>>* lineage_;
  std::vector<int64_t> forward_;  // row -> group, -1 = filtered out
  size_t traced_rows_ = 0;
};

/// \brief Coarse-grained provenance: the operator graph of a query.
///
/// The paper's motivating strawman — returned so users can see that
/// every input went through the same Scan -> Filter -> GroupBy ->
/// Aggregate pipeline, which is precisely why coarse provenance cannot
/// explain an aggregate anomaly.
struct OperatorNode {
  std::string name;        // e.g. "GroupBy"
  std::string detail;      // e.g. "keys: sensorid, window"
  std::vector<size_t> inputs;  // indices of upstream nodes
};

struct OperatorGraph {
  std::vector<OperatorNode> nodes;

  /// Multi-line rendering, one node per line with its inputs.
  std::string ToString() const;
};

/// Builds the (linear) operator graph for a single-block aggregate
/// query.
OperatorGraph DescribeQueryPlan(const AggregateQuery& query);

}  // namespace dbwipes

#endif  // DBWIPES_PROVENANCE_LINEAGE_H_
