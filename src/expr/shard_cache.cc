#include "dbwipes/expr/shard_cache.h"

#include "dbwipes/common/metrics.h"

namespace dbwipes {

ShardEngineCache::ShardEngineCache(size_t num_shards)
    : num_shards_(num_shards), slots_(num_shards) {}

std::shared_ptr<ShardEngineCache> ShardEngineCache::For(const ShardSet& set) {
  const size_t shards = set.num_shards();
  auto ext = set.GetOrCreateExtension([shards]() -> std::shared_ptr<void> {
    return std::shared_ptr<void>(new ShardEngineCache(shards),
                                 [](void* p) {
                                   delete static_cast<ShardEngineCache*>(p);
                                 });
  });
  return std::shared_ptr<ShardEngineCache>(
      ext, static_cast<ShardEngineCache*>(ext.get()));
}

ShardEngineCache::Checkout ShardEngineCache::CheckoutEngine(
    size_t shard, const Table& table, std::vector<RowId> local_rows) {
  static MetricCounter* const built_metric =
      MetricsRegistry::Global().GetCounter("shard.engines_built");
  static MetricCounter* const reused_metric =
      MetricsRegistry::Global().GetCounter("shard.engines_reused");
  DBW_CHECK(shard < num_shards_);
  Checkout out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<MatchEngine>& slot = slots_[shard];
    if (slot != nullptr && slot->built_table_rows() == table.num_rows() &&
        slot->rows() == local_rows) {
      out.engine = std::move(slot);
      out.reused = true;
      ++reused_;
    }
  }
  if (out.engine == nullptr) {
    out.engine = std::make_unique<MatchEngine>(table, std::move(local_rows));
    std::lock_guard<std::mutex> lock(mu_);
    ++built_;
  }
  (out.reused ? reused_metric : built_metric)->Increment();
  return out;
}

void ShardEngineCache::Checkin(size_t shard,
                               std::unique_ptr<MatchEngine> engine) {
  DBW_CHECK(shard < num_shards_);
  std::lock_guard<std::mutex> lock(mu_);
  slots_[shard] = std::move(engine);
}

std::vector<size_t> ShardEngineCache::CachedClausesPerShard() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> out(num_shards_, 0);
  for (size_t s = 0; s < num_shards_; ++s) {
    if (slots_[s] != nullptr) out[s] = slots_[s]->num_cached_clauses();
  }
  return out;
}

std::vector<size_t> ShardEngineCache::CachedProgramsPerShard() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> out(num_shards_, 0);
  for (size_t s = 0; s < num_shards_; ++s) {
    if (slots_[s] != nullptr) out[s] = slots_[s]->num_fused_programs();
  }
  return out;
}

size_t ShardEngineCache::engines_built() const {
  std::lock_guard<std::mutex> lock(mu_);
  return built_;
}

size_t ShardEngineCache::engines_reused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reused_;
}

}  // namespace dbwipes
