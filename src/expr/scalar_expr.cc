#include "dbwipes/expr/scalar_expr.h"

namespace dbwipes {

Result<Value> ColumnRefExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(name_));
  return table.column(idx).GetValue(row);
}

Status ColumnRefExpr::Validate(const Schema& schema) const {
  return schema.GetIndex(name_).status();
}

Result<Value> BinaryExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(Value lv, left_->Eval(table, row));
  DBW_ASSIGN_OR_RETURN(Value rv, right_->Eval(table, row));
  if (lv.is_null() || rv.is_null()) return Value::Null();
  DBW_ASSIGN_OR_RETURN(double l, lv.AsDouble());
  DBW_ASSIGN_OR_RETURN(double r, rv.AsDouble());
  switch (op_) {
    case BinaryOp::kAdd:
      return Value(l + r);
    case BinaryOp::kSub:
      return Value(l - r);
    case BinaryOp::kMul:
      return Value(l * r);
    case BinaryOp::kDiv:
      if (r == 0.0) return Value::Null();  // SQL: division by zero -> NULL
      return Value(l / r);
  }
  return Status::RuntimeError("unknown binary op");
}

Status BinaryExpr::Validate(const Schema& schema) const {
  DBW_RETURN_NOT_OK(left_->Validate(schema));
  DBW_RETURN_NOT_OK(right_->Validate(schema));
  // Reject string operands when the type is statically known.
  std::vector<std::string> cols;
  CollectColumns(&cols);
  for (const auto& c : cols) {
    DBW_ASSIGN_OR_RETURN(Field f, schema.GetField(c));
    if (f.type == DataType::kString) {
      return Status::TypeError("arithmetic on string column '" + c + "'");
    }
  }
  return Status::OK();
}

std::string BinaryExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case BinaryOp::kAdd:
      op = "+";
      break;
    case BinaryOp::kSub:
      op = "-";
      break;
    case BinaryOp::kMul:
      op = "*";
      break;
    case BinaryOp::kDiv:
      op = "/";
      break;
  }
  return "(" + left_->ToString() + " " + op + " " + right_->ToString() + ")";
}

Result<Value> FunctionExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(Value v, arg_->Eval(table, row));
  if (v.is_null()) return Value::Null();
  DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
  return Value(fn_(d));
}

Status FunctionExpr::Validate(const Schema& schema) const {
  DBW_RETURN_NOT_OK(arg_->Validate(schema));
  std::vector<std::string> cols;
  arg_->CollectColumns(&cols);
  for (const auto& c : cols) {
    DBW_ASSIGN_OR_RETURN(Field f, schema.GetField(c));
    if (f.type == DataType::kString) {
      return Status::TypeError(name_ + "() applied to string column '" + c +
                               "'");
    }
  }
  return Status::OK();
}

ScalarExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ScalarExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ScalarExprPtr Add(ScalarExprPtr a, ScalarExprPtr b) {
  return std::make_shared<BinaryExpr>(ScalarExpr::BinaryOp::kAdd, std::move(a),
                                      std::move(b));
}
ScalarExprPtr Sub(ScalarExprPtr a, ScalarExprPtr b) {
  return std::make_shared<BinaryExpr>(ScalarExpr::BinaryOp::kSub, std::move(a),
                                      std::move(b));
}
ScalarExprPtr Mul(ScalarExprPtr a, ScalarExprPtr b) {
  return std::make_shared<BinaryExpr>(ScalarExpr::BinaryOp::kMul, std::move(a),
                                      std::move(b));
}
ScalarExprPtr Div(ScalarExprPtr a, ScalarExprPtr b) {
  return std::make_shared<BinaryExpr>(ScalarExpr::BinaryOp::kDiv, std::move(a),
                                      std::move(b));
}

}  // namespace dbwipes
