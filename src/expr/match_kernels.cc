#include "dbwipes/expr/match_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/logging.h"
#include "dbwipes/common/metrics.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

/// Process-wide counters, mirrored from the per-engine members so the
/// Service `stats` snapshot can report matching behavior across every
/// engine instance. Pointers are resolved once; increments are relaxed
/// atomics on cold-ish paths (per clause lookup / per materialize
/// call), never per row.
struct MatchMetrics {
  MetricCounter* materialize_calls;
  MetricCounter* clause_lookups;
  MetricCounter* cache_hits;
  MetricCounter* cache_misses;
  MetricCounter* bitmaps_materialized;
  MetricCounter* boxed_fallbacks;
};

const MatchMetrics& Metrics() {
  static const MatchMetrics m = {
      MetricsRegistry::Global().GetCounter("match.materialize_calls"),
      MetricsRegistry::Global().GetCounter("match.clause_lookups"),
      MetricsRegistry::Global().GetCounter("match.cache_hits"),
      MetricsRegistry::Global().GetCounter("match.cache_misses"),
      MetricsRegistry::Global().GetCounter("match.bitmaps_materialized"),
      MetricsRegistry::Global().GetCounter("match.boxed_fallbacks"),
  };
  return m;
}

/// Exact cache key for a clause. Clause::CanonicalString renders
/// doubles at display precision, which can collapse distinct
/// thresholds into one string; the cache key must never do that, so
/// doubles are encoded by bit pattern. IN sets are sorted by encoding
/// (conjunction members are order-independent ORs).
std::string EncodeValue(const Value& v) {
  if (v.is_null()) return "n";
  if (v.is_int64()) return "i" + std::to_string(v.int64());
  if (v.is_double()) {
    const double d = v.dbl();
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return "d" + std::to_string(bits);
  }
  return "s" + v.str();
}

std::string KeyOf(const Clause& c) {
  std::string key = c.attribute;
  key += '\x1f';
  key += std::to_string(static_cast<int>(c.op));
  if (c.op == CompareOp::kIn) {
    std::vector<std::string> parts;
    parts.reserve(c.in_set.size());
    for (const Value& v : c.in_set) parts.push_back(EncodeValue(v));
    std::sort(parts.begin(), parts.end());
    for (const std::string& p : parts) {
      key += '\x1f';
      key += p;
    }
  } else {
    key += '\x1f';
    key += EncodeValue(c.literal);
  }
  return key;
}

/// Emits whole bitmap words: bit b of word wi answers pred(rows[wi*64+b]).
template <typename Pred>
void ScanWords(const std::vector<RowId>& rows, size_t word_begin,
               size_t word_end, const Pred& pred, Bitmap* out) {
  const size_t n = rows.size();
  for (size_t wi = word_begin; wi < word_end; ++wi) {
    const size_t base = wi * 64;
    const size_t limit = std::min<size_t>(64, n - base);
    uint64_t w = 0;
    for (size_t b = 0; b < limit; ++b) {
      w |= static_cast<uint64_t>(pred(rows[base + b])) << b;
    }
    out->set_word(wi, w);
  }
}

/// Numeric clause kernels, generic over the raw-storage loader (int64
/// widens to double, matching Column::AsDouble). Nulls are folded in
/// with bitwise & — the null slot holds a harmless default, so both
/// sides evaluate unconditionally and the row loop stays branch-free.
template <typename Loader>
void ScanNumeric(const CompiledClause& c, const std::vector<RowId>& rows,
                 size_t word_begin, size_t word_end, const Loader& load,
                 Bitmap* out) {
  const Column& col = *c.column;
  const double t = c.threshold;
  auto scan = [&](auto cmp) {
    if (col.has_nulls()) {
      ScanWords(
          rows, word_begin, word_end,
          [&](RowId r) { return static_cast<bool>(!col.IsNull(r) & cmp(load(r))); },
          out);
    } else {
      ScanWords(rows, word_begin, word_end,
                [&](RowId r) { return cmp(load(r)); }, out);
    }
  };
  switch (c.op) {
    case CompareOp::kEq:
      scan([t](double v) { return v == t; });
      break;
    case CompareOp::kNe:
      scan([t](double v) { return v != t; });
      break;
    case CompareOp::kLt:
      scan([t](double v) { return v < t; });
      break;
    case CompareOp::kLe:
      // Negated strict comparisons, same as Clause::Matches: NaN
      // satisfies kLe/kGe (neither side of < holds).
      scan([t](double v) { return !(t < v); });
      break;
    case CompareOp::kGt:
      scan([t](double v) { return t < v; });
      break;
    case CompareOp::kGe:
      scan([t](double v) { return !(v < t); });
      break;
    case CompareOp::kIn:
      scan([&c](double v) {
        return !std::isnan(v) && std::binary_search(c.in_numbers.begin(),
                                                    c.in_numbers.end(), v);
      });
      break;
    case CompareOp::kContains:
      DBW_CHECK(false) << "CONTAINS kernel on numeric column";
  }
}

/// String clause kernels over dictionary codes. The null sentinel code
/// -1 needs no validity lookup: kEq compares against a code >= -2 (or
/// -2 for absent literals), kNe requires code >= 0, and the kIn /
/// kContains truth table is shifted by one so index 0 (code -1) is
/// always false.
void ScanString(const CompiledClause& c, const std::vector<RowId>& rows,
                size_t word_begin, size_t word_end, Bitmap* out) {
  const int32_t* codes = c.column->code_data().data();
  switch (c.op) {
    case CompareOp::kEq: {
      const int32_t key = c.code;
      ScanWords(rows, word_begin, word_end,
                [codes, key](RowId r) { return codes[r] == key; }, out);
      break;
    }
    case CompareOp::kNe: {
      const int32_t key = c.code;
      ScanWords(
          rows, word_begin, word_end,
          [codes, key](RowId r) {
            return static_cast<bool>((codes[r] >= 0) & (codes[r] != key));
          },
          out);
      break;
    }
    case CompareOp::kIn:
    case CompareOp::kContains: {
      const uint8_t* table = c.code_table.data();
      ScanWords(rows, word_begin, word_end,
                [codes, table](RowId r) {
                  return table[codes[r] + 1] != 0;
                },
                out);
      break;
    }
    default:
      DBW_CHECK(false) << "ordered kernel on string column";
  }
}

}  // namespace

Result<CompiledClause> CompileClause(const Clause& clause,
                                     const Table& table) {
  DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(clause.attribute));
  const Column& col = table.column(idx);
  CompiledClause out;
  out.column = &col;
  out.op = clause.op;
  out.is_string = col.type() == DataType::kString;

  // Literal translation mirrors Predicate::Bind clause for clause —
  // including the error messages — so engine users see unchanged
  // failure behavior on ill-typed predicates.
  switch (clause.op) {
    case CompareOp::kEq:
    case CompareOp::kNe:
      if (out.is_string) {
        if (!clause.literal.is_string()) {
          return Status::TypeError("comparing string column '" +
                                   clause.attribute + "' to " +
                                   clause.literal.ToString());
        }
        // Normalize FindCode's -1 (absent literal) to -2: -1 is the
        // null sentinel in code_data(), and a null row must not
        // compare equal to an absent literal.
        out.code = col.FindCode(clause.literal.str());
        if (out.code < 0) out.code = -2;
      } else {
        DBW_ASSIGN_OR_RETURN(out.threshold, clause.literal.AsDouble());
      }
      break;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      if (out.is_string) {
        return Status::TypeError("ordered comparison on string column '" +
                                 clause.attribute + "'");
      }
      DBW_ASSIGN_OR_RETURN(out.threshold, clause.literal.AsDouble());
      break;
    }
    case CompareOp::kIn:
      if (out.is_string) {
        out.code_table.assign(col.dictionary_size() + 1, 0);
        for (const Value& v : clause.in_set) {
          if (!v.is_string()) {
            return Status::TypeError("IN set for string column '" +
                                     clause.attribute + "' contains " +
                                     v.ToString());
          }
          const int32_t code = col.FindCode(v.str());
          if (code >= 0) out.code_table[code + 1] = 1;
        }
      } else {
        for (const Value& v : clause.in_set) {
          DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
          // NaN is IN nothing under Value equality; it would also
          // break binary_search's ordering.
          if (!std::isnan(d)) out.in_numbers.push_back(d);
        }
        std::sort(out.in_numbers.begin(), out.in_numbers.end());
      }
      break;
    case CompareOp::kContains: {
      if (!out.is_string) {
        return Status::TypeError("CONTAINS on non-string column '" +
                                 clause.attribute + "'");
      }
      if (!clause.literal.is_string()) {
        return Status::TypeError("CONTAINS needs a string literal");
      }
      // One substring search per distinct string, not per row.
      const std::string& sub = clause.literal.str();
      out.code_table.assign(col.dictionary_size() + 1, 0);
      for (size_t code = 0; code < col.dictionary_size(); ++code) {
        if (col.DictionaryValue(static_cast<int32_t>(code)).find(sub) !=
            std::string::npos) {
          out.code_table[code + 1] = 1;
        }
      }
      break;
    }
  }
  return out;
}

void MatchClauseWords(const CompiledClause& clause,
                      const std::vector<RowId>& rows, size_t word_begin,
                      size_t word_end, Bitmap* out) {
  if (clause.is_string) {
    ScanString(clause, rows, word_begin, word_end, out);
  } else if (clause.column->type() == DataType::kInt64) {
    const int64_t* data = clause.column->int64_data().data();
    ScanNumeric(clause, rows, word_begin, word_end,
                [data](RowId r) { return static_cast<double>(data[r]); },
                out);
  } else {
    const double* data = clause.column->double_data().data();
    ScanNumeric(clause, rows, word_begin, word_end,
                [data](RowId r) { return data[r]; }, out);
  }
}

MatchEngine::MatchEngine(const Table& table, std::vector<RowId> rows)
    : table_(&table),
      rows_(std::move(rows)),
      built_num_rows_(table.num_rows()) {}

Status MatchEngine::CheckFresh() const {
  if (table_->num_rows() != built_num_rows_) {
    return Status::InvalidArgument(
        "MatchEngine cache is stale: table '" + table_->name() + "' grew " +
        std::to_string(built_num_rows_) + " -> " +
        std::to_string(table_->num_rows()) +
        " rows since the engine was built; rebuild the engine");
  }
  return Status::OK();
}

MatchEngine::ClauseEntry* MatchEngine::EnsureClause(const Clause& clause,
                                                    const std::string& key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++cache_hits_;
    Metrics().clause_lookups->Increment();
    Metrics().cache_hits->Increment();
    return &entries_[it->second];
  }
  ++cache_misses_;
  Metrics().clause_lookups->Increment();
  Metrics().cache_misses->Increment();
  ClauseEntry entry;
  Result<CompiledClause> compiled = CompileClause(clause, *table_);
  if (compiled.ok()) {
    entry.supported = true;
    entry.bits = Bitmap(rows_.size());
    MatchClauseWords(*compiled, rows_, 0, entry.bits.num_words(),
                     &entry.bits);
    ++bitmaps_materialized_;
    Metrics().bitmaps_materialized->Increment();
  }
  // Clauses the kernels cannot translate stay cached as unsupported;
  // predicates touching them fall back to the boxed path, where Bind
  // reports the same failure (or handles the shape).
  const size_t slot = entries_.size();
  index_.emplace(key, slot);
  entries_.push_back(std::move(entry));
  return &entries_[slot];
}

Status MatchEngine::Materialize(
    const std::vector<const Predicate*>& predicates,
    const ParallelOptions& options) {
  DBW_RETURN_NOT_OK(CheckFresh());
  const ExecContext& ctx =
      options.ctx != nullptr ? *options.ctx : ExecContext::None();
  DBW_FAULT(ctx, "match/materialize");
  DBW_TRACE_SPAN("match/materialize");
  Metrics().materialize_calls->Increment();

  // Entries added by this call live at the tail of entries_; on an
  // interrupt or failure they are rolled back wholesale so the cache
  // never holds a partially scanned (i.e. wrong) bitmap.
  const size_t entries_base = entries_.size();
  auto rollback = [&] {
    for (auto it = index_.begin(); it != index_.end();) {
      if (it->second >= entries_base) {
        it = index_.erase(it);
      } else {
        ++it;
      }
    }
    entries_.resize(entries_base);
  };

  // Serial pass: canonicalize, dedupe, and compile the distinct new
  // clauses; the scans themselves are the parallel part.
  std::vector<size_t> fresh;            // entry slots awaiting a scan
  std::vector<CompiledClause> programs;  // index-aligned with `fresh`
  const size_t bitmap_bytes = ((rows_.size() + 63) / 64) * sizeof(uint64_t);
  for (const Predicate* p : predicates) {
    for (const Clause& c : p->clauses()) {
      const std::string key = KeyOf(c);
      auto it = index_.find(key);
      if (it != index_.end()) {
        ++cache_hits_;
        Metrics().clause_lookups->Increment();
        Metrics().cache_hits->Increment();
        continue;
      }
      ++cache_misses_;
      Metrics().clause_lookups->Increment();
      Metrics().cache_misses->Increment();
      ClauseEntry entry;
      Result<CompiledClause> compiled = CompileClause(c, *table_);
      if (compiled.ok()) {
        if (ctx.budget != nullptr) {
          Status charged = ctx.budget->ChargeBitmapBytes(bitmap_bytes);
          if (!charged.ok()) {
            rollback();
            return charged;
          }
        }
        entry.supported = true;
        entry.bits = Bitmap(rows_.size());
        fresh.push_back(entries_.size());
        programs.push_back(*std::move(compiled));
      }
      index_.emplace(key, entries_.size());
      entries_.push_back(std::move(entry));
    }
  }
  if (fresh.empty()) return ctx.CheckContinue();

  // One flat work list of (clause, word-chunk) items; every item owns
  // whole words of one bitmap, so chunk boundaries (and therefore the
  // output) are deterministic at any thread count.
  constexpr size_t kWordsPerChunk = 256;  // 16k rows per kernel call
  const size_t num_words = (rows_.size() + 63) / 64;
  const size_t chunks_per_clause =
      std::max<size_t>(1, (num_words + kWordsPerChunk - 1) / kWordsPerChunk);
  try {
    ParallelForEach(
        0, fresh.size() * chunks_per_clause,
        [&](size_t item) {
          const size_t j = item / chunks_per_clause;
          const size_t k = item % chunks_per_clause;
          const size_t word_begin = k * kWordsPerChunk;
          const size_t word_end =
              std::min(num_words, word_begin + kWordsPerChunk);
          if (word_begin < word_end) {
            MatchClauseWords(programs[j], rows_, word_begin, word_end,
                             &entries_[fresh[j]].bits);
          }
        },
        options);
  } catch (const std::exception& e) {
    rollback();
    return Status::RuntimeError(std::string("materialize scan failed: ") +
                                e.what());
  }
  // A cooperative stop skips scan chunks, leaving fresh bitmaps
  // incomplete; drop them so a later retry rescans from scratch.
  Status cont = ctx.CheckContinue();
  if (!cont.ok()) {
    rollback();
    return cont;
  }
  // Only fully scanned bitmaps count as materialized (rolled-back
  // partial scans never reach here).
  bitmaps_materialized_ += fresh.size();
  Metrics().bitmaps_materialized->Increment(fresh.size());
  return cont;
}

Result<Bitmap> MatchEngine::MatchPrepared(const Predicate& predicate) const {
  DBW_RETURN_NOT_OK(CheckFresh());
  Bitmap out;
  bool first = true;
  for (const Clause& c : predicate.clauses()) {
    auto it = index_.find(KeyOf(c));
    if (it == index_.end()) {
      return Status::InvalidArgument(
          "MatchPrepared: clause was not materialized: " + c.ToString());
    }
    const ClauseEntry& entry = entries_[it->second];
    if (!entry.supported) return MatchBoxed(predicate);
    if (first) {
      out = entry.bits;
      first = false;
    } else {
      out.AndWith(entry.bits);
    }
  }
  if (first) {
    out = Bitmap(rows_.size());
    out.SetAll();  // the empty conjunction matches every row
  }
  return out;
}

Result<Bitmap> MatchEngine::Match(const Predicate& predicate) {
  DBW_RETURN_NOT_OK(CheckFresh());
  for (const Clause& c : predicate.clauses()) {
    EnsureClause(c, KeyOf(c));
  }
  return MatchPrepared(predicate);
}

Result<const Bitmap*> MatchEngine::ClauseBitmap(const Clause& clause) {
  DBW_RETURN_NOT_OK(CheckFresh());
  ClauseEntry* entry = EnsureClause(clause, KeyOf(clause));
  if (!entry->supported) {
    return Status::NotImplemented("no match kernel for clause: " +
                                  clause.ToString());
  }
  return &entry->bits;
}

Result<Bitmap> MatchEngine::MatchBoxed(const Predicate& predicate) const {
  boxed_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  Metrics().boxed_fallbacks->Increment();
  DBW_ASSIGN_OR_RETURN(BoundPredicate bound, predicate.Bind(*table_));
  return bound.MatchBitmap(rows_);
}

}  // namespace dbwipes
