#include "dbwipes/expr/match_kernels.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "dbwipes/common/exec_context.h"
#include "dbwipes/common/logging.h"
#include "dbwipes/common/metrics.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

/// Process-wide counters, mirrored from the per-engine members so the
/// Service `stats` snapshot can report matching behavior across every
/// engine instance. Pointers are resolved once; increments are relaxed
/// atomics on cold-ish paths (per clause lookup / per materialize
/// call), never per row.
struct MatchMetrics {
  MetricCounter* materialize_calls;
  MetricCounter* clause_lookups;
  MetricCounter* cache_hits;
  MetricCounter* cache_misses;
  MetricCounter* bitmaps_materialized;
  MetricCounter* boxed_fallbacks;
  MetricCounter* fused_lookups;
  MetricCounter* fused_hits;
  MetricCounter* fused_compiles;
  MetricCounter* fused_fallbacks;
  MetricCounter* fused_evals;
};

const MatchMetrics& Metrics() {
  static const MatchMetrics m = {
      MetricsRegistry::Global().GetCounter("match.materialize_calls"),
      MetricsRegistry::Global().GetCounter("match.clause_lookups"),
      MetricsRegistry::Global().GetCounter("match.cache_hits"),
      MetricsRegistry::Global().GetCounter("match.cache_misses"),
      MetricsRegistry::Global().GetCounter("match.bitmaps_materialized"),
      MetricsRegistry::Global().GetCounter("match.boxed_fallbacks"),
      MetricsRegistry::Global().GetCounter("match.fused_lookups"),
      MetricsRegistry::Global().GetCounter("match.fused_hits"),
      MetricsRegistry::Global().GetCounter("match.fused_compiles"),
      MetricsRegistry::Global().GetCounter("match.fused_fallbacks"),
      MetricsRegistry::Global().GetCounter("match.fused_evals"),
  };
  return m;
}

bool FusedEnabledFromEnv() {
  const char* env = std::getenv("DBWIPES_FUSED");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0);
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Exact cache key for a clause. Clause::CanonicalString renders
/// doubles at display precision, which can collapse distinct
/// thresholds into one string; the cache key must never do that, so
/// doubles are encoded by bit pattern. IN sets are sorted by encoding
/// (conjunction members are order-independent ORs).
std::string EncodeValue(const Value& v) {
  if (v.is_null()) return "n";
  if (v.is_int64()) return "i" + std::to_string(v.int64());
  if (v.is_double()) {
    const double d = v.dbl();
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    return "d" + std::to_string(bits);
  }
  return "s" + v.str();
}

std::string KeyOf(const Clause& c) {
  std::string key = c.attribute;
  key += '\x1f';
  key += std::to_string(static_cast<int>(c.op));
  if (c.op == CompareOp::kIn) {
    std::vector<std::string> parts;
    parts.reserve(c.in_set.size());
    for (const Value& v : c.in_set) parts.push_back(EncodeValue(v));
    std::sort(parts.begin(), parts.end());
    for (const std::string& p : parts) {
      key += '\x1f';
      key += p;
    }
  } else {
    key += '\x1f';
    key += EncodeValue(c.literal);
  }
  return key;
}

/// Canonical fused-program key: the predicate's clause keys, sorted
/// (conjunctions are order-independent) and joined on a separator one
/// level above KeyOf's field separator. Two predicates with the same
/// clause set share one compiled program.
std::string PredicateKey(std::vector<std::string> clause_keys) {
  std::sort(clause_keys.begin(), clause_keys.end());
  std::string out;
  for (const std::string& k : clause_keys) {
    if (!out.empty()) out += '\x1e';
    out += k;
  }
  return out;
}

/// Emits whole bitmap words: bit b of word wi answers pred(rows[wi*64+b]).
template <typename Pred>
void ScanWords(const std::vector<RowId>& rows, size_t word_begin,
               size_t word_end, const Pred& pred, Bitmap* out) {
  const size_t n = rows.size();
  for (size_t wi = word_begin; wi < word_end; ++wi) {
    const size_t base = wi * 64;
    const size_t limit = std::min<size_t>(64, n - base);
    uint64_t w = 0;
    for (size_t b = 0; b < limit; ++b) {
      w |= static_cast<uint64_t>(pred(rows[base + b])) << b;
    }
    out->set_word(wi, w);
  }
}

/// Numeric clause kernels, generic over the raw-storage loader (int64
/// widens to double, matching Column::AsDouble). Nulls are folded in
/// with bitwise & — the null slot holds a harmless default, so both
/// sides evaluate unconditionally and the row loop stays branch-free.
template <typename Loader>
void ScanNumeric(const CompiledClause& c, const std::vector<RowId>& rows,
                 size_t word_begin, size_t word_end, const Loader& load,
                 Bitmap* out) {
  const Column& col = *c.column;
  const double t = c.threshold;
  auto scan = [&](auto cmp) {
    if (col.has_nulls()) {
      ScanWords(
          rows, word_begin, word_end,
          [&](RowId r) { return static_cast<bool>(!col.IsNull(r) & cmp(load(r))); },
          out);
    } else {
      ScanWords(rows, word_begin, word_end,
                [&](RowId r) { return cmp(load(r)); }, out);
    }
  };
  switch (c.op) {
    case CompareOp::kEq:
      scan([t](double v) { return v == t; });
      break;
    case CompareOp::kNe:
      scan([t](double v) { return v != t; });
      break;
    case CompareOp::kLt:
      scan([t](double v) { return v < t; });
      break;
    case CompareOp::kLe:
      // Negated strict comparisons, same as Clause::Matches: NaN
      // satisfies kLe/kGe (neither side of < holds).
      scan([t](double v) { return !(t < v); });
      break;
    case CompareOp::kGt:
      scan([t](double v) { return t < v; });
      break;
    case CompareOp::kGe:
      scan([t](double v) { return !(v < t); });
      break;
    case CompareOp::kIn:
      scan([&c](double v) {
        return !std::isnan(v) && std::binary_search(c.in_numbers.begin(),
                                                    c.in_numbers.end(), v);
      });
      break;
    case CompareOp::kContains:
      DBW_CHECK(false) << "CONTAINS kernel on numeric column";
  }
}

/// String clause kernels over dictionary codes. The null sentinel code
/// -1 needs no validity lookup: kEq compares against a code >= -2 (or
/// -2 for absent literals), kNe requires code >= 0, and the kIn /
/// kContains truth table is shifted by one so index 0 (code -1) is
/// always false.
void ScanString(const CompiledClause& c, const std::vector<RowId>& rows,
                size_t word_begin, size_t word_end, Bitmap* out) {
  const int32_t* codes = c.column->code_data().data();
  switch (c.op) {
    case CompareOp::kEq: {
      const int32_t key = c.code;
      ScanWords(rows, word_begin, word_end,
                [codes, key](RowId r) { return codes[r] == key; }, out);
      break;
    }
    case CompareOp::kNe: {
      const int32_t key = c.code;
      ScanWords(
          rows, word_begin, word_end,
          [codes, key](RowId r) {
            return static_cast<bool>((codes[r] >= 0) & (codes[r] != key));
          },
          out);
      break;
    }
    case CompareOp::kIn:
    case CompareOp::kContains: {
      const uint8_t* table = c.code_table.data();
      ScanWords(rows, word_begin, word_end,
                [codes, table](RowId r) {
                  return table[codes[r] + 1] != 0;
                },
                out);
      break;
    }
    default:
      DBW_CHECK(false) << "ordered kernel on string column";
  }
}

}  // namespace

Result<CompiledClause> CompileClause(const Clause& clause,
                                     const Table& table) {
  DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(clause.attribute));
  const Column& col = table.column(idx);
  CompiledClause out;
  out.column = &col;
  out.op = clause.op;
  out.is_string = col.type() == DataType::kString;

  // Literal translation mirrors Predicate::Bind clause for clause —
  // including the error messages — so engine users see unchanged
  // failure behavior on ill-typed predicates.
  switch (clause.op) {
    case CompareOp::kEq:
    case CompareOp::kNe:
      if (out.is_string) {
        if (!clause.literal.is_string()) {
          return Status::TypeError("comparing string column '" +
                                   clause.attribute + "' to " +
                                   clause.literal.ToString());
        }
        // Normalize FindCode's -1 (absent literal) to -2: -1 is the
        // null sentinel in code_data(), and a null row must not
        // compare equal to an absent literal.
        out.code = col.FindCode(clause.literal.str());
        if (out.code < 0) out.code = -2;
      } else {
        DBW_ASSIGN_OR_RETURN(out.threshold, clause.literal.AsDouble());
      }
      break;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      if (out.is_string) {
        return Status::TypeError("ordered comparison on string column '" +
                                 clause.attribute + "'");
      }
      DBW_ASSIGN_OR_RETURN(out.threshold, clause.literal.AsDouble());
      break;
    }
    case CompareOp::kIn:
      if (out.is_string) {
        out.code_table.assign(col.dictionary_size() + 1, 0);
        for (const Value& v : clause.in_set) {
          if (!v.is_string()) {
            return Status::TypeError("IN set for string column '" +
                                     clause.attribute + "' contains " +
                                     v.ToString());
          }
          const int32_t code = col.FindCode(v.str());
          if (code >= 0) out.code_table[code + 1] = 1;
        }
      } else {
        for (const Value& v : clause.in_set) {
          DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
          // NaN is IN nothing under Value equality; it would also
          // break binary_search's ordering.
          if (!std::isnan(d)) out.in_numbers.push_back(d);
        }
        std::sort(out.in_numbers.begin(), out.in_numbers.end());
      }
      break;
    case CompareOp::kContains: {
      if (!out.is_string) {
        return Status::TypeError("CONTAINS on non-string column '" +
                                 clause.attribute + "'");
      }
      if (!clause.literal.is_string()) {
        return Status::TypeError("CONTAINS needs a string literal");
      }
      // One substring search per distinct string, not per row.
      const std::string& sub = clause.literal.str();
      out.code_table.assign(col.dictionary_size() + 1, 0);
      for (size_t code = 0; code < col.dictionary_size(); ++code) {
        if (col.DictionaryValue(static_cast<int32_t>(code)).find(sub) !=
            std::string::npos) {
          out.code_table[code + 1] = 1;
        }
      }
      break;
    }
  }
  return out;
}

void MatchClauseWords(const CompiledClause& clause,
                      const std::vector<RowId>& rows, size_t word_begin,
                      size_t word_end, Bitmap* out) {
  if (clause.is_string) {
    ScanString(clause, rows, word_begin, word_end, out);
  } else if (clause.column->type() == DataType::kInt64) {
    const int64_t* data = clause.column->int64_data().data();
    ScanNumeric(clause, rows, word_begin, word_end,
                [data](RowId r) { return static_cast<double>(data[r]); },
                out);
  } else {
    const double* data = clause.column->double_data().data();
    ScanNumeric(clause, rows, word_begin, word_end,
                [data](RowId r) { return data[r]; }, out);
  }
}

MatchEngine::MatchEngine(const Table& table, std::vector<RowId> rows)
    : table_(&table),
      rows_(std::move(rows)),
      built_num_rows_(table.num_rows()),
      tier_(ResolveSimdTier()),
      fused_enabled_(FusedEnabledFromEnv()) {
  // A contiguous universe (the common full-table / dense-suspect case)
  // lets the SIMD tier use plain loads instead of gathers.
  rows_contiguous_ = true;
  for (size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i] != rows_[0] + i) {
      rows_contiguous_ = false;
      break;
    }
  }
}

Status MatchEngine::CheckFresh() const {
  if (table_->num_rows() != built_num_rows_) {
    return Status::InvalidArgument(
        "MatchEngine cache is stale: table '" + table_->name() + "' grew " +
        std::to_string(built_num_rows_) + " -> " +
        std::to_string(table_->num_rows()) +
        " rows since the engine was built; rebuild the engine");
  }
  return Status::OK();
}

MatchEngine::ClauseEntry* MatchEngine::EnsureClause(const Clause& clause,
                                                    const std::string& key) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++cache_hits_;
    Metrics().clause_lookups->Increment();
    Metrics().cache_hits->Increment();
    return &entries_[it->second];
  }
  ++cache_misses_;
  Metrics().clause_lookups->Increment();
  Metrics().cache_misses->Increment();
  ClauseEntry entry;
  Result<CompiledClause> compiled = CompileClause(clause, *table_);
  if (compiled.ok()) {
    entry.supported = true;
    entry.bits = Bitmap(rows_.size());
    MatchClauseWords(*compiled, rows_, 0, entry.bits.num_words(),
                     &entry.bits);
    ++bitmaps_materialized_;
    Metrics().bitmaps_materialized->Increment();
  }
  // Clauses the kernels cannot translate stay cached as unsupported;
  // predicates touching them fall back to the boxed path, where Bind
  // reports the same failure (or handles the shape).
  const size_t slot = entries_.size();
  index_.emplace(key, slot);
  entries_.push_back(std::move(entry));
  return &entries_[slot];
}

Status MatchEngine::Materialize(
    const std::vector<const Predicate*>& predicates,
    const ParallelOptions& options) {
  DBW_RETURN_NOT_OK(CheckFresh());
  const ExecContext& ctx =
      options.ctx != nullptr ? *options.ctx : ExecContext::None();
  DBW_FAULT(ctx, "match/materialize");
  if (fused_enabled_) {
    // Fused-conjunction planning is part of every materialize batch, so
    // the site trips whenever fused compilation is on (nothing has been
    // mutated yet; an injected error needs no rollback).
    DBW_FAULT(ctx, "match/fused");
  }
  DBW_TRACE_SPAN("match/materialize");
  Metrics().materialize_calls->Increment();

  // State added by this call lives at the tail of entries_ /
  // fused_entries_; on an interrupt or failure it is rolled back
  // wholesale so the cache never holds a partially scanned (i.e.
  // wrong) bitmap or a program referencing one.
  const size_t entries_base = entries_.size();
  const size_t fused_base = fused_entries_.size();
  std::vector<const Column*> validity_added;
  auto rollback = [&] {
    for (auto it = index_.begin(); it != index_.end();) {
      if (it->second >= entries_base) {
        it = index_.erase(it);
      } else {
        ++it;
      }
    }
    entries_.resize(entries_base);
    for (auto it = fused_index_.begin(); it != fused_index_.end();) {
      if (it->second >= fused_base) {
        it = fused_index_.erase(it);
      } else {
        ++it;
      }
    }
    fused_entries_.resize(fused_base);
    for (const Column* col : validity_added) validity_.erase(col);
  };

  // Pass 0 (serial): canonicalize every clause once and count each
  // key's frequency within the batch. Frequency drives the fusion
  // policy: a clause shared by several predicates (threshold families,
  // repeated equalities) is cheaper materialized once and word-ANDed —
  // fusing it would re-scan its column per predicate.
  std::vector<std::vector<std::string>> pred_keys(predicates.size());
  std::unordered_map<std::string, size_t> key_freq;
  for (size_t i = 0; i < predicates.size(); ++i) {
    const auto& clauses = predicates[i]->clauses();
    pred_keys[i].reserve(clauses.size());
    for (const Clause& c : clauses) {
      pred_keys[i].push_back(KeyOf(c));
      ++key_freq[pred_keys[i].back()];
    }
  }

  // Batch-local compile cache shared by the fused planner and the
  // clause materializer, so no clause compiles twice per batch.
  // unordered_map values are pointer-stable across inserts.
  std::unordered_map<std::string, CompiledClause> compiled_ok;
  std::unordered_set<std::string> compile_failed;
  auto compile_key = [&](const Clause& c,
                         const std::string& key) -> const CompiledClause* {
    auto it = compiled_ok.find(key);
    if (it != compiled_ok.end()) return &it->second;
    if (compile_failed.count(key) != 0) return nullptr;
    Result<CompiledClause> r = CompileClause(c, *table_);
    if (!r.ok()) {
      compile_failed.insert(key);
      return nullptr;
    }
    return &compiled_ok.emplace(key, *std::move(r)).first->second;
  };

  // Pass 1 (serial): plan fused programs for multi-clause predicates.
  // A clause goes inline iff it is unique within the batch AND not
  // already cached (a cached bitmap is pure word-AND traffic); shared
  // or cached clauses enter the program as bitmap references. When no
  // clause would go inline, fusion buys nothing over word-AND and the
  // predicate falls back. Every eligible predicate counts exactly one
  // of hit / compile / fallback (the fused counter law).
  struct PlannedOp {
    const std::string* key;          // owned by pred_keys
    const Clause* clause;
    bool inline_op;
  };
  struct PlannedProgram {
    std::string pred_key;
    std::vector<PlannedOp> ops;
  };
  std::vector<PlannedProgram> planned;
  std::unordered_set<std::string> planned_keys;  // batch-local dedupe
  // handled[i]: 0 = word-AND path, 1 = program planned or cached.
  std::vector<uint8_t> handled(predicates.size(), 0);
  if (fused_enabled_) {
    const auto plan_t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (pred_keys[i].size() < 2) continue;  // nothing to fuse
      ++fused_lookups_;
      Metrics().fused_lookups->Increment();
      std::string pred_key = PredicateKey(pred_keys[i]);
      if (fused_index_.count(pred_key) != 0 ||
          planned_keys.count(pred_key) != 0) {
        ++fused_hits_;
        Metrics().fused_hits->Increment();
        handled[i] = 1;
        continue;
      }
      PlannedProgram plan;
      plan.pred_key = std::move(pred_key);
      const auto& clauses = predicates[i]->clauses();
      bool fusible = true;
      size_t inline_count = 0;
      for (size_t j = 0; j < clauses.size(); ++j) {
        PlannedOp op{&pred_keys[i][j], &clauses[j], false};
        auto cached = index_.find(*op.key);
        if (cached != index_.end()) {
          // An unsupported cached clause has no bitmap to reference;
          // the predicate must keep boxing via the word-AND path.
          if (!entries_[cached->second].supported) {
            fusible = false;
            break;
          }
        } else {
          const CompiledClause* cc = compile_key(clauses[j], *op.key);
          if (cc == nullptr) {
            fusible = false;
            break;
          }
          op.inline_op = key_freq[*op.key] == 1;
          inline_count += op.inline_op ? 1 : 0;
        }
        plan.ops.push_back(op);
      }
      if (!fusible || inline_count == 0) {
        ++fused_fallbacks_;
        Metrics().fused_fallbacks->Increment();
        continue;
      }
      ++fused_compiles_;
      Metrics().fused_compiles->Increment();
      handled[i] = 1;
      planned_keys.insert(plan.pred_key);
      planned.push_back(std::move(plan));
    }
    fused_compile_ms_ += MsSince(plan_t0);
  }

  // Pass 2 (serial): dedupe and compile the distinct new clauses that
  // still need cached bitmaps — every clause of word-AND predicates,
  // but only the bitmap-reference clauses of planned programs (inline
  // clauses are the fusion win: no intermediate bitmap exists).
  std::vector<size_t> fresh;  // entry slots awaiting a scan
  std::vector<const CompiledClause*> programs;  // index-aligned w/ fresh
  const size_t bitmap_bytes = ((rows_.size() + 63) / 64) * sizeof(uint64_t);
  auto ensure_entry = [&](const Clause& c, const std::string& key) -> Status {
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++cache_hits_;
      Metrics().clause_lookups->Increment();
      Metrics().cache_hits->Increment();
      return Status::OK();
    }
    ++cache_misses_;
    Metrics().clause_lookups->Increment();
    Metrics().cache_misses->Increment();
    ClauseEntry entry;
    const CompiledClause* compiled = compile_key(c, key);
    if (compiled != nullptr) {
      if (ctx.budget != nullptr) {
        DBW_RETURN_NOT_OK(ctx.budget->ChargeBitmapBytes(bitmap_bytes));
      }
      entry.supported = true;
      entry.bits = Bitmap(rows_.size());
      fresh.push_back(entries_.size());
      programs.push_back(compiled);
    }
    index_.emplace(key, entries_.size());
    entries_.push_back(std::move(entry));
    return Status::OK();
  };
  for (size_t i = 0; i < predicates.size(); ++i) {
    Status st = Status::OK();
    if (handled[i] != 0) {
      // Planned programs need entries only for their references; fused
      // cache hits are fully covered by the existing program.
      continue;
    }
    const auto& clauses = predicates[i]->clauses();
    for (size_t j = 0; j < clauses.size() && st.ok(); ++j) {
      st = ensure_entry(clauses[j], pred_keys[i][j]);
    }
    if (!st.ok()) {
      rollback();
      return st;
    }
  }
  for (const PlannedProgram& plan : planned) {
    for (const PlannedOp& op : plan.ops) {
      if (op.inline_op) continue;
      Status st = ensure_entry(*op.clause, *op.key);
      if (!st.ok()) {
        rollback();
        return st;
      }
    }
  }

  // Pass 3 (serial): lower the planned programs. Reference slots store
  // entries_ indices (resolved to bitmap pointers per eval, so the
  // vector may relocate); inline numeric ops over nullable columns get
  // the shared universe validity bitmap.
  if (!planned.empty()) {
    const auto lower_t0 = std::chrono::steady_clock::now();
    for (PlannedProgram& plan : planned) {
      FusedEntry fe;
      for (const PlannedOp& op : plan.ops) {
        if (op.inline_op) {
          const CompiledClause& cc = compiled_ok.at(*op.key);
          const Bitmap* valid = nullptr;
          if (!cc.is_string && cc.column->has_nulls()) {
            valid = EnsureValidity(*cc.column, &validity_added);
          }
          AppendClauseOp(cc, valid, &fe.program);
        } else {
          AppendBitmapRef(static_cast<uint32_t>(fe.ref_entries.size()),
                          &fe.program);
          fe.ref_entries.push_back(index_.at(*op.key));
        }
      }
      fused_index_.emplace(std::move(plan.pred_key), fused_entries_.size());
      fused_entries_.push_back(std::move(fe));
    }
    fused_compile_ms_ += MsSince(lower_t0);
  }

  // Pass 4: scan the fresh clause bitmaps.
  const size_t num_words = (rows_.size() + 63) / 64;
  constexpr size_t kWordsPerChunk = 256;  // 16k rows per kernel call
  if (!fresh.empty() &&
      fresh.size() * rows_.size() < (size_t{1} << 16)) {
    // Small batch: chunking + pool dispatch overhead beats any
    // parallel win; scan serially with a stop check per clause.
    for (size_t j = 0; j < fresh.size() && !ctx.StopRequested(); ++j) {
      MatchClauseWords(*programs[j], rows_, 0, num_words,
                       &entries_[fresh[j]].bits);
    }
  } else if (!fresh.empty()) {
    // One flat work list of (clause, word-chunk) items; every item owns
    // whole words of one bitmap, so chunk boundaries (and therefore the
    // output) are deterministic at any thread count.
    const size_t chunks_per_clause =
        std::max<size_t>(1, (num_words + kWordsPerChunk - 1) / kWordsPerChunk);
    try {
      ParallelForEach(
          0, fresh.size() * chunks_per_clause,
          [&](size_t item) {
            const size_t j = item / chunks_per_clause;
            const size_t k = item % chunks_per_clause;
            const size_t word_begin = k * kWordsPerChunk;
            const size_t word_end =
                std::min(num_words, word_begin + kWordsPerChunk);
            if (word_begin < word_end) {
              MatchClauseWords(*programs[j], rows_, word_begin, word_end,
                               &entries_[fresh[j]].bits);
            }
          },
          options);
    } catch (const std::exception& e) {
      rollback();
      return Status::RuntimeError(std::string("materialize scan failed: ") +
                                  e.what());
    }
  }
  // A cooperative stop skips scan chunks, leaving fresh bitmaps
  // incomplete; drop them — and the programs referencing them — so a
  // later retry rebuilds from scratch.
  Status cont = ctx.CheckContinue();
  if (!cont.ok()) {
    rollback();
    return cont;
  }
  // Only fully scanned bitmaps count as materialized (rolled-back
  // partial scans never reach here).
  bitmaps_materialized_ += fresh.size();
  Metrics().bitmaps_materialized->Increment(fresh.size());
  return cont;
}

const Bitmap* MatchEngine::EnsureValidity(const Column& col,
                                          std::vector<const Column*>* added) {
  auto it = validity_.find(&col);
  if (it != validity_.end()) return it->second.get();
  // Universe-positional: bit i answers !IsNull(rows_[i]). Heap-owned so
  // op pointers survive map rehashes and engine moves.
  auto bits = std::make_unique<Bitmap>(rows_.size());
  Bitmap* raw = bits.get();
  const size_t num_words = raw->num_words();
  for (size_t wi = 0; wi < num_words; ++wi) {
    const size_t base = wi * 64;
    const size_t limit = std::min<size_t>(64, rows_.size() - base);
    uint64_t w = 0;
    for (size_t b = 0; b < limit; ++b) {
      w |= static_cast<uint64_t>(!col.IsNull(rows_[base + b])) << b;
    }
    raw->set_word(wi, w);
  }
  validity_.emplace(&col, std::move(bits));
  if (added != nullptr) added->push_back(&col);
  return raw;
}

Result<Bitmap> MatchEngine::EvalFused(const FusedEntry& fe,
                                      const ExecContext& ctx) const {
  // Resolve reference slots to bitmap pointers now — entries_ may have
  // relocated since the program was installed.
  std::vector<const Bitmap*> refs;
  refs.reserve(fe.ref_entries.size());
  for (size_t slot : fe.ref_entries) refs.push_back(&entries_[slot].bits);
  Bitmap out(rows_.size());
  const size_t num_words = out.num_words();
  // Anytime at block granularity: check the context between word
  // blocks, never per row; an interrupt discards the partial bitmap.
  constexpr size_t kCheckWords = 512;  // 32k rows per check
  for (size_t wb = 0; wb < num_words; wb += kCheckWords) {
    DBW_RETURN_NOT_OK(ctx.CheckContinue());
    const size_t we = std::min(num_words, wb + kCheckWords);
    EvalFusedWords(fe.program, tier_, rows_.data(), rows_.size(),
                   rows_contiguous_, refs.data(), wb, we, &out);
  }
  return out;
}

Result<Bitmap> MatchEngine::MatchPrepared(const Predicate& predicate) const {
  return MatchPrepared(predicate, ExecContext::None());
}

Result<Bitmap> MatchEngine::MatchPrepared(const Predicate& predicate,
                                          const ExecContext& ctx) const {
  DBW_RETURN_NOT_OK(CheckFresh());
  if (fused_enabled_ && predicate.num_clauses() >= 2) {
    std::vector<std::string> keys;
    keys.reserve(predicate.num_clauses());
    for (const Clause& c : predicate.clauses()) keys.push_back(KeyOf(c));
    auto it = fused_index_.find(PredicateKey(std::move(keys)));
    if (it != fused_index_.end()) {
      fused_evals_.fetch_add(1, std::memory_order_relaxed);
      Metrics().fused_evals->Increment();
      return EvalFused(fused_entries_[it->second], ctx);
    }
  }
  Bitmap out;
  bool first = true;
  for (const Clause& c : predicate.clauses()) {
    auto it = index_.find(KeyOf(c));
    if (it == index_.end()) {
      return Status::InvalidArgument(
          "MatchPrepared: clause was not materialized: " + c.ToString());
    }
    const ClauseEntry& entry = entries_[it->second];
    if (!entry.supported) return MatchBoxed(predicate);
    if (first) {
      out = entry.bits;
      first = false;
    } else {
      out.AndWith(entry.bits);
    }
  }
  if (first) {
    out = Bitmap(rows_.size());
    out.SetAll();  // the empty conjunction matches every row
  }
  return out;
}

Result<Bitmap> MatchEngine::Match(const Predicate& predicate) {
  DBW_RETURN_NOT_OK(CheckFresh());
  for (const Clause& c : predicate.clauses()) {
    EnsureClause(c, KeyOf(c));
  }
  return MatchPrepared(predicate);
}

Result<const Bitmap*> MatchEngine::ClauseBitmap(const Clause& clause) {
  DBW_RETURN_NOT_OK(CheckFresh());
  ClauseEntry* entry = EnsureClause(clause, KeyOf(clause));
  if (!entry->supported) {
    return Status::NotImplemented("no match kernel for clause: " +
                                  clause.ToString());
  }
  return &entry->bits;
}

Result<Bitmap> MatchEngine::MatchBoxed(const Predicate& predicate) const {
  boxed_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  Metrics().boxed_fallbacks->Increment();
  DBW_ASSIGN_OR_RETURN(BoundPredicate bound, predicate.Bind(*table_));
  return bound.MatchBitmap(rows_);
}

}  // namespace dbwipes
