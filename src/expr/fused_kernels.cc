#include "dbwipes/expr/fused_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "dbwipes/common/logging.h"
#include "dbwipes/expr/match_kernels.h"

#if defined(__x86_64__) || defined(__amd64__)
#define DBWIPES_HAVE_AVX2_TIER 1
#include <immintrin.h>
#else
#define DBWIPES_HAVE_AVX2_TIER 0
#endif

namespace dbwipes {

namespace {

bool EnvDisablesSimd() {
  const char* env = std::getenv("DBWIPES_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
         std::strcmp(env, "0") == 0;
}

bool CpuHasAvx2() {
#if DBWIPES_HAVE_AVX2_TIER
  // One cpuid probe per process; the env override above stays dynamic.
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

inline uint64_t TailMask(size_t limit) {
  return limit >= 64 ? ~uint64_t{0} : ((uint64_t{1} << limit) - 1);
}

// ---------------------------------------------------------------------
// Scalar tier: 64 rows per word through the same comparison expressions
// as the per-clause kernels (match_kernels.cc), so the fused result is
// bit-identical to materialize+AND by construction.
// ---------------------------------------------------------------------

template <typename Fn>
inline uint64_t PackWord(const RowId* rows, size_t base, size_t limit,
                         const Fn& fn) {
  uint64_t w = 0;
  for (size_t b = 0; b < limit; ++b) {
    w |= static_cast<uint64_t>(fn(rows[base + b])) << b;
  }
  return w;
}

template <typename Load>
uint64_t ScalarNumericWord(const FusedOp& op, const RowId* rows, size_t base,
                           size_t limit, const Load& load) {
  const double t = op.threshold;
  switch (op.op) {
    case CompareOp::kEq:
      return PackWord(rows, base, limit,
                      [&](RowId r) { return load(r) == t; });
    case CompareOp::kNe:
      return PackWord(rows, base, limit,
                      [&](RowId r) { return load(r) != t; });
    case CompareOp::kLt:
      return PackWord(rows, base, limit,
                      [&](RowId r) { return load(r) < t; });
    case CompareOp::kLe:
      // Negated strict comparisons, same as Clause::Matches: NaN
      // satisfies kLe/kGe (neither side of < holds).
      return PackWord(rows, base, limit,
                      [&](RowId r) { return !(t < load(r)); });
    case CompareOp::kGt:
      return PackWord(rows, base, limit,
                      [&](RowId r) { return t < load(r); });
    case CompareOp::kGe:
      return PackWord(rows, base, limit,
                      [&](RowId r) { return !(load(r) < t); });
    case CompareOp::kIn:
      return PackWord(rows, base, limit, [&](RowId r) {
        const double v = load(r);
        return !std::isnan(v) &&
               std::binary_search(op.in_data, op.in_data + op.in_size, v);
      });
    case CompareOp::kContains:
      break;
  }
  DBW_CHECK(false) << "CONTAINS body on numeric fused op";
  return 0;
}

uint64_t ScalarOpWord(const FusedOp& op, const RowId* rows, size_t base,
                      size_t limit) {
  switch (op.body) {
    case FusedOp::Body::kDoubleCmp:
    case FusedOp::Body::kNumericIn: {
      const double* data = op.dbl;
      return ScalarNumericWord(op, rows, base, limit,
                               [data](RowId r) { return data[r]; });
    }
    case FusedOp::Body::kInt64Cmp: {
      const int64_t* data = op.i64;
      return ScalarNumericWord(
          op, rows, base, limit,
          [data](RowId r) { return static_cast<double>(data[r]); });
    }
    case FusedOp::Body::kCodeEq: {
      const int32_t* codes = op.codes;
      const int32_t key = op.code;
      return PackWord(rows, base, limit,
                      [codes, key](RowId r) { return codes[r] == key; });
    }
    case FusedOp::Body::kCodeNe: {
      const int32_t* codes = op.codes;
      const int32_t key = op.code;
      return PackWord(rows, base, limit, [codes, key](RowId r) {
        return static_cast<bool>((codes[r] >= 0) & (codes[r] != key));
      });
    }
    case FusedOp::Body::kCodeTable: {
      const int32_t* codes = op.codes;
      const uint32_t* table = op.table;
      return PackWord(rows, base, limit, [codes, table](RowId r) {
        return table[codes[r] + 1] != 0;
      });
    }
    case FusedOp::Body::kBitmapRef:
      break;
  }
  DBW_CHECK(false) << "kBitmapRef resolved outside the op dispatch";
  return 0;
}

// ---------------------------------------------------------------------
// AVX2 tier. Each function carries target("avx2") so the file compiles
// without a global -mavx2; calls are guarded by the runtime tier. The
// comparison immediates mirror the scalar expressions exactly:
//   kEq  v == t        _CMP_EQ_OQ   (ordered,   NaN -> false)
//   kNe  v != t        _CMP_NEQ_UQ  (unordered, NaN -> true)
//   kLt  v <  t        _CMP_LT_OQ
//   kLe  !(t < v)      _CMP_NGT_UQ  (unordered, NaN -> true)
//   kGt  t <  v        _CMP_GT_OQ
//   kGe  !(v < t)      _CMP_NLT_UQ  (unordered, NaN -> true)
// ---------------------------------------------------------------------
#if DBWIPES_HAVE_AVX2_TIER

#define DBW_AVX2 __attribute__((target("avx2")))

// Full-range int64 -> double (Mysticial's magic-constant trick): exact
// round-to-nearest for every int64, matching static_cast<double>.
DBW_AVX2 inline __m256d I64ToPd(__m256i v) {
  const __m256i magic_lo = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256i magic_hi = _mm256_set1_epi64x(0x4530000080000000LL);
  const __m256i magic_all = _mm256_set1_epi64x(0x4530000080100000LL);
  const __m256i v_lo = _mm256_blend_epi32(magic_lo, v, 0x55);
  __m256i v_hi = _mm256_srli_epi64(v, 32);
  v_hi = _mm256_xor_si256(v_hi, magic_hi);
  const __m256d hi =
      _mm256_sub_pd(_mm256_castsi256_pd(v_hi), _mm256_castsi256_pd(magic_all));
  return _mm256_add_pd(hi, _mm256_castsi256_pd(v_lo));
}

DBW_AVX2 inline __m128i LoadIdx4(const RowId* rows) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows));
}

// One 64-row block: 16 groups of 4 doubles -> 4-bit movemask nibbles.
#define DBW_CMP_LOOP(LOADV, IMM)                                         \
  for (int k = 0; k < 16; ++k) {                                         \
    const __m256d v = (LOADV);                                           \
    w |= static_cast<uint64_t>(static_cast<uint32_t>(                    \
             _mm256_movemask_pd(_mm256_cmp_pd(v, vt, (IMM)))))           \
         << (4 * k);                                                     \
  }

#define DBW_CMP_SWITCH(LOADV)                                  \
  switch (op) {                                                \
    case CompareOp::kEq: DBW_CMP_LOOP(LOADV, _CMP_EQ_OQ) break;  \
    case CompareOp::kNe: DBW_CMP_LOOP(LOADV, _CMP_NEQ_UQ) break; \
    case CompareOp::kLt: DBW_CMP_LOOP(LOADV, _CMP_LT_OQ) break;  \
    case CompareOp::kLe: DBW_CMP_LOOP(LOADV, _CMP_NGT_UQ) break; \
    case CompareOp::kGt: DBW_CMP_LOOP(LOADV, _CMP_GT_OQ) break;  \
    case CompareOp::kGe: DBW_CMP_LOOP(LOADV, _CMP_NLT_UQ) break; \
    default: DBW_CHECK(false) << "bad fused cmp op";           \
  }

DBW_AVX2 uint64_t Avx2DoubleCmpLoad(const double* p, double t, CompareOp op) {
  const __m256d vt = _mm256_set1_pd(t);
  uint64_t w = 0;
  DBW_CMP_SWITCH(_mm256_loadu_pd(p + 4 * k))
  return w;
}

DBW_AVX2 uint64_t Avx2DoubleCmpGather(const double* data, const RowId* rows,
                                      double t, CompareOp op) {
  const __m256d vt = _mm256_set1_pd(t);
  uint64_t w = 0;
  DBW_CMP_SWITCH(_mm256_i32gather_pd(data, LoadIdx4(rows + 4 * k), 8))
  return w;
}

DBW_AVX2 uint64_t Avx2Int64CmpLoad(const int64_t* p, double t, CompareOp op) {
  const __m256d vt = _mm256_set1_pd(t);
  uint64_t w = 0;
  DBW_CMP_SWITCH(I64ToPd(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4 * k))))
  return w;
}

DBW_AVX2 uint64_t Avx2Int64CmpGather(const int64_t* data, const RowId* rows,
                                     double t, CompareOp op) {
  const __m256d vt = _mm256_set1_pd(t);
  uint64_t w = 0;
  DBW_CMP_SWITCH(I64ToPd(_mm256_i32gather_epi64(
      reinterpret_cast<const long long*>(data), LoadIdx4(rows + 4 * k), 8)))
  return w;
}

#undef DBW_CMP_SWITCH
#undef DBW_CMP_LOOP

// One 64-row block of dictionary codes: 8 groups of 8 epi32 lanes ->
// 8-bit movemask bytes. MASK sees the codes vector as `cv`.
#define DBW_CODE_LOOP(LOADC, MASK)                                       \
  for (int k = 0; k < 8; ++k) {                                          \
    const __m256i cv = (LOADC);                                          \
    w |= static_cast<uint64_t>(static_cast<uint32_t>(MASK) & 0xffu)      \
         << (8 * k);                                                     \
  }

DBW_AVX2 uint64_t Avx2CodeWord(const FusedOp& op, const RowId* rows,
                               const int32_t* contig) {
  uint64_t w = 0;
  // `contig` is the pre-offset base pointer when the universe is
  // contiguous, null when codes must be gathered through `rows`.
#define DBW_CODE_DISPATCH(MASK)                                          \
  if (contig != nullptr) {                                               \
    DBW_CODE_LOOP(_mm256_loadu_si256(                                    \
                      reinterpret_cast<const __m256i*>(contig + 8 * k)), \
                  MASK)                                                  \
  } else {                                                               \
    DBW_CODE_LOOP(                                                       \
        _mm256_i32gather_epi32(                                          \
            reinterpret_cast<const int*>(op.codes),                      \
            _mm256_loadu_si256(                                          \
                reinterpret_cast<const __m256i*>(rows + 8 * k)),         \
            4),                                                          \
        MASK)                                                            \
  }
  switch (op.body) {
    case FusedOp::Body::kCodeEq: {
      const __m256i key = _mm256_set1_epi32(op.code);
      DBW_CODE_DISPATCH(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_cmpeq_epi32(cv, key))))
      break;
    }
    case FusedOp::Body::kCodeNe: {
      const __m256i key = _mm256_set1_epi32(op.code);
      const __m256i minus1 = _mm256_set1_epi32(-1);
      DBW_CODE_DISPATCH(_mm256_movemask_ps(_mm256_castsi256_ps(
          _mm256_andnot_si256(_mm256_cmpeq_epi32(cv, key),
                              _mm256_cmpgt_epi32(cv, minus1)))))
      break;
    }
    case FusedOp::Body::kCodeTable: {
      const __m256i one = _mm256_set1_epi32(1);
      const __m256i zero = _mm256_setzero_si256();
      DBW_CODE_DISPATCH(
          ~_mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(
              _mm256_i32gather_epi32(reinterpret_cast<const int*>(op.table),
                                     _mm256_add_epi32(cv, one), 4),
              zero))))
      break;
    }
    default:
      DBW_CHECK(false) << "non-code body in Avx2CodeWord";
  }
#undef DBW_CODE_DISPATCH
  return w;
}

DBW_AVX2 uint64_t Avx2OpWord(const FusedOp& op, const RowId* rows,
                             bool contiguous, size_t base) {
  switch (op.body) {
    case FusedOp::Body::kDoubleCmp:
      return contiguous
                 ? Avx2DoubleCmpLoad(op.dbl + rows[0] + base, op.threshold,
                                     op.op)
                 : Avx2DoubleCmpGather(op.dbl, rows + base, op.threshold,
                                       op.op);
    case FusedOp::Body::kInt64Cmp:
      return contiguous
                 ? Avx2Int64CmpLoad(op.i64 + rows[0] + base, op.threshold,
                                    op.op)
                 : Avx2Int64CmpGather(op.i64, rows + base, op.threshold,
                                      op.op);
    case FusedOp::Body::kCodeEq:
    case FusedOp::Body::kCodeNe:
    case FusedOp::Body::kCodeTable:
      return Avx2CodeWord(op, rows + base,
                          contiguous ? op.codes + rows[0] + base : nullptr);
    default:
      DBW_CHECK(false) << "scalar-only body in Avx2OpWord";
  }
  return 0;
}

#undef DBW_CODE_LOOP
#undef DBW_AVX2

#endif  // DBWIPES_HAVE_AVX2_TIER

}  // namespace

SimdTier ResolveSimdTier() {
  if (EnvDisablesSimd()) return SimdTier::kScalar;
  return CpuHasAvx2() ? SimdTier::kAvx2 : SimdTier::kScalar;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kAvx2: return "avx2";
  }
  return "unknown";
}

void AppendClauseOp(const CompiledClause& cc, const Bitmap* valid,
                    FusedProgram* prog) {
  FusedOp op;
  op.op = cc.op;
  op.valid = valid;
  if (cc.is_string) {
    op.codes = cc.column->code_data().data();
    switch (cc.op) {
      case CompareOp::kEq:
        op.body = FusedOp::Body::kCodeEq;
        op.code = cc.code;
        break;
      case CompareOp::kNe:
        op.body = FusedOp::Body::kCodeNe;
        op.code = cc.code;
        break;
      case CompareOp::kIn:
      case CompareOp::kContains: {
        op.body = FusedOp::Body::kCodeTable;
        prog->table_pool.emplace_back(cc.code_table.begin(),
                                      cc.code_table.end());
        op.table = prog->table_pool.back().data();
        break;
      }
      default:
        DBW_CHECK(false) << "ordered fused op on string column";
    }
  } else {
    const bool is_int64 = cc.column->type() == DataType::kInt64;
    if (is_int64) {
      op.i64 = cc.column->int64_data().data();
    } else {
      op.dbl = cc.column->double_data().data();
    }
    if (cc.op == CompareOp::kIn) {
      // Numeric IN stays scalar at every tier (a binary search per
      // row); the body picks the storage loader, op.op == kIn picks
      // the comparison.
      op.body = is_int64 ? FusedOp::Body::kInt64Cmp : FusedOp::Body::kNumericIn;
      prog->in_pool.push_back(cc.in_numbers);
      op.in_data = prog->in_pool.back().data();
      op.in_size = prog->in_pool.back().size();
    } else {
      op.body = is_int64 ? FusedOp::Body::kInt64Cmp : FusedOp::Body::kDoubleCmp;
      op.threshold = cc.threshold;
    }
  }
  prog->ops.push_back(op);
}

void AppendBitmapRef(uint32_t ref_slot, FusedProgram* prog) {
  FusedOp op;
  op.body = FusedOp::Body::kBitmapRef;
  op.ref_slot = ref_slot;
  prog->ops.push_back(op);
}

bool ClauseOpHasSimdBody(const CompiledClause& cc) {
  return !(!cc.is_string && cc.op == CompareOp::kIn);
}

void EvalFusedWords(const FusedProgram& prog, SimdTier tier,
                    const RowId* rows, size_t num_rows, bool contiguous,
                    const Bitmap* const* refs, size_t word_begin,
                    size_t word_end, Bitmap* out) {
#if !DBWIPES_HAVE_AVX2_TIER
  tier = SimdTier::kScalar;
#endif
  for (size_t wi = word_begin; wi < word_end; ++wi) {
    const size_t base = wi * 64;
    const size_t limit = std::min<size_t>(64, num_rows - base);
    uint64_t acc = TailMask(limit);
    for (const FusedOp& op : prog.ops) {
      uint64_t w;
      if (op.body == FusedOp::Body::kBitmapRef) {
        // Cached clause bitmaps already fold validity in.
        w = refs[op.ref_slot]->word(wi);
      } else {
#if DBWIPES_HAVE_AVX2_TIER
        const bool in_body = op.body == FusedOp::Body::kNumericIn ||
                             (op.in_data != nullptr);
        if (tier == SimdTier::kAvx2 && limit == 64 && !in_body) {
          w = Avx2OpWord(op, rows, contiguous, base);
        } else
#endif
        {
          w = ScalarOpWord(op, rows, base, limit);
        }
        if (op.valid != nullptr) w &= op.valid->word(wi);
      }
      acc &= w;
      if (acc == 0) break;  // early exit; the stored word is final
    }
    out->set_word(wi, acc);
  }
}

}  // namespace dbwipes
