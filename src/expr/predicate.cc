#include "dbwipes/expr/predicate.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

Result<CompareOp> NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
    case CompareOp::kIn:
    case CompareOp::kContains:
      return Status::InvalidArgument("op has no single-clause negation");
  }
  return Status::InvalidArgument("unknown op");
}

bool Clause::Matches(const Value& v) const {
  if (v.is_null()) return false;
  switch (op) {
    case CompareOp::kEq:
      return v == literal;
    case CompareOp::kNe:
      return !(v == literal);
    case CompareOp::kLt:
      return v < literal;
    case CompareOp::kLe:
      // Single comparison; under Value's total order `v <= l` is
      // exactly `!(l < v)`. (For NaN operands neither < holds, so a
      // NaN satisfies kLe/kGe but not kLt/kGt — the match kernels and
      // BoundPredicate implement the same convention.)
      return !(literal < v);
    case CompareOp::kGt:
      return literal < v;
    case CompareOp::kGe:
      return !(v < literal);
    case CompareOp::kIn:
      for (const Value& x : in_set) {
        if (v == x) return true;
      }
      return false;
    case CompareOp::kContains:
      if (!v.is_string() || !literal.is_string()) return false;
      return v.str().find(literal.str()) != std::string::npos;
  }
  return false;
}

std::string Clause::ToString() const {
  if (op == CompareOp::kIn) {
    std::vector<std::string> parts;
    parts.reserve(in_set.size());
    for (const Value& v : in_set) parts.push_back(v.ToString());
    return attribute + " IN (" + Join(parts, ", ") + ")";
  }
  return attribute + " " + CompareOpToString(op) + " " + literal.ToString();
}

std::string Clause::CanonicalString() const {
  if (op == CompareOp::kIn) {
    std::vector<std::string> parts;
    parts.reserve(in_set.size());
    for (const Value& v : in_set) parts.push_back(v.ToString());
    std::sort(parts.begin(), parts.end());
    return attribute + " IN (" + Join(parts, ", ") + ")";
  }
  return ToString();
}

Predicate Predicate::And(const Predicate& other) const {
  std::vector<Clause> merged = clauses_;
  merged.insert(merged.end(), other.clauses_.begin(), other.clauses_.end());
  return Predicate(std::move(merged));
}

Predicate Predicate::Simplify() const {
  // Per attribute, keep the tightest lower bound, tightest upper bound,
  // and deduplicate everything else.
  struct Bounds {
    bool has_lower = false;
    Value lower;
    bool lower_strict = false;
    bool has_upper = false;
    Value upper;
    bool upper_strict = false;
  };
  std::map<std::string, Bounds> bounds;
  std::vector<Clause> others;
  std::vector<std::string> seen;

  for (const Clause& c : clauses_) {
    const bool is_lower = c.op == CompareOp::kGt || c.op == CompareOp::kGe;
    const bool is_upper = c.op == CompareOp::kLt || c.op == CompareOp::kLe;
    if (is_lower || is_upper) {
      Bounds& b = bounds[c.attribute];
      const bool strict = c.op == CompareOp::kGt || c.op == CompareOp::kLt;
      if (is_lower) {
        if (!b.has_lower || b.lower < c.literal ||
            (b.lower == c.literal && strict && !b.lower_strict)) {
          b.has_lower = true;
          b.lower = c.literal;
          b.lower_strict = strict;
        }
      } else {
        if (!b.has_upper || c.literal < b.upper ||
            (b.upper == c.literal && strict && !b.upper_strict)) {
          b.has_upper = true;
          b.upper = c.literal;
          b.upper_strict = strict;
        }
      }
      continue;
    }
    const std::string key = c.CanonicalString();
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      seen.push_back(key);
      others.push_back(c);
    }
  }

  std::vector<Clause> out;
  for (const Clause& c : others) {
    // Keep attribute order stable: emit range clauses at the position
    // of the first clause mentioning the attribute, after the others.
    out.push_back(c);
  }
  for (const auto& [attr, b] : bounds) {
    if (b.has_lower) {
      out.push_back(Clause::Make(
          attr, b.lower_strict ? CompareOp::kGt : CompareOp::kGe, b.lower));
    }
    if (b.has_upper) {
      out.push_back(Clause::Make(
          attr, b.upper_strict ? CompareOp::kLt : CompareOp::kLe, b.upper));
    }
  }
  return Predicate(std::move(out));
}

Result<bool> Predicate::Matches(const Table& table, RowId row) const {
  for (const Clause& c : clauses_) {
    DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(c.attribute));
    if (!c.Matches(table.column(idx).GetValue(row))) return false;
  }
  return true;
}

Result<BoundPredicate> Predicate::Bind(const Table& table) const {
  std::vector<BoundPredicate::BoundClause> bound;
  bound.reserve(clauses_.size());
  for (const Clause& c : clauses_) {
    DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(c.attribute));
    const Column& col = table.column(idx);
    BoundPredicate::BoundClause bc;
    bc.column = &col;
    bc.op = c.op;
    bc.is_string_column = col.type() == DataType::kString;

    switch (c.op) {
      case CompareOp::kEq:
      case CompareOp::kNe:
        if (bc.is_string_column) {
          if (!c.literal.is_string()) {
            return Status::TypeError("comparing string column '" +
                                     c.attribute + "' to " +
                                     c.literal.ToString());
          }
          bc.code = col.FindCode(c.literal.str());
        } else {
          DBW_ASSIGN_OR_RETURN(bc.threshold, c.literal.AsDouble());
        }
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
      case CompareOp::kGt:
      case CompareOp::kGe: {
        if (bc.is_string_column) {
          return Status::TypeError("ordered comparison on string column '" +
                                   c.attribute + "'");
        }
        DBW_ASSIGN_OR_RETURN(bc.threshold, c.literal.AsDouble());
        break;
      }
      case CompareOp::kIn:
        for (const Value& v : c.in_set) {
          if (bc.is_string_column) {
            if (!v.is_string()) {
              return Status::TypeError("IN set for string column '" +
                                       c.attribute + "' contains " +
                                       v.ToString());
            }
            const int32_t code = col.FindCode(v.str());
            if (code >= 0) {
              bc.in_codes.push_back(code);
            } else {
              bc.in_has_missing_string = true;
            }
          } else {
            DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
            // NaN is IN nothing (Value equality), and sorting it
            // breaks binary_search's ordering contract; drop it here.
            if (!std::isnan(d)) bc.in_numbers.push_back(d);
          }
        }
        std::sort(bc.in_codes.begin(), bc.in_codes.end());
        std::sort(bc.in_numbers.begin(), bc.in_numbers.end());
        break;
      case CompareOp::kContains:
        if (!bc.is_string_column) {
          return Status::TypeError("CONTAINS on non-string column '" +
                                   c.attribute + "'");
        }
        if (!c.literal.is_string()) {
          return Status::TypeError("CONTAINS needs a string literal");
        }
        bc.substring = c.literal.str();
        break;
    }
    bound.push_back(std::move(bc));
  }
  return BoundPredicate(std::move(bound), &table);
}

std::string Predicate::ToString() const {
  if (clauses_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(clauses_.size());
  for (const Clause& c : clauses_) parts.push_back(c.ToString());
  return Join(parts, " AND ");
}

std::string Predicate::CanonicalString() const {
  if (clauses_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(clauses_.size());
  for (const Clause& c : clauses_) parts.push_back(c.CanonicalString());
  std::sort(parts.begin(), parts.end());
  return Join(parts, " AND ");
}

bool BoundPredicate::ClauseMatches(const BoundClause& c, RowId row) {
  const Column& col = *c.column;
  if (col.IsNull(row)) return false;
  switch (c.op) {
    case CompareOp::kEq:
      if (c.is_string_column) return col.StringCode(row) == c.code;
      return col.AsDouble(row) == c.threshold;
    case CompareOp::kNe:
      if (c.is_string_column) return col.StringCode(row) != c.code;
      return col.AsDouble(row) != c.threshold;
    case CompareOp::kLt:
      return col.AsDouble(row) < c.threshold;
    case CompareOp::kLe:
      // Negated form, not `<=`: keeps NaN handling identical to
      // Clause::Matches (neither side of < holds for NaN).
      return !(c.threshold < col.AsDouble(row));
    case CompareOp::kGt:
      return col.AsDouble(row) > c.threshold;
    case CompareOp::kGe:
      return !(col.AsDouble(row) < c.threshold);
    case CompareOp::kIn:
      if (c.is_string_column) {
        return std::binary_search(c.in_codes.begin(), c.in_codes.end(),
                                  col.StringCode(row));
      }
      {
        // A NaN probe compares unordered against everything, which
        // binary_search would report as "found"; Clause::Matches uses
        // Value equality, under which NaN is IN nothing.
        const double v = col.AsDouble(row);
        if (std::isnan(v)) return false;
        return std::binary_search(c.in_numbers.begin(), c.in_numbers.end(),
                                  v);
      }
    case CompareOp::kContains:
      return col.GetString(row).find(c.substring) != std::string::npos;
  }
  return false;
}

bool BoundPredicate::Matches(RowId row) const {
  for (const BoundClause& c : clauses_) {
    if (!ClauseMatches(c, row)) return false;
  }
  return true;
}

std::vector<bool> BoundPredicate::MatchAll() const {
  const size_t n = table_->num_rows();
  std::vector<bool> out(n, false);
  for (RowId r = 0; r < n; ++r) out[r] = Matches(r);
  return out;
}

std::vector<RowId> BoundPredicate::MatchingRows() const {
  std::vector<RowId> out;
  const size_t n = table_->num_rows();
  for (RowId r = 0; r < n; ++r) {
    if (Matches(r)) out.push_back(r);
  }
  return out;
}

Bitmap BoundPredicate::MatchBitmap(const std::vector<RowId>& rows) const {
  Bitmap out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (Matches(rows[i])) out.Set(i);
  }
  return out;
}

}  // namespace dbwipes
