#include "dbwipes/expr/bool_expr.h"

namespace dbwipes {

Result<bool> ComparisonExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(clause_.attribute));
  return clause_.Matches(table.column(idx).GetValue(row));
}

Status ComparisonExpr::Validate(const Schema& schema) const {
  return schema.GetIndex(clause_.attribute).status();
}

Result<bool> AndExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(bool l, left_->Eval(table, row));
  if (!l) return false;
  return right_->Eval(table, row);
}

Status AndExpr::Validate(const Schema& schema) const {
  DBW_RETURN_NOT_OK(left_->Validate(schema));
  return right_->Validate(schema);
}

std::string AndExpr::ToString() const {
  return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
}

Result<bool> OrExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(bool l, left_->Eval(table, row));
  if (l) return true;
  return right_->Eval(table, row);
}

Status OrExpr::Validate(const Schema& schema) const {
  DBW_RETURN_NOT_OK(left_->Validate(schema));
  return right_->Validate(schema);
}

std::string OrExpr::ToString() const {
  return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
}

Result<bool> NotExpr::Eval(const Table& table, RowId row) const {
  DBW_ASSIGN_OR_RETURN(bool v, child_->Eval(table, row));
  return !v;
}

Status NotExpr::Validate(const Schema& schema) const {
  return child_->Validate(schema);
}

std::string NotExpr::ToString() const {
  return "NOT " + child_->ToString();
}

BoolExprPtr MakeTrue() { return std::make_shared<TrueExpr>(); }
BoolExprPtr MakeComparison(Clause clause) {
  return std::make_shared<ComparisonExpr>(std::move(clause));
}
BoolExprPtr MakeAnd(BoolExprPtr a, BoolExprPtr b) {
  return std::make_shared<AndExpr>(std::move(a), std::move(b));
}
BoolExprPtr MakeOr(BoolExprPtr a, BoolExprPtr b) {
  return std::make_shared<OrExpr>(std::move(a), std::move(b));
}
BoolExprPtr MakeNot(BoolExprPtr a) {
  return std::make_shared<NotExpr>(std::move(a));
}

BoolExprPtr PredicateToBoolExpr(const Predicate& pred) {
  if (pred.empty()) return MakeTrue();
  BoolExprPtr out;
  for (const Clause& c : pred.clauses()) {
    BoolExprPtr leaf = MakeComparison(c);
    out = out ? MakeAnd(std::move(out), std::move(leaf)) : std::move(leaf);
  }
  return out;
}

Result<std::vector<bool>> EvalFilter(const BoolExpr& expr, const Table& table) {
  std::vector<bool> out(table.num_rows(), false);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    DBW_ASSIGN_OR_RETURN(bool v, expr.Eval(table, r));
    out[r] = v;
  }
  return out;
}

}  // namespace dbwipes
