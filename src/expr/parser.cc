#include "dbwipes/expr/parser.h"

#include <cctype>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

namespace {

enum class TokenType {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier text (original case) or symbol
  Value number;       // for kNumber: int64 or double
  std::string str;    // for kString
  size_t pos = 0;     // byte offset, for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      DBW_ASSIGN_OR_RETURN(Token tok, Next());
      const bool end = tok.type == TokenType::kEnd;
      out.push_back(std::move(tok));
      if (end) break;
    }
    return out;
  }

 private:
  Result<Token> Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    Token tok;
    tok.pos = pos_;
    if (pos_ >= input_.size()) {
      tok.type = TokenType::kEnd;
      return tok;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '.')) {
        ++pos_;
      }
      tok.type = TokenType::kIdent;
      tok.text = input_.substr(start, pos_ - start);
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_;
      bool is_double = false;
      while (pos_ < input_.size()) {
        const char d = input_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' || d == 'e' || d == 'E') {
          is_double = true;
          ++pos_;
          if (d != '.' && pos_ < input_.size() &&
              (input_[pos_] == '+' || input_[pos_] == '-')) {
            ++pos_;
          }
        } else {
          break;
        }
      }
      const std::string text = input_.substr(start, pos_ - start);
      tok.type = TokenType::kNumber;
      if (is_double) {
        DBW_ASSIGN_OR_RETURN(double d, ParseDouble(text));
        tok.number = Value(d);
      } else {
        auto as_int = ParseInt64(text);
        if (as_int.ok()) {
          tok.number = Value(*as_int);
        } else {
          DBW_ASSIGN_OR_RETURN(double d, ParseDouble(text));
          tok.number = Value(d);
        }
      }
      return tok;
    }
    if (c == '\'') {
      ++pos_;
      std::string s;
      while (true) {
        if (pos_ >= input_.size()) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(tok.pos));
        }
        if (input_[pos_] == '\'') {
          if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
            s += '\'';
            pos_ += 2;
          } else {
            ++pos_;
            break;
          }
        } else {
          s += input_[pos_++];
        }
      }
      tok.type = TokenType::kString;
      tok.str = std::move(s);
      return tok;
    }
    // Multi-char operators first.
    static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
    for (const char* op : kTwoChar) {
      if (input_.compare(pos_, 2, op) == 0) {
        tok.type = TokenType::kSymbol;
        tok.text = op;
        pos_ += 2;
        return tok;
      }
    }
    static const std::string kOneChar = "()+-*/,<>=";
    if (kOneChar.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++pos_;
      return tok;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(pos_));
  }

  const std::string& input_;
  size_t pos_ = 0;
};

/// Recursive-descent parser over the token stream.
///
/// Nesting depth is bounded (kMaxDepth): pathological inputs like a
/// hundred thousand '(' or NOTs fail with kParseError instead of
/// overflowing the C++ call stack. The bound is far above anything a
/// human (or the dashboard) writes.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  static constexpr size_t kMaxDepth = 200;

  Result<AggregateQuery> ParseQuery() {
    AggregateQuery q;
    DBW_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    std::vector<std::string> plain_columns;
    while (true) {
      DBW_RETURN_NOT_OK(ParseSelectItem(&q, &plain_columns));
      if (!AcceptSymbol(",")) break;
    }
    DBW_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DBW_ASSIGN_OR_RETURN(q.table_name, ExpectIdent());
    if (AcceptKeyword("WHERE")) {
      DBW_ASSIGN_OR_RETURN(q.where, ParseOr());
    } else {
      q.where = MakeTrue();
    }
    if (AcceptKeyword("GROUP")) {
      DBW_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        DBW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        q.group_by.push_back(std::move(col));
        if (!AcceptSymbol(",")) break;
      }
    }
    DBW_RETURN_NOT_OK(ExpectEnd());
    // Plain selected columns must be grouping columns.
    for (const std::string& col : plain_columns) {
      bool found = false;
      for (const std::string& g : q.group_by) {
        if (g == col) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::ParseError("column '" + col +
                                  "' in SELECT is not in GROUP BY");
      }
    }
    if (q.aggregates.empty()) {
      return Status::ParseError("query must contain at least one aggregate");
    }
    return q;
  }

  Result<BoolExprPtr> ParseFilterOnly() {
    DBW_ASSIGN_OR_RETURN(BoolExprPtr e, ParseOr());
    DBW_RETURN_NOT_OK(ExpectEnd());
    return e;
  }

 private:
  /// Counts live recursion frames for the duration of a scope. Every
  /// mutually recursive production (ParseNot / ParseUnary /
  /// ParsePrimary — the three entry points of the grammar's cycles)
  /// opens one and bails out past kMaxDepth.
  class DepthGuard {
   public:
    explicit DepthGuard(size_t* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    bool exceeded() const { return *depth_ > kMaxDepth; }

   private:
    size_t* depth_;
  };

  Status DepthError() const {
    return Status::ParseError(
        "expression nested deeper than " + std::to_string(kMaxDepth) +
        " levels at offset " + std::to_string(Peek().pos));
  }

  const Token& Peek() const { return tokens_[idx_]; }
  const Token& Advance() { return tokens_[idx_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kIdent &&
        EqualsIgnoreCase(Peek().text, kw)) {
      ++idx_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected " + kw + " at offset " +
                                std::to_string(Peek().pos));
    }
    return Status::OK();
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++idx_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError("expected '" + sym + "' at offset " +
                                std::to_string(Peek().pos));
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdent) {
      return Status::ParseError("expected identifier at offset " +
                                std::to_string(Peek().pos));
    }
    return Advance().text;
  }

  Status ExpectEnd() {
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("unexpected trailing input at offset " +
                                std::to_string(Peek().pos) + ": '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  bool PeekIsAggCall() const {
    if (Peek().type != TokenType::kIdent) return false;
    if (!AggKindFromString(Peek().text).ok()) return false;
    const Token& next = tokens_[idx_ + 1];
    return next.type == TokenType::kSymbol && next.text == "(";
  }

  Status ParseSelectItem(AggregateQuery* q,
                         std::vector<std::string>* plain_columns) {
    if (PeekIsAggCall()) {
      AggSpec spec;
      DBW_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      DBW_ASSIGN_OR_RETURN(spec.kind, AggKindFromString(name));
      DBW_RETURN_NOT_OK(ExpectSymbol("("));
      if (AcceptSymbol("*")) {
        if (spec.kind != AggKind::kCount) {
          return Status::ParseError("only count(*) may take '*'");
        }
        spec.argument = nullptr;
      } else {
        DBW_ASSIGN_OR_RETURN(spec.argument, ParseScalar());
      }
      DBW_RETURN_NOT_OK(ExpectSymbol(")"));
      if (AcceptKeyword("AS")) {
        DBW_ASSIGN_OR_RETURN(spec.output_name, ExpectIdent());
      } else {
        spec.output_name =
            std::string(AggKindToString(spec.kind)) + "(" +
            (spec.argument ? spec.argument->ToString() : "*") + ")";
      }
      q->aggregates.push_back(std::move(spec));
      return Status::OK();
    }
    DBW_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
    if (AcceptKeyword("AS")) {
      // Aliasing a grouping column is accepted and ignored; the output
      // uses the underlying column name.
      DBW_RETURN_NOT_OK(ExpectIdent().status());
    }
    plain_columns->push_back(col);
    return Status::OK();
  }

  // scalar := mul (('+'|'-') mul)*
  Result<ScalarExprPtr> ParseScalar() {
    DBW_ASSIGN_OR_RETURN(ScalarExprPtr left, ParseMul());
    while (true) {
      if (AcceptSymbol("+")) {
        DBW_ASSIGN_OR_RETURN(ScalarExprPtr right, ParseMul());
        left = Add(std::move(left), std::move(right));
      } else if (AcceptSymbol("-")) {
        DBW_ASSIGN_OR_RETURN(ScalarExprPtr right, ParseMul());
        left = Sub(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ScalarExprPtr> ParseMul() {
    DBW_ASSIGN_OR_RETURN(ScalarExprPtr left, ParseUnary());
    while (true) {
      if (AcceptSymbol("*")) {
        DBW_ASSIGN_OR_RETURN(ScalarExprPtr right, ParseUnary());
        left = Mul(std::move(left), std::move(right));
      } else if (AcceptSymbol("/")) {
        DBW_ASSIGN_OR_RETURN(ScalarExprPtr right, ParseUnary());
        left = Div(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ScalarExprPtr> ParseUnary() {
    const DepthGuard guard(&depth_);
    if (guard.exceeded()) return DepthError();
    if (AcceptSymbol("-")) {
      DBW_ASSIGN_OR_RETURN(ScalarExprPtr inner, ParseUnary());
      return Sub(Lit(Value(static_cast<int64_t>(0))), std::move(inner));
    }
    return ParsePrimary();
  }

  Result<ScalarExprPtr> ParsePrimary() {
    const DepthGuard guard(&depth_);
    if (guard.exceeded()) return DepthError();
    if (Peek().type == TokenType::kNumber) {
      return Lit(Advance().number);
    }
    if (Peek().type == TokenType::kString) {
      return Lit(Value(Advance().str));
    }
    if (AcceptSymbol("(")) {
      DBW_ASSIGN_OR_RETURN(ScalarExprPtr e, ParseScalar());
      DBW_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    if (Peek().type == TokenType::kIdent) {
      return Col(Advance().text);
    }
    return Status::ParseError("expected scalar expression at offset " +
                              std::to_string(Peek().pos));
  }

  // Boolean grammar.
  Result<BoolExprPtr> ParseOr() {
    DBW_ASSIGN_OR_RETURN(BoolExprPtr left, ParseAnd());
    while (AcceptKeyword("OR")) {
      DBW_ASSIGN_OR_RETURN(BoolExprPtr right, ParseAnd());
      left = MakeOr(std::move(left), std::move(right));
    }
    return left;
  }

  Result<BoolExprPtr> ParseAnd() {
    DBW_ASSIGN_OR_RETURN(BoolExprPtr left, ParseNot());
    while (AcceptKeyword("AND")) {
      DBW_ASSIGN_OR_RETURN(BoolExprPtr right, ParseNot());
      left = MakeAnd(std::move(left), std::move(right));
    }
    return left;
  }

  Result<BoolExprPtr> ParseNot() {
    const DepthGuard guard(&depth_);
    if (guard.exceeded()) return DepthError();
    if (AcceptKeyword("NOT")) {
      DBW_ASSIGN_OR_RETURN(BoolExprPtr inner, ParseNot());
      return MakeNot(std::move(inner));
    }
    if (AcceptSymbol("(")) {
      DBW_ASSIGN_OR_RETURN(BoolExprPtr inner, ParseOr());
      DBW_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (AcceptKeyword("TRUE")) return MakeTrue();
    return ParseComparison();
  }

  Result<Value> ParseLiteral() {
    if (AcceptSymbol("-")) {
      if (Peek().type != TokenType::kNumber) {
        return Status::ParseError("expected number after '-' at offset " +
                                  std::to_string(Peek().pos));
      }
      const Value v = Advance().number;
      if (v.is_int64()) return Value(-v.int64());
      return Value(-v.dbl());
    }
    if (Peek().type == TokenType::kNumber) return Advance().number;
    if (Peek().type == TokenType::kString) return Value(Advance().str);
    return Status::ParseError("expected literal at offset " +
                              std::to_string(Peek().pos));
  }

  Result<BoolExprPtr> ParseComparison() {
    DBW_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
    if (AcceptKeyword("IN")) {
      DBW_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      while (true) {
        DBW_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(std::move(v));
        if (!AcceptSymbol(",")) break;
      }
      DBW_RETURN_NOT_OK(ExpectSymbol(")"));
      return MakeComparison(Clause::In(attr, std::move(values)));
    }
    if (AcceptKeyword("CONTAINS") || AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Status::ParseError("CONTAINS expects a string literal");
      }
      std::string needle = Advance().str;
      // Tolerate SQL LIKE wildcards at the edges: '%foo%' -> contains.
      while (!needle.empty() && needle.front() == '%') needle.erase(0, 1);
      while (!needle.empty() && needle.back() == '%') needle.pop_back();
      return MakeComparison(
          Clause::Make(attr, CompareOp::kContains, Value(std::move(needle))));
    }
    if (AcceptKeyword("BETWEEN")) {
      DBW_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      DBW_RETURN_NOT_OK(ExpectKeyword("AND"));
      DBW_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      return MakeAnd(
          MakeComparison(Clause::Make(attr, CompareOp::kGe, std::move(lo))),
          MakeComparison(Clause::Make(attr, CompareOp::kLe, std::move(hi))));
    }
    if (Peek().type != TokenType::kSymbol) {
      return Status::ParseError("expected comparison operator at offset " +
                                std::to_string(Peek().pos));
    }
    const std::string op_text = Advance().text;
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "!=" || op_text == "<>") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else if (op_text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Status::ParseError("unknown comparison operator '" + op_text +
                                "'");
    }
    DBW_ASSIGN_OR_RETURN(Value lit, ParseLiteral());
    return MakeComparison(Clause::Make(attr, op, std::move(lit)));
  }

  std::vector<Token> tokens_;
  size_t idx_ = 0;
  size_t depth_ = 0;
};

// Flattens an AND-only BoolExpr into clauses; error on OR/NOT.
// Iterative with an explicit stack: an AND chain is as deep as it is
// long, so recursing here would overflow on predicates the parser
// itself accepts happily (AND chains don't nest, see Parser::kMaxDepth).
Status FlattenConjunction(const BoolExpr& root, std::vector<Clause>* out) {
  std::vector<const BoolExpr*> pending{&root};
  while (!pending.empty()) {
    const BoolExpr& e = *pending.back();
    pending.pop_back();
    switch (e.kind()) {
      case BoolExpr::Kind::kTrue:
        continue;
      case BoolExpr::Kind::kComparison:
        out->push_back(static_cast<const ComparisonExpr&>(e).clause());
        continue;
      case BoolExpr::Kind::kAnd: {
        const auto& a = static_cast<const AndExpr&>(e);
        // Right below left so the left subtree's clauses pop first,
        // preserving the written clause order.
        pending.push_back(a.right().get());
        pending.push_back(a.left().get());
        continue;
      }
      case BoolExpr::Kind::kOr:
      case BoolExpr::Kind::kNot:
        return Status::InvalidArgument(
            "predicate must be a conjunction of comparisons");
    }
    return Status::InvalidArgument("unknown expression kind");
  }
  return Status::OK();
}

}  // namespace

Result<AggregateQuery> ParseQuery(const std::string& sql) {
  Lexer lexer(sql);
  DBW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<BoolExprPtr> ParseFilter(const std::string& text) {
  Lexer lexer(text);
  DBW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseFilterOnly();
}

Result<Predicate> ParsePredicate(const std::string& text) {
  DBW_ASSIGN_OR_RETURN(BoolExprPtr expr, ParseFilter(text));
  std::vector<Clause> clauses;
  DBW_RETURN_NOT_OK(FlattenConjunction(*expr, &clauses));
  return Predicate(std::move(clauses));
}

}  // namespace dbwipes
