#include "dbwipes/expr/ast.h"

#include "dbwipes/common/string_util.h"

namespace dbwipes {

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kStddev:
      return "stddev";
    case AggKind::kVar:
      return "var";
    case AggKind::kMedian:
      return "median";
  }
  return "?";
}

Result<AggKind> AggKindFromString(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "avg" || lower == "mean") return AggKind::kAvg;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "stddev" || lower == "stdev") return AggKind::kStddev;
  if (lower == "var" || lower == "variance") return AggKind::kVar;
  if (lower == "median") return AggKind::kMedian;
  return Status::ParseError("unknown aggregate function: '" +
                            std::string(name) + "'");
}

std::string AggSpec::ToString() const {
  std::string base = std::string(AggKindToString(kind)) + "(" +
                     (argument ? argument->ToString() : "*") + ")";
  if (!output_name.empty() && output_name != base) {
    base += " AS " + output_name;
  }
  return base;
}

std::string AggregateQuery::ToSql() const {
  std::vector<std::string> items;
  for (const std::string& g : group_by) items.push_back(g);
  for (const AggSpec& a : aggregates) items.push_back(a.ToString());
  std::string sql = "SELECT " + Join(items, ", ") + " FROM " + table_name;
  if (where && where->kind() != BoolExpr::Kind::kTrue) {
    sql += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    sql += " GROUP BY " + Join(group_by, ", ");
  }
  return sql;
}

Status AggregateQuery::Validate(const Schema& schema) const {
  if (aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregate functions");
  }
  for (const AggSpec& a : aggregates) {
    if (a.argument) {
      DBW_RETURN_NOT_OK(a.argument->Validate(schema));
    } else if (a.kind != AggKind::kCount) {
      return Status::InvalidArgument(std::string(AggKindToString(a.kind)) +
                                     " requires an argument");
    }
  }
  if (where) DBW_RETURN_NOT_OK(where->Validate(schema));
  for (const std::string& g : group_by) {
    DBW_RETURN_NOT_OK(schema.GetIndex(g).status());
  }
  return Status::OK();
}

AggregateQuery AggregateQuery::WithCleaningPredicate(
    const Predicate& pred) const {
  AggregateQuery out = *this;
  if (pred.empty()) return out;
  BoolExprPtr not_pred = MakeNot(PredicateToBoolExpr(pred));
  if (!out.where || out.where->kind() == BoolExpr::Kind::kTrue) {
    out.where = std::move(not_pred);
  } else {
    out.where = MakeAnd(out.where, std::move(not_pred));
  }
  return out;
}

}  // namespace dbwipes
