#include "dbwipes/learn/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dbwipes/common/logging.h"

namespace dbwipes {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// k-means++ seeding.
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& points, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng->UniformInt(points.size())]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i], SquaredDistance(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(points[rng->UniformInt(points.size())]);
      continue;
    }
    double target = rng->UniformDouble() * total;
    size_t chosen = points.size() - 1;
    double acc = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += dist2[i];
      if (target < acc) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult RunOnce(const std::vector<std::vector<double>>& points, size_t k,
                     Rng* rng, const KMeansOptions& options) {
  const size_t n = points.size();
  const size_t d = points[0].size();
  KMeansResult res;
  res.centroids = SeedCentroids(points, k, rng);
  res.assignment.assign(n, 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    res.iterations = iter + 1;
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double dist = SquaredDistance(points[i], res.centroids[c]);
        if (dist < best) {
          best = dist;
          best_c = static_cast<int>(c);
        }
      }
      res.assignment[i] = best_c;
    }
    // Update.
    std::vector<std::vector<double>> next(k, std::vector<double>(d, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const int c = res.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < d; ++j) next[c][j] += points[i][j];
    }
    double movement = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed at the point farthest from its centroid.
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const double dist = SquaredDistance(
              points[i], res.centroids[res.assignment[i]]);
          if (dist > far_d) {
            far_d = dist;
            far = i;
          }
        }
        next[c] = points[far];
      } else {
        for (size_t j = 0; j < d; ++j) {
          next[c][j] /= static_cast<double>(counts[c]);
        }
      }
      movement += SquaredDistance(next[c], res.centroids[c]);
      res.centroids[c] = std::move(next[c]);
    }
    if (movement < options.tolerance) break;
  }

  res.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    res.inertia += SquaredDistance(points[i], res.centroids[res.assignment[i]]);
  }
  return res;
}

}  // namespace

std::vector<size_t> KMeansResult::ClusterSizes(size_t k) const {
  std::vector<size_t> sizes(k, 0);
  for (int a : assignment) {
    DBW_CHECK(a >= 0 && static_cast<size_t>(a) < k);
    ++sizes[a];
  }
  return sizes;
}

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            size_t k, Rng* rng,
                            const KMeansOptions& options) {
  if (points.empty()) return Status::InvalidArgument("no points to cluster");
  if (k == 0 || k > points.size()) {
    return Status::InvalidArgument("k must be in [1, num_points]");
  }
  const size_t d = points[0].size();
  for (const auto& p : points) {
    if (p.size() != d) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }
  KMeansResult best;
  bool have_best = false;
  const size_t restarts = std::max<size_t>(1, options.num_restarts);
  for (size_t rep = 0; rep < restarts; ++rep) {
    KMeansResult res = RunOnce(points, k, rng, options);
    if (!have_best || res.inertia < best.inertia) {
      best = std::move(res);
      have_best = true;
    }
  }
  return best;
}

namespace {

/// Mean silhouette coefficient of a clustering (subsampled to cap the
/// O(n^2) distance work). Near 1 = well-separated clusters; uniform
/// structureless data scores ~0.5-0.6 even at its best split.
double MeanSilhouette(const std::vector<std::vector<double>>& points,
                      const std::vector<int>& assignment, size_t k,
                      Rng* rng) {
  const size_t n = points.size();
  std::vector<size_t> sample;
  if (n > 500) {
    sample = rng->SampleWithoutReplacement(n, 500);
  } else {
    sample.resize(n);
    for (size_t i = 0; i < n; ++i) sample[i] = i;
  }
  double total = 0.0;
  size_t counted = 0;
  for (size_t i : sample) {
    std::vector<double> mean_dist(k, 0.0);
    std::vector<size_t> counts(k, 0);
    for (size_t j : sample) {
      if (j == i) continue;
      mean_dist[assignment[j]] += std::sqrt(SquaredDistance(points[i],
                                                            points[j]));
      ++counts[assignment[j]];
    }
    const int own = assignment[i];
    if (counts[own] == 0) continue;  // singleton in the sample
    double a = mean_dist[own] / static_cast<double>(counts[own]);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (static_cast<int>(c) == own || counts[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(counts[c]));
    }
    if (!std::isfinite(b)) continue;
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace

Result<KMeansResult> KMeansAuto(const std::vector<std::vector<double>>& points,
                                size_t max_k, Rng* rng,
                                const KMeansOptions& options) {
  if (points.empty()) return Status::InvalidArgument("no points to cluster");
  max_k = std::min(max_k, points.size());
  if (max_k == 0) return Status::InvalidArgument("max_k must be >= 1");

  // Gap-statistic-style selection: a k is accepted only when its
  // silhouette clearly beats the silhouette k-means achieves on
  // structureless (uniform) reference data of the same shape — the
  // absolute silhouette of a best split depends on dimension, so a
  // fixed threshold cannot tell 1-D uniform from clustered 2-D data.
  const size_t d = points[0].size();
  std::vector<double> lo(d, 0.0), hi(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    lo[j] = hi[j] = points[0][j];
    for (const auto& p : points) {
      lo[j] = std::min(lo[j], p[j]);
      hi[j] = std::max(hi[j], p[j]);
    }
  }
  constexpr size_t kNumReference = 3;
  constexpr double kMinGap = 0.08;

  DBW_ASSIGN_OR_RETURN(KMeansResult best, KMeans(points, 1, rng, options));
  double best_gap = 0.0;
  for (size_t k = 2; k <= max_k; ++k) {
    DBW_ASSIGN_OR_RETURN(KMeansResult r, KMeans(points, k, rng, options));
    const double observed = MeanSilhouette(points, r.assignment, k, rng);
    double reference = 0.0;
    for (size_t b = 0; b < kNumReference; ++b) {
      std::vector<std::vector<double>> fake(points.size(),
                                            std::vector<double>(d));
      for (auto& p : fake) {
        for (size_t j = 0; j < d; ++j) p[j] = rng->UniformDouble(lo[j], hi[j]);
      }
      DBW_ASSIGN_OR_RETURN(KMeansResult fr, KMeans(fake, k, rng, options));
      reference += MeanSilhouette(fake, fr.assignment, k, rng);
    }
    reference /= static_cast<double>(kNumReference);
    const double gap = observed - reference;
    if (gap >= kMinGap && gap > best_gap) {
      best_gap = gap;
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace dbwipes
