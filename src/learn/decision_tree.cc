#include "dbwipes/learn/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace dbwipes {

namespace {

double Gini(double n0, double n1) {
  const double n = n0 + n1;
  if (n <= 0.0) return 0.0;
  const double p0 = n0 / n;
  const double p1 = n1 / n;
  return 1.0 - p0 * p0 - p1 * p1;
}

double Entropy(double n0, double n1) {
  const double n = n0 + n1;
  if (n <= 0.0) return 0.0;
  double h = 0.0;
  for (double c : {n0, n1}) {
    if (c > 0.0) {
      const double p = c / n;
      h -= p * std::log2(p);
    }
  }
  return h;
}

struct SplitEval {
  bool valid = false;
  double score = -std::numeric_limits<double>::infinity();
  double impurity_decrease = 0.0;
  size_t feature = 0;
  bool categorical = false;
  double threshold = 0.0;
  int32_t category = -1;
  // Positive fraction of the left ("condition true") branch; used to
  // break score ties toward splits whose equality form is the positive
  // side — `tag = 'bad'` reads better than `tag != 'fine'`.
  double left_pos_frac = 0.0;
};

/// Scores a (left, right) partition under the configured criterion.
/// Returns (score, impurity_decrease); higher score is better.
std::pair<double, double> ScorePartition(SplitCriterion criterion, double l0,
                                         double l1, double r0, double r1) {
  const double n = l0 + l1 + r0 + r1;
  const double nl = l0 + l1;
  const double nr = r0 + r1;
  if (criterion == SplitCriterion::kGini) {
    const double parent = Gini(l0 + r0, l1 + r1);
    const double child = (nl / n) * Gini(l0, l1) + (nr / n) * Gini(r0, r1);
    const double decrease = parent - child;
    return {decrease, decrease};
  }
  // Gain ratio: information gain normalized by split info.
  const double parent = Entropy(l0 + r0, l1 + r1);
  const double child = (nl / n) * Entropy(l0, l1) + (nr / n) * Entropy(r0, r1);
  const double gain = parent - child;
  double split_info = 0.0;
  for (double c : {nl, nr}) {
    if (c > 0.0) {
      const double p = c / n;
      split_info -= p * std::log2(p);
    }
  }
  if (split_info <= 1e-12) return {-1.0, gain};
  return {gain / split_info, gain};
}

class TreeBuilder {
 public:
  TreeBuilder(const FeatureView& view, const std::vector<RowId>& rows,
              const std::vector<int>& labels,
              const std::vector<double>& weights,
              const DecisionTreeOptions& options,
              std::vector<DecisionTree::Node>* nodes)
      : view_(view),
        rows_(rows),
        labels_(labels),
        weights_(weights),
        options_(options),
        nodes_(nodes) {}

  int Build(std::vector<size_t> indices, int depth) {
    DecisionTree::Node node;
    node.depth = depth;
    for (size_t i : indices) {
      (labels_[i] == 1 ? node.n1 : node.n0) += weights_[i];
    }
    const int id = static_cast<int>(nodes_->size());
    nodes_->push_back(node);

    const bool pure = node.n0 <= 0.0 || node.n1 <= 0.0;
    if (pure || depth >= static_cast<int>(options_.max_depth) ||
        node.total() < options_.min_samples_split) {
      return id;
    }

    const SplitEval best = FindBestSplit(indices);
    if (!best.valid ||
        best.impurity_decrease < options_.min_impurity_decrease) {
      return id;
    }

    std::vector<size_t> left, right;
    left.reserve(indices.size());
    right.reserve(indices.size());
    for (size_t i : indices) {
      (GoesLeft(best, rows_[i]) ? left : right).push_back(i);
    }
    if (left.empty() || right.empty()) return id;

    indices.clear();
    indices.shrink_to_fit();

    (*nodes_)[id].is_leaf = false;
    (*nodes_)[id].feature = best.feature;
    (*nodes_)[id].categorical = best.categorical;
    (*nodes_)[id].threshold = best.threshold;
    (*nodes_)[id].category = best.category;
    const int left_id = Build(std::move(left), depth + 1);
    (*nodes_)[id].left = left_id;
    const int right_id = Build(std::move(right), depth + 1);
    (*nodes_)[id].right = right_id;
    return id;
  }

 private:
  bool GoesLeft(const SplitEval& split, RowId row) const {
    if (view_.IsNull(row, split.feature)) return false;
    const double v = view_.Get(row, split.feature);
    if (split.categorical) {
      return static_cast<int32_t>(v) == split.category;
    }
    return v <= split.threshold;
  }

  SplitEval FindBestSplit(const std::vector<size_t>& indices) const {
    SplitEval best;
    for (size_t f = 0; f < view_.num_features(); ++f) {
      if (view_.features()[f].categorical) {
        EvalCategorical(indices, f, &best);
      } else {
        EvalNumeric(indices, f, &best);
      }
    }
    return best;
  }

  void Consider(SplitEval* best, SplitCriterion criterion, double l0,
                double l1, double r0, double r1, size_t feature,
                bool categorical, double threshold, int32_t category) const {
    const double nl = l0 + l1;
    const double nr = r0 + r1;
    if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
      return;
    }
    const auto [score, decrease] = ScorePartition(criterion, l0, l1, r0, r1);
    const double left_pos_frac = nl > 0.0 ? l1 / nl : 0.0;
    const bool better =
        score > best->score ||
        (score == best->score && left_pos_frac > best->left_pos_frac);
    if (better) {
      best->valid = true;
      best->score = score;
      best->impurity_decrease = decrease;
      best->feature = feature;
      best->categorical = categorical;
      best->threshold = threshold;
      best->category = category;
      best->left_pos_frac = left_pos_frac;
    }
  }

  void EvalNumeric(const std::vector<size_t>& indices, size_t f,
                   SplitEval* best) const {
    // Sort non-null values; nulls accumulate on the right side.
    struct Item {
      double value;
      double w0;
      double w1;
    };
    std::vector<Item> items;
    items.reserve(indices.size());
    double null0 = 0.0, null1 = 0.0;
    double tot0 = 0.0, tot1 = 0.0;
    for (size_t i : indices) {
      const double w = weights_[i];
      const int y = labels_[i];
      (y == 1 ? tot1 : tot0) += w;
      if (view_.IsNull(rows_[i], f)) {
        (y == 1 ? null1 : null0) += w;
        continue;
      }
      items.push_back({view_.Get(rows_[i], f), y == 0 ? w : 0.0,
                       y == 1 ? w : 0.0});
    }
    if (items.size() < 2) return;
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.value < b.value; });

    double l0 = 0.0, l1 = 0.0;
    for (size_t i = 0; i + 1 < items.size(); ++i) {
      l0 += items[i].w0;
      l1 += items[i].w1;
      if (items[i].value == items[i + 1].value) continue;
      const double threshold =
          items[i].value + (items[i + 1].value - items[i].value) / 2.0;
      Consider(best, options_.criterion, l0, l1, tot0 - l0, tot1 - l1, f,
               /*categorical=*/false, threshold, -1);
    }
  }

  void EvalCategorical(const std::vector<size_t>& indices, size_t f,
                       SplitEval* best) const {
    struct CatMass {
      double w0 = 0.0;
      double w1 = 0.0;
    };
    std::unordered_map<int32_t, CatMass> mass;
    double tot0 = 0.0, tot1 = 0.0;
    for (size_t i : indices) {
      const double w = weights_[i];
      const int y = labels_[i];
      (y == 1 ? tot1 : tot0) += w;
      if (view_.IsNull(rows_[i], f)) continue;
      CatMass& m = mass[static_cast<int32_t>(view_.Get(rows_[i], f))];
      (y == 1 ? m.w1 : m.w0) += w;
    }
    if (mass.size() < 2) return;

    // Cap candidates at the heaviest categories. Sort fully (heaviest
    // first, code as tie-break) so candidate order — and therefore the
    // fitted tree — is deterministic regardless of hash-map iteration.
    std::vector<std::pair<int32_t, CatMass>> cats(mass.begin(), mass.end());
    std::sort(cats.begin(), cats.end(), [](const auto& a, const auto& b) {
      const double wa = a.second.w0 + a.second.w1;
      const double wb = b.second.w0 + b.second.w1;
      if (wa != wb) return wa > wb;
      return a.first < b.first;
    });
    if (cats.size() > options_.max_categories_per_feature) {
      cats.resize(options_.max_categories_per_feature);
    }
    for (const auto& [code, m] : cats) {
      Consider(best, options_.criterion, m.w0, m.w1, tot0 - m.w0,
               tot1 - m.w1, f, /*categorical=*/true, 0.0, code);
    }
  }

  const FeatureView& view_;
  const std::vector<RowId>& rows_;
  const std::vector<int>& labels_;
  const std::vector<double>& weights_;
  const DecisionTreeOptions& options_;
  std::vector<DecisionTree::Node>* nodes_;
};

}  // namespace

const char* SplitCriterionToString(SplitCriterion c) {
  switch (c) {
    case SplitCriterion::kGini:
      return "gini";
    case SplitCriterion::kGainRatio:
      return "gain_ratio";
  }
  return "?";
}

Result<DecisionTree> DecisionTree::Fit(const FeatureView& view,
                                       const std::vector<RowId>& rows,
                                       const std::vector<int>& labels,
                                       const std::vector<double>& weights,
                                       const DecisionTreeOptions& options) {
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows/labels size mismatch");
  }
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  if (!weights.empty() && weights.size() != rows.size()) {
    return Status::InvalidArgument("rows/weights size mismatch");
  }
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
  }
  if (view.num_features() == 0) {
    return Status::InvalidArgument("feature view has no features");
  }

  std::vector<double> w = weights;
  if (w.empty()) w.assign(rows.size(), 1.0);

  DecisionTree tree;
  TreeBuilder builder(view, rows, labels, w, options, &tree.nodes_);
  std::vector<size_t> indices(rows.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  builder.Build(std::move(indices), 0);

  if (options.ccp_alpha > 0.0) {
    // Bottom-up cost-complexity pruning: collapse a subtree when its
    // error reduction per extra leaf is <= alpha (errors normalized by
    // total weight).
    const double total = tree.nodes_[0].total();
    // Process nodes in reverse creation order = children before parents.
    for (int id = static_cast<int>(tree.nodes_.size()) - 1; id >= 0; --id) {
      Node& node = tree.nodes_[id];
      if (node.is_leaf) continue;
      // Subtree stats via DFS.
      double subtree_error = 0.0;
      size_t leaves = 0;
      std::vector<int> stack = {id};
      while (!stack.empty()) {
        const Node& n = tree.nodes_[stack.back()];
        stack.pop_back();
        if (n.is_leaf) {
          subtree_error += std::min(n.n0, n.n1);
          ++leaves;
        } else {
          stack.push_back(n.left);
          stack.push_back(n.right);
        }
      }
      const double node_error = std::min(node.n0, node.n1);
      if (leaves > 1) {
        const double g = (node_error - subtree_error) /
                         (total * static_cast<double>(leaves - 1));
        if (g <= options.ccp_alpha) {
          node.is_leaf = true;
          node.left = node.right = -1;
        }
      }
    }
  }
  return tree;
}

double DecisionTree::PredictProba(const FeatureView& view, RowId row) const {
  int id = 0;
  while (!nodes_[id].is_leaf) {
    const Node& n = nodes_[id];
    bool left;
    if (view.IsNull(row, n.feature)) {
      left = false;
    } else {
      const double v = view.Get(row, n.feature);
      left = n.categorical ? static_cast<int32_t>(v) == n.category
                           : v <= n.threshold;
    }
    id = left ? n.left : n.right;
  }
  return nodes_[id].prob1();
}

size_t DecisionTree::num_leaves() const {
  // Traverse from the root: pruning collapses internal nodes into
  // leaves and leaves their former descendants orphaned in nodes_.
  size_t count = 0;
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    if (n.is_leaf) {
      ++count;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return count;
}

size_t DecisionTree::depth() const {
  size_t d = 0;
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    if (n.is_leaf) {
      d = std::max(d, static_cast<size_t>(n.depth));
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return d;
}

std::vector<Predicate> DecisionTree::PositiveLeafPredicates(
    const FeatureView& view, double min_precision,
    double min_positive_weight) const {
  std::vector<Predicate> out;
  // DFS carrying the clause stack.
  struct Frame {
    int id;
    std::vector<Clause> clauses;
  };
  std::vector<Frame> stack;
  stack.push_back({0, {}});
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const Node& n = nodes_[frame.id];
    if (n.is_leaf) {
      if (n.prob1() >= min_precision && n.n1 >= min_positive_weight &&
          !frame.clauses.empty()) {
        out.push_back(Predicate(frame.clauses).Simplify());
      }
      continue;
    }
    const FeatureSpec& spec = view.features()[n.feature];
    Clause left_clause, right_clause;
    if (n.categorical) {
      const std::string& cat = view.CategoryName(n.feature, n.category);
      left_clause = Clause::Make(spec.name, CompareOp::kEq, Value(cat));
      right_clause = Clause::Make(spec.name, CompareOp::kNe, Value(cat));
    } else {
      left_clause =
          Clause::Make(spec.name, CompareOp::kLe, Value(n.threshold));
      right_clause =
          Clause::Make(spec.name, CompareOp::kGt, Value(n.threshold));
    }
    Frame left_frame{n.left, frame.clauses};
    left_frame.clauses.push_back(std::move(left_clause));
    Frame right_frame{n.right, std::move(frame.clauses)};
    right_frame.clauses.push_back(std::move(right_clause));
    stack.push_back(std::move(left_frame));
    stack.push_back(std::move(right_frame));
  }
  return out;
}

std::string DecisionTree::ToString(const FeatureView& view) const {
  std::string out;
  struct Frame {
    int id;
    int indent;
    std::string prefix;
  };
  std::vector<Frame> stack = {{0, 0, ""}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[f.id];
    out += std::string(static_cast<size_t>(f.indent) * 2, ' ') + f.prefix;
    if (n.is_leaf) {
      out += "leaf: p1=" + std::to_string(n.prob1()) +
             " (n0=" + std::to_string(n.n0) + ", n1=" + std::to_string(n.n1) +
             ")\n";
      continue;
    }
    const FeatureSpec& spec = view.features()[n.feature];
    std::string cond;
    if (n.categorical) {
      cond = spec.name + " == '" + view.CategoryName(n.feature, n.category) +
             "'";
    } else {
      cond = spec.name + " <= " + std::to_string(n.threshold);
    }
    out += "split on " + cond + "\n";
    stack.push_back({n.right, f.indent + 1, "[else] "});
    stack.push_back({n.left, f.indent + 1, "[" + cond + "] "});
  }
  return out;
}

}  // namespace dbwipes
