#include "dbwipes/learn/subgroup.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "dbwipes/common/stats.h"

namespace dbwipes {

namespace {

/// One atomic condition with its precomputed coverage bitmap over the
/// training rows.
struct Condition {
  Clause clause;
  std::vector<char> covered;  // covered[i] over row indices
};

/// A conjunction under construction during beam search.
struct Rule {
  std::vector<size_t> condition_ids;  // sorted
  std::vector<char> covered;
  double wracc = -std::numeric_limits<double>::infinity();

  std::string Key() const {
    std::string k;
    for (size_t id : condition_ids) k += std::to_string(id) + ",";
    return k;
  }
};

std::vector<Condition> BuildConditions(const FeatureView& view,
                                       const std::vector<RowId>& rows,
                                       const SubgroupOptions& options) {
  std::vector<Condition> conditions;
  const size_t n = rows.size();
  for (size_t f = 0; f < view.num_features(); ++f) {
    const FeatureSpec& spec = view.features()[f];
    if (spec.categorical) {
      // Most frequent categories.
      std::unordered_map<int32_t, size_t> freq;
      for (RowId r : rows) {
        if (!view.IsNull(r, f)) {
          ++freq[static_cast<int32_t>(view.Get(r, f))];
        }
      }
      std::vector<std::pair<int32_t, size_t>> cats(freq.begin(), freq.end());
      std::sort(cats.begin(), cats.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
      });
      if (cats.size() > options.max_categories_per_feature) {
        cats.resize(options.max_categories_per_feature);
      }
      for (const auto& [code, count] : cats) {
        Condition cond;
        cond.clause = Clause::Make(spec.name, CompareOp::kEq,
                                   Value(view.CategoryName(f, code)));
        cond.covered.assign(n, 0);
        for (size_t i = 0; i < n; ++i) {
          if (!view.IsNull(rows[i], f) &&
              static_cast<int32_t>(view.Get(rows[i], f)) == code) {
            cond.covered[i] = 1;
          }
        }
        conditions.push_back(std::move(cond));
      }
    } else {
      // Quantile thresholds over the distinct values.
      std::vector<double> values;
      values.reserve(n);
      for (RowId r : rows) {
        const double v = view.Get(r, f);
        if (!std::isnan(v)) values.push_back(v);
      }
      if (values.size() < 2) continue;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      if (values.size() < 2) continue;

      std::set<double> thresholds;
      const size_t buckets =
          std::min(options.max_numeric_thresholds, values.size() - 1);
      for (size_t b = 1; b <= buckets; ++b) {
        const double q = static_cast<double>(b) /
                         static_cast<double>(buckets + 1);
        const size_t idx = std::min(
            values.size() - 2,
            static_cast<size_t>(q * static_cast<double>(values.size() - 1)));
        thresholds.insert(values[idx] + (values[idx + 1] - values[idx]) / 2.0);
      }
      for (double t : thresholds) {
        for (CompareOp op : {CompareOp::kLe, CompareOp::kGt}) {
          Condition cond;
          cond.clause = Clause::Make(spec.name, op, Value(t));
          cond.covered.assign(n, 0);
          for (size_t i = 0; i < n; ++i) {
            if (view.IsNull(rows[i], f)) continue;
            const double v = view.Get(rows[i], f);
            const bool match = op == CompareOp::kLe ? v <= t : v > t;
            if (match) cond.covered[i] = 1;
          }
          conditions.push_back(std::move(cond));
        }
      }
    }
  }
  return conditions;
}

/// Weighted relative accuracy of a coverage bitmap.
double WRAcc(const std::vector<char>& covered,
             const std::vector<double>& weights,
             const std::vector<int>& labels, double total_w,
             double total_pos_w) {
  double cov_w = 0.0, cov_pos_w = 0.0;
  for (size_t i = 0; i < covered.size(); ++i) {
    if (covered[i]) {
      cov_w += weights[i];
      if (labels[i] == 1) cov_pos_w += weights[i];
    }
  }
  if (cov_w <= 0.0 || total_w <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return (cov_w / total_w) * (cov_pos_w / cov_w - total_pos_w / total_w);
}

}  // namespace

Result<std::vector<Subgroup>> DiscoverSubgroups(
    const FeatureView& view, const std::vector<RowId>& rows,
    const std::vector<int>& labels, const std::vector<double>& init_weights,
    const SubgroupOptions& options) {
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows/labels size mismatch");
  }
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  if (!init_weights.empty() && init_weights.size() != rows.size()) {
    return Status::InvalidArgument("rows/init_weights size mismatch");
  }
  bool has_positive = false;
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    if (y == 1) has_positive = true;
  }
  if (!has_positive) {
    return Status::InvalidArgument("no positive examples for subgroups");
  }

  const size_t n = rows.size();
  std::vector<Condition> conditions = BuildConditions(view, rows, options);
  if (conditions.empty()) {
    return Status::InvalidArgument(
        "no candidate conditions could be generated from the features");
  }

  std::vector<double> weights = init_weights;
  if (weights.empty()) weights.assign(n, 1.0);

  std::vector<Subgroup> subgroups;
  for (size_t round = 0; round < options.num_rules; ++round) {
    double total_w = 0.0, total_pos_w = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total_w += weights[i];
      if (labels[i] == 1) total_pos_w += weights[i];
    }
    if (total_pos_w <= 1e-12) break;

    // Beam search over conjunctions.
    std::vector<Rule> beam;
    Rule best;
    {
      Rule empty;
      empty.covered.assign(n, 1);
      beam.push_back(std::move(empty));
    }
    for (size_t level = 0; level < options.max_clauses; ++level) {
      std::vector<Rule> candidates;
      std::set<std::string> seen;
      for (const Rule& rule : beam) {
        for (size_t ci = 0; ci < conditions.size(); ++ci) {
          if (std::binary_search(rule.condition_ids.begin(),
                                 rule.condition_ids.end(), ci)) {
            continue;
          }
          Rule next;
          next.condition_ids = rule.condition_ids;
          next.condition_ids.insert(
              std::upper_bound(next.condition_ids.begin(),
                               next.condition_ids.end(), ci),
              ci);
          const std::string key = next.Key();
          if (!seen.insert(key).second) continue;

          next.covered.assign(n, 0);
          size_t cov_count = 0;
          for (size_t i = 0; i < n; ++i) {
            if (rule.covered[i] && conditions[ci].covered[i]) {
              next.covered[i] = 1;
              ++cov_count;
            }
          }
          if (cov_count < options.min_coverage) continue;
          next.wracc = WRAcc(next.covered, weights, labels, total_w,
                             total_pos_w);
          candidates.push_back(std::move(next));
        }
      }
      if (candidates.empty()) break;
      std::sort(candidates.begin(), candidates.end(),
                [](const Rule& a, const Rule& b) { return a.wracc > b.wracc; });
      if (candidates.size() > options.beam_width) {
        candidates.resize(options.beam_width);
      }
      if (candidates.front().wracc > best.wracc) best = candidates.front();
      beam = std::move(candidates);
    }

    if (best.condition_ids.empty() || best.wracc <= 0.0) break;

    Subgroup sg;
    std::vector<Clause> clauses;
    for (size_t ci : best.condition_ids) {
      clauses.push_back(conditions[ci].clause);
    }
    sg.predicate = Predicate(std::move(clauses)).Simplify();
    sg.wracc = best.wracc;
    for (size_t i = 0; i < n; ++i) {
      if (best.covered[i]) {
        ++sg.coverage;
        if (labels[i] == 1) ++sg.positives;
        sg.covered.push_back(i);
      }
    }
    // Skip semantic duplicates discovered in later rounds.
    bool duplicate = false;
    for (const Subgroup& prev : subgroups) {
      if (prev.predicate == sg.predicate) {
        duplicate = true;
        break;
      }
    }
    // Weighted covering: decay covered positives so later rounds look
    // elsewhere. (Apply even when the rule was a duplicate, to force
    // progress.)
    for (size_t i = 0; i < n; ++i) {
      if (best.covered[i] && labels[i] == 1) {
        weights[i] *= options.gamma;
      }
    }
    if (!duplicate) subgroups.push_back(std::move(sg));
  }

  std::sort(subgroups.begin(), subgroups.end(),
            [](const Subgroup& a, const Subgroup& b) {
              return a.wracc > b.wracc;
            });
  return subgroups;
}

}  // namespace dbwipes
