#include "dbwipes/learn/naive_bayes.h"

#include <cmath>

#include "dbwipes/common/stats.h"

namespace dbwipes {

namespace {
constexpr double kMinVariance = 1e-9;
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

Result<NaiveBayes> NaiveBayes::Fit(const FeatureView& view,
                                   const std::vector<RowId>& rows,
                                   const std::vector<int>& labels) {
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows/labels size mismatch");
  }
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  size_t class_counts[2] = {0, 0};
  for (int y : labels) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    ++class_counts[y];
  }
  if (class_counts[0] == 0 || class_counts[1] == 0) {
    return Status::InvalidArgument("both classes must be present");
  }

  NaiveBayes model;
  const double n = static_cast<double>(rows.size());
  model.log_prior_[0] = std::log(static_cast<double>(class_counts[0]) / n);
  model.log_prior_[1] = std::log(static_cast<double>(class_counts[1]) / n);

  model.features_.resize(view.num_features());
  for (size_t f = 0; f < view.num_features(); ++f) {
    FeatureModel& fm = model.features_[f];
    fm.categorical = view.features()[f].categorical;
    if (fm.categorical) {
      for (size_t i = 0; i < rows.size(); ++i) {
        if (view.IsNull(rows[i], f)) continue;
        const int32_t code = static_cast<int32_t>(view.Get(rows[i], f));
        fm.counts[labels[i]][code] += 1.0;
        fm.totals[labels[i]] += 1.0;
      }
      // Distinct categories across both classes (for smoothing).
      std::unordered_map<int32_t, bool> seen;
      for (int c = 0; c < 2; ++c) {
        for (const auto& [code, cnt] : fm.counts[c]) seen[code] = true;
      }
      fm.num_categories = std::max<double>(1.0, static_cast<double>(seen.size()));
    } else {
      OnlineStats stats[2];
      for (size_t i = 0; i < rows.size(); ++i) {
        const double v = view.Get(rows[i], f);
        if (!std::isnan(v)) stats[labels[i]].Add(v);
      }
      for (int c = 0; c < 2; ++c) {
        fm.numeric[c].mean = stats[c].mean();
        fm.numeric[c].var = std::max(kMinVariance, stats[c].variance());
      }
    }
  }
  return model;
}

double NaiveBayes::PredictProba(const FeatureView& view, RowId row) const {
  double log_like[2] = {log_prior_[0], log_prior_[1]};
  for (size_t f = 0; f < features_.size(); ++f) {
    if (view.IsNull(row, f)) continue;  // missing features are skipped
    const FeatureModel& fm = features_[f];
    const double v = view.Get(row, f);
    for (int c = 0; c < 2; ++c) {
      if (fm.categorical) {
        const int32_t code = static_cast<int32_t>(v);
        auto it = fm.counts[c].find(code);
        const double count = it == fm.counts[c].end() ? 0.0 : it->second;
        // Laplace smoothing.
        const double p =
            (count + 1.0) / (fm.totals[c] + fm.num_categories);
        log_like[c] += std::log(p);
      } else {
        const NumericStats& ns = fm.numeric[c];
        const double d = v - ns.mean;
        log_like[c] +=
            -0.5 * std::log(kTwoPi * ns.var) - d * d / (2.0 * ns.var);
      }
    }
  }
  // Softmax over two classes, numerically stable.
  const double m = std::max(log_like[0], log_like[1]);
  const double e0 = std::exp(log_like[0] - m);
  const double e1 = std::exp(log_like[1] - m);
  return e1 / (e0 + e1);
}

}  // namespace dbwipes
