#include "dbwipes/learn/feature.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "dbwipes/common/stats.h"

namespace dbwipes {

Result<FeatureView> FeatureView::Create(
    const Table& table, const std::vector<std::string>& columns) {
  std::vector<FeatureSpec> specs;
  specs.reserve(columns.size());
  for (const std::string& name : columns) {
    DBW_ASSIGN_OR_RETURN(size_t idx, table.schema().GetIndex(name));
    FeatureSpec spec;
    spec.column = idx;
    spec.categorical = table.column(idx).type() == DataType::kString;
    spec.name = name;
    specs.push_back(std::move(spec));
  }
  return FeatureView(&table, std::move(specs));
}

Result<FeatureView> FeatureView::CreateExcluding(
    const Table& table, const std::vector<std::string>& exclude) {
  std::vector<std::string> columns;
  for (const Field& f : table.schema().fields()) {
    if (std::find(exclude.begin(), exclude.end(), f.name) == exclude.end()) {
      columns.push_back(f.name);
    }
  }
  return Create(table, columns);
}

double FeatureView::Get(RowId row, size_t f) const {
  const FeatureSpec& spec = features_[f];
  const Column& col = table_->column(spec.column);
  if (col.IsNull(row)) return std::numeric_limits<double>::quiet_NaN();
  if (spec.categorical) return static_cast<double>(col.StringCode(row));
  return col.AsDouble(row);
}

bool FeatureView::IsNull(RowId row, size_t f) const {
  return table_->column(features_[f].column).IsNull(row);
}

std::vector<int32_t> FeatureView::CategoriesIn(const std::vector<RowId>& rows,
                                               size_t f) const {
  DBW_CHECK(features_[f].categorical);
  const Column& col = table_->column(features_[f].column);
  std::set<int32_t> codes;
  for (RowId r : rows) {
    if (!col.IsNull(r)) codes.insert(col.StringCode(r));
  }
  return std::vector<int32_t>(codes.begin(), codes.end());
}

const std::string& FeatureView::CategoryName(size_t f, int32_t code) const {
  DBW_CHECK(features_[f].categorical);
  return table_->column(features_[f].column).DictionaryValue(code);
}

void FeatureView::NumericMatrix(const std::vector<RowId>& rows,
                                bool standardize,
                                std::vector<std::vector<double>>* matrix,
                                std::vector<size_t>* feature_indices) const {
  feature_indices->clear();
  for (size_t f = 0; f < features_.size(); ++f) {
    if (!features_[f].categorical) feature_indices->push_back(f);
  }
  const size_t d = feature_indices->size();
  matrix->assign(rows.size(), std::vector<double>(d, 0.0));

  for (size_t j = 0; j < d; ++j) {
    const size_t f = (*feature_indices)[j];
    OnlineStats stats;
    for (RowId r : rows) {
      const double v = Get(r, f);
      if (!std::isnan(v)) stats.Add(v);
    }
    const double mean = stats.mean();
    const double sd = stats.stddev();
    for (size_t i = 0; i < rows.size(); ++i) {
      double v = Get(rows[i], f);
      if (std::isnan(v)) v = mean;  // mean imputation
      if (standardize) {
        v = sd > 0.0 ? (v - mean) / sd : 0.0;
      }
      (*matrix)[i][j] = v;
    }
  }
}

}  // namespace dbwipes
