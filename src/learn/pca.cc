#include "dbwipes/learn/pca.h"

#include <cmath>

#include "dbwipes/common/logging.h"

namespace dbwipes {

namespace {

constexpr size_t kMaxIterations = 500;
constexpr double kTolerance = 1e-10;

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Normalize(std::vector<double>* v) {
  const double norm = std::sqrt(Dot(*v, *v));
  if (norm > 0.0) {
    for (double& x : *v) x /= norm;
  }
}

}  // namespace

std::vector<double> PcaResult::Project(const std::vector<double>& point) const {
  DBW_CHECK(point.size() == means.size());
  std::vector<double> out(components.size(), 0.0);
  for (size_t c = 0; c < components.size(); ++c) {
    for (size_t j = 0; j < point.size(); ++j) {
      out[c] += (point[j] - means[j]) * components[c][j];
    }
  }
  return out;
}

Result<PcaResult> ComputePca(const std::vector<std::vector<double>>& points,
                             size_t num_components) {
  if (points.empty()) return Status::InvalidArgument("no points for PCA");
  const size_t n = points.size();
  const size_t d = points[0].size();
  if (d == 0) return Status::InvalidArgument("zero-dimensional points");
  for (const auto& p : points) {
    if (p.size() != d) {
      return Status::InvalidArgument("points have inconsistent dimensions");
    }
  }
  if (num_components == 0 || num_components > d) {
    return Status::InvalidArgument("num_components must be in [1, dims]");
  }

  PcaResult result;
  result.means.assign(d, 0.0);
  for (const auto& p : points) {
    for (size_t j = 0; j < d; ++j) result.means[j] += p[j];
  }
  for (double& m : result.means) m /= static_cast<double>(n);

  // Covariance matrix (d x d). Group-by keys rarely exceed a handful
  // of attributes, so the dense O(n d^2) build is fine.
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& p : points) {
    for (size_t i = 0; i < d; ++i) {
      const double ci = p[i] - result.means[i];
      for (size_t j = i; j < d; ++j) {
        cov[i][j] += ci * (p[j] - result.means[j]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }

  // Power iteration with deflation.
  for (size_t c = 0; c < num_components; ++c) {
    // Deterministic start: basis vector of the dimension with the
    // largest remaining variance.
    size_t start = 0;
    for (size_t j = 1; j < d; ++j) {
      if (cov[j][j] > cov[start][start]) start = j;
    }
    std::vector<double> v(d, 0.0);
    v[start] = 1.0;

    double eigenvalue = 0.0;
    for (size_t iter = 0; iter < kMaxIterations; ++iter) {
      std::vector<double> next(d, 0.0);
      for (size_t i = 0; i < d; ++i) {
        next[i] = Dot(cov[i], v);
      }
      const double norm = std::sqrt(Dot(next, next));
      if (norm < kTolerance) {
        // Remaining covariance is ~zero; the rest of the spectrum is
        // degenerate. Keep the current basis vector with eigenvalue 0.
        next = v;
        eigenvalue = 0.0;
        break;
      }
      for (double& x : next) x /= norm;
      const double delta = 1.0 - std::fabs(Dot(next, v));
      v = std::move(next);
      eigenvalue = norm;
      if (delta < kTolerance) break;
    }
    Normalize(&v);
    result.components.push_back(v);
    result.explained_variance.push_back(eigenvalue);

    // Deflate: cov -= lambda * v v^T.
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) {
        cov[i][j] -= eigenvalue * v[i] * v[j];
      }
    }
  }
  return result;
}

}  // namespace dbwipes
