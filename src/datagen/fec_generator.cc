#include "dbwipes/datagen/fec_generator.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"

namespace dbwipes {

namespace {

const char* kCandidates[] = {"OBAMA", "MCCAIN", "CLINTON", "ROMNEY", "PAUL"};
// Rough share of donations per candidate.
const double kCandidateWeights[] = {0.38, 0.30, 0.18, 0.09, 0.05};

const char* kStates[] = {"CA", "NY", "TX", "FL", "IL", "MA", "WA", "VA",
                         "PA", "OH", "MI", "NC", "GA", "NJ", "AZ", "CO"};

const char* kCitiesByState[][3] = {
    {"LOS ANGELES", "SAN FRANCISCO", "SAN DIEGO"},
    {"NEW YORK", "BUFFALO", "ALBANY"},
    {"HOUSTON", "AUSTIN", "DALLAS"},
    {"MIAMI", "ORLANDO", "TAMPA"},
    {"CHICAGO", "SPRINGFIELD", "PEORIA"},
    {"BOSTON", "CAMBRIDGE", "WORCESTER"},
    {"SEATTLE", "SPOKANE", "TACOMA"},
    {"RICHMOND", "ARLINGTON", "NORFOLK"},
    {"PHILADELPHIA", "PITTSBURGH", "ALLENTOWN"},
    {"COLUMBUS", "CLEVELAND", "CINCINNATI"},
    {"DETROIT", "ANN ARBOR", "LANSING"},
    {"CHARLOTTE", "RALEIGH", "DURHAM"},
    {"ATLANTA", "SAVANNAH", "ATHENS"},
    {"NEWARK", "JERSEY CITY", "TRENTON"},
    {"PHOENIX", "TUCSON", "MESA"},
    {"DENVER", "BOULDER", "COLORADO SPRINGS"},
};

const char* kOccupations[] = {"RETIRED",      "ATTORNEY",   "PHYSICIAN",
                              "ENGINEER",     "TEACHER",    "HOMEMAKER",
                              "CONSULTANT",   "PROFESSOR",  "EXECUTIVE",
                              "CEO",          "SALES",      "NURSE",
                              "ACCOUNTANT",   "ARCHITECT",  "STUDENT",
                              "NOT EMPLOYED", "REAL ESTATE", "BANKER"};

const char* kBenignMemos[] = {"", "", "", "", "", "CONTRIBUTION",
                              "PRIMARY", "GENERAL", "EARMARKED"};

constexpr char kReattributionMemo[] = "REATTRIBUTION TO SPOUSE";
constexpr char kRefundMemo[] = "REFUND ISSUED";

// Campaign events produce donation-day clusters (Figure 7's spikes).
struct Event {
  double day;
  double spread;
  double weight;
};

}  // namespace

Result<LabeledDataset> GenerateFecDataset(const FecOptions& options) {
  if (options.num_days <= 1) {
    return Status::InvalidArgument("num_days must be > 1");
  }
  if (options.num_donations == 0) {
    return Status::InvalidArgument("num_donations must be > 0");
  }
  bool target_known = false;
  for (const char* c : kCandidates) {
    if (options.target_candidate == c) target_known = true;
  }
  if (!target_known) {
    return Status::InvalidArgument("unknown target candidate '" +
                                   options.target_candidate + "'");
  }

  Rng rng(options.seed);
  Schema schema{{"candidate", DataType::kString},
                {"state", DataType::kString},
                {"city", DataType::kString},
                {"occupation", DataType::kString},
                {"amount", DataType::kDouble},
                {"day", DataType::kInt64},
                {"memo", DataType::kString}};
  auto table = std::make_shared<Table>(schema, "donations");

  const double days = static_cast<double>(options.num_days);
  const std::vector<Event> events = {
      {0.15 * days, 8.0, 0.18}, {0.45 * days, 10.0, 0.22},
      {0.70 * days, 6.0, 0.20}, {0.92 * days, 5.0, 0.25},
  };

  auto sample_day = [&]() -> int64_t {
    // Mixture: baseline uniform-with-growth + event gaussians.
    const double u = rng.UniformDouble();
    double acc = 0.0;
    for (const Event& e : events) {
      acc += e.weight;
      if (u < acc) {
        const double d = rng.Normal(e.day, e.spread);
        return std::clamp<int64_t>(static_cast<int64_t>(d), 0,
                                   options.num_days - 1);
      }
    }
    // Baseline grows over the campaign (sqrt ramp).
    const double t = std::sqrt(rng.UniformDouble());
    return std::clamp<int64_t>(static_cast<int64_t>(t * days), 0,
                               options.num_days - 1);
  };

  const std::vector<double> cand_weights(
      kCandidateWeights,
      kCandidateWeights + sizeof(kCandidateWeights) / sizeof(double));

  std::vector<Value> row(schema.num_fields());
  auto append_row = [&](const std::string& candidate, double amount,
                        int64_t day, const std::string& memo) -> Status {
    const size_t si = rng.UniformInt(sizeof(kStates) / sizeof(char*));
    const size_t ci = rng.UniformInt(3);
    const size_t oi = rng.UniformInt(sizeof(kOccupations) / sizeof(char*));
    row[0] = Value(candidate);
    row[1] = Value(std::string(kStates[si]));
    row[2] = Value(std::string(kCitiesByState[si][ci]));
    row[3] = Value(std::string(kOccupations[oi]));
    row[4] = Value(amount);
    row[5] = Value(day);
    row[6] = Value(memo);
    return table->AppendRow(row);
  };

  // Normal donations.
  const size_t num_refunds = static_cast<size_t>(
      options.refund_rate * static_cast<double>(options.num_donations));
  for (size_t i = 0; i < options.num_donations; ++i) {
    const size_t cand = rng.WeightedIndex(cand_weights);
    // Log-normal-ish amounts, capped at the legal individual limit.
    double amount = std::exp(rng.Normal(4.3, 1.0));
    amount = std::min(4600.0, std::max(5.0, std::round(amount)));
    const size_t mi = rng.UniformInt(sizeof(kBenignMemos) / sizeof(char*));
    DBW_RETURN_NOT_OK(append_row(kCandidates[cand], amount, sample_day(),
                                 kBenignMemos[mi]));
  }

  // Benign refunds: small negatives, uniform over time and candidates.
  for (size_t i = 0; i < num_refunds; ++i) {
    const size_t cand = rng.WeightedIndex(cand_weights);
    const double amount =
        -std::min(4600.0, std::max(5.0, std::round(std::exp(rng.Normal(3.6, 0.8)))));
    DBW_RETURN_NOT_OK(append_row(kCandidates[cand], amount, sample_day(),
                                 kRefundMemo));
  }

  // The anomaly: large negative reattributions for the target
  // candidate, tightly clustered around reattribution_day.
  LabeledDataset out;
  InjectedAnomaly anomaly;
  anomaly.description = Predicate({Clause::Make(
      "memo", CompareOp::kContains, Value(std::string(kReattributionMemo)))});
  anomaly.note = "reattribution-to-spouse burst for " +
                 options.target_candidate + " around day " +
                 std::to_string(options.reattribution_day);
  for (size_t i = 0; i < options.num_reattributions; ++i) {
    const int64_t day = std::clamp<int64_t>(
        static_cast<int64_t>(rng.Normal(
            static_cast<double>(options.reattribution_day),
            options.reattribution_spread)),
        0, options.num_days - 1);
    // Reattributed donations are the big ones (CEOs and executives).
    const double amount =
        -std::round(rng.UniformDouble(1000.0, 4600.0));
    DBW_RETURN_NOT_OK(append_row(options.target_candidate, amount, day,
                                 kReattributionMemo));
    anomaly.rows.push_back(static_cast<RowId>(table->num_rows() - 1));
  }
  std::sort(anomaly.rows.begin(), anomaly.rows.end());

  out.table = std::move(table);
  out.anomalies.push_back(std::move(anomaly));
  return out;
}

}  // namespace dbwipes
