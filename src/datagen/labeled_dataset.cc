#include "dbwipes/datagen/labeled_dataset.h"

#include <algorithm>

namespace dbwipes {

std::vector<RowId> LabeledDataset::AllAnomalousRows() const {
  std::vector<RowId> out;
  for (const InjectedAnomaly& a : anomalies) {
    out.insert(out.end(), a.rows.begin(), a.rows.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dbwipes
