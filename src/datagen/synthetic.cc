#include "dbwipes/datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"

namespace dbwipes {

namespace {
// Anomalous rows draw the flagged numeric attribute from
// [kAnomalyLow, kAnomalyHigh]; decoys stay strictly below.
constexpr double kAnomalyLow = 2.0;
constexpr double kAnomalyHigh = 3.0;
constexpr char kAnomalyCategory[] = "ANOM";
}  // namespace

Result<LabeledDataset> GenerateSyntheticDataset(
    const SyntheticOptions& options) {
  if (options.num_rows == 0) {
    return Status::InvalidArgument("num_rows must be > 0");
  }
  if (options.num_groups == 0) {
    return Status::InvalidArgument("num_groups must be > 0");
  }
  if (options.num_categorical_attrs == 0) {
    return Status::InvalidArgument(
        "need at least one categorical attribute to host the anomaly");
  }
  if (options.anomaly_clauses == 2 && options.num_numeric_attrs == 0) {
    return Status::InvalidArgument(
        "a 2-clause anomaly needs a numeric attribute");
  }
  if (options.anomaly_clauses < 1 || options.anomaly_clauses > 2) {
    return Status::InvalidArgument("anomaly_clauses must be 1 or 2");
  }
  if (options.anomaly_selectivity <= 0.0 ||
      options.anomaly_selectivity >= 1.0) {
    return Status::InvalidArgument("anomaly_selectivity must be in (0, 1)");
  }

  Rng rng(options.seed);
  std::vector<Field> fields;
  fields.push_back(Field{"g", DataType::kInt64});
  for (size_t i = 0; i < options.num_numeric_attrs; ++i) {
    fields.push_back(Field{"a" + std::to_string(i), DataType::kDouble});
  }
  for (size_t i = 0; i < options.num_categorical_attrs; ++i) {
    fields.push_back(Field{"c" + std::to_string(i), DataType::kString});
  }
  fields.push_back(Field{"v", DataType::kDouble});
  auto table = std::make_shared<Table>(Schema(fields), "synthetic");

  LabeledDataset out;
  InjectedAnomaly anomaly;
  {
    std::vector<Clause> clauses;
    clauses.push_back(Clause::Make("c0", CompareOp::kEq,
                                   Value(std::string(kAnomalyCategory))));
    if (options.anomaly_clauses == 2) {
      clauses.push_back(
          Clause::Make("a0", CompareOp::kGe, Value(kAnomalyLow)));
    }
    anomaly.description = Predicate(std::move(clauses));
    anomaly.note = "synthetic planted anomaly";
  }

  // Decoy rate: rows carrying the anomalous category value without
  // being anomalous (only meaningful for 2-clause anomalies, where the
  // category alone is not a sufficient description).
  const double decoy_rate =
      options.anomaly_clauses == 2 ? options.anomaly_selectivity : 0.0;

  std::vector<Value> row(fields.size());
  for (size_t r = 0; r < options.num_rows; ++r) {
    const bool anomalous = rng.Bernoulli(options.anomaly_selectivity);
    const bool decoy = !anomalous && rng.Bernoulli(decoy_rate);

    row[0] = Value(static_cast<int64_t>(rng.UniformInt(options.num_groups)));
    size_t col = 1;
    for (size_t i = 0; i < options.num_numeric_attrs; ++i, ++col) {
      double a = rng.Normal(0.0, 1.0);
      if (i == 0) {
        if (anomalous && options.anomaly_clauses == 2) {
          a = rng.UniformDouble(kAnomalyLow, kAnomalyHigh);
        } else if (decoy) {
          // Decoys carry the anomalous category but sit strictly below
          // the numeric threshold, so the category alone over-covers
          // and the numeric clause alone under-covers: the planted
          // description really needs both clauses.
          while (a >= kAnomalyLow) a = rng.Normal(0.0, 1.0);
        }
      }
      row[col] = Value(a);
    }
    for (size_t i = 0; i < options.num_categorical_attrs; ++i, ++col) {
      std::string cat;
      if (i == 0 && (anomalous || decoy)) {
        cat = kAnomalyCategory;
      } else {
        const uint64_t code =
            rng.Zipf(options.categorical_cardinality, options.categorical_skew);
        cat = "cat_" + std::to_string(code);
      }
      row[col] = Value(std::move(cat));
    }
    double v = rng.Normal(50.0, 5.0);
    if (anomalous) v += options.anomaly_shift;
    row[col] = Value(v);

    DBW_RETURN_NOT_OK(table->AppendRow(row));
    if (anomalous) {
      anomaly.rows.push_back(static_cast<RowId>(table->num_rows() - 1));
    }
  }

  out.table = std::move(table);
  out.anomalies.push_back(std::move(anomaly));
  return out;
}

}  // namespace dbwipes
