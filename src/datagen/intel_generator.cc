#include "dbwipes/datagen/intel_generator.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"

namespace dbwipes {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

Result<LabeledDataset> GenerateIntelDataset(const IntelOptions& options) {
  if (options.num_sensors == 0) {
    return Status::InvalidArgument("num_sensors must be > 0");
  }
  if (options.duration_days <= 0) {
    return Status::InvalidArgument("duration_days must be > 0");
  }
  if (options.reading_interval_minutes <= 0.0) {
    return Status::InvalidArgument("reading_interval_minutes must be > 0");
  }
  for (const SensorFault& f : options.faults) {
    if (f.sensor_id < 0 ||
        static_cast<size_t>(f.sensor_id) >= options.num_sensors) {
      return Status::InvalidArgument("fault sensor_id out of range");
    }
  }

  Rng rng(options.seed);
  Schema schema{{"sensorid", DataType::kInt64},
                {"minute", DataType::kInt64},
                {"window", DataType::kInt64},
                {"hour", DataType::kInt64},
                {"temp", DataType::kDouble},
                {"humidity", DataType::kDouble},
                {"light", DataType::kDouble},
                {"voltage", DataType::kDouble}};
  auto table = std::make_shared<Table>(schema, "readings");

  const int64_t total_minutes = options.duration_days * 1440;

  // Per-sensor personality.
  std::vector<double> temp_offset(options.num_sensors);
  std::vector<double> phase(options.num_sensors);
  std::vector<double> voltage0(options.num_sensors);
  for (size_t s = 0; s < options.num_sensors; ++s) {
    temp_offset[s] = rng.Normal(0.0, 0.6);
    phase[s] = rng.Normal(0.0, 0.05);
    voltage0[s] = 2.65 + rng.Normal(0.0, 0.03);
  }

  // Fault lookup.
  std::vector<const SensorFault*> fault_of(options.num_sensors, nullptr);
  for (const SensorFault& f : options.faults) {
    fault_of[f.sensor_id] = &f;
  }

  LabeledDataset out;
  out.anomalies.resize(options.faults.size());
  for (size_t i = 0; i < options.faults.size(); ++i) {
    const SensorFault& f = options.faults[i];
    out.anomalies[i].description = Predicate(
        {Clause::Make("sensorid", CompareOp::kEq, Value(f.sensor_id)),
         Clause::Make("minute", CompareOp::kGe, Value(f.start_minute))});
    out.anomalies[i].note =
        "battery death of mote " + std::to_string(f.sensor_id) +
        " starting minute " + std::to_string(f.start_minute);
  }

  std::vector<Value> row(schema.num_fields());
  for (double m = 0.0; m < static_cast<double>(total_minutes);
       m += options.reading_interval_minutes) {
    const int64_t minute = static_cast<int64_t>(m);
    const int64_t time_of_day = minute % 1440;
    const double day_frac = static_cast<double>(time_of_day) / 1440.0;
    for (size_t s = 0; s < options.num_sensors; ++s) {
      if (rng.Bernoulli(options.drop_rate)) continue;

      // Diurnal base: coolest ~05:00, warmest ~15:00.
      double temp = 20.0 + temp_offset[s] +
                    4.0 * std::sin(kTwoPi * (day_frac - 0.3) + phase[s]) +
                    rng.Normal(0.0, 0.3);
      double voltage =
          voltage0[s] -
          0.15 * static_cast<double>(minute) /
              static_cast<double>(total_minutes) +
          rng.Normal(0.0, 0.005);

      const SensorFault* fault = fault_of[s];
      bool anomalous = false;
      if (fault != nullptr && minute >= fault->start_minute) {
        anomalous = true;
        const double progress = std::min(
            1.0, static_cast<double>(minute - fault->start_minute) /
                     static_cast<double>(std::max<int64_t>(1,
                                                           fault->ramp_minutes)));
        temp = temp + progress * (fault->plateau_temp - temp) +
               rng.Normal(0.0, 1.5);
        voltage = std::max(1.0, voltage - progress * 0.8);
      }

      const double humidity =
          std::clamp(45.0 - 0.8 * (temp - 20.0) + rng.Normal(0.0, 1.5), 0.0,
                     100.0);
      const bool daylight = day_frac > 0.25 && day_frac < 0.80;
      const double light =
          std::max(0.0, (daylight ? 400.0 + 150.0 * std::sin(kTwoPi *
                                                             (day_frac - 0.25))
                                  : 2.0) +
                            rng.Normal(0.0, 20.0));

      row[0] = Value(static_cast<int64_t>(s));
      row[1] = Value(minute);
      row[2] = Value(minute / 30);
      row[3] = Value(minute / 60);
      row[4] = Value(temp);
      row[5] = Value(humidity);
      row[6] = Value(light);
      row[7] = Value(voltage);
      DBW_RETURN_NOT_OK(table->AppendRow(row));

      if (anomalous) {
        // The row just appended.
        const RowId rid = static_cast<RowId>(table->num_rows() - 1);
        for (size_t i = 0; i < options.faults.size(); ++i) {
          if (options.faults[i].sensor_id == static_cast<int64_t>(s)) {
            out.anomalies[i].rows.push_back(rid);
          }
        }
      }
    }
  }

  out.table = std::move(table);
  return out;
}

}  // namespace dbwipes
