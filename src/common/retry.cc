#include "dbwipes/common/retry.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

namespace dbwipes {

namespace {

double ThreadLocalUniform() {
  thread_local std::mt19937_64 rng(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) ^
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()));
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

void SleepOrCapture(const RetryPolicy& policy, double ms) {
  if (policy.sleep_fn) {
    policy.sleep_fn(ms);
    return;
  }
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace

ErrorClass ClassifyStatus(const Status& status) {
  switch (status.code()) {
    // The environment may recover: I/O hiccups, internal runtime
    // failures (the injected-fault family), missed deadlines, and
    // exhausted resources (budgets, load shedding).
    case StatusCode::kIoError:
    case StatusCode::kRuntimeError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return ErrorClass::kTransient;
    // The request itself is wrong, the answer cannot change, or the
    // client explicitly asked the work to stop (kCancelled).
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kNotImplemented:
    case StatusCode::kCancelled:
      return ErrorClass::kPermanent;
  }
  return ErrorClass::kPermanent;
}

const char* ErrorClassToString(ErrorClass c) {
  return c == ErrorClass::kTransient ? "transient" : "permanent";
}

double RetryPolicy::BackoffMs(size_t attempt) const {
  if (attempt == 0) attempt = 1;
  double backoff = initial_backoff_ms;
  for (size_t i = 1; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  return std::min(std::max(backoff, 0.0), max_backoff_ms);
}

void RetryPolicy::Backoff(size_t attempt) const {
  SleepOrCapture(*this, BackoffMs(attempt));
}

BackoffSequence::BackoffSequence(const RetryPolicy& policy)
    : policy_(policy) {}

double BackoffSequence::NextMs() {
  ++attempt_;
  double ms;
  if (policy_.jitter) {
    // Decorrelated jitter: uniform in [initial, prev*3], capped. Each
    // sleep depends on the previous DRAW (not the attempt number), so
    // two clients that collided once diverge for good.
    const double lo = std::max(policy_.initial_backoff_ms, 0.0);
    const double hi =
        std::min(std::max(prev_ms_ * 3.0, lo), policy_.max_backoff_ms);
    const double u = policy_.rand_fn ? policy_.rand_fn() : ThreadLocalUniform();
    ms = lo + u * (hi - lo);
  } else {
    ms = policy_.BackoffMs(attempt_);
  }
  if (retry_after_ms_ > 0.0) {
    // The server's hint is a floor, not a replacement: a jittered
    // excess on top keeps the unblocked herd spread out.
    ms = std::max(ms, retry_after_ms_);
    retry_after_ms_ = 0.0;
  }
  ms = std::min(std::max(ms, 0.0), policy_.max_backoff_ms);
  prev_ms_ = ms;
  return ms;
}

void BackoffSequence::Backoff() { SleepOrCapture(policy_, NextMs()); }

void BackoffSequence::ObserveRetryAfterMs(double ms) {
  if (ms > 0.0) retry_after_ms_ = std::max(retry_after_ms_, ms);
}

double RetryAfterHintMs(const Status& status) {
  const std::string& msg = status.message();
  const std::string tag = "[retry_after_ms=";
  const size_t pos = msg.rfind(tag);
  if (pos == std::string::npos) return 0.0;
  const char* start = msg.c_str() + pos + tag.size();
  char* end = nullptr;
  const double ms = std::strtod(start, &end);
  if (end == start || *end != ']') return 0.0;
  return ms > 0.0 ? ms : 0.0;
}

Status WithRetryAfterHint(Status status, double retry_after_ms) {
  if (status.ok() || retry_after_ms <= 0.0) return status;
  return Status(status.code(), status.message() + " [retry_after_ms=" +
                                   std::to_string(retry_after_ms) + "]");
}

bool ResponseRetryable(const std::string& response, double* retry_after_ms) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0.0;
  if (response.find("\"ok\": false") == std::string::npos) return false;
  if (response.find("\"retryable\": true") == std::string::npos) return false;
  const std::string key = "\"retry_after_ms\": ";
  const size_t pos = response.find(key);
  if (pos != std::string::npos && retry_after_ms != nullptr) {
    const double ms = std::strtod(response.c_str() + pos + key.size(), nullptr);
    if (ms > 0.0) *retry_after_ms = ms;
  }
  return true;
}

}  // namespace dbwipes
