#include "dbwipes/common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace dbwipes {

ErrorClass ClassifyStatus(const Status& status) {
  switch (status.code()) {
    // The environment may recover: I/O hiccups, internal runtime
    // failures (the injected-fault family), missed deadlines, and
    // exhausted resources (budgets, load shedding).
    case StatusCode::kIoError:
    case StatusCode::kRuntimeError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return ErrorClass::kTransient;
    // The request itself is wrong, the answer cannot change, or the
    // client explicitly asked the work to stop (kCancelled).
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kNotImplemented:
    case StatusCode::kCancelled:
      return ErrorClass::kPermanent;
  }
  return ErrorClass::kPermanent;
}

const char* ErrorClassToString(ErrorClass c) {
  return c == ErrorClass::kTransient ? "transient" : "permanent";
}

double RetryPolicy::BackoffMs(size_t attempt) const {
  if (attempt == 0) attempt = 1;
  double backoff = initial_backoff_ms;
  for (size_t i = 1; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_ms) break;
  }
  return std::min(std::max(backoff, 0.0), max_backoff_ms);
}

void RetryPolicy::Backoff(size_t attempt) const {
  const double ms = BackoffMs(attempt);
  if (sleep_fn) {
    sleep_fn(ms);
    return;
  }
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

}  // namespace dbwipes
