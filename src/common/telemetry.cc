#include "dbwipes/common/telemetry.h"

#include <algorithm>
#include <atomic>

namespace dbwipes {

namespace {

std::atomic<uint64_t> g_next_rid{0};
thread_local uint64_t tl_rid = 0;

/// Bit pattern of the fsync-entry timestamp (doubles are not atomic).
std::atomic<uint64_t> g_fsync_since_bits{0};

uint64_t BitsOf(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleOf(uint64_t bits) {
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

uint64_t NextRequestId() {
  return g_next_rid.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t CurrentRequestId() { return tl_rid; }

RequestScope::RequestScope(uint64_t rid) : prev_(tl_rid) { tl_rid = rid; }

RequestScope::~RequestScope() { tl_rid = prev_; }

TelemetryHistory::TelemetryHistory(size_t points_per_series)
    : capacity_(points_per_series == 0 ? 1 : points_per_series) {}

TelemetryHistory::Ring* TelemetryHistory::FindOrCreateLocked(
    const std::string& series) {
  for (auto& e : series_) {
    if (e.first == series) return e.second.get();
  }
  auto ring = std::make_unique<Ring>();
  ring->points.resize(capacity_);
  series_.emplace_back(series, std::move(ring));
  return series_.back().second.get();
}

void TelemetryHistory::RecordLocked(const std::string& series, double t_ms,
                                    double value) {
  Ring* ring = FindOrCreateLocked(series);
  ring->points[ring->next] = Point{t_ms, value};
  ring->next = (ring->next + 1) % capacity_;
  if (ring->size < capacity_) ++ring->size;
}

void TelemetryHistory::Record(const std::string& series, double t_ms,
                              double value) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLocked(series, t_ms, value);
}

void TelemetryHistory::RecordBatch(
    double t_ms, const std::vector<std::pair<std::string, double>>& samples) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sample : samples) {
    RecordLocked(sample.first, t_ms, sample.second);
  }
}

std::vector<std::string> TelemetryHistory::Names() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(series_.size());
    for (const auto& e : series_) names.push_back(e.first);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<TelemetryHistory::Point> TelemetryHistory::Query(
    const std::string& series, double window_ms, double now_ms) const {
  std::vector<Point> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : series_) {
    if (e.first != series) continue;
    const Ring& ring = *e.second;
    const double cutoff = window_ms > 0.0 ? now_ms - window_ms : -1.0;
    // Oldest-first: the ring's oldest sample sits at `next` once full,
    // at 0 before that.
    const size_t start = ring.size == capacity_ ? ring.next : 0;
    out.reserve(ring.size);
    for (size_t i = 0; i < ring.size; ++i) {
      const Point& p = ring.points[(start + i) % capacity_];
      if (p.t_ms >= cutoff) out.push_back(p);
    }
    break;
  }
  return out;
}

size_t TelemetryHistory::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const auto& e : series_) {
    bytes += e.first.capacity() + capacity_ * sizeof(Point) + sizeof(Ring);
  }
  return bytes;
}

void SetFsyncInFlight(double start_ms) {
  g_fsync_since_bits.store(BitsOf(start_ms), std::memory_order_release);
}

void ClearFsyncInFlight() {
  g_fsync_since_bits.store(0, std::memory_order_release);
}

double FsyncInFlightSinceMs() {
  const uint64_t bits = g_fsync_since_bits.load(std::memory_order_acquire);
  return bits == 0 ? 0.0 : DoubleOf(bits);
}

}  // namespace dbwipes
