#include "dbwipes/common/random.h"

#include <cmath>
#include <numeric>

#include "dbwipes/common/logging.h"

namespace dbwipes {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands one seed word into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  DBW_CHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (~bound + 1) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DBW_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random bits → [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  DBW_CHECK(lambda > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  DBW_CHECK(n > 0);
  if (s <= 0.0) return UniformInt(n);
  // Classic rejection sampling against the Zipf envelope.
  const double b = std::pow(2.0, s - 1.0);
  double x, t;
  do {
    x = std::floor(std::pow(static_cast<double>(n) + 1.0, UniformDouble()));
    if (x < 1.0) x = 1.0;
    t = std::pow(1.0 + 1.0 / x, s - 1.0);
  } while (UniformDouble() * x * (t - 1.0) * b / (b - 1.0) > t);
  uint64_t k = static_cast<uint64_t>(x);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  DBW_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  DBW_CHECK(total > 0.0) << "weights must have positive sum";
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DBW_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k).
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace dbwipes
