#include "dbwipes/common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dbwipes {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty string is not an integer");
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty string is not a number");
  // std::from_chars<double> is available in libstdc++ 11+; use it.
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("not a number: '" + std::string(s) + "'");
  }
  return value;
}

std::string FormatDouble(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace dbwipes
