#include "dbwipes/common/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "dbwipes/common/exec_context.h"

namespace dbwipes {

namespace {

/// True on threads currently executing pool work; a nested ParallelFor
/// on such a thread must not block on the pool it is running inside.
thread_local bool t_in_pool_worker = false;

}  // namespace

size_t DefaultParallelism() {
  static const size_t cached = [] {
    if (const char* env = std::getenv("DBWIPES_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(hw == 0 ? 1 : hw);
  }();
  return cached;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultParallelism());
  return pool;
}

ThreadPool::ThreadPool(size_t num_threads) {
  // The calling thread participates in Run, so N-way parallelism needs
  // N-1 workers.
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  size_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (task_ != nullptr && task_epoch_ != seen_epoch &&
                             next_chunk_ < num_chunks_);
      });
      if (shutdown_) return;
      seen_epoch = task_epoch_;
    }
    DrainCurrentTask();
  }
}

void ThreadPool::DrainCurrentTask() {
  for (;;) {
    size_t chunk;
    const std::function<void(size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (task_ == nullptr || next_chunk_ >= num_chunks_) return;
      if (task_error_) {
        // A chunk already failed: retire the unclaimed remainder so
        // Run's completion condition is reached without running them.
        chunks_done_ += num_chunks_ - next_chunk_;
        next_chunk_ = num_chunks_;
        if (chunks_done_ == num_chunks_) done_cv_.notify_all();
        return;
      }
      chunk = next_chunk_++;
      fn = task_;
    }
    std::exception_ptr error;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      (*fn)(chunk);
    } catch (...) {
      error = std::current_exception();
    }
    // Per-chunk utilization bookkeeping: two clock reads and two
    // relaxed adds against a chunk body that scans thousands of rows.
    stat_busy_ns_.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    stat_chunks_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && (!task_error_ || chunk < task_error_chunk_)) {
        task_error_ = error;
        task_error_chunk_ = chunk;
      }
      if (++chunks_done_ == num_chunks_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Run(size_t num_chunks,
                     const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  stat_regions_.fetch_add(1, std::memory_order_relaxed);
  uint64_t peak = stat_peak_queue_.load(std::memory_order_relaxed);
  while (num_chunks > peak &&
         !stat_peak_queue_.compare_exchange_weak(
             peak, num_chunks, std::memory_order_relaxed)) {
  }
  if (threads_.empty() || t_in_pool_worker) {
    // No workers, or called from inside the pool: run inline.
    for (size_t c = 0; c < num_chunks; ++c) {
      const auto t0 = std::chrono::steady_clock::now();
      fn(c);
      stat_busy_ns_.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count()),
          std::memory_order_relaxed);
      stat_chunks_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // One region at a time; a second caller queues here.
  done_cv_.wait(lock, [&] { return task_ == nullptr; });
  task_ = &fn;
  ++task_epoch_;
  num_chunks_ = num_chunks;
  next_chunk_ = 0;
  chunks_done_ = 0;
  task_error_ = nullptr;
  task_error_chunk_ = 0;
  lock.unlock();
  work_cv_.notify_all();

  // Participate instead of idling.
  const bool was_worker = t_in_pool_worker;
  t_in_pool_worker = true;
  DrainCurrentTask();
  t_in_pool_worker = was_worker;

  lock.lock();
  done_cv_.wait(lock, [&] { return chunks_done_ == num_chunks_; });
  task_ = nullptr;
  std::exception_ptr error = task_error_;
  task_error_ = nullptr;
  lock.unlock();
  // Wake any caller queued on task_ == nullptr.
  done_cv_.notify_all();
  // Propagate the first (lowest-chunk) failure to the caller, exactly
  // as the serial path would have.
  if (error) std::rethrow_exception(error);
}

ThreadPool::StatsSnapshot ThreadPool::stats() const {
  StatsSnapshot s;
  s.regions = stat_regions_.load(std::memory_order_relaxed);
  s.chunks = stat_chunks_.load(std::memory_order_relaxed);
  s.busy_ms = static_cast<double>(
                  stat_busy_ns_.load(std::memory_order_relaxed)) /
              1e6;
  s.peak_queue_depth = stat_peak_queue_.load(std::memory_order_relaxed);
  return s;
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& chunk_fn,
                 const ParallelOptions& options) {
  if (begin >= end) return;
  if (options.ctx != nullptr && options.ctx->StopRequested()) return;
  const size_t n = end - begin;
  const size_t threads =
      options.num_threads == 0 ? DefaultParallelism() : options.num_threads;
  if (threads <= 1 || n < options.min_items_for_threading) {
    if (options.ctx == nullptr) {
      chunk_fn(begin, end);
      return;
    }
    // Serial anytime path: same several-chunks-per-thread split (with
    // one thread), so a cancel or deadline still winds the loop down
    // within one chunk instead of only being checked at entry.
    const size_t chunk = std::max<size_t>(1, (n + 3) / 4);
    for (size_t lo = begin; lo < end; lo += chunk) {
      if (options.ctx->StopRequested()) return;
      chunk_fn(lo, std::min(end, lo + chunk));
    }
    return;
  }
  // Several chunks per thread smooths imbalance between cheap and
  // expensive items; boundaries depend only on n and the chunk size.
  const size_t target_chunks = threads * 4;
  const size_t chunk_size = std::max<size_t>(1, (n + target_chunks - 1) /
                                                    target_chunks);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  ThreadPool::Global().Run(num_chunks, [&](size_t c) {
    // Cooperative stop: skip chunks not yet started once the context
    // asks to wind down (the chunk in flight on each worker finishes).
    if (options.ctx != nullptr && options.ctx->StopRequested()) return;
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    chunk_fn(lo, hi);
  });
}

void ParallelForEach(size_t begin, size_t end,
                     const std::function<void(size_t)>& fn,
                     const ParallelOptions& options) {
  ParallelFor(
      begin, end,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) fn(i);
      },
      options);
}

Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn,
                         const ParallelOptions& options) {
  if (n == 0) return Status::OK();
  std::mutex mu;
  size_t first_bad = n;
  Status first_status = Status::OK();
  try {
    ParallelFor(
        0, n,
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            {
              // Cheap early-out once some chunk failed; correctness does
              // not depend on it.
              std::lock_guard<std::mutex> lock(mu);
              if (first_bad < n && i > first_bad) break;
            }
            if (options.ctx != nullptr && options.ctx->StopRequested()) {
              break;
            }
            Status st = fn(i);
            if (!st.ok()) {
              std::lock_guard<std::mutex> lock(mu);
              if (i < first_bad) {
                first_bad = i;
                first_status = std::move(st);
              }
              break;
            }
          }
        },
        options);
  } catch (const std::exception& e) {
    return Status::RuntimeError(std::string("parallel task failed: ") +
                                e.what());
  } catch (...) {
    return Status::RuntimeError("parallel task failed: unknown exception");
  }
  if (!first_status.ok()) return first_status;
  if (options.ctx != nullptr) return options.ctx->CheckContinue();
  return first_status;
}

}  // namespace dbwipes
