#include "dbwipes/common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

constexpr double MetricHistogram::kBoundsMs[];

void MetricHistogram::Observe(double ms) {
  if (ms < 0.0) ms = 0.0;
  size_t i = 0;
  while (i < kNumBounds && ms > kBoundsMs[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<uint64_t>(ms * 1e6),
                    std::memory_order_relaxed);
}

void MetricHistogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

/// Registry lookup shared by the three metric kinds: linear scan is
/// fine — registration is cold, and hot code caches the pointer.
template <typename T>
T* FindOrCreate(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>* entries,
    const std::string& name) {
  for (auto& e : *entries) {
    if (e.first == name) return e.second.get();
  }
  entries->emplace_back(name, std::make_unique<T>());
  return entries->back().second.get();
}

}  // namespace

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&histograms_, name);
}

std::string MetricsRegistry::SnapshotJson(bool pretty) const {
  std::lock_guard<std::mutex> lock(mu_);
  const char* nl = pretty ? "\n" : "";
  const char* ind = pretty ? "  " : "";

  auto sorted_names = [](const auto& entries) {
    std::vector<size_t> order(entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return entries[a].first < entries[b].first;
    });
    return order;
  };

  std::string out = "{";
  out += nl;
  out += ind;
  out += "\"counters\":{";
  bool first = true;
  for (size_t i : sorted_names(counters_)) {
    if (!first) out += ',';
    first = false;
    out += '"' + counters_[i].first +
           "\":" + std::to_string(counters_[i].second->value());
  }
  out += "},";
  out += nl;
  out += ind;
  out += "\"gauges\":{";
  first = true;
  for (size_t i : sorted_names(gauges_)) {
    if (!first) out += ',';
    first = false;
    out += '"' + gauges_[i].first +
           "\":" + std::to_string(gauges_[i].second->value());
  }
  out += "},";
  out += nl;
  out += ind;
  out += "\"histograms\":{";
  first = true;
  for (size_t i : sorted_names(histograms_)) {
    const MetricHistogram& h = *histograms_[i].second;
    if (!first) out += ',';
    first = false;
    out += '"' + histograms_[i].first + "\":{\"count\":" +
           std::to_string(h.count()) +
           ",\"sum_ms\":" + FormatDouble(h.sum_ms(), 9) + ",\"bounds_ms\":[";
    for (size_t b = 0; b < MetricHistogram::kNumBounds; ++b) {
      if (b > 0) out += ',';
      out += FormatDouble(MetricHistogram::kBoundsMs[b], 9);
    }
    out += "],\"buckets\":[";
    for (size_t b = 0; b < MetricHistogram::kNumBuckets; ++b) {
      if (b > 0) out += ',';
      out += std::to_string(h.bucket(b));
    }
    out += "]}";
  }
  out += "}";
  out += nl;
  out += "}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e.second->ResetForTest();
  for (auto& e : gauges_) e.second->ResetForTest();
  for (auto& e : histograms_) e.second->ResetForTest();
}

}  // namespace dbwipes
