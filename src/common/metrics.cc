#include "dbwipes/common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

constexpr double MetricHistogram::kBoundsMs[];

void MetricHistogram::Observe(double ms) {
  if (ms < 0.0) ms = 0.0;
  size_t i = 0;
  while (i < kNumBounds && ms > kBoundsMs[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<uint64_t>(ms * 1e6),
                    std::memory_order_relaxed);
}

uint64_t MetricHistogram::count() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) n += bucket(i);
  return n;
}

MetricHistogram::Snapshot MetricHistogram::Snap() const {
  Snapshot snap;
  // Read the buckets exactly once and derive the count from that read:
  // a concurrent Observe can only make the snapshot a request shorter
  // or longer, never internally inconsistent (the old separate count_
  // atomic could be read torn against the buckets).
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = bucket(i);
    snap.count += snap.buckets[i];
  }
  snap.overflow = snap.buckets[kNumBounds];
  snap.sum_ms =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6;
  return snap;
}

double MetricHistogram::EstimateQuantile(const Snapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(snap.count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (snap.buckets[i] == 0) continue;
    const uint64_t next = seen + snap.buckets[i];
    if (static_cast<double>(next) >= target) {
      if (i == kNumBounds) return kBoundsMs[kNumBounds - 1];  // overflow
      const double lo = i == 0 ? 0.0 : kBoundsMs[i - 1];
      const double hi = kBoundsMs[i];
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(snap.buckets[i]);
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return kBoundsMs[kNumBounds - 1];
}

void MetricHistogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

/// Registry lookup shared by the three metric kinds: linear scan is
/// fine — registration is cold, and hot code caches the pointer.
template <typename T>
T* FindOrCreate(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>* entries,
    const std::string& name) {
  for (auto& e : *entries) {
    if (e.first == name) return e.second.get();
  }
  entries->emplace_back(name, std::make_unique<T>());
  return entries->back().second.get();
}

}  // namespace

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&histograms_, name);
}

std::string MetricsRegistry::SnapshotJson(bool pretty) const {
  std::lock_guard<std::mutex> lock(mu_);
  const char* nl = pretty ? "\n" : "";
  const char* ind = pretty ? "  " : "";

  auto sorted_names = [](const auto& entries) {
    std::vector<size_t> order(entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return entries[a].first < entries[b].first;
    });
    return order;
  };

  std::string out = "{";
  out += nl;
  out += ind;
  out += "\"counters\":{";
  bool first = true;
  for (size_t i : sorted_names(counters_)) {
    if (!first) out += ',';
    first = false;
    out += '"' + counters_[i].first +
           "\":" + std::to_string(counters_[i].second->value());
  }
  out += "},";
  out += nl;
  out += ind;
  out += "\"gauges\":{";
  first = true;
  for (size_t i : sorted_names(gauges_)) {
    if (!first) out += ',';
    first = false;
    out += '"' + gauges_[i].first +
           "\":" + std::to_string(gauges_[i].second->value());
  }
  out += "},";
  out += nl;
  out += ind;
  out += "\"histograms\":{";
  first = true;
  for (size_t i : sorted_names(histograms_)) {
    // One consistent read per histogram: count derives from these
    // buckets, so `count == sum(buckets)` holds in every snapshot.
    const MetricHistogram::Snapshot snap = histograms_[i].second->Snap();
    if (!first) out += ',';
    first = false;
    out += '"' + histograms_[i].first + "\":{\"count\":" +
           std::to_string(snap.count) +
           ",\"sum_ms\":" + FormatDouble(snap.sum_ms, 9) +
           ",\"overflow\":" + std::to_string(snap.overflow) +
           ",\"bounds_ms\":[";
    for (size_t b = 0; b < MetricHistogram::kNumBounds; ++b) {
      if (b > 0) out += ',';
      out += FormatDouble(MetricHistogram::kBoundsMs[b], 9);
    }
    out += "],\"buckets\":[";
    for (size_t b = 0; b < MetricHistogram::kNumBuckets; ++b) {
      if (b > 0) out += ',';
      out += std::to_string(snap.buckets[b]);
    }
    out += "]}";
  }
  out += "}";
  out += nl;
  out += "}";
  return out;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our registry
/// names use dots (service.request_ms); map anything outside the
/// charset to '_' and prefix the namespace.
std::string PrometheusName(const std::string& name) {
  std::string out = "dbwipes_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus floats: plain decimal is fine; reuse FormatDouble's
/// trailing-zero trimming.
std::string PrometheusValue(double v) { return FormatDouble(v, 9); }

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);

  auto sorted_names = [](const auto& entries) {
    std::vector<size_t> order(entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return entries[a].first < entries[b].first;
    });
    return order;
  };

  std::string out;
  for (size_t i : sorted_names(counters_)) {
    const std::string name = PrometheusName(counters_[i].first) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counters_[i].second->value()) + "\n";
  }
  for (size_t i : sorted_names(gauges_)) {
    const std::string name = PrometheusName(gauges_[i].first);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(gauges_[i].second->value()) + "\n";
  }
  for (size_t i : sorted_names(histograms_)) {
    const std::string name = PrometheusName(histograms_[i].first);
    const MetricHistogram::Snapshot snap = histograms_[i].second->Snap();
    out += "# TYPE " + name + " histogram\n";
    // Prometheus buckets are CUMULATIVE (observations <= le), ending
    // with the mandatory le="+Inf" == _count.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < MetricHistogram::kNumBounds; ++b) {
      cumulative += snap.buckets[b];
      out += name + "_bucket{le=\"" +
             PrometheusValue(MetricHistogram::kBoundsMs[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += name + "_sum " + PrometheusValue(snap.sum_ms) + "\n";
    out += name + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::SampleValues()
    const {
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + 3 * histograms_.size());
  for (const auto& e : counters_) {
    out.emplace_back(e.first, static_cast<double>(e.second->value()));
  }
  for (const auto& e : gauges_) {
    out.emplace_back(e.first, static_cast<double>(e.second->value()));
  }
  for (const auto& e : histograms_) {
    const MetricHistogram::Snapshot snap = e.second->Snap();
    out.emplace_back(e.first + ".count", static_cast<double>(snap.count));
    out.emplace_back(e.first + ".p50_ms",
                     MetricHistogram::EstimateQuantile(snap, 0.5));
    out.emplace_back(e.first + ".p99_ms",
                     MetricHistogram::EstimateQuantile(snap, 0.99));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e.second->ResetForTest();
  for (auto& e : gauges_) e.second->ResetForTest();
  for (auto& e : histograms_) e.second->ResetForTest();
}

}  // namespace dbwipes
