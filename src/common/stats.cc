#include "dbwipes/common/stats.h"

#include <algorithm>
#include <cmath>

#include "dbwipes/common/logging.h"

namespace dbwipes {

void OnlineStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Remove(double x) {
  DBW_CHECK(count_ > 0) << "Remove from empty OnlineStats";
  if (count_ == 1) {
    Reset();
    return;
  }
  const size_t n = count_;
  const double mean_new =
      (mean_ * static_cast<double>(n) - x) / static_cast<double>(n - 1);
  m2_ -= (x - mean_) * (x - mean_new);
  if (m2_ < 0.0) m2_ = 0.0;  // guard against FP drift
  mean_ = mean_new;
  count_ = n - 1;
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

void OnlineStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

double OnlineStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }
double OnlineStats::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  OnlineStats s;
  for (double x : xs) s.Add(x);
  return s.mean();
}

double Variance(const std::vector<double>& xs) {
  OnlineStats s;
  for (double x : xs) s.Add(x);
  return s.variance();
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q <= 0.0) return *std::min_element(xs.begin(), xs.end());
  if (q >= 1.0) return *std::max_element(xs.begin(), xs.end());
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs[lo];
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  DBW_CHECK(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n == 0) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace dbwipes
