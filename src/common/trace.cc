#include "dbwipes/common/trace.h"

#include <cstdio>
#include <utility>

#include "dbwipes/common/string_util.h"
#include "dbwipes/common/telemetry.h"

namespace dbwipes {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<size_t> g_next_thread_id{0};

/// Minimal JSON string escaping for event args (names are static
/// strings under our control, but annotation values are arbitrary).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

size_t CurrentThreadId() {
  thread_local const size_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double MonotonicMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives exiting threads
  // Pin the epoch before the first event so ts_us is never negative.
  TraceEpoch();
  return *tracer;
}

Tracer::Buffer* Tracer::LocalBuffer() {
  thread_local Buffer* local = nullptr;
  if (local == nullptr) {
    auto buffer = std::make_shared<Buffer>();
    buffer->tid = CurrentThreadId();
    local = buffer.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::move(buffer));
  }
  return local;
}

void Tracer::Record(Event e) {
  Buffer* buf = LocalBuffer();
  e.tid = buf->tid;
  const size_t idx = buf->count.load(std::memory_order_relaxed);
  const size_t chunk = idx / kChunkEvents;
  if (chunk == buf->chunks.size()) {
    // Cold path: one allocation per kChunkEvents spans. The lock only
    // excludes readers walking the chunk list, never other writers
    // (the buffer is thread-owned).
    std::lock_guard<std::mutex> lock(buf->grow_mu);
    buf->chunks.push_back(std::make_unique<Chunk>());
  }
  buf->chunks[chunk]->events[idx % kChunkEvents] = std::move(e);
  buf->count.store(idx + 1, std::memory_order_release);
}

void Tracer::RecordInstant(const char* name, std::string args) {
  if (!enabled()) return;
  Event e;
  e.name = name;
  e.ts_us = MonotonicMillis() * 1000.0;
  e.dur_us = -1.0;
  e.args = std::move(args);
  // Same correlation key as spans: an instant fired inside a request
  // (watchdog alerts excepted — those run on their own thread) carries
  // the request's id.
  const uint64_t rid = CurrentRequestId();
  if (rid != 0) {
    if (!e.args.empty()) e.args += ',';
    e.args += "\"rid\":" + std::to_string(rid);
  }
  Record(std::move(e));
}

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buf : buffers_) {
    n += buf->count.load(std::memory_order_acquire);
  }
  return n;
}

std::string Tracer::ExportJson() const {
  // Snapshot the buffer list, then each buffer's published prefix.
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const auto& buf : buffers) {
    const size_t n = buf->count.load(std::memory_order_acquire);
    // Chunk pointers are stable; the lock pins the vector against a
    // concurrent push_back while we copy it.
    std::vector<Chunk*> chunks;
    {
      std::lock_guard<std::mutex> lock(buf->grow_mu);
      chunks.reserve(buf->chunks.size());
      for (const auto& c : buf->chunks) chunks.push_back(c.get());
    }
    for (size_t i = 0; i < n; ++i) {
      const Event& e = chunks[i / kChunkEvents]->events[i % kChunkEvents];
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      out += EscapeJson(e.name);
      out += "\",\"cat\":\"dbwipes\",\"ph\":\"";
      out += e.dur_us < 0.0 ? 'i' : 'X';
      out += "\",\"ts\":";
      std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
      out += num;
      if (e.dur_us >= 0.0) {
        out += ",\"dur\":";
        std::snprintf(num, sizeof(num), "%.3f", e.dur_us);
        out += num;
      } else {
        out += ",\"s\":\"t\"";  // instant event, thread scope
      }
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(e.tid);
      out += ",\"args\":{";
      out += e.args;
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  const std::string json = ExportJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  if (written != json.size() || closed != 0) {
    return Status::RuntimeError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> grow(buf->grow_mu);
    buf->count.store(0, std::memory_order_release);
    buf->chunks.clear();
  }
}

void TraceSpan::Start(const char* name) {
  active_ = true;
  name_ = name;
  start_us_ = MonotonicMillis() * 1000.0;
  // Request correlation: every span opened while a request id is bound
  // to this thread carries it, so `grep '"rid":N'` over an exported
  // trace yields the request's full span tree.
  const uint64_t rid = CurrentRequestId();
  if (rid != 0) args_ = "\"rid\":" + std::to_string(rid);
}

void TraceSpan::Finish() {
  Tracer::Event e;
  e.name = name_;
  e.ts_us = start_us_;
  e.dur_us = MonotonicMillis() * 1000.0 - start_us_;
  if (e.dur_us < 0.0) e.dur_us = 0.0;
  e.args = std::move(args_);
  Tracer::Global().Record(std::move(e));
}

void TraceSpan::Annotate(const char* key, const std::string& value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":\"";
  args_ += EscapeJson(value);
  args_ += '"';
}

void TraceSpan::Annotate(const char* key, double value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += FormatDouble(value, 17);
}

void TraceSpan::Annotate(const char* key, size_t value) {
  if (!active_) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += std::to_string(value);
}

}  // namespace dbwipes
