#include "dbwipes/common/http_listener.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

constexpr size_t kMaxRequestHead = 8u << 10;  // plenty for GET + headers

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

void WriteAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t r = ::write(fd, data.data() + written, data.size() - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing to salvage
    }
    written += static_cast<size_t>(r);
  }
}

}  // namespace

HttpListener::~HttpListener() { Stop(); }

Status HttpListener::Start(uint16_t port, Handler handler) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running()) return Status::InvalidArgument("http listener already started");
  if (!handler) return Status::InvalidArgument("http listener needs a handler");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Observability endpoints stay host-local by default: bind loopback,
  // not all interfaces, so /metrics is only reachable from this machine.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IoError("bind to port " + std::to_string(port) +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st =
        Status::IoError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status st = Status::IoError(std::string("getsockname failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }

  handler_ = std::move(handler);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpListener::Loop, this);
  return Status::OK();
}

void HttpListener::Stop() {
  // lifecycle_mu_ serializes Stop against a concurrent Start, so a
  // rebind can never race the old accept loop's ownership of listen_fd_.
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpListener::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpListener::ServeConnection(int fd) {
  static MetricCounter* const requests =
      MetricsRegistry::Global().GetCounter("http.requests");
  static MetricHistogram* const serve_ms =
      MetricsRegistry::Global().GetHistogram("http.serve_ms");

  // A slow/stuck client must not wedge the accept loop: bound each
  // read AND each send (a scraper that stops draining its socket would
  // otherwise block WriteAll forever once the kernel buffer fills).
  timeval tv{};
  tv.tv_usec = 500 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  // Per-read timeouts alone still allow a slow-loris drip (one byte
  // every 400ms, forever); an overall deadline on assembling the
  // request line closes that hole.
  const double deadline_ms = MonotonicMillis() + 2000.0;
  std::string head;
  char buf[1024];
  while (head.find("\r\n") == std::string::npos &&
         head.size() < kMaxRequestHead) {
    if (MonotonicMillis() > deadline_ms) return;  // slow-loris client
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return;  // timeout, error, or close before a full line
    head.append(buf, static_cast<size_t>(r));
  }
  const size_t eol = head.find("\r\n");
  if (eol == std::string::npos) return;

  // Request line: METHOD SP PATH SP VERSION.
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  const double start_ms = MonotonicMillis();
  Response response;
  if (method != "GET") {
    response.status = 405;
    response.body = "method not allowed\n";
  } else {
    response = handler_(path);
  }
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    StatusText(response.status) +
                    "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + response.body;
  WriteAll(fd, out);
  requests->Increment();
  serve_ms->Observe(MonotonicMillis() - start_ms);
}

HttpListener::Handler MakeObservabilityHandler(std::function<bool()> ready) {
  return [ready = std::move(ready)](const std::string& path) {
    HttpListener::Response r;
    if (path == "/metrics") {
      // The version parameter marks Prometheus text exposition 0.0.4.
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = MetricsRegistry::Global().PrometheusText();
      return r;
    }
    if (path == "/healthz") {
      r.body = "ok\n";
      return r;
    }
    if (path == "/readyz") {
      if (ready == nullptr || ready()) {
        r.body = "ready\n";
      } else {
        r.status = 503;
        r.body = "not ready\n";
      }
      return r;
    }
    r.status = 404;
    r.body = "not found\n";
    return r;
  };
}

}  // namespace dbwipes
