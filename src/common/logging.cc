#include "dbwipes/common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace dbwipes {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= g_log_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace dbwipes
