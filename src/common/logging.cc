#include "dbwipes/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "dbwipes/common/string_util.h"
#include "dbwipes/common/telemetry.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

/// Startup level: DBWIPES_LOG_LEVEL names a level ("debug", "info",
/// "warning"/"warn", "error", "fatal") or its numeric value; anything
/// unrecognized keeps the kInfo default.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("DBWIPES_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string v = ToLower(env);
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warning" || v == "warn" || v == "2") return LogLevel::kWarning;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "fatal" || v == "4") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_log_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= g_log_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    // Thread id + monotonic ms share the tracer's clock and id space,
    // so a log line can be placed inside the trace-span timeline; the
    // request id (when one is in scope) joins the line to the span
    // tree, the profile, and the WAL frame of the same request.
    char prefix[80];
    const uint64_t rid = CurrentRequestId();
    if (rid != 0) {
      std::snprintf(prefix, sizeof(prefix), "[t%zu %.3f rid=%llu ",
                    CurrentThreadId(), MonotonicMillis(),
                    static_cast<unsigned long long>(rid));
    } else {
      std::snprintf(prefix, sizeof(prefix), "[t%zu %.3f ", CurrentThreadId(),
                    MonotonicMillis());
    }
    stream_ << prefix << LevelName(level) << " " << base << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace dbwipes
