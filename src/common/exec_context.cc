#include "dbwipes/common/exec_context.h"

#include <unistd.h>

#include <thread>

namespace dbwipes {

std::string CancellationToken::reason() const {
  if (!IsCancelled()) return "";
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reason;
}

void CancellationSource::Cancel(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->reason = std::move(reason);
  }
  state_->cancelled.store(true, std::memory_order_release);
}

Status ResourceBudget::Charge(std::atomic<size_t>* used, size_t n,
                              size_t limit, std::atomic<bool>* exhausted,
                              const char* what) {
  if (limit == 0) {
    used->fetch_add(n, std::memory_order_relaxed);
    return Status::OK();
  }
  const size_t before = used->fetch_add(n, std::memory_order_relaxed);
  if (before + n > limit) {
    exhausted->store(true, std::memory_order_release);
    return Status::ResourceExhausted(
        std::string(what) + " exhausted (" + std::to_string(before + n) +
        " > " + std::to_string(limit) + ")");
  }
  return Status::OK();
}

void FaultInjector::Arm(const std::string& site, Fault fault) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[site] = std::move(fault);
}

void FaultInjector::ArmError(const std::string& site, Status status) {
  Fault f;
  f.status = std::move(status);
  Arm(site, std::move(f));
}

void FaultInjector::ArmCrash(const std::string& site, size_t skip) {
  Fault f;
  f.crash = true;
  f.skip = skip;
  f.count = 1;
  Arm(site, std::move(f));
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(site);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
}

size_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

bool FaultInjector::Consume(const std::string& site, Fault* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  ++hits_[site];
  if (it->second.skip > 0) {
    --it->second.skip;
    return false;
  }
  *out = it->second;
  if (it->second.count > 0 && --it->second.count == 0) armed_.erase(it);
  return true;
}

Status FaultInjector::Hit(const std::string& site) {
  Fault fault;
  if (!Consume(site, &fault)) return Status::OK();
  // Apply outside the lock: latency must not serialize other sites.
  if (fault.latency_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(fault.latency_ms));
  }
  if (fault.trip != nullptr) {
    fault.trip->Cancel("fault injector tripped at " + site);
  }
  if (fault.crash) ::_exit(kFaultCrashExit);
  return fault.status;
}

bool FaultInjector::HitIo(const std::string& site, Fault* fired) {
  if (!Consume(site, fired)) return false;
  if (fired->latency_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(fired->latency_ms));
  }
  if (fired->trip != nullptr) {
    fired->trip->Cancel("fault injector tripped at " + site);
  }
  return true;
}

const std::vector<std::string>& AllFaultSites() {
  static const std::vector<std::string> sites = {
      "scorer/create",        // RemovalScorer::Create entry
      "match/materialize",    // MatchEngine::Materialize entry
      "match/fused",          // fused-conjunction planning in Materialize
      "enumerate/datasets",   // DatasetEnumerator::Enumerate entry
      "enumerate/clean",      // DatasetEnumerator::CleanDPrime entry
      "enumerate/predicates", // PredicateEnumerator::Enumerate entry
      "ranker/rank",          // PredicateRanker::RankAnytime entry
      "ranker/score",         // per scoring block, before scoring it
      "ranker/shard",         // per shard, before materializing its slice
      "pipeline/explain",     // DBWipes::Explain entry
  };
  return sites;
}

const std::vector<std::string>& AllIoFaultSites() {
  static const std::vector<std::string> sites = {
      "wal/open",            // segment scan/open during WriteAheadLog::Open
      "wal/record",          // per record, before it joins the commit batch
      "wal/write",           // the batch write syscall (short-write capable)
      "wal/fsync",           // before fsync of the active segment
      "wal/ack",             // after fsync, before the append acknowledges
      "wal/rotate",          // before creating the next segment
      "wal/truncate",        // before unlinking checkpointed segments
      "snapshot/open",       // opening the snapshot temp file
      "snapshot/write",      // the snapshot body write (short-write capable)
      "snapshot/fsync",      // before fsync of the temp file
      "snapshot/rename",     // before the atomic rename into place
      "snapshot/dirsync",    // before fsync of the parent directory
      "checkpoint/begin",    // checkpoint entry, before collecting state
      "checkpoint/truncate", // after the snapshot, before WAL truncation
  };
  return sites;
}

const std::vector<std::string>& AllReplicationFaultSites() {
  static const std::vector<std::string> sites = {
      "repl/connect",        // follower dialing the primary
      "repl/handshake",      // primary handling a follower HELLO
      "repl/send_frame",     // per WAL frame, before it goes on the wire
      "repl/corrupt_frame",  // flips a frame byte after checksumming
      "repl/snapshot_chunk", // per snapshot chunk during bootstrap
      "repl/recv_frame",     // follower handling a received frame
      "repl/apply",          // follower, before applying a frame
  };
  return sites;
}

Status ExecContext::CheckContinue() const {
  if (token.IsCancelled()) {
    std::string reason = token.reason();
    return Status::Cancelled(reason.empty() ? "cancelled" : reason);
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded("deadline expired");
  }
  return Status::OK();
}

const ExecContext& ExecContext::None() {
  static const ExecContext none;
  return none;
}

}  // namespace dbwipes
