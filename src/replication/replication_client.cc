#include "dbwipes/replication/replication.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "dbwipes/common/metrics.h"

namespace dbwipes {

namespace {

void SetSocketTimeouts(int fd, double ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Start(ReplicationClientOptions options,
                                Callbacks callbacks) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("replication client already started");
  }
  if (!callbacks.last_applied || !callbacks.epoch || !callbacks.apply ||
      !callbacks.install_snapshot) {
    return Status::InvalidArgument(
        "replication client needs last_applied/epoch/apply/install_snapshot "
        "callbacks");
  }
  options_ = std::move(options);
  callbacks_ = std::move(callbacks);
  stopping_.store(false, std::memory_order_release);
  fenced_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats();
    stats_.running = true;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&ReplicationClient::Run, this);
  return Status::OK();
}

void ReplicationClient::Stop() {
  stopping_.store(true, std::memory_order_release);
  {
    // fd_ is only assigned/cleared under mu_, so this shutdown can
    // never hit a recycled descriptor.
    std::lock_guard<std::mutex> lock(mu_);
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.running = false;
}

ReplicationClient::Stats ReplicationClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.running = running_.load(std::memory_order_acquire);
  s.fenced = fenced_.load(std::memory_order_acquire);
  return s;
}

void ReplicationClient::SetError(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.last_error = what;
}

void ReplicationClient::Run() {
  static MetricCounter* const reconnects =
      MetricsRegistry::Global().GetCounter("repl.reconnects");
  BackoffSequence backoff(options_.reconnect);
  bool first_attempt = true;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!first_attempt) {
      reconnects->Increment();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.reconnects;
      }
      if (options_.reconnect.sleep_fn) {
        backoff.Backoff();
      } else {
        // Sleep in slices so Stop() is not held hostage by a backoff.
        double remaining_ms = backoff.NextMs();
        while (remaining_ms > 0.0 &&
               !stopping_.load(std::memory_order_acquire)) {
          const double slice = remaining_ms < 20.0 ? remaining_ms : 20.0;
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(slice));
          remaining_ms -= slice;
        }
      }
      if (stopping_.load(std::memory_order_acquire)) break;
    }
    first_attempt = false;
    if (!RunOnce()) break;
  }
}

bool ReplicationClient::RunOnce() {
  static MetricCounter* const applied_counter =
      MetricsRegistry::Global().GetCounter("repl.frames_applied");
  static MetricCounter* const corrupt_counter =
      MetricsRegistry::Global().GetCounter("repl.corrupt_frames");
  static MetricCounter* const installs_counter =
      MetricsRegistry::Global().GetCounter("repl.snapshot_installs");
  static MetricGauge* const lag_gauge =
      MetricsRegistry::Global().GetGauge("repl.apply_lag");

  if (options_.faults != nullptr) {
    const Status st = options_.faults->Hit("repl/connect");
    if (!st.ok()) {
      SetError("connect fault: " + st.ToString());
      return true;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    SetError("replicate-from host '" + options_.host +
             "' is not an IPv4 address");
    return false;  // no amount of retrying fixes a bad address
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(std::string("socket failed: ") + std::strerror(errno));
    return true;
  }
  SetSocketTimeouts(fd, options_.heartbeat_timeout_ms);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    SetError("connect to " + options_.host + ":" +
             std::to_string(options_.port) +
             " failed: " + std::strerror(errno));
    ::close(fd);
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_.store(fd, std::memory_order_release);
    stats_.connected = true;
  }

  bool keep_running = true;
  do {  // single-pass scope; break = tear this connection down
    ReplMessage hello;
    hello.type = ReplMsgType::kHello;
    hello.a = kReplProtocolVersion;
    hello.b = callbacks_.epoch();
    hello.c = force_resync_.load(std::memory_order_acquire)
                  ? 0
                  : callbacks_.last_applied();
    if (Status st = WriteReplMessage(fd, hello); !st.ok()) {
      SetError("hello: " + st.ToString());
      break;
    }

    uint64_t snap_lsn = 0;
    uint64_t snap_total = 0;
    std::string snap_buffer;
    while (!stopping_.load(std::memory_order_acquire)) {
      ReplMessage in;
      if (Status st = ReadReplMessage(fd, &in); !st.ok()) {
        SetError(st.ToString());
        break;
      }
      if (in.type == ReplMsgType::kWelcome ||
          in.type == ReplMsgType::kHeartbeat) {
        const uint64_t peer_epoch = in.a;
        if (peer_epoch < callbacks_.epoch()) {
          // The primary is living in the past. Tell it so (fencing it)
          // and stop for good: this pairing can never be valid again.
          ReplMessage refuse;
          refuse.type = ReplMsgType::kRefuse;
          refuse.a = callbacks_.epoch();
          refuse.payload = "epoch fenced: source is at epoch " +
                           std::to_string(peer_epoch) +
                           " but this node has seen epoch " +
                           std::to_string(callbacks_.epoch());
          (void)WriteReplMessage(fd, refuse);  // already disconnecting
          fenced_.store(true, std::memory_order_release);
          SetError(refuse.payload);
          keep_running = false;
          break;
        }
        if (callbacks_.observe_epoch) callbacks_.observe_epoch(peer_epoch);
        std::lock_guard<std::mutex> lock(mu_);
        stats_.source_epoch = peer_epoch;
        if (in.type == ReplMsgType::kHeartbeat) {
          stats_.source_durable_lsn = in.b;
          const uint64_t applied = callbacks_.last_applied();
          lag_gauge->Set(
              static_cast<int64_t>(in.b > applied ? in.b - applied : 0));
        } else {
          force_resync_.store(false, std::memory_order_release);
        }
      } else if (in.type == ReplMsgType::kSnapshotMeta) {
        snap_lsn = in.a;
        snap_total = in.b;
        snap_buffer.clear();
        snap_buffer.reserve(snap_total);
      } else if (in.type == ReplMsgType::kSnapshotChunk) {
        snap_buffer.append(in.payload);
        if (snap_buffer.size() > snap_total) {
          SetError("snapshot transfer overran its declared size");
          break;
        }
      } else if (in.type == ReplMsgType::kSnapshotDone) {
        if (snap_buffer.size() != snap_total ||
            ReplBytesChecksum(snap_buffer) != in.a) {
          corrupt_counter->Increment();
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.corrupt_frames;
          }
          SetError("snapshot transfer failed its checksum");
          break;
        }
        if (Status st = callbacks_.install_snapshot(snap_buffer, snap_lsn);
            !st.ok()) {
          SetError("snapshot install: " + st.ToString());
          force_resync_.store(true, std::memory_order_release);
          break;
        }
        installs_counter->Increment();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.snapshot_installs;
        }
        snap_buffer.clear();
        ReplMessage ack;
        ack.type = ReplMsgType::kAck;
        ack.a = callbacks_.last_applied();
        if (!WriteReplMessage(fd, ack).ok()) break;
      } else if (in.type == ReplMsgType::kFrame) {
        if (options_.faults != nullptr) {
          const Status st = options_.faults->Hit("repl/recv_frame");
          if (!st.ok()) {
            SetError("recv fault: " + st.ToString());
            break;
          }
        }
        const uint64_t want = ReplFrameChecksum(
            in.a, in.b, WriteAheadLog::kRecordCommand, in.payload);
        if (want != in.c) {
          corrupt_counter->Increment();
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.corrupt_frames;
          }
          SetError("frame lsn " + std::to_string(in.a) +
                   " failed its checksum; reconnecting");
          break;
        }
        const uint64_t applied = callbacks_.last_applied();
        if (in.a <= applied) continue;  // duplicate after a reconnect
        if (in.a != applied + 1) {
          SetError("stream gap: got lsn " + std::to_string(in.a) +
                   " after " + std::to_string(applied) +
                   "; forcing snapshot resync");
          force_resync_.store(true, std::memory_order_release);
          break;
        }
        if (options_.faults != nullptr) {
          const Status st = options_.faults->Hit("repl/apply");
          if (!st.ok()) {
            SetError("apply fault: " + st.ToString());
            break;
          }
        }
        if (Status st = callbacks_.apply(in.a, in.b, in.payload); !st.ok()) {
          SetError("apply lsn " + std::to_string(in.a) + ": " +
                   st.ToString());
          force_resync_.store(true, std::memory_order_release);
          break;
        }
        applied_counter->Increment();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.frames_applied;
        }
        ReplMessage ack;
        ack.type = ReplMsgType::kAck;
        ack.a = in.a;
        if (!WriteReplMessage(fd, ack).ok()) break;
      } else if (in.type == ReplMsgType::kRefuse) {
        // The primary saw OUR epoch as ahead of its own and refused the
        // stream — it is stale, we are not. Same terminal verdict.
        fenced_.store(true, std::memory_order_release);
        SetError("refused by source: " + in.payload);
        keep_running = false;
        break;
      } else {
        SetError("unexpected replication message type " +
                 std::to_string(static_cast<int>(in.type)));
        break;
      }
    }
  } while (false);

  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_.store(-1, std::memory_order_release);
    stats_.connected = false;
  }
  ::close(fd);
  return keep_running && !stopping_.load(std::memory_order_acquire);
}

}  // namespace dbwipes
