#include "dbwipes/replication/replication.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "dbwipes/common/metrics.h"
#include "dbwipes/common/telemetry.h"
#include "dbwipes/common/trace.h"

namespace dbwipes {

namespace {

constexpr size_t kSnapshotChunkBytes = 64u << 10;

void SetSocketTimeouts(int fd, double ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

ReplicationServer::~ReplicationServer() { Stop(); }

Status ReplicationServer::Start(ReplicationServerOptions options,
                                Source source) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("replication server already started");
  }
  if (source.wal == nullptr || !source.epoch || !source.snapshot) {
    return Status::InvalidArgument(
        "replication server needs a wal, an epoch source, and a snapshot "
        "source");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback-only, like the observability listener: replication is not
  // exposed off-host unless the operator fronts it themselves.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Status::IoError("bind to port " + std::to_string(options.port) +
                        " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st =
        Status::IoError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status st = Status::IoError(std::string("getsockname failed: ") +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  options_ = options;
  source_ = std::move(source);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&ReplicationServer::AcceptLoop, this);
  return Status::OK();
}

void ReplicationServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

ReplicationServer::Stats ReplicationServer::stats() const {
  Stats s;
  s.running = running_.load(std::memory_order_acquire);
  s.port = port_;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_acked = 0;
  for (const auto& conn : conns_) {
    if (conn->done.load(std::memory_order_acquire)) continue;
    ++s.followers;
    const uint64_t acked = conn->acked_lsn.load(std::memory_order_acquire);
    if (s.followers == 1 || acked < min_acked) min_acked = acked;
  }
  s.min_acked_lsn = min_acked;
  s.frames_sent = frames_sent_;
  s.snapshots_sent = snapshots_sent_;
  s.epoch_refusals = epoch_refusals_;
  return s;
}

void ReplicationServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;
    const int conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (conn_fd < 0) continue;
    {
      // Reap finished followers so a long-lived primary that sheds and
      // regains followers does not accumulate dead threads/fds.
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          if ((*it)->fd >= 0) ::close((*it)->fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = conn_fd;
      Conn* raw = conn.get();
      conn->thread =
          std::thread(&ReplicationServer::ServeFollower, this, raw);
      conns_.push_back(std::move(conn));
    }
  }
}

Result<uint64_t> ReplicationServer::ShipFrames(int fd, uint64_t last_sent) {
  if (source_.wal->durable_lsn() <= last_sent) return last_sent;
  size_t shipped = 0;
  uint64_t through = last_sent;
  const Status st = source_.wal->ReplayDurable(
      last_sent,
      [&](uint64_t lsn, uint64_t rid, uint8_t type,
          const std::string& body) -> Status {
        if (type != WriteAheadLog::kRecordCommand) return Status::OK();
        ReplMessage frame;
        frame.type = ReplMsgType::kFrame;
        frame.a = lsn;
        frame.b = rid;
        frame.c = ReplFrameChecksum(lsn, rid, type, body);
        frame.payload = body;
        if (options_.faults != nullptr) {
          FaultInjector::Fault fault;
          if (options_.faults->HitIo("repl/send_frame", &fault)) {
            if (fault.crash) ::_exit(kFaultCrashExit);
            if (!fault.status.ok()) return fault.status;
          }
          if (options_.faults->HitIo("repl/corrupt_frame", &fault)) {
            // Damage the wire bytes AFTER checksumming — the follower's
            // verification, not luck, must catch this.
            if (!frame.payload.empty()) {
              frame.payload[0] = static_cast<char>(frame.payload[0] ^ 0x5a);
            } else {
              frame.c ^= 0x5a;
            }
          }
        }
        DBW_RETURN_NOT_OK(WriteReplMessage(fd, frame));
        ++shipped;
        return Status::OK();
      },
      &through);
  DBW_RETURN_NOT_OK(st);
  if (shipped > 0) {
    static MetricCounter* const frames =
        MetricsRegistry::Global().GetCounter("repl.frames_sent");
    frames->Increment(static_cast<int64_t>(shipped));
    std::lock_guard<std::mutex> lock(mu_);
    frames_sent_ += shipped;
  }
  return through;
}

void ReplicationServer::ServeFollower(Conn* conn) {
  static MetricGauge* const followers =
      MetricsRegistry::Global().GetGauge("repl.connected_followers");
  static MetricGauge* const lag =
      MetricsRegistry::Global().GetGauge("repl.follower_lag");
  static MetricCounter* const heartbeats =
      MetricsRegistry::Global().GetCounter("repl.heartbeats");

  const int fd = conn->fd;
  SetSocketTimeouts(fd, options_.recv_timeout_ms);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  bool counted = false;
  ReplMessage hello;
  do {  // single-pass scope; break = tear the connection down
    if (!ReadReplMessage(fd, &hello).ok()) break;
    if (hello.type != ReplMsgType::kHello ||
        hello.a != kReplProtocolVersion) {
      break;
    }
    if (options_.faults != nullptr &&
        !options_.faults->Hit("repl/handshake").ok()) {
      break;
    }
    const uint64_t my_epoch = source_.epoch();
    if (hello.b > my_epoch) {
      // The follower has lived in a newer epoch than we have: we are
      // the stale primary. Refuse the stream and fence ourselves.
      ReplMessage refuse;
      refuse.type = ReplMsgType::kRefuse;
      refuse.a = my_epoch;
      refuse.payload = "epoch fenced: peer speaks epoch " +
                       std::to_string(hello.b) +
                       " but this primary is at epoch " +
                       std::to_string(my_epoch);
      (void)WriteReplMessage(fd, refuse);  // already dropping the peer
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++epoch_refusals_;
      }
      MetricsRegistry::Global()
          .GetCounter("repl.epoch_refusals")
          ->Increment();
      if (source_.observe_epoch) source_.observe_epoch(hello.b);
      break;
    }

    uint64_t last_sent = hello.c;
    std::string snap_bytes;
    uint64_t snap_lsn = 0;
    bool need_snapshot = !source_.wal->CanReplayAfter(last_sent);
    if (need_snapshot) {
      // The checkpoint callback and the log race (a checkpoint can
      // truncate between the read and the tail): retry until the bytes
      // we got are still tailable from their LSN.
      bool have = false;
      for (int attempt = 0; attempt < 5 && !have; ++attempt) {
        auto got = source_.snapshot();
        if (!got.ok()) break;
        snap_bytes = std::move(got->first);
        snap_lsn = got->second;
        have = source_.wal->CanReplayAfter(snap_lsn);
      }
      if (!have) break;
    }

    ReplMessage welcome;
    welcome.type = ReplMsgType::kWelcome;
    welcome.a = my_epoch;
    welcome.b = need_snapshot ? snap_lsn : last_sent;
    welcome.c = need_snapshot ? 1 : 0;
    if (!WriteReplMessage(fd, welcome).ok()) break;

    if (need_snapshot) {
      ReplMessage meta;
      meta.type = ReplMsgType::kSnapshotMeta;
      meta.a = snap_lsn;
      meta.b = snap_bytes.size();
      if (!WriteReplMessage(fd, meta).ok()) break;
      bool sent_ok = true;
      for (size_t off = 0; off < snap_bytes.size();
           off += kSnapshotChunkBytes) {
        if (options_.faults != nullptr) {
          FaultInjector::Fault fault;
          if (options_.faults->HitIo("repl/snapshot_chunk", &fault)) {
            if (fault.crash) ::_exit(kFaultCrashExit);
            if (!fault.status.ok()) {
              sent_ok = false;
              break;
            }
          }
        }
        ReplMessage chunk;
        chunk.type = ReplMsgType::kSnapshotChunk;
        chunk.payload = snap_bytes.substr(off, kSnapshotChunkBytes);
        if (!WriteReplMessage(fd, chunk).ok()) {
          sent_ok = false;
          break;
        }
      }
      if (!sent_ok) break;
      ReplMessage done;
      done.type = ReplMsgType::kSnapshotDone;
      done.a = ReplBytesChecksum(snap_bytes);
      if (!WriteReplMessage(fd, done).ok()) break;
      last_sent = snap_lsn;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++snapshots_sent_;
      }
      MetricsRegistry::Global()
          .GetCounter("repl.snapshots_sent")
          ->Increment();
    }

    conn->acked_lsn.store(last_sent, std::memory_order_release);
    counted = true;
    followers->Add(1);

    double last_heartbeat_ms = MonotonicMillis();
    while (!stopping_.load(std::memory_order_acquire)) {
      // Pace on the socket: wakes immediately for an ACK, otherwise
      // after a short slice to check for newly durable records.
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int r = ::poll(&pfd, 1, /*timeout_ms=*/2);
      if (r > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ReplMessage in;
        if (!ReadReplMessage(fd, &in).ok()) break;
        if (in.type == ReplMsgType::kAck) {
          conn->acked_lsn.store(in.a, std::memory_order_release);
          const uint64_t durable = source_.wal->durable_lsn();
          lag->Set(static_cast<int64_t>(durable > in.a ? durable - in.a
                                                       : 0));
        } else if (in.type == ReplMsgType::kRefuse) {
          // The follower told us our epoch is stale.
          if (source_.observe_epoch) source_.observe_epoch(in.a);
          break;
        }
      } else if (r > 0) {
        break;  // socket error
      }
      auto shipped = ShipFrames(fd, last_sent);
      if (!shipped.ok()) break;
      last_sent = *shipped;
      const double now_ms = MonotonicMillis();
      if (now_ms - last_heartbeat_ms >= options_.heartbeat_interval_ms) {
        ReplMessage hb;
        hb.type = ReplMsgType::kHeartbeat;
        hb.a = source_.epoch();
        hb.b = source_.wal->durable_lsn();
        if (!WriteReplMessage(fd, hb).ok()) break;
        heartbeats->Increment();
        last_heartbeat_ms = now_ms;
      }
    }
  } while (false);

  if (counted) followers->Add(-1);
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace dbwipes
