#include "dbwipes/replication/replication.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace dbwipes {

namespace {

// type + a + b + c, before the variable payload.
constexpr size_t kReplHeaderSize = 1 + 8 + 8 + 8;

uint64_t Fnv1a64(const char* data, size_t n,
                 uint64_t h = 1469598103934665603ull) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

Status SocketError(const char* what) {
  const int e = errno;
  if (e == EAGAIN || e == EWOULDBLOCK) {
    return Status::IoError(std::string(what) + " timed out");
  }
  return Status::IoError(std::string(what) + " failed: " + std::strerror(e));
}

Status WriteAllFd(int fd, const char* data, size_t n) {
  size_t written = 0;
  while (written < n) {
    const ssize_t r = ::send(fd, data + written, n - written, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return SocketError("send");
    }
    written += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ReadAllFd(int fd, char* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return SocketError("recv");
    }
    if (r == 0) return Status::IoError("connection closed by peer");
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeReplMessage(const ReplMessage& m) {
  std::string out;
  const uint32_t len =
      static_cast<uint32_t>(kReplHeaderSize + m.payload.size());
  out.reserve(4 + len);
  out.append(reinterpret_cast<const char*>(&len), 4);
  out.push_back(static_cast<char>(m.type));
  out.append(reinterpret_cast<const char*>(&m.a), 8);
  out.append(reinterpret_cast<const char*>(&m.b), 8);
  out.append(reinterpret_cast<const char*>(&m.c), 8);
  out.append(m.payload);
  return out;
}

Status WriteReplMessage(int fd, const ReplMessage& m) {
  const std::string encoded = EncodeReplMessage(m);
  return WriteAllFd(fd, encoded.data(), encoded.size());
}

Status ReadReplMessage(int fd, ReplMessage* out, size_t max_payload) {
  char lenbuf[4];
  DBW_RETURN_NOT_OK(ReadAllFd(fd, lenbuf, sizeof(lenbuf)));
  uint32_t len = 0;
  std::memcpy(&len, lenbuf, 4);
  if (len < kReplHeaderSize || len > kReplHeaderSize + max_payload) {
    return Status::IoError("replication message has implausible length " +
                           std::to_string(len) + " (corrupt stream)");
  }
  std::string body(len, '\0');
  DBW_RETURN_NOT_OK(ReadAllFd(fd, &body[0], body.size()));
  out->type = static_cast<ReplMsgType>(static_cast<uint8_t>(body[0]));
  std::memcpy(&out->a, body.data() + 1, 8);
  std::memcpy(&out->b, body.data() + 9, 8);
  std::memcpy(&out->c, body.data() + 17, 8);
  out->payload.assign(body, kReplHeaderSize, body.size() - kReplHeaderSize);
  return Status::OK();
}

uint64_t ReplFrameChecksum(uint64_t lsn, uint64_t rid, uint8_t type,
                           const std::string& body) {
  char prefix[17];
  std::memcpy(prefix, &lsn, 8);
  std::memcpy(prefix + 8, &rid, 8);
  prefix[16] = static_cast<char>(type);
  return Fnv1a64(body.data(), body.size(), Fnv1a64(prefix, sizeof(prefix)));
}

uint64_t ReplBytesChecksum(const std::string& bytes) {
  return Fnv1a64(bytes.data(), bytes.size());
}

Result<uint64_t> LoadReplicationEpoch(const std::string& dir) {
  const std::string path = dir + "/repl-epoch";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return static_cast<uint64_t>(1);
  unsigned long long epoch = 0;
  const int matched = std::fscanf(f, "epoch %llu", &epoch);
  std::fclose(f);
  if (matched != 1 || epoch == 0) {
    return Status::IoError("replication epoch file '" + path +
                           "' is malformed; refusing to guess an epoch");
  }
  return static_cast<uint64_t>(epoch);
}

Status StoreReplicationEpoch(const std::string& dir, uint64_t epoch) {
  const std::string path = dir + "/repl-epoch";
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp +
                           "': " + std::strerror(errno));
  }
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "epoch %llu\n",
                              static_cast<unsigned long long>(epoch));
  Status st = Status::OK();
  size_t written = 0;
  while (written < static_cast<size_t>(n)) {
    const ssize_t r = ::write(fd, buf + written, n - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      st = Status::IoError("write to '" + tmp +
                           "' failed: " + std::strerror(errno));
      break;
    }
    written += static_cast<size_t>(r);
  }
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError("fsync of '" + tmp +
                         "' failed: " + std::strerror(errno));
  }
  ::close(fd);
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IoError("rename '" + tmp + "' -> '" + path +
                         "' failed: " + std::strerror(errno));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  // Seal the rename: a promotion that was acknowledged must survive a
  // power cut, or the node could resurrect in its pre-promotion epoch.
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace dbwipes
