#include "dbwipes/provenance/lineage.h"

#include <algorithm>

#include "dbwipes/common/string_util.h"

namespace dbwipes {

LineageStore::LineageStore(const QueryResult& result, size_t num_base_rows)
    : lineage_(&result.lineage), forward_(num_base_rows, -1) {
  for (size_t g = 0; g < lineage_->size(); ++g) {
    for (RowId r : (*lineage_)[g]) {
      DBW_CHECK(r < num_base_rows) << "lineage row out of range";
      forward_[r] = static_cast<int64_t>(g);
      ++traced_rows_;
    }
  }
}

const std::vector<RowId>& LineageStore::Backward(size_t group) const {
  DBW_CHECK(group < lineage_->size());
  return (*lineage_)[group];
}

std::vector<RowId> LineageStore::BackwardUnion(
    const std::vector<size_t>& groups) const {
  std::vector<RowId> out;
  for (size_t g : groups) {
    const auto& rows = Backward(g);
    out.insert(out.end(), rows.begin(), rows.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<size_t> LineageStore::Forward(RowId row) const {
  DBW_CHECK(row < forward_.size());
  const int64_t g = forward_[row];
  if (g < 0) return std::nullopt;
  return static_cast<size_t>(g);
}

std::string OperatorGraph::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const OperatorNode& n = nodes[i];
    out += "[" + std::to_string(i) + "] " + n.name;
    if (!n.detail.empty()) out += " (" + n.detail + ")";
    if (!n.inputs.empty()) {
      std::vector<std::string> ins;
      for (size_t in : n.inputs) ins.push_back(std::to_string(in));
      out += " <- " + Join(ins, ", ");
    }
    out += "\n";
  }
  return out;
}

OperatorGraph DescribeQueryPlan(const AggregateQuery& query) {
  OperatorGraph g;
  g.nodes.push_back({"Scan", "table: " + query.table_name, {}});
  size_t prev = 0;
  if (query.where && query.where->kind() != BoolExpr::Kind::kTrue) {
    g.nodes.push_back({"Filter", query.where->ToString(), {prev}});
    prev = g.nodes.size() - 1;
  }
  if (!query.group_by.empty()) {
    g.nodes.push_back({"GroupBy", "keys: " + Join(query.group_by, ", "),
                       {prev}});
    prev = g.nodes.size() - 1;
  }
  std::vector<std::string> aggs;
  for (const AggSpec& a : query.aggregates) aggs.push_back(a.ToString());
  g.nodes.push_back({"Aggregate", Join(aggs, ", "), {prev}});
  g.nodes.push_back({"Result", "", {g.nodes.size() - 1}});
  return g;
}

}  // namespace dbwipes
