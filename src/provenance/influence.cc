#include "dbwipes/provenance/influence.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "dbwipes/query/aggregate.h"

namespace dbwipes {

namespace {

Status CheckArgs(const QueryResult& result,
                 const std::vector<size_t>& selected_groups,
                 const InfluenceOptions& options) {
  if (options.agg_index >= result.query.aggregates.size()) {
    return Status::OutOfRange("agg_index " +
                              std::to_string(options.agg_index) +
                              " out of range");
  }
  for (size_t g : selected_groups) {
    if (g >= result.num_groups()) {
      return Status::OutOfRange("selected group " + std::to_string(g) +
                                " out of range (result has " +
                                std::to_string(result.num_groups()) +
                                " groups)");
    }
  }
  if (selected_groups.empty()) {
    return Status::InvalidArgument("no suspicious groups selected");
  }
  return Status::OK();
}

/// Per-tuple aggregate argument values for one group's lineage;
/// nullopt = the tuple's argument evaluated to NULL (contributes
/// nothing to the aggregate).
Result<std::vector<std::optional<double>>> ArgValues(
    const Table& table, const AggSpec& spec, const std::vector<RowId>& rows) {
  std::vector<std::optional<double>> out;
  out.reserve(rows.size());
  for (RowId r : rows) {
    if (!spec.argument) {
      out.push_back(0.0);  // count(*): every row contributes
      continue;
    }
    DBW_ASSIGN_OR_RETURN(Value v, spec.argument->Eval(table, r));
    if (v.is_null()) {
      out.push_back(std::nullopt);
    } else {
      DBW_ASSIGN_OR_RETURN(double d, v.AsDouble());
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace

Result<double> SelectionError(const QueryResult& result,
                              const std::vector<size_t>& selected_groups,
                              const ErrorFn& error_fn,
                              const InfluenceOptions& options) {
  DBW_RETURN_NOT_OK(CheckArgs(result, selected_groups, options));
  std::vector<double> values;
  values.reserve(selected_groups.size());
  for (size_t g : selected_groups) {
    values.push_back(result.AggValue(g, options.agg_index));
  }
  return error_fn(values);
}

Result<std::vector<TupleInfluence>> LeaveOneOutInfluence(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorFn& error_fn,
    const InfluenceOptions& options) {
  DBW_RETURN_NOT_OK(CheckArgs(result, selected_groups, options));
  const AggSpec& spec = result.query.aggregates[options.agg_index];

  // Baseline values of all selected groups.
  std::vector<double> values;
  values.reserve(selected_groups.size());
  for (size_t g : selected_groups) {
    values.push_back(result.AggValue(g, options.agg_index));
  }
  const double err0 = error_fn(values);

  std::vector<TupleInfluence> out;
  std::vector<double> single(1);
  for (size_t si = 0; si < selected_groups.size(); ++si) {
    const size_t g = selected_groups[si];
    const std::vector<RowId>& rows = result.lineage[g];
    DBW_ASSIGN_OR_RETURN(std::vector<std::optional<double>> args,
                         ArgValues(table, spec, rows));

    // Rebuild the group's aggregate state once.
    AggregatorPtr agg = MakeAggregator(spec.kind);
    for (const auto& a : args) {
      if (a) agg->Add(*a);
    }

    // Per-group baseline: the metric applied to this group alone.
    single[0] = values[si];
    const double group_err0 = error_fn(single);

    const double saved = values[si];
    for (size_t i = 0; i < rows.size(); ++i) {
      TupleInfluence ti;
      ti.row = rows[i];
      ti.selected_group = si;
      if (!args[i]) {
        // NULL argument: removing the tuple cannot change the
        // aggregate (count(*) excepted, handled above by args = 0.0).
        ti.influence = 0.0;
      } else {
        agg->Remove(*args[i]);
        if (options.per_group) {
          single[0] = agg->Value();
          ti.influence = group_err0 - error_fn(single);
        } else {
          values[si] = agg->Value();
          ti.influence = err0 - error_fn(values);
        }
        agg->Add(*args[i]);
      }
      out.push_back(ti);
    }
    values[si] = saved;
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const TupleInfluence& a, const TupleInfluence& b) {
                     return a.influence > b.influence;
                   });
  return out;
}

Result<std::vector<TupleInfluence>> LeaveOneOutInfluenceBruteForce(
    const Table& table, const QueryResult& result,
    const std::vector<size_t>& selected_groups, const ErrorFn& error_fn,
    const InfluenceOptions& options) {
  DBW_RETURN_NOT_OK(CheckArgs(result, selected_groups, options));
  const AggSpec& spec = result.query.aggregates[options.agg_index];

  std::vector<double> values;
  values.reserve(selected_groups.size());
  for (size_t g : selected_groups) {
    values.push_back(result.AggValue(g, options.agg_index));
  }
  const double err0 = error_fn(values);

  std::vector<TupleInfluence> out;
  std::vector<double> single(1);
  for (size_t si = 0; si < selected_groups.size(); ++si) {
    const size_t g = selected_groups[si];
    const std::vector<RowId>& rows = result.lineage[g];
    DBW_ASSIGN_OR_RETURN(std::vector<std::optional<double>> args,
                         ArgValues(table, spec, rows));

    single[0] = values[si];
    const double group_err0 = error_fn(single);

    const double saved = values[si];
    for (size_t i = 0; i < rows.size(); ++i) {
      // Recompute the aggregate over all tuples but i.
      AggregatorPtr agg = MakeAggregator(spec.kind);
      for (size_t j = 0; j < rows.size(); ++j) {
        if (j != i && args[j]) agg->Add(*args[j]);
      }
      TupleInfluence ti;
      ti.row = rows[i];
      ti.selected_group = si;
      if (options.per_group) {
        single[0] = agg->Value();
        ti.influence = group_err0 - error_fn(single);
      } else {
        values[si] = agg->Value();
        ti.influence = err0 - error_fn(values);
      }
      out.push_back(ti);
    }
    values[si] = saved;
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const TupleInfluence& a, const TupleInfluence& b) {
                     return a.influence > b.influence;
                   });
  return out;
}

}  // namespace dbwipes
