#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dbwipes/common/random.h"
#include "dbwipes/learn/decision_tree.h"
#include "dbwipes/learn/feature.h"
#include "dbwipes/learn/kmeans.h"
#include "dbwipes/learn/naive_bayes.h"

namespace dbwipes {
namespace {

std::shared_ptr<Table> MixedTable() {
  auto t = std::make_shared<Table>(Schema{{"num", DataType::kDouble},
                                          {"cat", DataType::kString},
                                          {"extra", DataType::kInt64}},
                                   "m");
  auto add = [&](double n, const char* c, int64_t e) {
    DBW_CHECK_OK(t->AppendRow({Value(n), Value(c), Value(e)}));
  };
  add(1.0, "a", 10);
  add(2.0, "b", 20);
  add(3.0, "a", 30);
  DBW_CHECK_OK(t->AppendRow({Value::Null(), Value("c"), Value::Null()}));
  return t;
}

// ---------- FeatureView ----------

TEST(FeatureViewTest, CreateAndAccess) {
  auto t = MixedTable();
  FeatureView v = *FeatureView::Create(*t, {"num", "cat"});
  ASSERT_EQ(v.num_features(), 2u);
  EXPECT_FALSE(v.features()[0].categorical);
  EXPECT_TRUE(v.features()[1].categorical);
  EXPECT_DOUBLE_EQ(v.Get(0, 0), 1.0);
  EXPECT_TRUE(std::isnan(v.Get(3, 0)));
  EXPECT_TRUE(v.IsNull(3, 0));
  // Categorical values come back as dictionary codes.
  EXPECT_EQ(v.Get(0, 1), v.Get(2, 1));
  EXPECT_NE(v.Get(0, 1), v.Get(1, 1));
  EXPECT_EQ(v.CategoryName(1, static_cast<int32_t>(v.Get(1, 1))), "b");
}

TEST(FeatureViewTest, CreateExcluding) {
  auto t = MixedTable();
  FeatureView v = *FeatureView::CreateExcluding(*t, {"num"});
  ASSERT_EQ(v.num_features(), 2u);
  EXPECT_EQ(v.features()[0].name, "cat");
  EXPECT_EQ(v.features()[1].name, "extra");
}

TEST(FeatureViewTest, UnknownColumnErrors) {
  auto t = MixedTable();
  EXPECT_TRUE(FeatureView::Create(*t, {"nope"}).status().IsNotFound());
}

TEST(FeatureViewTest, CategoriesIn) {
  auto t = MixedTable();
  FeatureView v = *FeatureView::Create(*t, {"cat"});
  auto cats = v.CategoriesIn({0, 1, 2}, 0);
  EXPECT_EQ(cats.size(), 2u);  // a, b (not c)
}

TEST(FeatureViewTest, NumericMatrixStandardizesAndImputes) {
  auto t = MixedTable();
  FeatureView v = *FeatureView::Create(*t, {"num", "cat", "extra"});
  std::vector<std::vector<double>> m;
  std::vector<size_t> idx;
  v.NumericMatrix({0, 1, 2, 3}, /*standardize=*/true, &m, &idx);
  ASSERT_EQ(idx.size(), 2u);  // num, extra (cat excluded)
  ASSERT_EQ(m.size(), 4u);
  // Row 3 was NULL -> imputed with the mean -> standardized to 0.
  EXPECT_NEAR(m[3][0], 0.0, 1e-12);
  // Column mean of standardized values is ~0.
  double mean = 0.0;
  for (const auto& row : m) mean += row[0];
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-9);
}

// ---------- k-means ----------

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(42);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.Normal(0, 0.5), rng.Normal(0, 0.5)});
  }
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.Normal(10, 0.5), rng.Normal(10, 0.5)});
  }
  KMeansResult r = *KMeans(pts, 2, &rng);
  // All of blob 1 in one cluster, all of blob 2 in the other.
  for (int i = 1; i < 50; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 51; i < 100; ++i) EXPECT_EQ(r.assignment[i], r.assignment[50]);
  EXPECT_NE(r.assignment[0], r.assignment[50]);
  auto sizes = r.ClusterSizes(2);
  EXPECT_EQ(sizes[0] + sizes[1], 100u);
}

TEST(KMeansTest, KOneYieldsCentroidAtMean) {
  Rng rng(1);
  std::vector<std::vector<double>> pts = {{0.0}, {2.0}, {4.0}};
  KMeansResult r = *KMeans(pts, 1, &rng);
  EXPECT_NEAR(r.centroids[0][0], 2.0, 1e-9);
}

TEST(KMeansTest, InvalidArguments) {
  Rng rng(1);
  EXPECT_FALSE(KMeans({}, 1, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 2, &rng).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1, &rng).ok());
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Rng rng(2);
  std::vector<std::vector<double>> pts(10, {3.0, 3.0});
  KMeansResult r = *KMeans(pts, 3, &rng);
  EXPECT_EQ(r.assignment.size(), 10u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, AutoFindsTwoBlobs) {
  Rng rng(7);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({rng.Normal(0, 0.3)});
  for (int i = 0; i < 40; ++i) pts.push_back({rng.Normal(8, 0.3)});
  KMeansResult r = *KMeansAuto(pts, 4, &rng);
  const int k = 1 + *std::max_element(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(k, 2);
}

TEST(KMeansTest, AutoPrefersOneClusterForHomogeneousData) {
  Rng rng(8);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 80; ++i) pts.push_back({rng.UniformDouble(0, 1)});
  KMeansResult r = *KMeansAuto(pts, 4, &rng);
  const int k = 1 + *std::max_element(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(k, 1);
}

// ---------- naive Bayes ----------

std::shared_ptr<Table> LabeledBlobTable(std::vector<int>* labels, Rng* rng) {
  auto t = std::make_shared<Table>(
      Schema{{"x", DataType::kDouble}, {"color", DataType::kString}}, "b");
  labels->clear();
  for (int i = 0; i < 100; ++i) {
    const bool pos = i % 2 == 0;
    DBW_CHECK_OK(t->AppendRow(
        {Value(rng->Normal(pos ? 5.0 : -5.0, 1.0)),
         Value(pos ? (rng->Bernoulli(0.9) ? "hot" : "cold")
                   : (rng->Bernoulli(0.9) ? "cold" : "hot"))}));
    labels->push_back(pos ? 1 : 0);
  }
  return t;
}

TEST(NaiveBayesTest, LearnsSeparableClasses) {
  Rng rng(3);
  std::vector<int> labels;
  auto t = LabeledBlobTable(&labels, &rng);
  FeatureView v = *FeatureView::Create(*t, {"x", "color"});
  std::vector<RowId> rows;
  for (RowId r = 0; r < t->num_rows(); ++r) rows.push_back(r);
  NaiveBayes model = *NaiveBayes::Fit(v, rows, labels);
  int correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (model.Predict(v, rows[i]) == labels[i]) ++correct;
  }
  EXPECT_GE(correct, 95);
}

TEST(NaiveBayesTest, ProbabilitiesAreCalibratedDirectionally) {
  Rng rng(4);
  std::vector<int> labels;
  auto t = LabeledBlobTable(&labels, &rng);
  FeatureView v = *FeatureView::Create(*t, {"x"});
  std::vector<RowId> rows;
  for (RowId r = 0; r < t->num_rows(); ++r) rows.push_back(r);
  NaiveBayes model = *NaiveBayes::Fit(v, rows, labels);
  // A deep-positive row should get probability near 1.
  double best = 0.0;
  for (RowId r : rows) best = std::max(best, model.PredictProba(v, r));
  EXPECT_GT(best, 0.99);
}

TEST(NaiveBayesTest, FitValidation) {
  auto t = MixedTable();
  FeatureView v = *FeatureView::Create(*t, {"num"});
  EXPECT_FALSE(NaiveBayes::Fit(v, {0, 1}, {1, 1}).ok());   // one class
  EXPECT_FALSE(NaiveBayes::Fit(v, {0, 1}, {0}).ok());      // size mismatch
  EXPECT_FALSE(NaiveBayes::Fit(v, {0, 1}, {0, 2}).ok());   // bad label
  EXPECT_FALSE(NaiveBayes::Fit(v, {}, {}).ok());           // empty
}

// ---------- decision tree ----------

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  Rng rng(5);
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformDouble(0, 10);
    DBW_CHECK_OK(t->AppendRow({Value(x)}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(x > 7.0 ? 1 : 0);
  }
  FeatureView v = *FeatureView::Create(*t, {"x"});
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, {});
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(tree.Predict(v, rows[i]), labels[i]);
  }
  EXPECT_LE(tree.depth(), 2u);
  // The learned threshold predicate matches the planted split.
  auto preds = tree.PositiveLeafPredicates(v, 0.9);
  ASSERT_EQ(preds.size(), 1u);
  ASSERT_EQ(preds[0].num_clauses(), 1u);
  EXPECT_EQ(preds[0].clauses()[0].op, CompareOp::kGt);
  EXPECT_NEAR(*preds[0].clauses()[0].literal.AsDouble(), 7.0, 0.5);
}

TEST(DecisionTreeTest, LearnsCategoricalSplit) {
  auto t = std::make_shared<Table>(Schema{{"c", DataType::kString}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  const char* cats[] = {"bad", "good1", "good2"};
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    const size_t c = rng.UniformInt(3u);
    DBW_CHECK_OK(t->AppendRow({Value(cats[c])}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(c == 0 ? 1 : 0);
  }
  FeatureView v = *FeatureView::Create(*t, {"c"});
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, {});
  auto preds = tree.PositiveLeafPredicates(v, 0.9);
  ASSERT_FALSE(preds.empty());
  EXPECT_EQ(preds[0].ToString(), "c = 'bad'");
}

TEST(DecisionTreeTest, GainRatioAlsoLearns) {
  Rng rng(9);
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformDouble(0, 1);
    DBW_CHECK_OK(t->AppendRow({Value(x)}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(x < 0.3 ? 1 : 0);
  }
  FeatureView v = *FeatureView::Create(*t, {"x"});
  DecisionTreeOptions opts;
  opts.criterion = SplitCriterion::kGainRatio;
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, opts);
  int correct = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    correct += tree.Predict(v, rows[i]) == labels[i];
  }
  EXPECT_GE(correct, 195);
}

TEST(DecisionTreeTest, MaxDepthBoundsPredicateComplexity) {
  Rng rng(10);
  auto t = std::make_shared<Table>(
      Schema{{"a", DataType::kDouble}, {"b", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.UniformDouble(0, 1);
    const double b = rng.UniformDouble(0, 1);
    DBW_CHECK_OK(t->AppendRow({Value(a), Value(b)}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(a > 0.5 && b > 0.5 ? 1 : 0);
  }
  FeatureView v = *FeatureView::Create(*t, {"a", "b"});
  DecisionTreeOptions opts;
  opts.max_depth = 2;
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, opts);
  EXPECT_LE(tree.depth(), 2u);
  for (const Predicate& p : tree.PositiveLeafPredicates(v, 0.5)) {
    EXPECT_LE(p.num_clauses(), 2u);
  }
}

TEST(DecisionTreeTest, WeightsShiftTheSplit) {
  // Without weights the majority class dominates; upweighting the
  // positives forces the tree to carve them out.
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  std::vector<double> weights;
  for (int i = 0; i < 100; ++i) {
    DBW_CHECK_OK(t->AppendRow({Value(static_cast<double>(i))}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(i >= 95 ? 1 : 0);
    weights.push_back(i >= 95 ? 50.0 : 1.0);
  }
  FeatureView v = *FeatureView::Create(*t, {"x"});
  DecisionTreeOptions opts;
  opts.min_samples_leaf = 1.0;
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, weights, opts);
  EXPECT_EQ(tree.Predict(v, 99), 1);
  EXPECT_EQ(tree.Predict(v, 10), 0);
}

TEST(DecisionTreeTest, CostComplexityPruningShrinksTree) {
  Rng rng(11);
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.UniformDouble(0, 1);
    DBW_CHECK_OK(t->AppendRow({Value(x)}));
    rows.push_back(static_cast<RowId>(i));
    // Noisy labels: 80% follow x > 0.5, 20% random.
    labels.push_back(rng.Bernoulli(0.8) ? (x > 0.5 ? 1 : 0)
                                        : (rng.Bernoulli(0.5) ? 1 : 0));
  }
  FeatureView v = *FeatureView::Create(*t, {"x"});
  DecisionTreeOptions loose;
  loose.max_depth = 8;
  DecisionTree big = *DecisionTree::Fit(v, rows, labels, {}, loose);
  DecisionTreeOptions pruned = loose;
  pruned.ccp_alpha = 0.02;
  DecisionTree small = *DecisionTree::Fit(v, rows, labels, {}, pruned);
  EXPECT_LT(small.num_leaves(), big.num_leaves());
}

TEST(DecisionTreeTest, NullsRouteRight) {
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    DBW_CHECK_OK(t->AppendRow({Value(static_cast<double>(i))}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(i < 10 ? 1 : 0);
  }
  DBW_CHECK_OK(t->AppendRow({Value::Null()}));
  FeatureView v = *FeatureView::Create(*t, {"x"});
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, {});
  // NULL goes right = the "condition false" branch = negative side here.
  EXPECT_EQ(tree.Predict(v, 20), 0);
}

TEST(DecisionTreeTest, PredicatesClassifyConsistentlyWithTree) {
  // Property: rows matching any extracted positive predicate are
  // predicted positive by the tree (on null-free data).
  Rng rng(12);
  auto t = std::make_shared<Table>(
      Schema{{"a", DataType::kDouble}, {"c", DataType::kString}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  const char* cats[] = {"p", "q", "r"};
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Normal(0, 1);
    const size_t c = rng.UniformInt(3u);
    DBW_CHECK_OK(t->AppendRow({Value(a), Value(cats[c])}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back((a > 0.5 && c == 1) ? 1 : 0);
  }
  FeatureView v = *FeatureView::Create(*t, {"a", "c"});
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, {});
  auto preds = tree.PositiveLeafPredicates(v, 0.5);
  ASSERT_FALSE(preds.empty());
  for (const Predicate& p : preds) {
    BoundPredicate bound = *p.Bind(*t);
    for (RowId r : rows) {
      if (bound.Matches(r)) {
        EXPECT_GE(tree.PredictProba(v, r), 0.5)
            << "predicate " << p.ToString() << " row " << r;
      }
    }
  }
}

TEST(DecisionTreeTest, FitValidation) {
  auto t = MixedTable();
  FeatureView v = *FeatureView::Create(*t, {"num"});
  EXPECT_FALSE(DecisionTree::Fit(v, {}, {}, {}, {}).ok());
  EXPECT_FALSE(DecisionTree::Fit(v, {0, 1}, {0}, {}, {}).ok());
  EXPECT_FALSE(DecisionTree::Fit(v, {0, 1}, {0, 3}, {}, {}).ok());
  EXPECT_FALSE(DecisionTree::Fit(v, {0, 1}, {0, 1}, {1.0}, {}).ok());
}

TEST(DecisionTreeTest, ToStringShowsStructure) {
  auto t = std::make_shared<Table>(Schema{{"x", DataType::kDouble}}, "d");
  std::vector<RowId> rows;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    DBW_CHECK_OK(t->AppendRow({Value(static_cast<double>(i))}));
    rows.push_back(static_cast<RowId>(i));
    labels.push_back(i < 10 ? 1 : 0);
  }
  FeatureView v = *FeatureView::Create(*t, {"x"});
  DecisionTree tree = *DecisionTree::Fit(v, rows, labels, {}, {});
  const std::string s = tree.ToString(v);
  EXPECT_NE(s.find("split on x <="), std::string::npos);
  EXPECT_NE(s.find("leaf"), std::string::npos);
}

}  // namespace
}  // namespace dbwipes
