// End-to-end integration: the two paper scenarios (F4 Intel, F7 FEC)
// driven through the Session exactly as the demo walkthrough describes,
// with quantitative assertions against the generators' ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dbwipes/core/evaluation.h"
#include "dbwipes/core/session.h"
#include "dbwipes/datagen/fec_generator.h"
#include "dbwipes/datagen/intel_generator.h"
#include "dbwipes/datagen/synthetic.h"
#include "dbwipes/viz/scatterplot.h"

namespace dbwipes {
namespace {

TEST(IntegrationTest, IntelSensorWalkthrough) {
  IntelOptions gen;
  gen.duration_days = 5;
  gen.reading_interval_minutes = 10.0;
  gen.faults = {{15, 3 * 1440, 600, 122.0}, {18, 4 * 1440, 600, 110.0}};
  LabeledDataset data = *GenerateIntelDataset(gen);

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);

  ASSERT_TRUE(session
                  .ExecuteSql("SELECT window, avg(temp) AS t, "
                              "stddev(temp) AS sd FROM readings "
                              "GROUP BY window")
                  .ok());
  ASSERT_TRUE(session.SelectResultsInRange("sd", 8.0, 1e9).ok());
  EXPECT_GT(session.selected_groups().size(), 10u);
  ASSERT_TRUE(session.SelectInputsWhere("temp > 100").ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(2.0), /*agg_index=*/1).ok());

  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  const RankedPredicate& top = exp.predicates[0];
  // The top predicate must describe the dying motes well: it should
  // cover most ground-truth anomalous rows with good precision.
  ExplanationQuality q =
      *ScorePredicate(*data.table, top.predicate, data.AllAnomalousRows());
  EXPECT_GT(q.recall, 0.8) << top.predicate.ToString();
  EXPECT_GT(q.precision, 0.5) << top.predicate.ToString();
  EXPECT_GT(top.error_improvement, 0.8);
  EXPECT_LE(top.predicate.num_clauses(), 4u);

  // Clicking the predicate repairs the stddev signal (>= 90% of the
  // error disappears, the paper's "significant fraction").
  const double err_before = exp.preprocess.baseline_error;
  ASSERT_TRUE(session.ApplyPredicate(0).ok());
  double worst_sd = 0.0;
  for (size_t g = 0; g < session.result().num_groups(); ++g) {
    const double sd = session.result().AggValue(g, 1);
    if (!std::isnan(sd)) worst_sd = std::max(worst_sd, sd);
  }
  EXPECT_LT(worst_sd - 2.0, 0.1 * err_before);
}

TEST(IntegrationTest, FecCampaignWalkthrough) {
  FecOptions gen;
  gen.num_donations = 20000;
  gen.num_reattributions = 150;
  LabeledDataset data = *GenerateFecDataset(gen);

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);

  ASSERT_TRUE(session
                  .ExecuteSql("SELECT day, sum(amount) AS total "
                              "FROM donations WHERE candidate = 'MCCAIN' "
                              "GROUP BY day")
                  .ok());
  ASSERT_TRUE(session.SelectResultsInRange("total", -1e15, -1.0).ok());
  ASSERT_TRUE(session.SelectInputsWhere("amount < 0").ok());
  ASSERT_TRUE(session.SetMetric(TooLow(0.0)).ok());

  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  // The paper's punchline: the predicate references the memo field's
  // reattribution value.
  const std::string top = exp.predicates[0].predicate.ToString();
  EXPECT_NE(top.find("memo"), std::string::npos) << top;
  EXPECT_NE(top.find("REATTRIBUTION"), std::string::npos) << top;
  EXPECT_GT(exp.predicates[0].f1, 0.9);

  // Cleaning removes the negative spike entirely.
  ASSERT_TRUE(session.ApplyPredicate(0).ok());
  double worst = 0.0;
  for (size_t g = 0; g < session.result().num_groups(); ++g) {
    worst = std::min(worst, session.result().AggValue(g, 0));
  }
  EXPECT_GT(worst, -500.0);  // benign refunds only
}

TEST(IntegrationTest, SyntheticTwoClauseRecovery) {
  SyntheticOptions gen;
  gen.num_rows = 30000;
  gen.anomaly_selectivity = 0.03;
  gen.anomaly_clauses = 2;
  LabeledDataset data = *GenerateSyntheticDataset(gen);

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);
  ASSERT_TRUE(
      session.ExecuteSql("SELECT g, avg(v) AS a FROM synthetic GROUP BY g")
          .ok());
  ASSERT_TRUE(session.SelectResultsInRange("a", 50.6, 1e9).ok());
  ASSERT_TRUE(session.SelectInputsWhere("v > 75").ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(50.0)).ok());
  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  ExplanationQuality q = *ScorePredicate(
      *data.table, exp.predicates[0].predicate, data.anomalies[0].rows);
  // Score within the suspect set F rather than the whole table:
  // anomalies outside the selected groups are out of scope by design.
  EXPECT_GT(q.recall, 0.4);
  EXPECT_GT(exp.predicates[0].f1, 0.8);
  EXPECT_GT(exp.predicates[0].error_improvement, 0.85);
}

TEST(IntegrationTest, RepeatedCleaningConverges) {
  // Two independent anomalies; clean them one predicate at a time.
  Rng rng_unused(0);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  Rng rng(5);
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 50; ++i) {
      const char* tag = "fine";
      double v = rng.Normal(10, 1);
      if (g < 2 && i < 8) {
        tag = "badA";
        v = rng.Normal(80, 1);
      } else if (g >= 2 && i < 8) {
        tag = "badB";
        v = rng.Normal(60, 1);
      }
      DBW_CHECK_OK(t->AppendRow(
          {Value(static_cast<int64_t>(g)), Value(tag), Value(v)}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  Session session(db);
  ASSERT_TRUE(session.ExecuteSql("SELECT g, avg(v) AS a FROM w GROUP BY g")
                  .ok());

  for (int round = 0; round < 4; ++round) {
    auto sel = session.SelectResultsInRange("a", 13.0, 1e9);
    if (!sel.ok()) break;  // clean already
    ASSERT_TRUE(session.SetMetric(TooHigh(11.0)).ok());
    Explanation exp = *session.Debug();
    ASSERT_FALSE(exp.predicates.empty());
    ASSERT_TRUE(session.ApplyPredicate(0).ok());
  }
  for (size_t g = 0; g < session.result().num_groups(); ++g) {
    EXPECT_LT(session.result().AggValue(g, 0), 13.0) << "group " << g;
  }
  EXPECT_GE(session.applied_predicates().size(), 1u);
}

TEST(IntegrationTest, MultiAttributeGroupByWalkthrough) {
  // The paper's multi-attribute group-by case: group sensor readings
  // by (sensorid, hour); the dying mote's cells go anomalous. The
  // PCA projection the paper proposes renders without error, and the
  // pipeline explains the anomaly from the 2-d group structure.
  IntelOptions gen;
  gen.duration_days = 4;
  gen.reading_interval_minutes = 10.0;
  gen.faults = {{15, 2 * 1440, 600, 122.0}};
  LabeledDataset data = *GenerateIntelDataset(gen);

  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);
  ASSERT_TRUE(session
                  .ExecuteSql("SELECT sensorid, hour, avg(temp) AS t "
                              "FROM readings GROUP BY sensorid, hour")
                  .ok());
  // PCA projection of the 2-attribute keys (paper §2.2.1).
  ScatterPlot pca = *ScatterPlot::FromResultPca(session.result());
  EXPECT_EQ(pca.points().size(), session.result().num_groups());
  EXPECT_FALSE(pca.Render().empty());

  ASSERT_TRUE(session.SelectResultsInRange("t", 40.0, 1e9).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(25.0)).ok());
  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  // Groups are (sensorid, hour) cells; the selection covers only the
  // hottest cells, so score against the ground truth *within F* (the
  // part of the anomaly the user actually asked about).
  std::vector<RowId> truth = data.AllAnomalousRows();
  std::vector<RowId> truth_in_f;
  std::set_intersection(truth.begin(), truth.end(),
                        exp.preprocess.suspect_inputs.begin(),
                        exp.preprocess.suspect_inputs.end(),
                        std::back_inserter(truth_in_f));
  ASSERT_FALSE(truth_in_f.empty());
  BoundPredicate bound = *exp.predicates[0].predicate.Bind(*data.table);
  std::vector<RowId> matched;
  for (RowId r : exp.preprocess.suspect_inputs) {
    if (bound.Matches(r)) matched.push_back(r);
  }
  ExplanationQuality q = ScoreTupleSet(matched, truth_in_f);
  EXPECT_GT(q.f1, 0.6) << exp.predicates[0].predicate.ToString();
}

TEST(IntegrationTest, MedianQuerySupportsTheFullLoop) {
  // median() is robust to the planted outliers, so the same data that
  // trips avg() stays quiet under median() — both behaviors verified
  // through the full pipeline.
  Rng rng(21);
  auto t = std::make_shared<Table>(Schema{{"g", DataType::kInt64},
                                          {"tag", DataType::kString},
                                          {"v", DataType::kDouble}},
                                   "w");
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 50; ++i) {
      const bool bad = g == 2 && i < 10;
      DBW_CHECK_OK(t->AppendRow({Value(static_cast<int64_t>(g)),
                                 Value(bad ? "bad" : "fine"),
                                 Value(bad ? rng.Normal(100, 2)
                                           : rng.Normal(10, 2))}));
    }
  }
  auto db = std::make_shared<Database>();
  db->RegisterTable(t);
  Session session(db);
  ASSERT_TRUE(session
                  .ExecuteSql("SELECT g, median(v) AS m, avg(v) AS a "
                              "FROM w GROUP BY g")
                  .ok());
  // avg of group 2 is inflated; its median is not (10 of 50 outliers).
  EXPECT_GT(session.result().AggValue(2, 1), 20.0);
  EXPECT_LT(session.result().AggValue(2, 0), 15.0);

  // Explaining the avg anomaly still works with the median column
  // present in the query.
  ASSERT_TRUE(session.SelectResultsInRange("a", 20.0, 1e9).ok());
  ASSERT_TRUE(session.SetMetric(TooHigh(12.0), /*agg_index=*/1).ok());
  Explanation exp = *session.Debug();
  ASSERT_FALSE(exp.predicates.empty());
  EXPECT_EQ(exp.predicates[0].predicate.ToString(), "tag = 'bad'");
}

TEST(IntegrationTest, CoarseProvenanceIsUninformativeAsMotivated) {
  // The introduction's point: every input goes through the same
  // operator pipeline, so the plan cannot distinguish anomalies.
  FecOptions gen;
  gen.num_donations = 2000;
  gen.num_reattributions = 20;
  LabeledDataset data = *GenerateFecDataset(gen);
  auto db = std::make_shared<Database>();
  db->RegisterTable(data.table);
  Session session(db);
  ASSERT_TRUE(session
                  .ExecuteSql("SELECT day, sum(amount) AS t FROM donations "
                              "GROUP BY day")
                  .ok());
  const std::string plan = *session.DescribePlan();
  // One linear pipeline; nothing row-specific in it.
  EXPECT_EQ(plan.find("REATTRIBUTION"), std::string::npos);
  EXPECT_NE(plan.find("Scan"), std::string::npos);
}

}  // namespace
}  // namespace dbwipes
